#!/usr/bin/env python3
"""bdrmap in a cloud setting (§8): why the existing tool falls short.

Runs bdrmap-style inference independently from every Amazon region --
BGP-driven targets, last-home-ASN border detection, the thirdparty
heuristic -- and quantifies the §8 inconsistencies against our pipeline:

* CBIs left with owner AS0,
* CBIs whose inferred owner changes with the vantage region,
* interfaces flip-flopping between ABI and CBI across regions,
* the coverage gap (no expansion probing, no WHOIS-only space).

Run:  python examples/bdrmap_comparison.py
"""

import time

from repro import AmazonPeeringStudy, WorldConfig, build_world
from repro.bdrmap import BdrmapEngine, compare


def main() -> None:
    t0 = time.time()
    world = build_world(WorldConfig(scale=0.05, seed=29))
    study = AmazonPeeringStudy(world, seed=29, expansion_stride=4,
                               run_vpi=False, run_crossval=False)
    result = study.run()
    print(f"our pipeline finished in {time.time() - t0:.1f}s")

    t0 = time.time()
    engine = BdrmapEngine(world, study.bgp_r2, study.relationships, study.engine)
    bdr = engine.run_all()
    print(f"bdrmap ({len(bdr.runs)} per-region runs) finished in "
          f"{time.time() - t0:.1f}s\n")

    cmp = compare(bdr, result, study.relationships)
    print(f"{'':>12} {'ABIs':>7} {'CBIs':>7} {'ASes':>7}")
    print(f"{'bdrmap':>12} {cmp.bdrmap_abis:>7} {cmp.bdrmap_cbis:>7} {cmp.bdrmap_ases:>7}")
    print(f"{'ours':>12} {cmp.ours_abis:>7} {cmp.ours_cbis:>7} {cmp.ours_ases:>7}")
    print(f"{'common':>12} {cmp.common_abis:>7} {cmp.common_cbis:>7} {cmp.common_ases:>7}")

    print("\ninconsistencies in bdrmap's per-region outputs (8):")
    print(f"  CBIs with owner AS0 everywhere:          {cmp.as0_owner_cbis}")
    print(f"  CBIs with conflicting owners:            {cmp.conflicting_owner_cbis} "
          f"(up to {cmp.max_owners_per_cbi} different owners)")
    print(f"  interfaces ABI in one region, CBI in     ")
    print(f"  another:                                 {cmp.flip_interfaces}")
    print(f"  thirdparty-heuristic CBIs:               {cmp.thirdparty_cbis} "
          f"({cmp.thirdparty_invalidated} fail the common-provider check)")

    missed = result.cbis - bdr.all_cbis()
    print(f"\nCBIs our method sees that bdrmap misses: {len(missed)}")
    print("two reasons, both structural (8): bdrmap probes only BGP-announced")
    print("space (a quarter of round-1 CBIs live in WHOIS-only blocks), and it")
    print("has no equivalent of expansion probing around discovered CBIs.")


if __name__ == "__main__":
    main()
