#!/usr/bin/env python3
"""Quickstart: run the whole IMC'19 study on a small synthetic Internet.

Builds a seeded world (5% of the paper's peer-AS population), runs every
stage of the methodology -- sweep, expansion, verification, pinning,
VPI detection, grouping, graph analysis -- and prints the side-by-side
paper-vs-measured report.

Run:  python examples/quickstart.py [scale] [seed] [workers]
"""

import sys
import time

from repro import (
    AmazonPeeringStudy,
    StudyConfig,
    WorldConfig,
    build_world,
    render_report,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    t0 = time.time()
    world = build_world(WorldConfig(scale=scale, seed=seed))
    print(
        f"world: {len(world.client_ases)} peer ASes, "
        f"{len(world.interconnections)} interconnections, "
        f"{len(world.interfaces)} interfaces "
        f"({time.time() - t0:.1f}s)\n"
    )

    config = StudyConfig(
        scale=scale, seed=seed, expansion_stride=4, workers=workers
    )
    study = AmazonPeeringStudy(world, config)
    result = study.run()
    print(render_report(result, study.relationships))


if __name__ == "__main__":
    main()
