#!/usr/bin/env python3
"""The hidden-peering census (§7.2-§7.3): who peers with Amazon, and how.

Reproduces the paper's headline: grouping every inferred peering by
(public/private, BGP-visible, virtual) shows that roughly a third of
Amazon's peers interconnect in ways no BGP feed or classical traceroute
study can see.  Also re-runs the §7.3 DNS-evidence analysis: ``vlan`` and
``dxvif`` tokens in the names of supposedly *physical* private
interconnections, hinting they are VPIs too.

Run:  python examples/hidden_peering_census.py
"""

import time
from collections import Counter

from repro import AmazonPeeringStudy, WorldConfig, build_world
from repro.analysis import tables
from repro.core.dnsgeo import vpi_evidence
from repro.measure.dnslookup import ReverseDNS
from repro.world.profiles import PR_NB_NV, PR_NB_V


def main() -> None:
    t0 = time.time()
    world = build_world(WorldConfig(scale=0.05, seed=23))
    study = AmazonPeeringStudy(world, seed=23, expansion_stride=4, run_crossval=False)
    result = study.run()
    print(f"study finished in {time.time() - t0:.1f}s\n")

    # Table 5 ----------------------------------------------------------
    print("Table 5 -- groups of Amazon peerings (measured):")
    print(f"{'group':>10} {'ASes':>6} {'CBIs':>6} {'ABIs':>6}")
    for row in tables.table5(result):
        print(f"{row.group:>10} {row.ases:>6} {row.cbis:>6} {row.abis:>6}")
    for label, (a, c, b) in tables.table5_aggregates(result).items():
        print(f"{label:>10} {a:>6} {c:>6} {b:>6}   (aggregate)")

    grouping = result.grouping
    print(f"\nhidden peerings (virtual or private-not-in-BGP): "
          f"{grouping.hidden_fraction() * 100:.1f}% of peer ASes "
          "(paper: 33.3%)")
    print(f"BGP reports {len(result.bgp_visible_peers)} Amazon peers; "
          f"we recovered {len(result.recovered_bgp_peers)} of them and found "
          f"{len(grouping.all_ases()) - len(result.recovered_bgp_peers)} more "
          "that BGP never shows.")

    # Table 6 ------------------------------------------------------------
    print("\nTable 6 -- hybrid peering profiles (top 10):")
    for profile, count in tables.table6(result)[:10]:
        print(f"  {'; '.join(sorted(profile)):<44} {count:>5}")

    # §7.3: DNS evidence that Pr-nB-nV hides more VPIs -----------------------
    rdns = ReverseDNS(world)
    evidence = Counter()
    totals = Counter()
    for (asn, group), record in grouping.records.items():
        if group not in (PR_NB_NV, PR_NB_V):
            continue
        for cbi in record.cbis:
            totals[group] += 1
            if vpi_evidence(rdns.lookup(cbi)):
                evidence[group] += 1
    print("\nDNS evidence for the paper's 'secret VPI' hypothesis (7.3):")
    for group in (PR_NB_NV, PR_NB_V):
        print(f"  {group}: {evidence[group]} of {totals[group]} CBI names carry "
              "vlan/dxvif/dxcon/awsdx tokens")
    print("(the paper found 170 such names across Pr-nB and concluded a slice")
    print(" of Pr-nB-nV is virtual; the world generator plants exactly that.)")

    truly_virtual = sum(
        1
        for icx in world.interconnections.values()
        if icx.is_virtual and not icx.uses_private_addresses
    )
    detected = len(result.vpi.vpi_cbis) if result.vpi else 0
    print(f"\nground truth: {truly_virtual} interconnections are virtual; "
          f"multi-cloud detection could label only {detected} CBIs as VPIs.")


if __name__ == "__main__":
    main()
