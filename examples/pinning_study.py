#!/usr/bin/env python3
"""Pinning deep-dive (§6): anchors, co-presence rules, and their knobs.

Runs the study once, then:

* prints the anchor census (Table 3) and coverage;
* sweeps the Rule-2 RTT threshold around the paper's 2 ms knee and shows
  the precision/coverage trade-off (design decision D3 in DESIGN.md);
* shows the effect of dropping anchor-consistency filtering (D2) via
  cross-validation precision;
* finally scores the pins against ground truth -- the comparison the
  paper's authors had no way to make.

Run:  python examples/pinning_study.py
"""

import time

from repro import AmazonPeeringStudy, WorldConfig, build_world
from repro.core.crossval import cross_validate_pinning
from repro.core.pinning import IterativePinner
from repro.core.evaluation import evaluate_study


def main() -> None:
    t0 = time.time()
    world = build_world(WorldConfig(scale=0.05, seed=17))
    study = AmazonPeeringStudy(world, seed=17, expansion_stride=4, run_vpi=False)
    result = study.run()
    print(f"study finished in {time.time() - t0:.1f}s\n")

    anchors = result.anchors
    print("anchor census (Table 3, exclusive attribution):")
    for name, count in anchors.exclusive_counts().items():
        print(f"  {name:>7}: {count}")
    print(f"  flagged inconsistent: "
          f"{len(anchors.flagged_multi_evidence) + len(anchors.flagged_alias)}")
    print(f"  DNS hints failing the RTT-feasibility check: {anchors.dns_rtt_excluded}")
    universe = result.abis | result.cbis
    print(f"\nmetro coverage {result.metro_pin_coverage * 100:.1f}% of "
          f"{len(universe)} border interfaces "
          f"(+regional fallback -> {result.total_pin_coverage * 100:.1f}%)")

    # --- D3: the 2 ms co-presence threshold -------------------------------
    print("\nRule-2 threshold sweep (paper uses the 2 ms knee of Fig. 4b):")
    print(f"{'threshold':>10} {'coverage':>9} {'cv precision':>13} {'cv recall':>10}")
    for threshold in (0.5, 1.0, 2.0, 4.0, 8.0):
        pinner = IterativePinner(
            anchors.anchors,
            result.alias_sets,
            result.final_segments,
            result.segment_rtt_diff,
            threshold_ms=threshold,
        )
        pins = pinner.run()
        coverage = pins.coverage(universe)
        cv = cross_validate_pinning(
            anchors.anchors,
            result.alias_sets,
            result.final_segments,
            {k: v for k, v in result.segment_rtt_diff.items() if v < threshold},
            folds=3,
            seed=17,
        )
        print(
            f"{threshold:>9.1f}ms {coverage * 100:>8.1f}% "
            f"{cv.mean_precision * 100:>12.1f}% {cv.mean_recall * 100:>9.1f}%"
        )
    print("Widening the threshold buys coverage and erodes precision -- the")
    print("knee is where remote peerings start being mistaken for local ones.")

    # --- ground truth ------------------------------------------------------
    ev = evaluate_study(world, result)
    print(f"\nground-truth pinning accuracy: {ev.pinning.accuracy * 100:.1f}% "
          f"over {ev.pinning.evaluated} pinned interfaces")
    print("(anchor-based cross-validation over-estimates accuracy because")
    print(" anchors sit where evidence is dense; remote peerings pinned to the")
    print(" fabric metro rather than the true router metro are invisible to it.)")


if __name__ == "__main__":
    main()
