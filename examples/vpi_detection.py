#!/usr/bin/env python3
"""VPI detection walk-through (§7.1): how cloud traffic goes hiding.

Virtual private interconnections live on layer-2 cloud-exchange fabrics,
so no traceroute can see the switch.  The paper's trick: a client port
carrying VLANs to several clouds answers probes from *all* of them with
one address -- so a CBI observed from two clouds must be a VPI.

This example runs only the pieces needed for that result:

1. round-1 sweep from Amazon's 15 regions -> candidate CBIs;
2. target-pool construction (non-IXP CBIs, their +1s, discovery dsts);
3. probing the pool from Microsoft, Google, IBM and Oracle;
4. the overlap table (paper's Table 4), then -- because the simulator has
   ground truth the authors lacked -- how far below the real VPI count
   the lower bound sits.

Run:  python examples/vpi_detection.py
"""

import time

from repro import AmazonPeeringStudy, WorldConfig, build_world
from repro.core.evaluation import evaluate_study


def main() -> None:
    t0 = time.time()
    world = build_world(WorldConfig(scale=0.05, seed=11))
    study = AmazonPeeringStudy(
        world, seed=11, expansion_stride=4, run_crossval=False
    )
    result = study.run()
    print(f"study finished in {time.time() - t0:.1f}s\n")

    vpi = result.vpi
    print(f"target pool: {vpi.pool_size} addresses "
          "(non-IXP CBIs, +1 neighbours, discovery destinations)")
    print(f"Amazon CBIs under test: {vpi.amazon_cbis}\n")

    print(f"{'cloud':>10} {'pairwise':>9} {'%':>7} {'cumulative':>11} {'%':>7}")
    for cloud in ("microsoft", "google", "ibm", "oracle"):
        print(
            f"{cloud:>10} {len(vpi.pairwise[cloud]):>9} "
            f"{vpi.pairwise_fraction(cloud) * 100:>6.2f}% "
            f"{len(vpi.cumulative[cloud]):>11} "
            f"{vpi.cumulative_fraction(cloud) * 100:>6.2f}%"
        )
    print("\npaper (Table 4): Microsoft 18.93%, Google 3.17%, IBM 0.94%, "
          "Oracle 0%; cumulative 20.23%")

    # What the paper could not do: compare against ground truth.
    ev = evaluate_study(world, result)
    print("\nground truth (invisible to a real measurement study):")
    print(f"  true VPI ports:            {ev.vpi.true_vpi_cbis}")
    print(f"  detectable (multi-cloud,")
    print(f"  shared-response) ports:    {ev.vpi.detectable_vpi_cbis}")
    print(f"  detected:                  {ev.vpi.detected} "
          f"(of which {ev.vpi.detected_true} true)")
    print(f"  recall of detectable:      {ev.vpi.recall_of_detectable * 100:.0f}%")
    print(f"  lower-bound tightness:     {ev.vpi.lower_bound_tightness * 100:.0f}% "
          "of all true VPI ports")
    print("\nThe gap is the paper's own caveat made quantitative: single-cloud")
    print("VPIs, per-cloud response addresses, and private-address VPIs stay")
    print("invisible, so Table 4 is a lower bound.")


if __name__ == "__main__":
    main()
