"""Benchmark: Table 6 -- hybrid peering profiles (§7.2)."""

from repro.analysis import paper_values as paper, tables
from repro.world.profiles import PB_NB, PR_NB_NV
from conftest import show


def test_table6_hybrid_census(benchmark, bench_study):
    _runner, result = bench_study
    census = benchmark(tables.table6, result)

    lines = [f"{'profile':<46} {'ASes':>6}"]
    for profile, count in census[:12]:
        lines.append(f"{'; '.join(sorted(profile)):<46} {count:>6}")
    lines.append("paper top-5: Pb-nB 2187; Pr-nB-nV 686; Pr-nB-nV+Pb-nB 207; "
                 "Pb-B 117; Pr-nB-nV+Pr-nB-V 83")
    show("Table 6: hybrid peering profiles", lines)

    # The two dominant pure profiles match the paper's ranking.
    ranked = [profile for profile, _c in census]
    assert ranked[0] == frozenset({PB_NB})
    assert frozenset({PR_NB_NV}) in ranked[:4]
    # Hybrid (multi-type) profiles exist.
    assert any(len(profile) >= 2 for profile in ranked)
    # Census is a partition of the peer ASes.
    assert sum(c for _p, c in census) == len(result.grouping.profiles)


def test_common_hybrid_combination(bench_study):
    """The paper's most common hybrid: Pr-nB-nV together with Pb-nB."""
    _runner, result = bench_study
    census = dict(tables.table6(result))
    combo = census.get(frozenset({PR_NB_NV, PB_NB}), 0)
    hybrids = {p: c for p, c in census.items() if len(p) >= 2}
    show(
        "hybrid combinations",
        [
            f"Pr-nB-nV + Pb-nB ASes: {combo} (paper 207)",
            f"total hybrid ASes: {sum(hybrids.values())}",
        ],
    )
    if hybrids:
        top_hybrid = max(hybrids, key=hybrids.get)
        assert PR_NB_NV in top_hybrid or PB_NB in top_hybrid
