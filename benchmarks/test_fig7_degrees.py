"""Benchmark: Figures 7a/7b and §7.4 -- the interface connectivity graph."""

from repro.analysis import figures, paper_values as paper
from conftest import show


def test_fig7a_abi_degrees(benchmark, bench_study):
    """Fig. 7a: skewed ABI degrees (paper: 30% degree 1, 95% < 100)."""
    _runner, result = bench_study
    series = benchmark(figures.fig7a_series, result)
    degrees = result.icg.abi_degrees
    deg1 = figures.degree_fraction_at_most(degrees, 1)
    under100 = figures.degree_fraction_at_most(degrees, 99)

    show(
        "Fig 7a: ABI degrees",
        [
            f"ABIs: {len(degrees)}",
            f"degree<=1: {deg1*100:.0f}% (paper {paper.FIG7A_ABI_DEG1_FRACTION*100:.0f}%)",
            f"degree<100: {under100*100:.0f}% (paper {paper.FIG7A_ABI_UNDER100_FRACTION*100:.0f}%)",
            f"max degree: {max(degrees)} (paper ~1000 at full scale)",
        ],
    )
    assert series
    assert 0.1 < deg1 < 0.6
    assert under100 > 0.9
    assert max(degrees) > 10  # hubs exist


def test_fig7b_cbi_degrees(benchmark, bench_study):
    """Fig. 7b: 50% of CBIs see one ABI; 90% see at most eight."""
    _runner, result = bench_study
    series = benchmark(figures.fig7b_series, result)
    degrees = result.icg.cbi_degrees
    deg1 = figures.degree_fraction_at_most(degrees, 1)
    under8 = figures.degree_fraction_at_most(degrees, 8)

    show(
        "Fig 7b: CBI degrees",
        [
            f"CBIs: {len(degrees)}",
            f"degree<=1: {deg1*100:.0f}% (paper {paper.FIG7B_CBI_DEG1_FRACTION*100:.0f}%)",
            f"degree<=8: {under8*100:.0f}% (paper {paper.FIG7B_CBI_UNDER8_FRACTION*100:.0f}%)",
            f"max degree: {max(degrees)} (paper ~40)",
        ],
    )
    assert series
    assert 0.3 < deg1 < 0.75
    assert under8 > 0.8
    assert max(degrees) >= 4


def test_icg_connectivity(benchmark, bench_study):
    """§7.4: one giant component, overwhelmingly intra-region edges."""
    _runner, result = bench_study

    def summary_stats():
        s = result.icg
        return s.largest_component_fraction, s.intra_region_fraction, s.both_pinned_edges

    largest, intra, both = benchmark(summary_stats)
    show(
        "7.4: ICG connectivity",
        [
            f"largest component: {largest*100:.1f}% of nodes "
            f"(paper {paper.ICG_LARGEST_COMPONENT_FRACTION*100:.1f}%)",
            f"both-end-pinned edges: {both} "
            f"({both/max(result.icg.edge_count,1)*100:.0f}% of edges; paper 57.9%)",
            f"intra-region share of those: {intra*100:.1f}% "
            f"(paper {paper.ICG_INTRA_REGION_FRACTION*100:.0f}%)",
            f"remote examples: {result.icg.remote_examples[:5]}",
        ],
    )
    # One dominant component far larger than a random scatter.
    assert largest > 0.3
    # Most pinned peerings sit inside one region; remote ones exist.
    assert intra > 0.7
    assert result.icg.remote_examples  # intercontinental remote peerings
