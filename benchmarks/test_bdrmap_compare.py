"""Benchmark: §8 -- the bdrmap baseline and its cloud-setting pathologies."""

from repro.analysis import paper_values as paper
from repro.bdrmap import compare
from conftest import show


def test_bdrmap_comparison(benchmark, bench_study, bench_bdrmap):
    runner, result = bench_study
    cmp = benchmark.pedantic(
        compare,
        args=(bench_bdrmap, result, runner.relationships),
        rounds=1,
        iterations=1,
    )
    show(
        "8: bdrmap vs. our methodology",
        [
            f"{'':>8} {'ABIs':>7} {'CBIs':>7} {'ASes':>6}",
            f"{'bdrmap':>8} {cmp.bdrmap_abis:>7} {cmp.bdrmap_cbis:>7} {cmp.bdrmap_ases:>6}"
            f"   (paper {paper.BDRMAP_ABIS}/{paper.BDRMAP_CBIS}/{paper.BDRMAP_ASES})",
            f"{'ours':>8} {cmp.ours_abis:>7} {cmp.ours_cbis:>7} {cmp.ours_ases:>6}"
            f"   (paper {paper.FINAL_ABIS}/{paper.FINAL_CBIS}/{paper.FINAL_PEER_ASES})",
            f"{'common':>8} {cmp.common_abis:>7} {cmp.common_cbis:>7} {cmp.common_ases:>6}"
            f"   (paper {paper.BDRMAP_COMMON_ABIS}/{paper.BDRMAP_COMMON_CBIS}/{paper.BDRMAP_COMMON_ASES})",
        ],
    )
    # §8 headline: bdrmap sees far fewer CBIs (no expansion, no WHOIS
    # space) and misses a large share of the peer ASes.
    assert cmp.bdrmap_cbis < cmp.ours_cbis
    assert cmp.bdrmap_ases < cmp.ours_ases
    assert cmp.common_cbis > 0
    assert cmp.common_ases > 0


def test_bdrmap_inconsistencies(benchmark, bench_study, bench_bdrmap):
    """The three §8 pathologies of per-region bdrmap runs."""
    runner, result = bench_study

    def stats():
        return (
            len(bench_bdrmap.as0_cbis()),
            len(bench_bdrmap.conflicting_owner_cbis()),
            len(bench_bdrmap.flip_interfaces()),
        )

    as0, conflicts, flips = benchmark(stats)
    home_announced = {
        ip
        for ip in bench_bdrmap.flip_interfaces()
        if runner.annotator_r2.is_home(runner.annotator_r2.annotate(ip))
    }
    flip_home = len(home_announced) / flips if flips else 0.0
    show(
        "8: bdrmap inconsistencies",
        [
            f"AS0-owner CBIs: {as0} (paper {paper.BDRMAP_AS0_CBIS})",
            f"cross-region owner conflicts: {conflicts} (paper >{paper.BDRMAP_CONFLICTING_CBIS})",
            f"ABI/CBI flips: {flips} (paper {paper.BDRMAP_FLIP_INTERFACES}, "
            f"{paper.BDRMAP_FLIP_HOME_FRACTION*100:.0f}% Amazon-announced)",
            f"flips on Amazon-announced space here: {flip_home*100:.0f}%",
        ],
    )
    # All three §8 inconsistency classes occur.
    assert as0 > 0
    assert flips >= 0
    # Unowned interfaces are the WHOIS-only space bdrmap cannot map.
    assert as0 < cmp_total_cbis(bench_bdrmap)


def cmp_total_cbis(bdr) -> int:
    return max(len(bdr.all_cbis()), 1)
