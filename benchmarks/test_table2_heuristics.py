"""Benchmark: Table 2 -- heuristic confirmation of candidate ABIs (§5.1).

Checks the paper's ordering of individual heuristic power
(IXP < hybrid < reachable), the cumulative growth, and the headline:
the heuristics collectively confirm the vast majority of candidate ABIs.
"""

from repro.analysis import paper_values as paper, tables
from conftest import show


def test_table2_heuristic_confirmation(benchmark, bench_study):
    _runner, result = bench_study
    rows = benchmark(tables.table2, result)
    by_name = {r.heuristic: r for r in rows}

    lines = [f"{'heuristic':>10} {'indiv ABIs (CBIs)':>20} {'cumul ABIs (CBIs)':>20} {'paper indiv/cumul ABIs':>24}"]
    for name in ("ixp", "hybrid", "reachable"):
        row = by_name[name]
        p_ind, _pc, p_cum, _pcc = paper.TABLE2[name]
        lines.append(
            f"{name:>10} {row.individual_abis:>9} ({row.individual_cbis:>6}) "
            f"{row.cumulative_abis:>9} ({row.cumulative_cbis:>6}) "
            f"{p_ind:>11} / {p_cum}"
        )
    total = len(result.heuristics.confirmed_abis) + len(
        result.heuristics.unconfirmed_abis
    )
    frac = len(result.heuristics.confirmed_abis) / total
    lines.append(
        f"confirmed: {frac*100:.1f}% of candidate ABIs "
        f"(paper {paper.HEURISTIC_CONFIRMED_ABI_FRACTION*100:.1f}%)"
    )
    show("Table 2: heuristic confirmation", lines)

    # Shape: same power ordering as the paper's individual counts.
    assert by_name["ixp"].individual_abis < by_name["hybrid"].individual_abis
    assert by_name["hybrid"].individual_abis < by_name["reachable"].individual_abis
    # Cumulative counts are monotone and end at the confirmed set.
    cums = [by_name[n].cumulative_abis for n in ("ixp", "hybrid", "reachable")]
    assert cums == sorted(cums)
    assert cums[-1] == len(result.heuristics.confirmed_abis)
    # Headline: a large majority confirmed.
    assert frac > 0.65


def test_alias_verification_section52(benchmark, bench_study):
    """§5.2: majority-owner alias sets and the (few) relabelled segments."""
    _runner, result = bench_study

    def stats():
        o = result.verification.ownership
        return (
            o.set_count,
            o.majority_over_half / o.set_count if o.set_count else 0,
            o.unanimous / o.set_count if o.set_count else 0,
            result.verification.total_changes,
        )

    sets, majority, unanimous, changes = benchmark(stats)
    show(
        "5.2: alias-set ownership",
        [
            f"alias sets: {sets} (paper 2,640 full-scale)",
            f">50% majority: {majority*100:.0f}% (paper {paper.ALIAS_MAJORITY_OVER_HALF*100:.0f}%)",
            f"unanimous: {unanimous*100:.0f}% (paper {paper.ALIAS_UNANIMOUS*100:.0f}%)",
            f"relabelled interfaces: {changes} (paper {paper.CHANGES_ABI_TO_CBI + paper.CHANGES_CBI_TO_ABI + paper.CHANGES_CBI_TO_CBI})",
        ],
    )
    assert sets > 0
    assert majority > 0.85
    assert unanimous > 0.6
    # Relabels are a small fraction of all interfaces, as in the paper.
    assert changes < len(result.cbis) * 0.12
