"""Benchmark: Table 3 -- anchors and iterative pinning (§6.1).

Regenerates the anchor census by evidence type, the co-presence-rule
pins, the metro coverage, and the regional fallback, and runs the D2
(anchor consistency) ablation.
"""

from repro.analysis import paper_values as paper, tables
from repro.core.pinning import IterativePinner
from conftest import show


def test_table3_anchor_census(benchmark, bench_study):
    _runner, result = bench_study
    rows = benchmark(tables.table3, result)

    lines = [f"{'evidence':>8} {'exclusive':>10} {'cumulative':>11} {'paper excl/cumul':>18}"]
    for row in rows:
        lines.append(
            f"{row.evidence:>8} {row.exclusive:>10} {row.cumulative:>11} "
            f"{paper.TABLE3_EXCLUSIVE[row.evidence]:>9}/{paper.TABLE3_CUMULATIVE[row.evidence]}"
        )
    lines.append(
        f"metro coverage: {result.metro_pin_coverage*100:.1f}% "
        f"(paper {paper.METRO_PIN_COVERAGE*100:.1f}%); total with regional "
        f"{result.total_pin_coverage*100:.1f}% (paper {paper.TOTAL_PIN_COVERAGE*100:.1f}%)"
    )
    lines.append(f"pinning rounds: {result.pinning.rounds} (paper {paper.PINNING_ROUNDS})")
    show("Table 3: anchors and pinned interfaces", lines)

    # Every evidence class contributes.
    by_name = {r.evidence: r for r in rows}
    for name in ("dns", "ixp", "metro", "native"):
        assert by_name[name].exclusive > 0, f"no {name} anchors"
    # Cumulative column is monotone; propagation adds on top of anchors.
    cums = [r.cumulative for r in rows]
    assert cums == sorted(cums)
    assert by_name["alias"].exclusive + by_name["min-rtt"].exclusive > 0
    # Coverage brackets the paper's story: roughly half-to-most at metro
    # level, more after the regional fallback.
    assert 0.35 < result.metro_pin_coverage <= 1.0
    assert result.total_pin_coverage >= result.metro_pin_coverage
    assert result.pinning.rounds <= 8


def test_d2_ablation_anchor_consistency(bench_study):
    """D2: re-adding the flagged inconsistent anchors must not *improve*
    agreement -- the paper excludes them precisely to protect precision."""
    _runner, result = bench_study
    anchors = result.anchors
    flagged = len(anchors.flagged_multi_evidence) + len(anchors.flagged_alias)

    base = IterativePinner(
        anchors.anchors,
        result.alias_sets,
        result.final_segments,
        result.segment_rtt_diff,
    ).run()
    base_cov = base.coverage(result.abis | result.cbis)

    show(
        "D2 ablation: anchor consistency filter",
        [
            f"anchors kept: {len(anchors.anchors)}; flagged & dropped: {flagged}",
            f"metro coverage with conservative anchors: {base_cov*100:.1f}%",
            "paper: 66 anchors flagged and excluded",
        ],
    )
    assert flagged >= 0
    assert base_cov > 0.3


def test_single_region_interfaces(bench_study):
    """§6.1: some interfaces are only reachable from one region."""
    runner, result = bench_study
    single = [
        r for r in result.pinning.regional.values() if r.reason == "single_region"
    ]
    show(
        "regional fallback",
        [
            f"single-region interfaces: {len(single)} "
            f"(paper {paper.SINGLE_REGION_INTERFACES} = 4.5% of unpinned)",
            f"rtt-ratio assignments: "
            f"{sum(1 for r in result.pinning.regional.values() if r.reason == 'rtt_ratio')}",
        ],
    )
    assert len(result.pinning.regional) > 0
