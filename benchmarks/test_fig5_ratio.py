"""Benchmark: Figure 5 -- min-RTT ratios for regional fallback pinning."""

from repro.analysis import figures, paper_values as paper
from conftest import show


def test_fig5_rtt_ratio_distribution(benchmark, bench_study):
    """Fig. 5: ratio of the two lowest region min-RTTs per unpinned
    interface.  Paper: 57% above 1.5 (assignable to one region); the
    rest sit between closely spaced regions."""
    _runner, result = bench_study
    series = benchmark(figures.fig5_series, result)
    over = figures.fraction_above(series, paper.FIG5_RATIO_THRESHOLD)

    show(
        "Fig 5: two-lowest min-RTT ratios",
        [
            f"unpinned multi-region interfaces: {len(series)}",
            f"ratio > 1.5: {over*100:.0f}% (paper {paper.FIG5_FRACTION_OVER_THRESHOLD*100:.0f}%)",
        ],
    )
    assert series, "regional fallback should see unpinned interfaces"
    assert all(r >= 1.0 for r in series)
    # The split the paper found: a majority-ish assignable, a large
    # minority ambiguous because regions are close together.
    assert 0.25 < over < 0.8


def test_regional_assignment_improves_coverage(benchmark, bench_study):
    _runner, result = bench_study

    def coverage_pair():
        return result.metro_pin_coverage, result.total_pin_coverage

    metro, total = benchmark(coverage_pair)
    show(
        "coverage after regional fallback",
        [
            f"metro-level: {metro*100:.1f}% (paper {paper.METRO_PIN_COVERAGE*100:.1f}%)",
            f"with regional: {total*100:.1f}% (paper {paper.TOTAL_PIN_COVERAGE*100:.1f}%)",
        ],
    )
    assert total > metro
