"""Benchmark: ablations of the design decisions called out in DESIGN.md.

D3 -- the 2 ms Rule-2 threshold (precision/coverage trade-off);
D4 -- ORG-level border detection (Amazon's eight sibling ASNs);
D5 -- the CBI-as-destination hygiene filter.
"""

from repro.core.borders import BorderObservatory, DropReason
from repro.core.crossval import cross_validate_pinning
from repro.core.pinning import IterativePinner
from repro.measure.campaign import ProbeCampaign
from conftest import show


def test_d3_threshold_sweep(benchmark, bench_study):
    """Sweeping Rule 2's threshold around the Fig. 4b knee: coverage
    rises monotonically, precision falls once remote segments slip in."""
    _runner, result = bench_study
    universe = result.abis | result.cbis

    def sweep():
        out = []
        for threshold in (0.5, 2.0, 8.0):
            pins = IterativePinner(
                result.anchors.anchors,
                result.alias_sets,
                result.final_segments,
                result.segment_rtt_diff,
                threshold_ms=threshold,
            ).run()
            cv = cross_validate_pinning(
                result.anchors.anchors,
                result.alias_sets,
                result.final_segments,
                {k: v for k, v in result.segment_rtt_diff.items() if v < threshold},
                folds=3,
                seed=1,
            )
            out.append((threshold, pins.coverage(universe), cv.mean_precision))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'threshold':>10} {'coverage':>9} {'cv precision':>13}"]
    for threshold, coverage, precision in rows:
        lines.append(f"{threshold:>9.1f}ms {coverage*100:>8.1f}% {precision*100:>12.2f}%")
    show("D3 ablation: Rule-2 threshold", lines)

    coverages = [c for _t, c, _p in rows]
    assert coverages == sorted(coverages)  # wider threshold, more pins
    # Precision at the knee is no worse than at 4x the knee.
    assert rows[1][2] >= rows[2][2] - 0.02


def test_d4_org_level_border_detection(benchmark, bench_study, bench_world):
    """D4: collapsing Amazon's sibling ASNs via as2org.  Without it, a
    hop in AS7224 following AS16509 would read as a border.  We verify
    the ORG view treats every sibling as home."""
    runner, _result = bench_study

    def sibling_check():
        annotator = runner.annotator_r2
        from repro.net.asn import AMAZON_ASNS

        homes = 0
        for asn in AMAZON_ASNS:
            org = annotator.as2org.org_of(asn)
            homes += org == annotator.home_org
        return homes

    homes = benchmark(sibling_check)
    show(
        "D4 ablation: ORG-level collapsing",
        [f"Amazon sibling ASNs mapped to the Amazon ORG: {homes}/8"],
    )
    assert homes == 8


def test_d5_destination_filter(benchmark, bench_study, bench_world):
    """D5: the hygiene filter that drops traces whose destination *is*
    the CBI -- without it, §7.1's overlap detection would count default
    responses of probed routers as VPIs."""
    runner, result = bench_study

    def count_filtered():
        return runner.observatory.stats.dropped.get(
            DropReason.CBI_IS_DESTINATION, 0
        )

    filtered = benchmark(count_filtered)
    total = runner.observatory.stats.ingested
    show(
        "D5 ablation: CBI-as-destination filter",
        [
            f"traces dropped by the filter: {filtered} of {total}",
            "each of these would have minted a spurious border interface",
        ],
    )
    assert filtered > 0


def test_expansion_targets_cost(benchmark, bench_study):
    """The cost side of D1: expansion multiplies the probing budget."""
    _runner, result = bench_study
    r1 = result.round1_stats.probes
    r2 = result.round2_stats.probes
    show(
        "probing budget",
        [
            f"round-1 probes: {r1}",
            f"expansion probes: {r2} ({r2/max(r1,1):.1f}x round 1 at stride 4)",
            "paper: 15.6M targets x 15 regions, then full /24s around CBIs",
        ],
    )
    benchmark(lambda: ProbeCampaign.expansion_targets(list(result.cbis)[:50]))
    assert r2 > 0
