"""Benchmark: Table 1 -- interface censuses before/after expansion (§3-§4).

Regenerates the four rows (ABI/CBI/eABI/eCBI) with their BGP/WHOIS/IXP
source mix and checks the paper's shape: ABIs are mostly WHOIS-only
Amazon space, CBIs split across all three sources, and expansion probing
collapses the CBI WHOIS share (24.8% -> 2.3% in the paper) while growing
the CBI count.
"""

from repro.analysis import paper_values as paper, tables
from conftest import show


def test_table1_interface_census(benchmark, bench_study):
    _runner, result = bench_study
    rows = benchmark(tables.table1, result)
    by_label = {r.label: r for r in rows}

    lines = [f"{'':>6} {'measured':>22} {'paper':>22}"]
    for label in ("ABI", "CBI", "eABI", "eCBI"):
        row = by_label[label]
        p_count, p_bgp, p_whois, p_ixp = paper.TABLE1[label]
        lines.append(
            f"{label:>6} {row.total:>6} "
            f"{row.bgp_pct:5.1f}/{row.whois_pct:5.1f}/{row.ixp_pct:5.1f}%"
            f"  {p_count:>7} {p_bgp*100:5.1f}/{p_whois*100:5.1f}/{p_ixp*100:5.1f}%"
        )
    show("Table 1: interfaces and annotation sources", lines)

    # Shape assertions (scale-free).
    assert by_label["eCBI"].total >= by_label["CBI"].total          # expansion grows CBIs
    assert by_label["eABI"].total >= by_label["ABI"].total * 0.9    # ABIs ~constant
    assert by_label["eABI"].whois_pct > 40                          # ABIs mostly WHOIS
    assert by_label["ABI"].ixp_pct == 0                             # no IXP ABIs
    assert by_label["CBI"].whois_pct > by_label["eCBI"].whois_pct   # WHOIS collapse
    assert by_label["eCBI"].whois_pct < 15
    assert by_label["eCBI"].bgp_pct > 55
    assert 5 < by_label["eCBI"].ixp_pct < 40                        # IXP share present


def test_campaign_yield(benchmark, bench_study):
    """§3: completion is rare, but most probes leave Amazon."""
    _runner, result = bench_study

    def series():
        return (
            result.round1_stats.completed_fraction,
            result.round1_stats.left_cloud_fraction,
        )

    completed, left = benchmark(series)
    show(
        "round-1 campaign yield",
        [
            f"completed: {completed*100:.1f}% (paper {paper.COMPLETED_FRACTION*100:.1f}%)",
            f"left Amazon: {left*100:.1f}% (paper {paper.LEFT_AMAZON_FRACTION*100:.0f}%)",
        ],
    )
    assert completed < 0.25
    assert 0.55 < left < 0.95


def test_expansion_ablation_d1(bench_study):
    """D1: expansion probing must add CBIs the sweep alone cannot see
    (paper: 21.73k -> 24.75k)."""
    _runner, result = bench_study
    by_label = {r.label: r for r in result.table1}
    gained = by_label["eCBI"].total - by_label["CBI"].total
    show(
        "D1 ablation: expansion probing",
        [
            f"round-1 CBIs: {by_label['CBI'].total}",
            f"after expansion: {by_label['eCBI'].total} (+{gained})",
            "paper: 21,730 -> 24,750 (+3,020, +14%)",
        ],
    )
    assert gained > 0
