"""Benchmark: Table 5 -- the six peering groups (§7.2) and hidden share."""

from repro.analysis import paper_values as paper, tables
from repro.world.profiles import PB_NB, PR_B_NV, PR_NB_NV
from conftest import show


def test_table5_group_breakdown(benchmark, bench_study):
    _runner, result = bench_study
    rows = benchmark(tables.table5, result)
    by_group = {r.group: r for r in rows}

    lines = [f"{'group':>10} {'ASes':>12} {'CBIs':>13} {'ABIs':>13}   paper AS/CBI/ABI %"]
    for row in rows:
        p = paper.TABLE5[row.group]
        lines.append(
            f"{row.group:>10} {row.ases:>5} ({row.ases_pct:4.1f}%) "
            f"{row.cbis:>5} ({row.cbis_pct:4.1f}%) "
            f"{row.abis:>5} ({row.abis_pct:4.1f}%)   "
            f"{p[0]*100:.0f}/{p[1]*100:.0f}/{p[2]*100:.0f}"
        )
    show("Table 5: peering groups", lines)

    # The three headline shapes of §7.2:
    # (i) most peer ASes use public peering...
    assert by_group[PB_NB].ases_pct > 50
    # (ii) ...but Pr-nB-nV owns the largest CBI share,
    cbi_shares = {g: by_group[g].cbis_pct for g in by_group}
    assert max(cbi_shares, key=cbi_shares.get) == PR_NB_NV
    # (iii) and Pr-nB-nV also dominates the ABI side (paper: 69%).
    abi_shares = {g: by_group[g].abis_pct for g in by_group}
    assert max(abi_shares, key=abi_shares.get) == PR_NB_NV
    # Tier-1 private-BGP peers are few ASes with many CBIs.
    prbnv = by_group[PR_B_NV]
    if prbnv.ases:
        assert prbnv.cbis / prbnv.ases > by_group[PB_NB].cbis / max(by_group[PB_NB].ases, 1)


def test_table5_aggregates(benchmark, bench_study):
    _runner, result = bench_study
    agg = benchmark(tables.table5_aggregates, result)
    total_ases = len(result.grouping.all_ases())
    lines = []
    for label, (a, c, b) in agg.items():
        lines.append(f"{label:>6}: {a} ASes ({a/total_ases*100:.0f}%), {c} CBIs, {b} ABIs")
    lines.append("paper: Pb 76% of ASes, Pr-nB 33%, Pr-B 3%")
    show("Table 5 aggregates", lines)

    assert agg["Pb"][0] > agg["Pr-nB"][0] > agg["Pr-B"][0]


def test_hidden_peering_share(benchmark, bench_study):
    """§7.2: about a third of Amazon's peers interconnect invisibly."""
    _runner, result = bench_study
    frac = benchmark(result.grouping.hidden_fraction)
    show(
        "hidden peerings",
        [f"{frac*100:.1f}% of peer ASes (paper {paper.HIDDEN_PEERING_FRACTION*100:.1f}%)"],
    )
    assert 0.2 < frac < 0.55


def test_bgp_coverage(benchmark, bench_study):
    """§7.3: our method recovers ~all BGP-reported peers and finds an
    order of magnitude more that BGP never shows."""
    _runner, result = bench_study

    def stats():
        return (
            len(result.bgp_visible_peers),
            len(result.recovered_bgp_peers),
            len(result.grouping.all_ases()),
        )

    reported, recovered, total = benchmark(stats)
    show(
        "BGP coverage",
        [
            f"BGP-reported Amazon peers: {reported} (paper {paper.BGP_REPORTED_PEERINGS})",
            f"recovered by our method: {recovered} "
            f"({recovered/max(reported,1)*100:.0f}%; paper {paper.BGP_RECOVERY_FRACTION*100:.0f}%)",
            f"total inferred peers: {total} (paper 3,300 unique peerings)",
        ],
    )
    assert recovered / max(reported, 1) > 0.8
    assert total > reported * 5
