"""Benchmark: Figure 6 -- per-group feature boxplots (§7.3).

The paper reads peering *purpose* off six per-group distributions.  The
assertions here encode its qualitative findings: transit groups have the
big customer cones and CBI counts; virtual groups show the largest RTT
differences (enterprises hauled in over layer-2); transit peers span the
most metros.
"""

from repro.analysis import figures, paper_values as paper
from repro.world.profiles import (
    PB_B,
    PB_NB,
    PR_B_NV,
    PR_B_V,
    PR_NB_NV,
    PR_NB_V,
)
from conftest import show


def test_fig6_group_features(benchmark, bench_study):
    runner, result = bench_study
    feats = benchmark(figures.fig6_features, result, runner.relationships)

    lines = [f"{'group':>10} {'cone med':>9} {'reach med':>10} {'CBIs med':>9} "
             f"{'RTTdiff med':>12} {'metros med':>11}"]
    for group in (PB_NB, PB_B, PR_NB_V, PR_NB_NV, PR_B_NV, PR_B_V):
        f = feats[group]
        lines.append(
            f"{group:>10} {f['bgp_slash24'].median:>9.0f} "
            f"{f['reachable_slash24'].median:>10.0f} {f['cbis'].median:>9.0f} "
            f"{f['rtt_diff'].median:>12.2f} {f['metros'].median:>11.0f}"
        )
    lines.append("paper cone medians: Pb-nB ~4, Pb-B ~200, Pr-B-nV ~20k")
    show("Fig 6: per-group features", lines)

    # Row 1: customer cones -- tier-1 (Pr-B-nV) >> tier-2 (Pb-B) >> edge (Pb-nB).
    assert feats[PR_B_NV]["bgp_slash24"].median > feats[PB_B]["bgp_slash24"].median
    assert feats[PB_B]["bgp_slash24"].median > feats[PB_NB]["bgp_slash24"].median
    # Row 4: CBIs per AS -- transit groups dominate public ones.
    assert feats[PR_B_NV]["cbis"].median > feats[PB_NB]["cbis"].median
    # Row 5: virtual groups have the larger RTT differences (remote L2 hauls).
    virtual_med = max(
        feats[PR_NB_V]["rtt_diff"].median, feats[PR_B_V]["rtt_diff"].median
    )
    assert virtual_med >= feats[PB_NB]["rtt_diff"].median * 0.5
    # Row 6: transit peers are pinned at the most metros.
    assert (
        feats[PR_B_NV]["metros"].median >= feats[PB_NB]["metros"].median
    )


def test_fig6_reachable_vs_cone(bench_study):
    """Comparing reachable /24s with the BGP cone separates 'own traffic'
    peerings from 'customer transit' peerings (§7.3)."""
    runner, result = bench_study
    feats = figures.fig6_features(result, runner.relationships)
    # Tier-1 transit: huge cone, and many /24s actually reached through it.
    tier1 = feats[PR_B_NV]
    edge = feats[PB_NB]
    show(
        "reachable vs cone",
        [
            f"Pr-B-nV: cone median {tier1['bgp_slash24'].median:.0f}, "
            f"reachable median {tier1['reachable_slash24'].median:.0f}",
            f"Pb-nB: cone median {edge['bgp_slash24'].median:.0f}, "
            f"reachable median {edge['reachable_slash24'].median:.0f}",
        ],
    )
    assert tier1["reachable_slash24"].median >= edge["reachable_slash24"].median
