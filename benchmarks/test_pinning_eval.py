"""Benchmark: §6.2 -- cross-validated pinning precision/recall, plus the
ground-truth accuracy check the paper could not run."""

from repro.analysis import paper_values as paper
from repro.core.evaluation import evaluate_study
from conftest import show


def test_crossval_precision_recall(benchmark, bench_study):
    """§6.2: stratified 10-fold 70/30 validation.  Paper: precision
    99.34% (the conservative propagation), recall 57.21% (anchor-poor
    metros stay unpinned)."""
    _runner, result = bench_study

    def stats():
        cv = result.crossval
        return cv.mean_precision, cv.mean_recall, cv.std_precision, cv.std_recall

    precision, recall, std_p, std_r = benchmark(stats)
    show(
        "6.2: pinning cross-validation",
        [
            f"precision: {precision*100:.2f}% +- {std_p*100:.2f} "
            f"(paper {paper.PINNING_PRECISION*100:.2f}%)",
            f"recall: {recall*100:.2f}% +- {std_r*100:.2f} "
            f"(paper {paper.PINNING_RECALL*100:.2f}%)",
            f"folds: {len(result.crossval.folds)}",
        ],
    )
    # The paper's signature: precision near-perfect, recall clearly lower.
    assert precision > 0.93
    assert recall < 0.999
    assert precision > recall


def test_ground_truth_pinning_accuracy(benchmark, bench_study):
    """With ground truth available, measure what CV cannot: pins on
    remote-peering interfaces land at the fabric metro, not the router's
    true location, so true accuracy trails CV precision."""
    runner, result = bench_study
    ev = benchmark.pedantic(
        evaluate_study, args=(runner.world, result), rounds=1, iterations=1
    )
    show(
        "ground-truth pinning accuracy",
        [
            f"pins evaluated: {ev.pinning.evaluated}",
            f"accuracy: {ev.pinning.accuracy*100:.1f}%",
            f"CV precision for comparison: {result.crossval.mean_precision*100:.1f}%",
            "finding: anchor-based validation overestimates accuracy -- the",
            "paper's conservative claim ('lower bounds') is warranted.",
        ],
    )
    assert ev.pinning.accuracy > 0.6
    assert ev.pinning.accuracy <= result.crossval.mean_precision + 0.02


def test_border_inference_ground_truth(bench_study):
    runner, result = bench_study
    ev = evaluate_study(runner.world, result)
    show(
        "ground-truth border inference",
        [
            f"ABI precision {ev.borders.abi_precision*100:.1f}% / recall {ev.borders.abi_recall*100:.1f}%",
            f"CBI precision {ev.borders.cbi_precision*100:.1f}% / recall {ev.borders.cbi_recall*100:.1f}%",
            f"CBI near-misses (client loopbacks/internal): {ev.borders.cbi_near_misses}",
            f"unobserved interconnections: {ev.unobserved_interconnections} "
            f"(of which {ev.private_vpi_interconnections} private-address VPIs)",
        ],
    )
    assert ev.borders.abi_precision > 0.9
    assert ev.borders.cbi_precision > 0.9
    assert ev.borders.cbi_recall > 0.6
