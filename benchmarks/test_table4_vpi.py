"""Benchmark: Table 4 -- VPIs visible from other clouds (§7.1).

Checks the paper's ordering (Microsoft >> Google > IBM > Oracle = 0),
the ~20% cumulative share of Amazon's CBIs, and the lower-bound property
against ground truth.
"""

from repro.analysis import paper_values as paper, tables
from repro.core.evaluation import evaluate_study
from conftest import show


def test_table4_vpi_overlaps(benchmark, bench_study):
    _runner, result = bench_study
    rows = benchmark(tables.table4, result)
    by_cloud = {r.cloud: r for r in rows}

    lines = [f"{'cloud':>10} {'pairwise':>14} {'cumulative':>14} {'paper pair/cumul':>18}"]
    for row in rows:
        p_pair = paper.TABLE4_PAIRWISE[row.cloud][1] * 100
        p_cum = paper.TABLE4_CUMULATIVE[row.cloud][1] * 100
        lines.append(
            f"{row.cloud:>10} {row.pairwise:>6} ({row.pairwise_pct:5.2f}%) "
            f"{row.cumulative:>6} ({row.cumulative_pct:5.2f}%) "
            f"{p_pair:>8.2f}/{p_cum:.2f}%"
        )
    show("Table 4: multi-cloud VPI overlaps", lines)

    # Ordering: Microsoft dominates; Oracle is empty.
    assert by_cloud["microsoft"].pairwise > by_cloud["google"].pairwise
    assert by_cloud["google"].pairwise >= by_cloud["ibm"].pairwise
    assert by_cloud["oracle"].pairwise == 0
    # Cumulative share in the paper's ballpark (~20% of CBIs).
    assert 5 < by_cloud["oracle"].cumulative_pct < 35
    # Cumulative column monotone.
    cums = [by_cloud[c].cumulative for c in ("microsoft", "google", "ibm", "oracle")]
    assert cums == sorted(cums)


def test_vpi_lower_bound_against_ground_truth(bench_study):
    """The method never overcounts VPIs and visibly undercounts them --
    the paper's central caveat, made checkable by the simulator."""
    runner, result = bench_study
    ev = evaluate_study(runner.world, result)
    show(
        "VPI lower bound vs. ground truth",
        [
            f"true VPI ports: {ev.vpi.true_vpi_cbis}",
            f"detectable (multi-cloud shared): {ev.vpi.detectable_vpi_cbis}",
            f"detected: {ev.vpi.detected} (true positives {ev.vpi.detected_true})",
            f"precision: {ev.vpi.precision*100:.1f}%",
            f"recall of detectable: {ev.vpi.recall_of_detectable*100:.0f}%",
            f"lower-bound tightness: {ev.vpi.lower_bound_tightness*100:.0f}%",
        ],
    )
    assert ev.vpi.precision > 0.9
    assert ev.vpi.detected_true <= ev.vpi.true_vpi_cbis
    assert ev.vpi.lower_bound_tightness < 1.0  # genuinely a lower bound
