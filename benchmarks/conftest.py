"""Benchmark fixtures: one full study per session, shared by every bench.

The heavy lifting (the probing campaigns) happens once in a session-scoped
fixture; each benchmark then times the *analysis* that regenerates its
table or figure, asserts the paper's shape, and prints the side-by-side
numbers.

Environment knobs:

* ``REPRO_BENCH_SCALE``  -- world scale (default 0.1, the paper's 1/10)
* ``REPRO_BENCH_SEED``   -- seed (default 7)
* ``REPRO_BENCH_STRIDE`` -- expansion probing stride (default 4; 1 is the
  paper-exact exhaustive /24 expansion, ~4x slower)
"""

from __future__ import annotations

import os

import pytest

from repro.bdrmap import BdrmapEngine
from repro.core.pipeline import AmazonPeeringStudy
from repro.world.build import WorldConfig, build_world

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
BENCH_STRIDE = int(os.environ.get("REPRO_BENCH_STRIDE", "4"))


@pytest.fixture(scope="session")
def bench_world():
    return build_world(WorldConfig(scale=BENCH_SCALE, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_study(bench_world):
    """(study runner, result) for the full pipeline at benchmark scale."""
    runner = AmazonPeeringStudy(
        bench_world,
        seed=BENCH_SEED,
        expansion_stride=BENCH_STRIDE,
        crossval_folds=10,
    )
    result = runner.run()
    return runner, result


@pytest.fixture(scope="session")
def bench_bdrmap(bench_study):
    runner, _result = bench_study
    engine = BdrmapEngine(
        runner.world, runner.bgp_r2, runner.relationships, runner.engine
    )
    return engine.run_all()


def show(title: str, lines) -> None:
    """Uniform paper-vs-measured output for bench logs.

    Written to the real stdout so the comparison survives pytest's
    capture and lands in ``bench_output.txt``.
    """
    import sys

    out = sys.__stdout__
    out.write(f"\n--- {title} " + "-" * max(0, 60 - len(title)) + "\n")
    for line in lines:
        out.write(f"{line}\n")
    out.flush()
