"""Benchmark: Figures 4a/4b -- min-RTT distributions and their 2 ms knees."""

from repro.analysis import figures, paper_values as paper
from conftest import show


def test_fig4a_abi_min_rtt(benchmark, bench_study):
    """Fig. 4a: CDF of min-RTT from the closest region to each ABI.

    Paper: a clear knee at 2 ms with ~40% of ABIs below it (those at
    native colos in region metros)."""
    _runner, result = bench_study
    series = benchmark(figures.fig4a_series, result)
    under = figures.fraction_below(series, paper.FIG4A_KNEE_MS)
    under10 = figures.fraction_below(series, 10.0)

    show(
        "Fig 4a: min-RTT to ABIs",
        [
            f"ABIs measured: {len(series)}",
            f"under 2 ms: {under*100:.0f}% (paper ~{paper.FIG4A_FRACTION_UNDER_KNEE*100:.0f}%)",
            f"under 10 ms: {under10*100:.0f}%",
            f"max: {max(series):.1f} ms (paper tail reaches ~25 ms)",
        ],
    )
    assert series
    # The knee exists: a sizable cluster below 2 ms, but far from all.
    assert 0.2 < under < 0.75
    # The distribution has a long tail past the knee.
    assert max(series) > 5.0
    # And it is bimodal-ish: the mass right above the knee is thinner
    # than the mass below it (the native-colo cluster).
    between = figures.fraction_below(series, 4.0) - under
    assert between < under


def test_fig4b_segment_rtt_diff(benchmark, bench_study):
    """Fig. 4b: CDF of min-RTT difference between segment ends.

    Paper: knee at 2 ms, with about half the segments below it (both
    ends in one metro) -- this threshold drives co-presence Rule 2."""
    _runner, result = bench_study
    series = benchmark(figures.fig4b_series, result)
    under = figures.fraction_below(series, paper.FIG4B_KNEE_MS)

    show(
        "Fig 4b: segment RTT differences",
        [
            f"segments measured: {len(series)}",
            f"under 2 ms: {under*100:.0f}% (paper ~{paper.FIG4B_FRACTION_UNDER_KNEE*100:.0f}%)",
            f"max: {max(series):.1f} ms (paper tail ~40 ms)",
        ],
    )
    assert series
    assert 0.25 < under < 0.75
    assert max(series) > 5.0


def test_fig4_cdf_wellformed(bench_study):
    _runner, result = bench_study
    for series in (figures.fig4a_series(result), figures.fig4b_series(result)):
        points = figures.cdf_points(series)
        fracs = [f for _v, f in points]
        assert fracs == sorted(fracs)
        assert abs(points[-1][1] - 1.0) < 1e-9
