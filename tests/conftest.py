"""Shared fixtures: small deterministic worlds and a full study run.

The session-scoped fixtures are built once; individual tests must treat
them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import AmazonPeeringStudy
from repro.world.build import WorldConfig, build_world


@pytest.fixture(scope="session")
def tiny_world():
    """~35 peer ASes; fast enough for per-test routing checks."""
    return build_world(WorldConfig(scale=0.01, seed=11))


@pytest.fixture(scope="session")
def small_world():
    """~70 peer ASes; the world behind the full-study fixture."""
    return build_world(WorldConfig(scale=0.02, seed=3))


@pytest.fixture(scope="session")
def study(small_world):
    """A completed end-to-end study (study object + result)."""
    runner = AmazonPeeringStudy(
        small_world, seed=3, expansion_stride=8, crossval_folds=2
    )
    result = runner.run()
    return runner, result


@pytest.fixture(scope="session")
def study_result(study):
    return study[1]
