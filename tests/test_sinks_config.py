"""ProbeSink protocol, sink composition, and the StudyConfig redesign."""

import dataclasses

import pytest

from repro.core.borders import BorderObservatory
from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.measure.campaign import CampaignStats, CloudMembership
from repro.measure.sink import (
    CallbackEvents,
    CollectorSink,
    EventSink,
    FanoutEvents,
    ProbeSink,
    ProbeSinkEvents,
    StatsSink,
    as_event_sink,
    close_sink,
)
from repro.measure.traceroute import StopReason, TraceHop, Traceroute


def _trace(region="use1", dst=0x0B000001, completed=True):
    return Traceroute(
        cloud="amazon",
        region=region,
        dst=dst,
        hops=[TraceHop(ttl=1, ip=0x0A000001, rtt_ms=1.0)],
        stop_reason=StopReason.COMPLETED if completed else StopReason.GAP_LIMIT,
    )


class TestAsEventSink:
    def test_wraps_callable(self):
        seen = []
        sink = as_event_sink(seen.append)
        assert isinstance(sink, CallbackEvents)
        sink.on_probe(_trace())
        assert len(seen) == 1

    def test_wraps_probe_sink(self):
        collector = CollectorSink()
        sink = as_event_sink(collector)
        assert isinstance(sink, ProbeSinkEvents)
        sink.on_probe(_trace())
        assert len(collector.traces) == 1

    def test_passes_event_sinks_through(self):
        sink = FanoutEvents()
        assert as_event_sink(sink) is sink

    def test_rejects_non_sink(self):
        with pytest.raises(TypeError):
            as_event_sink(42)

    def test_deprecated_shims_are_gone(self):
        import repro.measure.sink as sink_mod

        for name in ("as_sink", "FanoutSink", "CallbackSink"):
            assert not hasattr(sink_mod, name)

    def test_observatory_is_a_probe_sink(self):
        # Structural conformance is all that matters for the executor.
        assert hasattr(BorderObservatory, "consume")
        assert callable(BorderObservatory.consume)

    def test_protocol_runtime_checkable(self):
        assert isinstance(CollectorSink(), ProbeSink)
        assert not isinstance(object(), ProbeSink)


class TestFanout:
    def test_fanout_delivers_in_order(self):
        order = []
        fan = FanoutEvents(
            lambda t: order.append("a"),
            lambda t: order.append("b"),
        )
        fan.on_probe(_trace())
        fan.on_probe(_trace())
        assert order == ["a", "b", "a", "b"]

    def test_fanout_close_propagates(self):
        class Closeable:
            closed = False

            def consume(self, trace):
                pass

            def close(self):
                self.closed = True

        closeable = Closeable()
        fan = FanoutEvents(closeable, lambda t: None)
        fan.close()
        assert closeable.closed

    def test_fanout_drops_none_entries(self):
        fan = FanoutEvents(None, CollectorSink(), None)
        assert len(fan.sinks) == 1

    def test_fanout_is_an_event_sink(self):
        assert isinstance(FanoutEvents(), EventSink)

    def test_close_sink_tolerates_closeless_sinks(self):
        close_sink(CollectorSink())  # no close(): must be a no-op


class TestStatsSink:
    def test_records_with_membership(self, tiny_world):
        stats = CampaignStats()
        membership = CloudMembership(tiny_world, "amazon")
        sink = StatsSink(stats, membership.left_cloud)
        sink.consume(_trace(completed=True))
        sink.consume(_trace(completed=False))
        assert stats.probes == 2
        assert stats.completed == 1
        assert stats.gap_limited == 1

    def test_default_counts_nothing_as_left(self):
        stats = CampaignStats()
        StatsSink(stats).consume(_trace())
        assert stats.left_cloud == 0


class TestStudyConfig:
    def test_frozen(self):
        config = StudyConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.workers = 8

    def test_defaults(self):
        config = StudyConfig()
        assert config.workers == 1
        assert config.run_vpi and config.run_crossval
        assert config.scale is None

    def test_replace(self):
        config = StudyConfig(seed=5).replace(workers=4)
        assert (config.seed, config.workers) == (5, 4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"expansion_stride": 0},
            {"crossval_folds": 1},
            {"workers": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StudyConfig(**kwargs)

    def test_as_dict_round_trips(self):
        config = StudyConfig(seed=9, workers=3)
        assert StudyConfig(**config.as_dict()) == config


class TestLegacyKwargsShim:
    def test_loose_kwargs_warn_and_apply(self, tiny_world):
        with pytest.warns(DeprecationWarning):
            study = AmazonPeeringStudy(
                tiny_world, seed=5, expansion_stride=4, run_vpi=False
            )
        assert study.config == StudyConfig(
            seed=5, expansion_stride=4, run_vpi=False
        )
        assert study.seed == 5
        assert study.expansion_stride == 4

    def test_positional_seed_still_works(self, tiny_world):
        with pytest.warns(DeprecationWarning):
            study = AmazonPeeringStudy(tiny_world, 5)
        assert study.config.seed == 5

    def test_config_object_does_not_warn(self, tiny_world, recwarn):
        study = AmazonPeeringStudy(tiny_world, StudyConfig(seed=2))
        assert study.config.seed == 2
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_unknown_kwarg_rejected(self, tiny_world):
        with pytest.raises(TypeError):
            AmazonPeeringStudy(tiny_world, frobnicate=True)


# ----------------------------------------------------------------------
# The unified EventSink surface (PR 6).
# ----------------------------------------------------------------------

from repro.measure.metrics import CampaignProgress, ShardTiming  # noqa: E402
from repro.measure.sink import (  # noqa: E402
    CallbackEvents,
    EventSink,
    FanoutEvents,
    ProbeSinkEvents,
    ProgressCallbackEvents,
    as_event_sink,
)
from repro.obs.span import SpanRecord  # noqa: E402


def _span_record(name="campaign:round1", category="campaign", **counters):
    return SpanRecord(
        span_id=1,
        parent_id=None,
        name=name,
        category=category,
        start=0.0,
        duration=2.0,
        counters=tuple(sorted((k, float(v)) for k, v in counters.items())),
    )


class TestEventSink:
    def test_base_handlers_are_noops(self):
        sink = EventSink()
        sink.on_probe(_trace())
        sink.on_shard_merged(CampaignProgress(label="x"), None)
        sink.on_span_closed(_span_record())
        sink.close()

    def test_as_event_sink_coercions(self):
        events = EventSink()
        assert as_event_sink(events) is events
        collector = CollectorSink()
        wrapped = as_event_sink(collector)
        assert isinstance(wrapped, ProbeSinkEvents)
        wrapped.on_probe(_trace())
        assert len(collector.traces) == 1
        seen = []
        as_event_sink(seen.append).on_probe(_trace())
        assert len(seen) == 1
        with pytest.raises(TypeError):
            as_event_sink(42)

    def test_as_event_sink_does_not_warn(self, recwarn):
        as_event_sink(CollectorSink())
        as_event_sink(lambda t: None)
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_probe_sink_events_close_propagates(self):
        class Closeable:
            closed = False

            def consume(self, trace):
                pass

            def close(self):
                self.closed = True

        closeable = Closeable()
        ProbeSinkEvents(closeable).close()
        assert closeable.closed

    def test_progress_callback_adapter(self):
        calls = []
        sink = ProgressCallbackEvents(lambda p, t: calls.append((p, t)))
        progress = CampaignProgress(label="round1")
        timing = ShardTiming(index=0, region="use1", probes=4, seconds=0.1)
        sink.on_shard_merged(progress, timing)
        sink.on_probe(_trace())  # not its event; must be ignored
        assert calls == [(progress, timing)]

    def test_fanout_events_drops_none_and_fans_out(self):
        order = []

        class Spy(EventSink):
            def __init__(self, tag):
                self.tag = tag

            def on_probe(self, trace):
                order.append(("probe", self.tag))

            def on_span_closed(self, record):
                order.append(("span", self.tag))

            def close(self):
                order.append(("close", self.tag))

        fan = FanoutEvents(Spy("a"), None, Spy("b"), lambda t: order.append(("cb", "c")))
        assert len(fan.sinks) == 3
        fan.on_probe(_trace())
        fan.on_span_closed(_span_record())
        fan.on_shard_merged(CampaignProgress(label="x"), None)
        fan.close()
        assert order == [
            ("probe", "a"), ("probe", "b"), ("cb", "c"),
            ("span", "a"), ("span", "b"),
            ("close", "a"), ("close", "b"),
        ]

    def test_callback_events_forwards(self):
        seen = []
        CallbackEvents(seen.append).on_probe(_trace())
        assert len(seen) == 1


class TestProgressPrinter:
    """The --progress printer: throttling plus the guaranteed final line."""

    def _printer(self, min_interval):
        from repro.cli import _ProgressPrinter

        return _ProgressPrinter(min_interval=min_interval)

    def _progress(self, probes, expected=100):
        p = CampaignProgress(label="round1", workers=2)
        p.start(expected_probes=expected, shards=10, workers=2)
        p.probes = probes
        return p

    def test_throttle_swallows_intermediate_lines(self, capsys):
        printer = self._printer(min_interval=3600.0)
        printer.on_shard_merged(self._progress(10), None)   # first: printed
        printer.on_shard_merged(self._progress(20), None)   # throttled
        printer.on_shard_merged(self._progress(30), None)   # throttled
        err = capsys.readouterr().err
        assert "10/100" in err
        assert "20/100" not in err and "30/100" not in err

    def test_campaign_close_always_flushes_final_state(self, capsys):
        # The historical bug: with every trailing shard line throttled
        # away (or the final shard quarantined, so on_shard_merged never
        # fires at 100%), the user's last line understated the campaign.
        printer = self._printer(min_interval=3600.0)
        printer.on_shard_merged(self._progress(10), None)
        printer.on_shard_merged(self._progress(90), None)   # throttled
        printer.on_span_closed(
            _span_record(
                probes=90, expected=100, lost=10, workers=2, retries=3,
            )
        )
        err = capsys.readouterr().err
        assert "90/100" in err
        assert "10 probe(s) lost to quarantine" in err

    def test_final_flush_dedupes_when_merge_already_printed(self, capsys):
        printer = self._printer(min_interval=0.0)
        done = self._progress(100)
        printer.on_shard_merged(done, None)
        printer.on_span_closed(
            _span_record(probes=100, expected=100, workers=2)
        )
        err = capsys.readouterr().err
        assert err.count("100/100") == 1

    def test_non_campaign_spans_are_ignored(self, capsys):
        printer = self._printer(min_interval=0.0)
        printer.on_span_closed(_span_record(name="shard:3", category="shard"))
        assert capsys.readouterr().err == ""


# ----------------------------------------------------------------------
# TOML config files and plan spec round-trips (PR 6).
# ----------------------------------------------------------------------

from repro.core import config as config_mod  # noqa: E402
from repro.datasets.datafaults import DataFaultPlan  # noqa: E402
from repro.measure.faults import FaultPlan  # noqa: E402

needs_tomllib = pytest.mark.skipif(
    config_mod.tomllib is None, reason="stdlib tomllib unavailable (< 3.11)"
)


def _full_config():
    return StudyConfig(
        scale=0.02,
        seed=9,
        expansion_stride=8,
        crossval_folds=4,
        run_vpi=False,
        workers=3,
        fault_plan=FaultPlan(
            seed=2,
            crash_rate=0.25,
            crash_attempts=2,
            slow_rate=0.1,
            slow_seconds=0.5,
            poison_shards=(3, 7),
            region_loss={"use1": 0.05, "euw1": 0.1},
            rate_limit_rate=0.2,
            rate_limit_window=5,
        ),
        shard_timeout=2.5,
        max_retries=1,
        retry_backoff_s=0.01,
        deadline_s=120.0,
        retry_budget=10,
        hung_shard_after_s=30.0,
        data_fault_plan=DataFaultPlan(seed=3, bgp_stale_rate=0.1, whois_gap_rate=0.2),
        min_confidence=0.4,
        trace=True,
        trace_out="trace.json",
    )


class TestPlanSpecs:
    def test_fault_plan_spec_round_trips(self):
        plan = _full_config().fault_plan
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_default_fault_plan_spec_round_trips(self):
        assert FaultPlan.parse(FaultPlan().to_spec()) == FaultPlan()

    def test_data_fault_plan_spec_round_trips(self):
        plan = _full_config().data_fault_plan
        assert DataFaultPlan.parse(plan.to_spec()) == plan
        assert DataFaultPlan.parse(DataFaultPlan().to_spec()) == DataFaultPlan()


class TestTomlConfig:
    @needs_tomllib
    def test_round_trip_every_field(self):
        config = _full_config()
        assert StudyConfig.from_toml(config.to_toml()) == config

    @needs_tomllib
    def test_round_trip_defaults(self):
        config = StudyConfig()
        assert StudyConfig.from_toml(config.to_toml()) == config

    @needs_tomllib
    def test_from_file(self, tmp_path):
        path = tmp_path / "study.toml"
        path.write_text(_full_config().to_toml())
        assert StudyConfig.from_file(path) == _full_config()

    @needs_tomllib
    def test_unknown_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown config key"):
            StudyConfig.from_toml("wrokers = 4\n")

    @needs_tomllib
    def test_invalid_value_propagates(self):
        with pytest.raises(ValueError):
            StudyConfig.from_toml("workers = 0\n")

    def test_from_mapping_parses_plan_specs(self):
        config = StudyConfig.from_mapping(
            {"fault_plan": "crash=0.5,seed=4", "data_fault_plan": "moas=0.1,seed=2"}
        )
        assert config.fault_plan == FaultPlan(seed=4, crash_rate=0.5)
        assert config.data_fault_plan == DataFaultPlan(seed=2, moas_rate=0.1)

    def test_from_mapping_accepts_plan_objects(self):
        plan = FaultPlan(seed=1, crash_rate=0.1)
        assert StudyConfig.from_mapping({"fault_plan": plan}).fault_plan is plan


class TestConfigFlagPrecedence:
    """`--config study.toml` with explicit CLI flags as overrides."""

    @needs_tomllib
    def test_file_sets_defaults_and_flags_override(self, tmp_path):
        from repro.cli import _config_defaults, build_parser

        config = _full_config()
        parser = build_parser()
        parser.set_defaults(**_config_defaults(config))
        args = parser.parse_args(["--seed", "99", "--workers", "1"])
        # Typed flags win...
        assert args.seed == 99
        assert args.workers == 1
        # ...everything else inherits from the file.
        assert args.scale == 0.02
        assert args.expansion_stride == 8
        assert args.skip_vpi is True
        assert args.skip_crossval is False
        assert args.max_retries == 1
        assert args.shard_timeout == 2.5
        assert args.min_confidence == 0.4
        assert args.trace is True
        assert args.trace_out == "trace.json"
        # Fault plans travel as their canonical spec strings.
        assert FaultPlan.parse(args.fault_plan) == config.fault_plan
        assert (
            DataFaultPlan.parse(args.data_fault_plan) == config.data_fault_plan
        )

    @needs_tomllib
    def test_cli_errors_on_bad_config_file(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "study.toml"
        path.write_text("wrokers = 4\n")
        with pytest.raises(SystemExit):
            cli_main(["--config", str(path)])
        assert "unknown config key" in capsys.readouterr().err
