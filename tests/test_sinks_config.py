"""ProbeSink protocol, sink composition, and the StudyConfig redesign."""

import dataclasses

import pytest

from repro.core.borders import BorderObservatory
from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.measure.campaign import CampaignStats, CloudMembership
from repro.measure.sink import (
    CallbackSink,
    CollectorSink,
    FanoutSink,
    ProbeSink,
    StatsSink,
    as_sink,
    close_sink,
)
from repro.measure.traceroute import StopReason, TraceHop, Traceroute


def _trace(region="use1", dst=0x0B000001, completed=True):
    return Traceroute(
        cloud="amazon",
        region=region,
        dst=dst,
        hops=[TraceHop(ttl=1, ip=0x0A000001, rtt_ms=1.0)],
        stop_reason=StopReason.COMPLETED if completed else StopReason.GAP_LIMIT,
    )


class TestAsSink:
    def test_wraps_callable(self):
        seen = []
        sink = as_sink(seen.append)
        assert isinstance(sink, CallbackSink)
        sink.consume(_trace())
        assert len(seen) == 1

    def test_passes_sinks_through(self):
        sink = CollectorSink()
        assert as_sink(sink) is sink

    def test_rejects_non_sink(self):
        with pytest.raises(TypeError):
            as_sink(42)

    def test_observatory_is_a_probe_sink(self):
        # Structural conformance is all that matters for the executor.
        assert hasattr(BorderObservatory, "consume")
        assert callable(BorderObservatory.consume)

    def test_protocol_runtime_checkable(self):
        assert isinstance(CollectorSink(), ProbeSink)
        assert isinstance(CallbackSink(lambda t: None), ProbeSink)
        assert not isinstance(object(), ProbeSink)


class TestFanout:
    def test_fanout_delivers_in_order(self):
        order = []
        fan = FanoutSink(
            lambda t: order.append("a"),
            lambda t: order.append("b"),
        )
        fan.consume(_trace())
        fan.consume(_trace())
        assert order == ["a", "b", "a", "b"]

    def test_fanout_close_propagates(self):
        class Closeable:
            closed = False

            def consume(self, trace):
                pass

            def close(self):
                self.closed = True

        closeable = Closeable()
        fan = FanoutSink(closeable, lambda t: None)
        close_sink(fan)
        assert closeable.closed

    def test_close_sink_tolerates_closeless_sinks(self):
        close_sink(CollectorSink())  # no close(): must be a no-op


class TestStatsSink:
    def test_records_with_membership(self, tiny_world):
        stats = CampaignStats()
        membership = CloudMembership(tiny_world, "amazon")
        sink = StatsSink(stats, membership.left_cloud)
        sink.consume(_trace(completed=True))
        sink.consume(_trace(completed=False))
        assert stats.probes == 2
        assert stats.completed == 1
        assert stats.gap_limited == 1

    def test_default_counts_nothing_as_left(self):
        stats = CampaignStats()
        StatsSink(stats).consume(_trace())
        assert stats.left_cloud == 0


class TestStudyConfig:
    def test_frozen(self):
        config = StudyConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.workers = 8

    def test_defaults(self):
        config = StudyConfig()
        assert config.workers == 1
        assert config.run_vpi and config.run_crossval
        assert config.scale is None

    def test_replace(self):
        config = StudyConfig(seed=5).replace(workers=4)
        assert (config.seed, config.workers) == (5, 4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"expansion_stride": 0},
            {"crossval_folds": 1},
            {"workers": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StudyConfig(**kwargs)

    def test_as_dict_round_trips(self):
        config = StudyConfig(seed=9, workers=3)
        assert StudyConfig(**config.as_dict()) == config


class TestLegacyKwargsShim:
    def test_loose_kwargs_warn_and_apply(self, tiny_world):
        with pytest.warns(DeprecationWarning):
            study = AmazonPeeringStudy(
                tiny_world, seed=5, expansion_stride=4, run_vpi=False
            )
        assert study.config == StudyConfig(
            seed=5, expansion_stride=4, run_vpi=False
        )
        assert study.seed == 5
        assert study.expansion_stride == 4

    def test_positional_seed_still_works(self, tiny_world):
        with pytest.warns(DeprecationWarning):
            study = AmazonPeeringStudy(tiny_world, 5)
        assert study.config.seed == 5

    def test_config_object_does_not_warn(self, tiny_world, recwarn):
        study = AmazonPeeringStudy(tiny_world, StudyConfig(seed=2))
        assert study.config.seed == 2
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_unknown_kwarg_rejected(self, tiny_world):
        with pytest.raises(TypeError):
            AmazonPeeringStudy(tiny_world, frobnicate=True)
