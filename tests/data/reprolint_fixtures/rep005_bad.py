"""REP005 fixture: mutable default arguments (4 findings)."""


def list_default(items=[]):
    return items


def dict_default(index={}):
    return index


def kwonly_set_default(*, seen=set()):
    return seen


def call_default(buf=bytearray()):
    return buf
