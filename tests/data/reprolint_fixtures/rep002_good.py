"""REP002 fixture: sorted digest iteration; unsorted off digest paths (0 findings)."""

import hashlib


def digest_inputs(records):
    rows = []
    for rec in sorted({r for r in records}):
        rows.append(rec)
    names = [r.name for r in sorted(records.values())]
    return tuple(sorted(rows)), names


def hashing_sorted(table):
    hasher = hashlib.sha256()
    for key in sorted(table.keys()):
        hasher.update(str(key).encode())
    return hasher.hexdigest()


def plain_aggregation(records):
    # order-insensitive aggregation: unsorted iteration is fine here
    return {r for r in records.values()}
