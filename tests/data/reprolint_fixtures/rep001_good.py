"""REP001 fixture: keyed and caller-owned draws (0 findings)."""

import random


def keyed_uniform(label, seed, *key):
    return random.Random(repr((label, seed) + tuple(key))).random()


def keyed_per_record(seed, members):
    # draw keyed to record identity: order-independent by construction
    return [m for m in members if keyed_uniform("fixture", seed, m) < 0.5]


def draw_from_parameter(rng, n):
    # the caller owns the keying (the net/rng.py helper convention)
    return [rng.random() for _ in range(n)]


def keyed_rng_outside_loop(seed):
    rng = random.Random(repr(("fixture", seed)))
    return rng.random()


def keyed_rng_in_ordered_loop(seed, n):
    rng = random.Random(repr(("fixture", seed)))
    return [rng.random() for _ in range(n)]


def keyed_rng_in_sorted_loop(seed, members):
    out = []
    for member in sorted(members):
        rng = random.Random(repr(("fixture", seed, member)))
        out.append(rng.random())
    return out
