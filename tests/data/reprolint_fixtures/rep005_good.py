"""REP005 fixture: safe defaults (0 findings)."""


def none_default(items=None):
    return list(items or ())


def immutable_defaults(pair=(), label="x", n=0):
    return pair, label, n
