"""Fixture: count-based decisions; clocks feed only timing metrics."""

import time


def should_open(streak: int, threshold: int) -> bool:
    # the adaptive contract: decisions fold from probe counts
    return streak >= threshold


def trials_remaining(budget: int, spent: int) -> int:
    return max(0, budget - spent)


def timed(fn):
    # clocks are fine when they only feed observability output
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    return result, {"seconds": seconds}
