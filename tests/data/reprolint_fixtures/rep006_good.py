"""REP006 fixture: module-level callables only (0 findings)."""

import multiprocessing


def _init_worker():
    pass


def trace_shard(shard):
    return shard


def run_campaign(shards):
    with multiprocessing.Pool(2, initializer=_init_worker) as pool:
        mapped = pool.map(trace_shard, shards)
    return mapped
