"""REP004 fixture: timing observability only (0 findings).

``perf_counter`` / ``monotonic`` / ``sleep`` are exempt by design: they
feed timing metrics, which the digest deliberately excludes.
"""

import time


def timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def backoff(seconds):
    deadline = time.monotonic() + seconds
    time.sleep(seconds)
    return deadline
