"""REP002 fixture: unsorted unordered iteration in digest paths (4 findings)."""

import hashlib


def digest_inputs(records):
    rows = []
    for rec in set(records):
        rows.append(rec)
    names = [r.name for r in records.values()]
    return tuple(set(rows)), names


def innocuous_name(h, table):
    hasher = hashlib.sha256()
    for key in table.keys():
        hasher.update(str(key).encode())
    return hasher.hexdigest()
