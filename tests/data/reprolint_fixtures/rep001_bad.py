"""REP001 fixture: every flavour of order-coupled RNG draw (4 findings)."""

import random


def module_level_draw():
    # the module-level stream is shared by the whole process
    return random.random()


class SharedStream:
    def __init__(self, seed):
        self._rng = random.Random(repr(("fixture", seed)))

    def attribute_draw(self):
        # object-lifetime stream: result depends on prior callers
        return self._rng.choice([1, 2, 3])

    def aliased_draw(self):
        rng = self._rng
        return rng.random()


def keyed_rng_in_unordered_loop(seed, members):
    # the RNG itself is keyed, but drawing inside a loop over an opaque
    # iterable couples the draw sequence to set/dict iteration order
    rng = random.Random(repr(("fixture", seed)))
    out = []
    for member in members:
        if rng.random() < 0.5:
            out.append(member)
    return out
