"""Disable fixture: justified escape hatches suppress findings (0 findings)."""


def same_line(items=[]):  # reprolint: disable=REP005 -- fixture: exercising the same-line hatch
    return items


# reprolint: disable=REP005 -- fixture: a standalone comment covers the next line
def line_above(index={}):
    return index
