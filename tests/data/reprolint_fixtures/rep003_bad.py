"""REP003 fixture: mutable dataclasses in a config module (2 findings)."""

from dataclasses import dataclass


@dataclass
class MutablePlan:
    rate: float = 0.0


@dataclass(order=True)
class OrderedButMutable:
    seed: int = 0
