"""Fixture: clock reads feeding adaptive control decisions (REP008).

Deliberately uses only the monotonic clocks REP004 exempts
(``perf_counter`` / ``monotonic``): REP008 exists precisely because
those are still banned on breaker/governor decision paths.
"""

import time
from time import monotonic


def should_open(failures: int) -> bool:
    # direct clock read inside a branch test
    if time.perf_counter() > 100.0:
        return True
    return failures > 3


def window_expired(started: float) -> bool:
    # tainted name compared: `elapsed` carries the clock read
    elapsed = time.monotonic() - started
    return elapsed > 5.0


def drain_trials(budget: int) -> int:
    # imported-name clock read in a loop test, plus a tainted deadline
    deadline = monotonic() + 1.0
    while monotonic() < deadline:
        budget -= 1
    return budget
