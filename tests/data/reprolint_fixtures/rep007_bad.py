"""REP007 fixtures: broad handlers that swallow failures."""


def swallow_bare(shard):
    try:
        return shard.probe()
    except:  # noqa: E722
        return None


def swallow_exception(shard):
    try:
        return shard.probe()
    except Exception:
        return []


def log_and_continue(shards, log):
    merged = []
    for shard in shards:
        try:
            merged.append(shard.collect())
        except (ValueError, Exception) as exc:
            log.append(str(exc))
    return merged
