"""REP007 clean counterparts: narrow, re-raising, or classifying."""

from repro.errors import DataError, StudyInterrupted, wrap_error


def narrow_handler(shard):
    try:
        return shard.probe()
    except ValueError:
        return None


def reraise(shard):
    try:
        return shard.probe()
    except Exception:
        raise


def classify(shard, failures):
    try:
        return shard.probe()
    except StudyInterrupted:
        raise
    except Exception as exc:
        failures.append(wrap_error(exc))
        return None


def wrap_into_taxonomy(record):
    try:
        return record.decode()
    except Exception as exc:
        raise DataError(f"undecodable record: {exc}") from exc
