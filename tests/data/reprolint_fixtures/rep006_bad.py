"""REP006 fixture: closures crossing the pool boundary (3 findings)."""

import multiprocessing


def run_campaign(shards):
    def trace_shard(shard):
        return [shards, shard]

    with multiprocessing.Pool(2, initializer=lambda: None) as pool:
        mapped = pool.map(lambda s: s, shards)
        handle = pool.apply_async(trace_shard, (shards[0],))
    return mapped, handle
