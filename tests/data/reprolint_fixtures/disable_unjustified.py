"""Disable fixture: a bare disable suppresses nothing (REP000 + REP005)."""


def still_flagged(items=[]):  # reprolint: disable=REP005
    return items
