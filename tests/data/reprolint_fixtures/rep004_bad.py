"""REP004 fixture: wall-clock and environment reads (4 findings)."""

import datetime
import os
import time


def stamp_result(result):
    result["at"] = time.time()
    result["day"] = datetime.datetime.now().isoformat()
    return result


def read_environment():
    region = os.environ["REGION"]
    return region, os.getenv("SEED", "0")
