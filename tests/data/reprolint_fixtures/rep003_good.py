"""REP003 fixture: frozen dataclasses and plain classes (0 findings)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FrozenPlan:
    rate: float = 0.0


class NotADataclass:
    def __init__(self, seed):
        self.seed = seed
