def broken(:
