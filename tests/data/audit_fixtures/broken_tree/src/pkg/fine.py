"""Fixture: a healthy sibling of the broken module."""

OK = True
