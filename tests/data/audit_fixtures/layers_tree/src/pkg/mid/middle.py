"""Fixture: middle layer; the one declared edge (mid -> low)."""

from pkg.low.base import VALUE

MIDDLE = VALUE + 1
