"""Fixture: top layer; a declared edge plus a layer-skipping one."""

from pkg.mid.middle import MIDDLE
from pkg.low.base import VALUE

TOP = MIDDLE + VALUE
