"""Fixture: bottom layer; imports nothing."""

VALUE = 1
