"""Fixture: a forbidden upward edge (low -> high)."""

from pkg.high.top import TOP

UPWARD = TOP
