"""Fixture: the same forbidden edge, justified and not."""

from pkg.high.top import TOP  # reproaudit: allow-edge -- fixture: exercising the justified escape hatch
from pkg.mid.middle import MIDDLE  # reproaudit: allow-edge

EXCUSED = TOP + MIDDLE
