"""Fixture: the other half of the runtime cycle."""

from pkg.a import helper_a


def helper_b():
    return helper_a()
