"""Fixture: half of a runtime import cycle."""

from pkg.b import helper_b


def helper_a():
    return helper_b()
