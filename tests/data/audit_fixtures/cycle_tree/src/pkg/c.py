"""Fixture: couples to a only for annotations -- no runtime cycle."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from pkg.a import helper_a


def helper_c(fn: "helper_a"):
    return fn
