"""The ``repro bench`` harness: schema, compare math, determinism, CLI.

* the ``BENCH_*.json`` schema round-trips and rejects malformed input;
* ``--compare`` delta math: counters and digests gate exactly,
  efficiency gates through the relative threshold (improvements always
  pass), timings never gate; incomparable reports exit 2;
* scenarios are deterministic: identical ``(scenario, params)`` yield
  identical counters, efficiency, and digest -- timings excluded -- and
  the tiny-scale study scenario reproduces the golden-snapshot digest;
* the annotate microbench's counters prove the acceptance criterion:
  the indexed LPM path does >= 2x fewer probes per lookup than the
  retained naive oracle for identical answers;
* the CLI writes reports where asked and returns the contracted exit
  codes (0 ok, 1 regression, 2 mismatch/usage).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.bench import (
    BenchMismatch,
    BenchParams,
    BenchReport,
    SCENARIOS,
    bench_path,
    compare_reports,
    has_regression,
    read_report,
    run_scenario,
    write_report,
)
from repro.bench.cli import main as bench_main

TINY = BenchParams(scale=0.01, seed=11)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_study.json"


@pytest.fixture(scope="module")
def annotate_report():
    return run_scenario("annotate", TINY)


@pytest.fixture(scope="module")
def study_report():
    return run_scenario("study", TINY)


def _report(**overrides):
    base = dict(
        scenario="study",
        params={"scale": 0.01, "seed": 11},
        digest="abc123",
        counters={"probes": 100, "lookups": 40},
        efficiency={"probes_per_lookup": 2.5},
        timings={"total_seconds": 1.5},
    )
    base.update(overrides)
    return BenchReport(**base)


# ----------------------------------------------------------------------
# schema round-trip and validation
# ----------------------------------------------------------------------


def test_report_roundtrips_through_json(annotate_report):
    assert BenchReport.from_json(annotate_report.to_json()) == annotate_report


def test_report_serialization_is_canonical():
    report = _report()
    text = report.to_json()
    assert text == BenchReport.from_json(text).to_json()
    assert text.endswith("\n")
    # sorted keys: a parse-reserialize of shuffled input is identical
    shuffled = json.dumps(json.loads(text), sort_keys=False)
    assert BenchReport.from_json(shuffled).to_json() == text


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.update(schema="repro-bench-v0"), "unsupported bench schema"),
        (lambda d: d.pop("counters"), "missing key"),
        (lambda d: d.update(counters={"x": 1.5}), "must be integers"),
        (lambda d: d.update(counters={"x": True}), "must be integers"),
        (lambda d: d.update(efficiency={"x": "fast"}), "must be numbers"),
        (lambda d: d.update(scenario=""), "non-empty"),
        (lambda d: d.update(timings=[1.0]), "must be an object"),
    ],
)
def test_from_json_rejects_malformed_reports(mutate, message):
    data = json.loads(_report().to_json())
    mutate(data)
    with pytest.raises(ValueError, match=message):
        BenchReport.from_json(json.dumps(data))


def test_from_json_rejects_non_json_and_non_object():
    with pytest.raises(ValueError, match="not valid JSON"):
        BenchReport.from_json("{nope")
    with pytest.raises(ValueError, match="must be a JSON object"):
        BenchReport.from_json("[1, 2]")


def test_bench_path_and_file_roundtrip(tmp_path):
    report = _report()
    assert bench_path("study", tmp_path) == tmp_path / "BENCH_study.json"
    path = write_report(report, tmp_path)
    assert path == tmp_path / "BENCH_study.json"
    assert read_report(path) == report


# ----------------------------------------------------------------------
# compare: delta math and gating
# ----------------------------------------------------------------------


def test_identical_reports_have_no_regression():
    deltas = compare_reports(_report(), _report())
    assert not has_regression(deltas)
    assert {d.section for d in deltas} == {
        "digest", "counter", "efficiency", "timing",
    }


def test_counter_drift_regresses():
    new = _report(counters={"probes": 101, "lookups": 40})
    deltas = compare_reports(_report(), new)
    regressed = [d for d in deltas if d.regressed]
    assert [(d.section, d.key) for d in regressed] == [("counter", "probes")]


def test_counter_key_drift_regresses():
    new = _report(counters={"probes": 100})
    assert has_regression(compare_reports(_report(), new))


def test_digest_drift_regresses():
    deltas = compare_reports(_report(), _report(digest="def456"))
    assert [d.key for d in deltas if d.regressed] == ["digest"]


def test_efficiency_gates_through_threshold():
    old = _report()
    # within 5% headroom: passes
    within = _report(efficiency={"probes_per_lookup": 2.5 * 1.04})
    assert not has_regression(compare_reports(old, within))
    # beyond: regresses
    beyond = _report(efficiency={"probes_per_lookup": 2.5 * 1.06})
    assert has_regression(compare_reports(old, beyond))
    # a tighter threshold flips the verdict
    assert has_regression(compare_reports(old, within, threshold=0.01))
    # improvements always pass
    better = _report(efficiency={"probes_per_lookup": 1.0})
    assert not has_regression(compare_reports(old, better))


def test_timing_drift_never_regresses():
    slower = _report(timings={"total_seconds": 1000.0})
    deltas = compare_reports(_report(), slower)
    assert not has_regression(deltas)


@pytest.mark.parametrize(
    "other, message",
    [
        (_report(scenario="annotate"), "scenario mismatch"),
        (_report(params={"scale": 0.02, "seed": 11}), "params mismatch"),
        (
            dataclasses.replace(_report(), schema="repro-bench-v2"),
            "schema mismatch",
        ),
    ],
)
def test_incomparable_reports_raise(other, message):
    with pytest.raises(BenchMismatch, match=message):
        compare_reports(_report(), other)


# ----------------------------------------------------------------------
# scenario determinism (timings excluded by construction)
# ----------------------------------------------------------------------


def _determinism_key(report):
    return (report.scenario, report.params, report.digest,
            report.counters, report.efficiency)


def test_annotate_scenario_is_deterministic(annotate_report):
    again = run_scenario("annotate", TINY)
    assert _determinism_key(again) == _determinism_key(annotate_report)


def test_study_scenario_is_deterministic(study_report):
    again = run_scenario("study", TINY)
    assert _determinism_key(again) == _determinism_key(study_report)


def test_study_scenario_reproduces_golden_digest(study_report):
    """The bench study workload IS the golden-snapshot workload."""
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    assert (TINY.scale, TINY.seed) == (
        golden["world"]["scale"], golden["world"]["seed"],
    )
    assert study_report.digest == golden["digest"]
    assert study_report.counters["round1_probes"] == (
        golden["summary"]["round1_probes"]
    )
    assert study_report.counters["round2_probes"] == (
        golden["summary"]["round2_probes"]
    )


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown bench scenario"):
        run_scenario("nope")


# ----------------------------------------------------------------------
# the acceptance criterion: the index does >= 2x less probing work
# ----------------------------------------------------------------------


def test_annotate_microbench_halves_probe_work(annotate_report):
    counters = annotate_report.counters
    assert counters["lpm_lookups"] == counters["addresses"] > 0
    assert counters["lpm_probes_indexed"] == counters["lpm_lookups"]
    assert counters["lpm_probes_naive"] >= 2 * counters["lpm_probes_indexed"]
    eff = annotate_report.efficiency
    assert eff["probes_per_lookup_indexed"] == 1.0
    assert eff["lpm_probe_ratio"] <= 0.5
    # the warm pass was pure cache hits
    assert counters["annotation_cache_hits"] == counters["addresses"]
    assert counters["annotation_cache_misses"] == counters["addresses"]


def test_adaptive_scenario_is_inert_on_a_clean_run(study_report):
    """Arming adaptation on a healthy fabric must change nothing."""
    report = run_scenario("adaptive", TINY)
    assert report.params["adaptive"] is True
    assert report.digest == study_report.digest
    assert report.counters["governor_deferred"] == 0
    assert report.counters["recovered_probes"] == 0
    assert report.counters["recovery_still_lost"] == 0
    assert report.counters["breaker_transitions"] == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def test_cli_writes_report_files(tmp_path):
    rc = bench_main([
        "annotate", "--scale", "0.01", "--seed", "11",
        "--out-dir", str(tmp_path),
    ])
    assert rc == 0
    report = read_report(tmp_path / "BENCH_annotate.json")
    assert report.scenario == "annotate"
    assert report.params["scale"] == 0.01


def test_cli_list_and_dispatch(capsys):
    assert bench_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out
    # the main repro CLI dispatches the subcommand
    from repro.cli import main as repro_main

    assert repro_main(["bench", "--list"]) == 0


def test_cli_compare_exit_codes(tmp_path, capsys):
    old = _report()
    write_report(old, tmp_path)
    path_old = tmp_path / "BENCH_study.json"

    # identical -> 0
    assert bench_main(["--compare", str(path_old), str(path_old)]) == 0
    assert "0 regression(s)" in capsys.readouterr().out

    # counter regression -> 1
    worse_dir = tmp_path / "worse"
    worse_dir.mkdir()
    write_report(
        _report(counters={"probes": 150, "lookups": 40}), worse_dir
    )
    rc = bench_main(
        ["--compare", str(path_old), str(worse_dir / "BENCH_study.json")]
    )
    assert rc == 1
    assert "FAIL" in capsys.readouterr().out

    # incomparable (different scenario) -> 2
    write_report(_report(scenario="annotate"), tmp_path)
    rc = bench_main(
        ["--compare", str(path_old), str(tmp_path / "BENCH_annotate.json")]
    )
    assert rc == 2

    # unreadable file -> 2
    assert bench_main(
        ["--compare", str(path_old), str(tmp_path / "missing.json")]
    ) == 2


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit) as exc:
        bench_main(["warp-speed"])
    assert exc.value.code == 2


def test_cli_all_excludes_explicit_names():
    with pytest.raises(SystemExit) as exc:
        bench_main(["--all", "study"])
    assert exc.value.code == 2
