"""Traceroute-engine semantics tests."""

import random

import pytest

from repro.measure.traceroute import GAP_LIMIT, StopReason, TracerouteEngine
from repro.net.ip import parse_ip
from repro.world.build import WorldConfig, build_world
from repro.world.entities import RouterRole


@pytest.fixture(scope="module")
def engine(tiny_world):
    return TracerouteEngine(tiny_world, seed=1)


def _region(world):
    return world.region_names("amazon")[0]


def _responding_route(world):
    for route in world.routes.values():
        if route.egress_by_region and route.dest_response_p > 0:
            return route
    raise AssertionError("no routed /24")


class TestTraceSemantics:
    def test_dead_target_gap_limited(self, tiny_world, engine):
        trace = engine.trace("amazon", _region(tiny_world), parse_ip("11.0.0.1"))
        assert trace.stop_reason == StopReason.GAP_LIMIT
        # Ends with exactly GAP_LIMIT unresponsive slots.
        assert all(h.ip is None for h in trace.hops[-GAP_LIMIT:])

    def test_ttls_strictly_increasing(self, tiny_world, engine):
        route = _responding_route(tiny_world)
        trace = engine.trace("amazon", _region(tiny_world), route.prefix.network + 1)
        ttls = [h.ttl for h in trace.hops]
        assert ttls == sorted(set(ttls))

    def test_rtts_grow_roughly_with_depth(self, tiny_world, engine):
        route = _responding_route(tiny_world)
        region = sorted(route.egress_by_region)[0]
        trace = engine.trace("amazon", region, route.prefix.network + 1)
        rtts = [h.rtt_ms for h in trace.hops if h.rtt_ms is not None]
        assert rtts, "no responsive hops"
        # Jitter aside, the last hop is not closer than a tenth of the max.
        assert rtts[-1] >= max(rtts) * 0.1

    def test_completed_trace_ends_at_destination(self, tiny_world, engine):
        # Find a destination that answers (stable per-destination draw).
        region = _region(tiny_world)
        for route in tiny_world.routes.values():
            if not route.egress_by_region or route.dest_response_p == 0:
                continue
            for offset in range(1, 30):
                dst = route.prefix.network + offset
                trace = engine.trace("amazon", region, dst)
                if trace.completed:
                    assert trace.hops[-1].ip == dst
                    return
        pytest.skip("no completing destination found")

    def test_destination_response_consistent_across_regions(self, tiny_world, engine):
        regions = tiny_world.region_names("amazon")[:4]
        route = _responding_route(tiny_world)
        dst = route.prefix.network + 1
        outcomes = set()
        for region in regions:
            # A destination either answers or not, modulo probe loss; run
            # twice per region to separate loss from policy.
            results = {engine.trace("amazon", region, dst).completed for _ in range(2)}
            outcomes.add(True in results)
        assert len(outcomes) == 1

    def test_responsive_ips_property(self, tiny_world, engine):
        route = _responding_route(tiny_world)
        trace = engine.trace("amazon", _region(tiny_world), route.prefix.network + 1)
        assert trace.responsive_ips == [h.ip for h in trace.hops if h.ip is not None]

    def test_trace_many_streams(self, tiny_world, engine):
        targets = [p.network + 1 for p in tiny_world.sweep_slash24s[:5]]
        traces = list(engine.trace_many("amazon", _region(tiny_world), iter(targets)))
        assert [t.dst for t in traces] == targets


class TestThirdPartyResponders:
    def test_third_party_set_is_deterministic(self, tiny_world):
        a = TracerouteEngine(tiny_world, seed=1)
        b = TracerouteEngine(tiny_world, seed=99)
        # The misbehaving-router set depends on the world, not engine seed.
        assert a._third_party_routers == b._third_party_routers

    def test_third_party_only_client_borders(self, tiny_world):
        engine = TracerouteEngine(tiny_world, seed=1)
        for rid in engine._third_party_routers:
            assert tiny_world.routers[rid].role == RouterRole.CLIENT_BORDER

    def test_third_party_rate_plausible(self, tiny_world):
        engine = TracerouteEngine(tiny_world, seed=1)
        borders = [
            r
            for r in tiny_world.routers.values()
            if r.role == RouterRole.CLIENT_BORDER
        ]
        if len(borders) < 30:
            pytest.skip("too few border routers to check the rate")
        rate = len(engine._third_party_routers) / len(borders)
        assert rate < 0.25

    def test_third_party_router_answers_with_default(self, tiny_world):
        engine = TracerouteEngine(tiny_world, seed=1)
        if not engine._third_party_routers:
            pytest.skip("no third-party routers at this seed")
        rid = next(iter(engine._third_party_routers))
        router = tiny_world.routers[rid]
        incoming = router.interface_ips[-1]
        answered = engine._response_ip(rid, incoming, random.Random(0))
        assert answered == router.interface_ips[0]


class TestLoops:
    def test_loop_rate_controls_duplicates(self):
        world = build_world(WorldConfig(scale=0.01, seed=2, loop_rate=0.5))
        engine = TracerouteEngine(world, seed=5)
        region = world.region_names("amazon")[0]
        route = _responding_route(world)
        dupes = 0
        for offset in range(1, 40):
            trace = engine.trace("amazon", region, route.prefix.network + offset)
            ips = trace.responsive_ips
            if len(ips) != len(set(ips)):
                dupes += 1
        assert dupes > 0

    def test_zero_loop_rate_no_duplicates(self):
        world = build_world(WorldConfig(scale=0.01, seed=2, loop_rate=0.0,
                                        third_party_response_rate=0.0))
        engine = TracerouteEngine(world, seed=5)
        region = world.region_names("amazon")[0]
        for p24 in world.sweep_slash24s[:60]:
            trace = engine.trace("amazon", region, p24.network + 1)
            ips = trace.responsive_ips
            assert len(ips) == len(set(ips))
