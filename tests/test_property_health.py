"""Hypothesis properties for the circuit-breaker health ledger.

These pin the three invariants DESIGN.md 6.6 leans on:

* **Order invariance** -- the ledger folds per-region streams, so any
  interleaving of regions' merge streams that preserves each region's
  own order yields an identical ledger.  This is the property that
  makes merge-time folding worker-count invariant: shards of different
  regions may merge in any relative order without changing a single
  deferral decision.
* **Monotone open threshold** -- lowering ``breaker_threshold`` never
  makes a breaker open *later*; a stricter breaker dominates a looser
  one on the same outcome stream.
* **Half-open accounting** -- trial bookkeeping never goes negative and
  never exceeds its granted budget, no matter how the recovery round
  interleaves trials and resolutions.
"""

from __future__ import annotations

from collections import deque

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.measure.health import (  # noqa: E402
    SILENCED_RUN_FINGERPRINT,
    BreakerState,
    CircuitBreaker,
    HealthLedger,
    ProbeOutcome,
)

REGIONS = ["use1", "usw2", "euw1", "aps1", "sae1"]


def _outcome(region: str, healthy: bool) -> ProbeOutcome:
    return ProbeOutcome(
        region=region,
        completed=healthy,
        silenced_run=0 if healthy else SILENCED_RUN_FINGERPRINT,
    )


def _fold(ledger: HealthLedger, outcome: ProbeOutcome) -> None:
    """Fold with the governor's semantics: an open breaker defers."""
    breaker = ledger.breaker("amazon", outcome.region)
    if breaker.state == BreakerState.OPEN:
        return
    breaker.record(outcome)


streams_st = st.dictionaries(
    st.sampled_from(REGIONS),
    st.lists(st.booleans(), min_size=1, max_size=12),
    min_size=1,
    max_size=4,
)


# --- order invariance --------------------------------------------------


@settings(max_examples=50)
@given(streams=streams_st, threshold=st.integers(1, 4), data=st.data())
def test_ledger_is_invariant_under_region_preserving_interleavings(
    streams, threshold, data
):
    """Same per-region streams, any cross-region interleaving, same ledger."""
    # Reference fold: regions one after another, in sorted order.
    reference = HealthLedger(threshold=threshold)
    for region in sorted(streams):
        for healthy in streams[region]:
            _fold(reference, _outcome(region, healthy))

    # Any permutation of the region-tag multiset is a region-preserving
    # interleaving, as long as each region's own stream is consumed in
    # its original order.
    tags = [region for region in sorted(streams) for _ in streams[region]]
    interleaving = data.draw(st.permutations(tags))
    queues = {region: deque(seq) for region, seq in streams.items()}
    shuffled = HealthLedger(threshold=threshold)
    for region in interleaving:
        _fold(shuffled, _outcome(region, queues[region].popleft()))

    assert shuffled.snapshot() == reference.snapshot()


# --- monotone open threshold -------------------------------------------


@settings(max_examples=50)
@given(
    stream=st.lists(st.booleans(), min_size=1, max_size=30),
    thresholds=st.tuples(st.integers(1, 6), st.integers(1, 6)),
)
def test_lower_threshold_never_opens_later(stream, thresholds):
    strict, loose = min(thresholds), max(thresholds)
    breakers = {
        t: CircuitBreaker("amazon", "use1", threshold=t)
        for t in {strict, loose}
    }
    for healthy in stream:
        for breaker in breakers.values():
            if breaker.state != BreakerState.OPEN:
                breaker.record(_outcome("use1", healthy))

    strict_open_at = breakers[strict].first_open_at
    loose_open_at = breakers[loose].first_open_at
    if loose_open_at >= 0:
        # Whenever the loose breaker opened, the strict one did too,
        # and no later (folded-outcome counts coincide up to the first
        # open, since nothing is deferred before it).
        assert strict_open_at >= 0
        assert strict_open_at <= loose_open_at
    if strict_open_at < 0:
        assert loose_open_at < 0


# --- half-open accounting ----------------------------------------------

op_st = st.sampled_from(["half_open", "trial_ok", "trial_fail", "resolve"])


@settings(max_examples=50)
@given(
    ops=st.lists(op_st, min_size=1, max_size=40),
    budget=st.integers(1, 8),
    threshold=st.integers(1, 4),
)
def test_half_open_accounting_never_goes_negative(ops, budget, threshold):
    breaker = CircuitBreaker("amazon", "use1", threshold=threshold)
    for _ in range(threshold):
        breaker.record(_outcome("use1", healthy=False))
    assert breaker.state == BreakerState.OPEN

    for op in ops:
        try:
            if op == "half_open":
                breaker.half_open(budget)
            elif op == "trial_ok":
                breaker.record_trial(healthy=True)
            elif op == "trial_fail":
                breaker.record_trial(healthy=False)
            else:
                breaker.resolve_trials()
        except ValueError:
            # Illegal sequencing (trial while closed, exhausted budget,
            # half-open of a non-open breaker) raises and changes
            # nothing; the invariants must survive regardless.
            pass
        assert breaker.trials_remaining >= 0
        spent = breaker.trial_successes + breaker.trial_failures
        assert 0 <= spent <= max(breaker.trial_budget, 0)
        assert breaker.failures >= 0
        assert breaker.outcomes >= spent
