"""Stage checkpointing: codec, store, chain, and kill/resume bit-identity.

The contract under test is ISSUE 8's tentpole: a study killed after any
stage and resumed from ``--checkpoint-dir`` reproduces the uninterrupted
run's ``StudyResult.digest()`` bit-for-bit, without re-executing the
stages that already completed.
"""

import json
from collections import Counter

import pytest

from repro.core.borders import SegmentRecord
from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.core.stages import (
    STAGE_ORDER,
    StageChain,
    StageStore,
    decode,
    encode,
    payload_digest,
    study_fingerprint,
)
from repro.errors import DataError, StudyInterrupted
from repro.measure.campaign import CampaignStats
from repro.measure.supervise import StudySupervisor


def _config(**overrides):
    # adaptive=True enables every stage in STAGE_ORDER (including
    # "recovery") so the kill/resume matrix covers the whole graph; on
    # a clean plan the control plane is digest-inert (tests/
    # test_adaptive.py pins that), so the bit-identity contract is
    # unchanged.
    base = dict(seed=3, expansion_stride=8, crossval_folds=2, adaptive=True)
    base.update(overrides)
    return StudyConfig(**base)


@pytest.fixture(scope="module")
def clean_result(tiny_world):
    return AmazonPeeringStudy(tiny_world, config=_config()).run()


@pytest.fixture(scope="module")
def clean_digest(clean_result):
    return clean_result.digest()


# --- codec -------------------------------------------------------------


class TestCodec:
    def test_scalars_round_trip(self):
        for value in (None, True, False, 0, -3, 1.5, "abi", ""):
            assert decode(encode(value)) == value

    def test_containers_round_trip(self):
        value = {
            "list": [1, 2, 3],
            "tuple": (1, "a", (2, 3)),
            "set": {3, 1, 2},
            "frozenset": frozenset({"b", "a"}),
            "counter": Counter({"x": 2, "y": 1}),
            "tuple_keyed": {(167772161, 167772162): 0.5},
        }
        assert decode(encode(value)) == value

    def test_set_encoding_is_sorted(self):
        encoded = encode({3, 1, 2})
        assert encoded == {"__s__": [1, 2, 3]}

    def test_dict_and_counter_keep_insertion_order(self):
        # The pipeline's dict order is itself deterministic; the codec
        # must preserve it so resumed iteration matches the live run.
        d = {"b": 1, "a": 2}
        assert list(decode(encode(d))) == ["b", "a"]
        c = Counter()
        c["z"] = 1
        c["a"] = 2
        assert list(decode(encode(c))) == ["z", "a"]

    def test_registered_dataclasses_round_trip(self):
        stats = CampaignStats(probes=7, completed=5, by_region={"use1": 7})
        segment = SegmentRecord(
            abi=167772161,
            cbi=167772162,
            count=3,
            regions={"use1"},
            prev_ips=Counter({167772160: 3}),
            dst_slash24s={1},
            dst_sample={167772200},
        )
        payload = {"stats": stats, "segments": {(1, 2): segment}}
        assert decode(encode(payload)) == payload

    def test_unregistered_type_is_a_data_error(self):
        class NotRegistered:
            pass

        with pytest.raises(DataError):
            encode({"x": NotRegistered()})

    def test_unknown_tag_is_a_data_error(self):
        with pytest.raises(DataError):
            decode({"__nope__": []})

    def test_unknown_dataclass_is_a_data_error(self):
        with pytest.raises(DataError):
            decode({"__dc__": "Forged", "fields": {}})

    def test_stale_dataclass_record_is_a_data_error(self):
        with pytest.raises(DataError):
            decode({"__dc__": "CampaignStats", "fields": {"renamed": 1}})

    def test_payload_digest_is_stable(self):
        encoded = encode({"a": {2, 1}, "b": (1, 2)})
        assert payload_digest(encoded) == payload_digest(encode({"a": {1, 2}, "b": (1, 2)}))
        assert payload_digest(encoded) != payload_digest(encode({"a": {1, 3}, "b": (1, 2)}))


# --- chain -------------------------------------------------------------


class TestStageChain:
    def test_upstream_digest_invalidates_downstream(self):
        a = StageChain("base")
        b = StageChain("base")
        assert a.fingerprint("round1") == b.fingerprint("round1")
        a.advance("round1", "digest-1")
        b.advance("round1", "digest-2")
        assert a.fingerprint("round2") != b.fingerprint("round2")

    def test_execution_knobs_do_not_change_the_fingerprint(self, tiny_world):
        base = _config()
        resumable = base.replace(
            workers=4,
            checkpoint_dir="/tmp/somewhere",
            resume=True,
            shard_timeout=1.0,
            max_retries=5,
            deadline_s=60.0,
            retry_budget=3,
            hung_shard_after_s=10.0,
            trace=True,
        )
        scale = tiny_world.config.scale
        seed = tiny_world.config.seed
        assert study_fingerprint(scale, seed, base) == study_fingerprint(
            scale, seed, resumable
        )

    def test_content_knobs_change_the_fingerprint(self, tiny_world):
        scale = tiny_world.config.scale
        seed = tiny_world.config.seed
        base = study_fingerprint(scale, seed, _config())
        assert base != study_fingerprint(scale, seed, _config(seed=4))
        assert base != study_fingerprint(scale, seed, _config(expansion_stride=4))
        assert base != study_fingerprint(scale, seed, _config(run_vpi=False))


# --- store -------------------------------------------------------------


class TestStageStore:
    def test_round_trip(self, tmp_path):
        store = StageStore(tmp_path)
        digest = store.save("alias", "fp", {"n": 3, "ips": {2, 1}})
        loaded = store.load("alias", "fp")
        assert loaded == ({"n": 3, "ips": {1, 2}}, digest)

    def test_fingerprint_mismatch_recomputes(self, tmp_path):
        store = StageStore(tmp_path)
        store.save("alias", "fp", {"n": 3})
        assert store.load("alias", "other-fp") is None

    def test_torn_write_recomputes(self, tmp_path):
        store = StageStore(tmp_path)
        store.save("alias", "fp", {"n": 3})
        path = tmp_path / "stage_alias.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load("alias", "fp") is None

    def test_tampered_payload_recomputes(self, tmp_path):
        store = StageStore(tmp_path)
        store.save("alias", "fp", {"n": 3})
        path = tmp_path / "stage_alias.json"
        doc = json.loads(path.read_text())
        doc["payload"] = encode({"n": 4})
        path.write_text(json.dumps(doc))
        assert store.load("alias", "fp") is None

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        StageStore(tmp_path).save("alias", "fp", {"n": 3})
        store = StageStore(tmp_path, resume=False)
        assert store.load("alias", "fp") is None

    def test_resume_keeps_checkpoints_and_leaves_no_temp_files(self, tmp_path):
        StageStore(tmp_path).save("alias", "fp", {"n": 3})
        store = StageStore(tmp_path, resume=True)
        assert store.load("alias", "fp") is not None
        assert not list(tmp_path.glob("*.tmp"))


# --- kill/resume bit-identity ------------------------------------------


def _install_compute_spies(monkeypatch):
    """Count ``_compute_<stage>`` calls without changing behaviour."""
    calls = {}
    for stage in STAGE_ORDER:
        name = f"_compute_{stage}"
        original = getattr(AmazonPeeringStudy, name)

        def spy(self, ctx, _original=original, _stage=stage):
            calls[_stage] = calls.get(_stage, 0) + 1
            return _original(self, ctx)

        monkeypatch.setattr(AmazonPeeringStudy, name, spy)
    return calls


@pytest.mark.parametrize("stage", STAGE_ORDER)
def test_killed_after_any_stage_resumes_bit_identically(
    tiny_world, tmp_path, monkeypatch, clean_digest, stage
):
    config = _config(checkpoint_dir=str(tmp_path))
    supervisor = StudySupervisor(abort_after_stage=stage)
    with pytest.raises(StudyInterrupted):
        AmazonPeeringStudy(tiny_world, config=config, supervisor=supervisor).run()
    completed = supervisor.stages_completed
    assert completed and completed[-1] == stage

    calls = _install_compute_spies(monkeypatch)
    resumed = AmazonPeeringStudy(tiny_world, config=config.replace(resume=True)).run()
    assert resumed.digest() == clean_digest
    for done in completed:
        assert calls.get(done, 0) == 0, f"stage {done!r} recomputed on resume"
    for pending in [s for s in STAGE_ORDER if s not in completed]:
        assert calls.get(pending) == 1, f"stage {pending!r} did not run"


def test_recovery_stage_skipped_when_not_adaptive(
    tiny_world, tmp_path, monkeypatch, clean_digest
):
    calls = _install_compute_spies(monkeypatch)
    result = AmazonPeeringStudy(
        tiny_world, config=_config(adaptive=False)
    ).run()
    assert "recovery" not in calls
    assert calls["round1"] == 1
    assert result.resilience is None
    # ...and the adaptive-but-clean fixture digest is the same content.
    assert result.digest() == clean_digest


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_resume_digest_is_worker_count_invariant(
    tiny_world, tmp_path, clean_digest, workers
):
    """Killed under workers=2, resumed under workers in {1, 2, 4}."""
    config = _config(checkpoint_dir=str(tmp_path), workers=2)
    supervisor = StudySupervisor(abort_after_stage="round2")
    with pytest.raises(StudyInterrupted):
        AmazonPeeringStudy(tiny_world, config=config, supervisor=supervisor).run()
    resumed = AmazonPeeringStudy(
        tiny_world, config=config.replace(resume=True, workers=workers)
    ).run()
    assert resumed.digest() == clean_digest


def test_resumed_stages_are_marked_in_the_trace(tiny_world, tmp_path, clean_digest):
    config = _config(checkpoint_dir=str(tmp_path))
    supervisor = StudySupervisor(abort_after_stage="alias")
    with pytest.raises(StudyInterrupted):
        AmazonPeeringStudy(tiny_world, config=config, supervisor=supervisor).run()
    resumed_study = AmazonPeeringStudy(tiny_world, config=config.replace(resume=True))
    result = resumed_study.run()
    assert result.digest() == clean_digest
    resumed_spans = {
        r.name
        for r in result.metrics.tracer.records
        if r.category == "stage" and r.counter("resumed")
    }
    assert resumed_spans == {
        "validate", "round1", "round2", "recovery", "heuristics", "alias",
    }


def test_torn_stage_checkpoint_recomputes_and_still_matches(
    tiny_world, tmp_path, clean_digest
):
    """A half-written stage file is recomputed, never trusted."""
    config = _config(checkpoint_dir=str(tmp_path))
    supervisor = StudySupervisor(abort_after_stage="alias")
    with pytest.raises(StudyInterrupted):
        AmazonPeeringStudy(tiny_world, config=config, supervisor=supervisor).run()
    torn = tmp_path / "stage_alias.json"
    torn.write_text(torn.read_text()[:40])
    resumed = AmazonPeeringStudy(tiny_world, config=config.replace(resume=True)).run()
    assert resumed.digest() == clean_digest


def test_interrupt_before_any_stage_then_resume(tiny_world, tmp_path, clean_digest):
    """A cancel requested up front stops at the first safe point."""
    config = _config(checkpoint_dir=str(tmp_path))
    supervisor = StudySupervisor()
    supervisor.request_cancel("received SIGINT")
    with pytest.raises(StudyInterrupted, match="SIGINT"):
        AmazonPeeringStudy(tiny_world, config=config, supervisor=supervisor).run()
    assert supervisor.stages_completed == []
    resumed = AmazonPeeringStudy(tiny_world, config=config.replace(resume=True)).run()
    assert resumed.digest() == clean_digest


def test_interrupt_emits_study_interrupted_span(tiny_world, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    config = _config(
        checkpoint_dir=str(tmp_path / "ckpt"), trace_out=str(trace_path)
    )
    supervisor = StudySupervisor(abort_after_stage="round1")
    study = AmazonPeeringStudy(tiny_world, config=config, supervisor=supervisor)
    with pytest.raises(StudyInterrupted):
        study.run()
    assert supervisor.stages_completed == ["validate", "round1"]
    # The trace is written on the way out (finally), so the interrupt
    # span -- with its completed-stage counter -- is inspectable even
    # though run() raised.
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    interrupted = [r for r in lines if r.get("name") == "study-interrupted"]
    assert len(interrupted) == 1
    assert interrupted[0]["counters"]["stages_completed"] == 2


# --- salvage -----------------------------------------------------------


class TestSalvage:
    def test_salvage_recovers_the_completed_prefix(self, tiny_world, tmp_path):
        config = _config(checkpoint_dir=str(tmp_path))
        supervisor = StudySupervisor(abort_after_stage="pinning")
        with pytest.raises(StudyInterrupted):
            AmazonPeeringStudy(
                tiny_world, config=config, supervisor=supervisor
            ).run()
        salvage_config = config.replace(resume=True)
        result, recovered = AmazonPeeringStudy(
            tiny_world, config=salvage_config
        ).salvage()
        assert recovered == [
            "validate", "round1", "round2", "recovery",
            "heuristics", "alias", "pinning",
        ]
        assert result.pinning is not None
        assert result.round1_stats is not None
        assert len(result.table1) == 4
        assert result.vpi is None and result.grouping is None

    def test_salvage_without_checkpoints_recovers_nothing(
        self, tiny_world, tmp_path
    ):
        config = _config(checkpoint_dir=str(tmp_path), resume=True)
        result, recovered = AmazonPeeringStudy(tiny_world, config=config).salvage()
        assert recovered == []
        assert result.round1_stats is None

    def test_salvage_requires_a_checkpoint_dir(self, tiny_world):
        with pytest.raises(DataError):
            AmazonPeeringStudy(tiny_world, config=_config()).salvage()


# --- config guard rails -------------------------------------------------


def test_resume_without_checkpoint_dir_is_rejected():
    with pytest.raises(ValueError, match="checkpoint_dir"):
        _config(resume=True)


def test_cli_resume_without_checkpoint_dir_is_an_argparse_error(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["study", "--resume"])
    assert excinfo.value.code == 2
    assert "--checkpoint-dir" in capsys.readouterr().err


def test_cli_salvage_without_checkpoint_dir_is_an_argparse_error(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["study", "--salvage"])
    assert excinfo.value.code == 2
    assert "--checkpoint-dir" in capsys.readouterr().err
