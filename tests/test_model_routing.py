"""Forwarding-model tests: resolve_path across all destination classes."""

import pytest

from repro.net.ip import Prefix, parse_ip
from repro.world.entities import PeeringType


def _region(world, cloud="amazon"):
    return world.region_names(cloud)[0]


def _some_route(world):
    for net, route in sorted(world.routes.items()):
        if route.egress_by_region and route.dest_response_p > 0:
            return route
    raise AssertionError("no routed /24 found")


class TestAmazonPaths:
    def test_private_destination_never_exits(self, tiny_world):
        plan = tiny_world.resolve_path("amazon", _region(tiny_world), parse_ip("10.9.9.9"))
        assert not plan.exits_cloud
        assert len(plan.hops) <= 1

    def test_shared_space_never_exits(self, tiny_world):
        plan = tiny_world.resolve_path("amazon", _region(tiny_world), parse_ip("100.64.0.9"))
        assert not plan.exits_cloud

    def test_own_cloud_space_never_exits(self, tiny_world):
        vm_ip = next(iter(tiny_world.regions["amazon"].values())).vm_ip
        plan = tiny_world.resolve_path("amazon", _region(tiny_world), vm_ip + 1)
        assert not plan.exits_cloud

    def test_dead_space_dies_inside(self, tiny_world):
        plan = tiny_world.resolve_path("amazon", _region(tiny_world), parse_ip("11.1.2.3"))
        assert not plan.exits_cloud
        assert plan.icx_id is None

    def test_routed_slash24_crosses_interconnection(self, tiny_world):
        route = _some_route(tiny_world)
        region = sorted(route.egress_by_region)[0]
        plan = tiny_world.resolve_path("amazon", region, route.prefix.network + 1)
        assert plan.exits_cloud
        assert plan.icx_id == route.egress_by_region[region]
        icx = tiny_world.interconnections[plan.icx_id]
        assert any(h.ip == icx.cbi_ip for h in plan.hops)

    def test_hot_potato_picks_serving_icx(self, tiny_world):
        route = _some_route(tiny_world)
        for region, icx_id in route.egress_by_region.items():
            assert icx_id in route.serving_icx_ids

    def test_interconnect_subnet_routes_via_owning_icx(self, tiny_world):
        w = tiny_world
        for icx in w.interconnections.values():
            if icx.subnet is None or icx.uses_private_addresses:
                continue
            # Probe a sibling address inside the subnet.
            dst = icx.subnet.prefix.last
            plan = w.resolve_path("amazon", _region(w), dst)
            assert plan.exits_cloud
            # Multi-region ports register the first icx only.
            target = w.infra_subnets[("amazon", dst & 0xFFFFFF00)]
            assert any(dst in pfx for pfx, _i in target)
            break

    def test_private_vpi_invisible(self, tiny_world):
        w = tiny_world
        private = [i for i in w.interconnections.values() if i.uses_private_addresses]
        if not private:
            pytest.skip("no private-address VPIs at this seed")
        for icx in private:
            for region in w.region_names("amazon"):
                plan = w.resolve_path("amazon", region, icx.cbi_ip)
                assert not any(h.ip == icx.cbi_ip for h in plan.hops)

    def test_ecmp_is_deterministic_per_destination(self, tiny_world):
        route = _some_route(tiny_world)
        region = sorted(route.egress_by_region)[0]
        dst = route.prefix.network + 1
        a = tiny_world.resolve_path("amazon", region, dst)
        b = tiny_world.resolve_path("amazon", region, dst)
        assert [h.ip for h in a.hops] == [h.ip for h in b.hops]

    def test_ecmp_spreads_across_destinations(self, tiny_world):
        w = tiny_world
        ecmp_icx = next(
            (i for i in w.interconnections.values() if len(i.abi_ecmp) > 1), None
        )
        if ecmp_icx is None:
            pytest.skip("no ECMP interconnection at this seed")
        # Find a /24 served by this icx.
        route = next(
            (
                r
                for r in w.routes.values()
                if ecmp_icx.icx_id in r.egress_by_region.values()
            ),
            None,
        )
        if route is None:
            pytest.skip("ECMP icx serves no /24")
        region = next(
            reg for reg, i in route.egress_by_region.items() if i == ecmp_icx.icx_id
        )
        seen = set()
        for offset in range(1, 200):
            plan = w.resolve_path("amazon", region, route.prefix.network + offset)
            for hop in plan.hops:
                if hop.ip in ecmp_icx.abi_ecmp:
                    seen.add(hop.ip)
        assert len(seen) > 1

    def test_remote_region_sees_backbone_or_ecmp_interface(self, tiny_world):
        w = tiny_world
        route = _some_route(tiny_world)
        icx_by_region = route.egress_by_region
        # Find a region whose egress icx sits at a different metro.
        for region, icx_id in icx_by_region.items():
            icx = w.interconnections[icx_id]
            region_metro = w.regions["amazon"][region].metro_code
            if icx.metro_code != region_metro:
                plan = w.resolve_path("amazon", region, route.prefix.network + 1)
                ips = [h.ip for h in plan.hops]
                assert icx.cbi_ip in ips
                return
        pytest.skip("all egresses local for this route")

    def test_announced_block_without_route_uses_default_egress(self, tiny_world):
        w = tiny_world
        # Find an announced client /24 that is NOT instantiated.
        for alloc in w.plan.allocations_of("client"):
            for p24 in alloc.prefix.slash24s():
                if p24.network not in w.routes:
                    plan = w.resolve_path("amazon", _region(w), p24.network + 1)
                    assert not plan.dest_responds
                    return
        pytest.skip("every client /24 instantiated at this scale")


class TestOtherCloudPaths:
    def test_mirror_path_reaches_shared_port(self, tiny_world):
        w = tiny_world
        shared = [
            i
            for i in w.interconnections.values()
            if len(i.vpi_clouds) > 1
            and not i.uses_private_addresses
            and w.interfaces[i.cbi_ip].shared_port_response
        ]
        if not shared:
            pytest.skip("no shared multi-cloud ports at this seed")
        icx = shared[0]
        cloud = sorted(set(icx.vpi_clouds) - {"amazon"})[0]
        region = w.region_names(cloud)[0]
        plan = w.resolve_path(cloud, region, icx.subnet.prefix.last)
        assert plan.exits_cloud
        assert any(h.ip == icx.cbi_ip for h in plan.hops)

    def test_transit_path_for_unrelated_client(self, tiny_world):
        w = tiny_world
        # A client with no microsoft presence must be reached via transit.
        route = None
        for r in w.routes.values():
            if (
                r.dest_response_p > 0
                and ("microsoft", r.carrier_asn) not in w.client_other_egress
            ):
                route = r
                break
        assert route is not None
        region = w.region_names("microsoft")[0]
        plan = w.resolve_path("microsoft", region, route.prefix.network + 1)
        assert plan.exits_cloud
        amazon_cbis = w.true_cbis()
        assert not any(h.ip in amazon_cbis for h in plan.hops)

    def test_other_cloud_to_amazon_space_is_opaque(self, tiny_world):
        w = tiny_world
        vm_ip = next(iter(w.regions["amazon"].values())).vm_ip
        region = w.region_names("google")[0]
        plan = w.resolve_path("google", region, vm_ip + 3)
        # At most a single border hop beyond google's own network.
        amazon_cbis = w.true_cbis()
        assert not any(h.ip in amazon_cbis for h in plan.hops)


class TestRttModel:
    def test_rtt_legs_local_interface_fast(self, tiny_world):
        w = tiny_world
        region_name, region = sorted(w.regions["amazon"].items())[0]
        _rid, ip = region.internal_path[-1]
        rtt = w.rtt_legs_ms("amazon", region_name, ip)
        assert rtt is not None and rtt < 1.0

    def test_rtt_legs_unknown_interface(self, tiny_world):
        assert tiny_world.rtt_legs_ms("amazon", _region(tiny_world), 1) is None

    def test_region_limit_blocks_other_regions(self, tiny_world):
        w = tiny_world
        if not w.ping_region_limit:
            pytest.skip("no region-limited interfaces at this seed")
        ip, allowed = next(iter(w.ping_region_limit.items()))
        blocked = [r for r in w.region_names("amazon") if r not in allowed]
        assert w.rtt_legs_ms("amazon", blocked[0], ip) is None

    def test_remote_cbi_has_longer_rtt(self, tiny_world):
        w = tiny_world
        remote = [
            i
            for i in w.interconnections.values()
            if i.remote
            and not i.uses_private_addresses
            and len(w.via_metros.get(i.cbi_ip, ())) == 2
            and i.metro_code != i.client_metro_code
        ]
        if not remote:
            pytest.skip("no remote peerings with two legs")
        icx = remote[0]
        region = _region(w)
        cbi_rtt = w.rtt_legs_ms("amazon", region, icx.cbi_ip)
        abi_rtt = w.rtt_legs_ms("amazon", region, icx.abi_ip)
        if cbi_rtt is None or abi_rtt is None:
            pytest.skip("interface not visible from first region")
        assert cbi_rtt >= abi_rtt
