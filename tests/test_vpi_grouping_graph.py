"""Tests for VPI detection (§7.1), grouping (§7.2), and the ICG (§7.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.graph import InterfaceConnectivityGraph, degree_cdf
from repro.core.grouping import HIDDEN_GROUPS, classify_group
from repro.world.profiles import (
    ALL_GROUPS,
    PB_B,
    PB_NB,
    PR_B_NV,
    PR_B_V,
    PR_NB_NV,
    PR_NB_V,
)


class TestClassifyGroup:
    @pytest.mark.parametrize(
        "public,bgp,virtual,expected",
        [
            (True, False, False, PB_NB),
            (True, True, False, PB_B),
            (False, False, True, PR_NB_V),
            (False, False, False, PR_NB_NV),
            (False, True, False, PR_B_NV),
            (False, True, True, PR_B_V),
        ],
    )
    def test_mapping(self, public, bgp, virtual, expected):
        assert classify_group(public, bgp, virtual) == expected

    def test_exhaustive_over_attributes(self):
        seen = {
            classify_group(p, b, v)
            for p in (True, False)
            for b in (True, False)
            for v in (True, False)
        }
        assert seen == set(ALL_GROUPS)

    def test_hidden_groups_definition(self):
        assert set(HIDDEN_GROUPS) == {PR_NB_V, PR_NB_NV, PR_B_V}


class TestVPIOnStudy:
    def test_vpi_cbis_subset_of_cbis(self, study_result):
        assert study_result.vpi is not None
        assert study_result.vpi.vpi_cbis <= study_result.cbis

    def test_cumulative_monotone(self, study_result):
        vpi = study_result.vpi
        order = ["microsoft", "google", "ibm", "oracle"]
        prev = set()
        for cloud in order:
            current = vpi.cumulative[cloud]
            assert prev <= current
            prev = current

    def test_pairwise_subset_of_cumulative(self, study_result):
        vpi = study_result.vpi
        for cloud, pairwise in vpi.pairwise.items():
            assert pairwise <= vpi.cumulative["oracle"]

    def test_oracle_finds_nothing(self, study_result):
        """The paper found zero Amazon/Oracle overlap; our world encodes
        that no client multi-homes Oracle with Amazon on one port."""
        assert len(study_result.vpi.pairwise["oracle"]) == 0

    def test_detected_vpis_truly_multi_cloud(self, study, study_result):
        runner, result = study
        world = runner.world
        true_multi = {
            icx.cbi_ip
            for icx in world.interconnections.values()
            if len(icx.vpi_clouds) > 1
        }
        false_positives = result.vpi.vpi_cbis - true_multi
        # §7.1 argues false VPIs are very unlikely; allow a whisker.
        assert len(false_positives) <= max(2, len(result.vpi.vpi_cbis) * 0.05)

    def test_pool_composition(self, study_result):
        assert study_result.vpi.pool_size > 0


class TestGroupingOnStudy:
    def test_groups_partition_segments(self, study_result):
        grouping = study_result.grouping
        # Every record's interfaces appear in exactly that record's group
        # for that AS -- and each (AS, group) key is unique by dict nature.
        for (asn, group), record in grouping.records.items():
            assert record.peer_asn == asn
            assert record.group == group
            assert record.cbis
            assert record.abis

    def test_profiles_match_records(self, study_result):
        grouping = study_result.grouping
        for (asn, group) in grouping.records:
            assert group in grouping.profiles[asn]

    def test_hidden_fraction_bounds(self, study_result):
        frac = study_result.grouping.hidden_fraction()
        assert 0.0 <= frac <= 1.0

    def test_virtual_groups_require_vpi_evidence(self, study_result):
        grouping = study_result.grouping
        vpis = study_result.vpi.vpi_cbis
        for (asn, group), record in grouping.records.items():
            if group in (PR_NB_V, PR_B_V):
                assert record.cbis & vpis

    def test_public_groups_are_ixp_addresses(self, study, study_result):
        runner, result = study
        for (asn, group), record in result.grouping.records.items():
            if group in (PB_NB, PB_B):
                for cbi in record.cbis:
                    assert runner.annotator_r2.annotate(cbi).is_ixp

    def test_bgp_recovery(self, study_result):
        assert 0.5 <= study_result.bgp_recovery_fraction <= 1.0

    def test_group_features_shape(self, study):
        runner, result = study
        features = result.grouping.group_features(runner.relationships)
        assert set(features) == set(ALL_GROUPS)
        for group, buckets in features.items():
            assert set(buckets) == {
                "bgp_slash24",
                "reachable_slash24",
                "abis",
                "cbis",
                "rtt_diff",
                "metros",
            }


class TestICG:
    def test_bipartite_on_study(self, study_result):
        icg = InterfaceConnectivityGraph(study_result.final_segments)
        # ABI and CBI node sets are disjoint in a clean graph; tolerate
        # tiny overlap caused by third-party artifacts.
        overlap = icg.abis & icg.cbis
        assert len(overlap) <= max(2, icg.summarize().node_count * 0.02)

    def test_components_cover_all_nodes(self, study_result):
        icg = InterfaceConnectivityGraph(study_result.final_segments)
        components = icg.components()
        covered = set()
        for comp in components:
            assert not (comp & covered)
            covered |= comp
        assert covered == icg.abis | icg.cbis

    def test_summary_counts(self, study_result):
        summary = study_result.icg
        assert summary.node_count == len(
            {ip for seg in study_result.final_segments for ip in seg}
        )
        assert summary.edge_count == len(study_result.final_segments)
        assert 0 < summary.largest_component_fraction <= 1

    def test_degrees_sum_to_edges(self, study_result):
        summary = study_result.icg
        assert sum(summary.abi_degrees) == summary.edge_count
        assert sum(summary.cbi_degrees) == summary.edge_count

    def test_simple_graph_components(self):
        icg = InterfaceConnectivityGraph([(1, 10), (1, 11), (2, 20)])
        comps = icg.components()
        assert len(comps) == 2
        assert comps[0] == {1, 10, 11}

    def test_degree_lookup(self):
        icg = InterfaceConnectivityGraph([(1, 10), (1, 11)])
        assert icg.abi_degree(1) == 2
        assert icg.cbi_degree(10) == 1
        assert icg.abi_degree(99) == 0

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=60))
    def test_degree_cdf_monotone(self, degrees):
        points = degree_cdf(degrees)
        fracs = [f for _d, f in points]
        assert fracs == sorted(fracs)
        if points:
            assert points[-1][1] == pytest.approx(1.0)
            values = [d for d, _f in points]
            assert values == sorted(set(values))
