"""Tests for §5.1 heuristics and §5.2 alias verification."""

import pytest

from repro.core.aliasverify import AliasVerifier, analyze_ownership
from repro.core.annotate import HopAnnotator
from repro.core.borders import BorderObservatory
from repro.core.heuristics import HEURISTIC_ORDER, SegmentVerifier
from repro.datasets import (
    as2org_from_world,
    ixp_directory_from_world,
    peeringdb_from_world,
    snapshot_from_world,
)
from repro.datasets.whois import WhoisRegistry
from repro.measure.reachability import PublicVantagePoint
from repro.measure.traceroute import StopReason, TraceHop, Traceroute
from repro.net.asn import AMAZON_ASNS


@pytest.fixture(scope="module")
def annotator(tiny_world):
    pdb = peeringdb_from_world(tiny_world, seed=0)
    return HopAnnotator(
        snapshot_from_world(tiny_world, "r2"),
        WhoisRegistry(tiny_world, seed=0, asn_coverage=1.0),
        as2org_from_world(tiny_world, seed=0, coverage=1.0),
        ixp_directory_from_world(tiny_world, pdb, seed=0),
    )


def _trace(hop_ips, dst, region="us-east-1"):
    hops = [
        TraceHop(ttl=i + 1, ip=ip, rtt_ms=1.0 + i) for i, ip in enumerate(hop_ips)
    ]
    return Traceroute("amazon", region, dst, hops, StopReason.GAP_LIMIT)


@pytest.fixture()
def populated(tiny_world, annotator):
    """Observatory filled with a few real-world-shaped traces."""
    obs = BorderObservatory(annotator)
    amazon = tiny_world.cloud_announced_blocks["amazon"][0]
    a1, a2 = amazon.network + 220, amazon.network + 221
    # A client-provided interconnection (correct segment).
    icx = next(
        i
        for i in tiny_world.interconnections.values()
        if i.subnet is not None and i.subnet.provided_by == "client"
    )
    dst = tiny_world.client_ases[icx.peer_asn].announced_prefixes[0].network + 9
    obs.ingest(_trace([a1, a2, icx.cbi_ip], dst))
    return obs, a1, a2, icx, dst


class TestHeuristics:
    def test_ixp_confirms_public_segments(self, tiny_world, annotator):
        obs = BorderObservatory(annotator)
        amazon = tiny_world.cloud_announced_blocks["amazon"][0]
        a1, a2 = amazon.network + 230, amazon.network + 231
        public = next(
            i for i in tiny_world.interconnections.values() if i.ixp_id is not None
        )
        dst = tiny_world.client_ases[public.peer_asn].announced_prefixes[0].network + 3
        obs.ingest(_trace([a1, a2, public.cbi_ip], dst))
        verifier = SegmentVerifier(obs, PublicVantagePoint(tiny_world, seed=0))
        assert verifier.ixp_confirms(a2)

    def test_hybrid_requires_both_sides(self, populated, tiny_world):
        obs, a1, a2, icx, dst = populated
        verifier = SegmentVerifier(obs, PublicVantagePoint(tiny_world, seed=0))
        # a2 has only client successors so far.
        assert not verifier.hybrid_confirms(a2)
        # Add a trace where a2 precedes an Amazon interface.
        amazon = tiny_world.cloud_announced_blocks["amazon"][0]
        obs.ingest(_trace([a1, a2, amazon.network + 240, icx.cbi_ip], dst + 1))
        assert verifier.hybrid_confirms(a2)

    def test_reachability_confirms(self, populated, tiny_world):
        obs, _a1, a2, icx, _dst = populated
        vp = PublicVantagePoint(tiny_world, seed=0, loss_rate=0.0)
        verifier = SegmentVerifier(obs, vp)
        expected = (not vp.reachable(a2)) and vp.reachable(icx.cbi_ip)
        assert verifier.reachability_confirms(a2) == expected

    def test_verify_orders_and_accumulates(self, populated, tiny_world):
        obs, _a1, _a2, _icx, _dst = populated
        verifier = SegmentVerifier(obs, PublicVantagePoint(tiny_world, seed=0))
        outcome = verifier.verify()
        assert list(outcome.individual_abis) == list(HEURISTIC_ORDER)
        running = set()
        for name in HEURISTIC_ORDER:
            running |= outcome.individual_abis[name]
            assert outcome.cumulative_abis[name] == running
        assert outcome.confirmed_abis | outcome.unconfirmed_abis == obs.candidate_abis()
        assert not outcome.confirmed_abis & outcome.unconfirmed_abis


class TestOwnershipAnalysis:
    def test_majority_owner(self, populated, tiny_world):
        obs, _a1, _a2, icx, _dst = populated
        client = tiny_world.client_ases[icx.peer_asn]
        block = client.announced_prefixes[0]
        sets = [{block.network + 1, block.network + 2, block.network + 3}]
        ownership = analyze_ownership(sets, obs.annotator)
        assert ownership.owner_of_set[0] == icx.peer_asn
        assert ownership.unanimous == 1

    def test_no_majority_undecided(self, populated, tiny_world):
        obs, _a1, _a2, icx, _dst = populated
        client = tiny_world.client_ases[icx.peer_asn]
        other = [c for c in tiny_world.client_ases.values() if c.asn != icx.peer_asn][0]
        sets = [
            {
                client.announced_prefixes[0].network + 1,
                other.announced_prefixes[0].network + 1,
            }
        ]
        ownership = analyze_ownership(sets, obs.annotator)
        assert ownership.owner_of_set[0] is None
        assert ownership.undecided_interfaces == 2


class TestAliasVerifier:
    def test_consistent_segment_kept(self, populated, tiny_world):
        obs, _a1, a2, icx, _dst = populated
        verifier = AliasVerifier(obs, set(AMAZON_ASNS))
        # Alias sets asserting correct ownership.
        amazon_block = tiny_world.cloud_announced_blocks["amazon"][0]
        client_block = tiny_world.client_ases[icx.peer_asn].announced_prefixes[0]
        sets = [
            {a2, amazon_block.network + 250},
            {icx.cbi_ip, client_block.network + 1},
        ]
        result = verifier.verify(sets)
        assert (a2, icx.cbi_ip) in result.final_segments
        assert result.total_changes == 0

    def test_overshoot_relabelled(self, tiny_world, annotator):
        """Fig. 2 bottom: Amazon-provided subnet shifts the segment."""
        provider = next(
            (
                i
                for i in tiny_world.interconnections.values()
                if i.subnet is not None and i.subnet.provided_by == "provider"
            ),
            None,
        )
        if provider is None:
            pytest.skip("no Amazon-provided subnets at this seed")
        obs = BorderObservatory(annotator)
        amazon = tiny_world.cloud_announced_blocks["amazon"][0]
        a1, a2 = amazon.network + 234, amazon.network + 235
        client = tiny_world.client_ases[provider.peer_asn]
        internal = client.routed_slash24s[0].network + 77
        # Build the naive trace: the CBI responds with an Amazon-owned
        # address, so the walk overshoots to the client-internal hop.
        trace = _trace([a1, a2, provider.abi_ip, provider.cbi_ip, internal],
                       internal + 1)
        seg = obs.ingest(trace)
        assert seg == (provider.cbi_ip, internal)
        # Alias knowledge: the "ABI" (provider.cbi_ip) sits on a client
        # router together with a client-owned address.
        block = client.announced_prefixes[0]
        sets = [{provider.cbi_ip, block.network + 1, block.network + 2}]
        verifier = AliasVerifier(obs, set(AMAZON_ASNS))
        result = verifier.verify(sets)
        assert result.changed_abi_to_cbi == 1
        assert (provider.abi_ip, provider.cbi_ip) in result.final_segments

    def test_result_sets_consistent(self, populated, tiny_world):
        obs, _a1, _a2, _icx, _dst = populated
        verifier = AliasVerifier(obs, set(AMAZON_ASNS))
        result = verifier.verify([])
        assert result.abis == {a for a, _c in result.final_segments}
        assert result.cbis == {c for _a, c in result.final_segments}
