"""Tests that WorldConfig knobs actually steer world generation.

Each test builds a tiny world with one knob pushed to an extreme and
verifies the corresponding ground-truth population responds -- the
controls the benchmarks and ablations rely on.
"""

import pytest

from repro.world.build import WorldConfig, build_world
from repro.world.entities import PeeringType


def _tiny(**kwargs):
    return build_world(WorldConfig(scale=0.01, seed=31, **kwargs))


class TestSubnetProvisioning:
    def test_zero_amazon_provided_rate(self):
        world = _tiny(amazon_provided_subnet_rate=0.0)
        for icx in world.interconnections.values():
            if icx.subnet is not None:
                assert icx.subnet.provided_by == "client"

    def test_full_amazon_provided_rate(self):
        world = _tiny(amazon_provided_subnet_rate=1.0, multi_region_port_rate=0.0)
        provided = [
            i.subnet.provided_by
            for i in world.interconnections.values()
            if i.subnet is not None
        ]
        assert provided and all(p == "provider" for p in provided)


class TestVPIKnobs:
    def test_zero_hidden_vpi_rate(self):
        world = _tiny(hidden_vpi_in_prnbnv_rate=0.0, private_vpi_rate=0.0)
        for icx in world.interconnections.values():
            if icx.is_virtual:
                # Every virtual interconnection is a detectable V-group one.
                assert len(icx.vpi_clouds) > 1

    def test_zero_shared_response_rate(self):
        world = _tiny(shared_port_response_rate=0.0)
        for icx in world.interconnections.values():
            if icx.is_virtual and not icx.uses_private_addresses:
                assert not world.interfaces[icx.cbi_ip].shared_port_response

    def test_private_vpi_rate_zero(self):
        world = _tiny(private_vpi_rate=0.0)
        assert not any(
            i.uses_private_addresses for i in world.interconnections.values()
        )

    def test_private_vpi_rate_one(self):
        world = _tiny(private_vpi_rate=1.0)
        private = [
            i for i in world.interconnections.values() if i.uses_private_addresses
        ]
        assert len(private) == len(world.client_ases)


class TestTopologyKnobs:
    def test_zero_ecmp(self):
        world = _tiny(ecmp_rate=0.0)
        assert all(not i.abi_ecmp for i in world.interconnections.values())

    def test_full_ecmp(self):
        world = _tiny(ecmp_rate=1.0)
        private = [
            i
            for i in world.interconnections.values()
            if i.ptype != PeeringType.PUBLIC_IXP and not i.uses_private_addresses
        ]
        with_ecmp = [i for i in private if len(i.abi_ecmp) > 1]
        assert len(with_ecmp) > len(private) * 0.5

    def test_zero_aggregation(self):
        world = _tiny(aggregation_hop_rate=0.0)
        assert all(i.agg_abi_ip is None for i in world.interconnections.values())

    def test_zero_backups(self):
        world = _tiny(backup_icx_rate=0.0)
        # Every active interconnection can carry destination traffic.
        served = set()
        for route in world.routes.values():
            served.update(route.serving_icx_ids)
        active = {
            i.icx_id
            for i in world.interconnections.values()
            if not i.uses_private_addresses
        }
        # Not all need be chosen, but the serving pool is drawn from all.
        assert served <= active | set()

    def test_multi_region_ports_share_cbis(self):
        world = _tiny(multi_region_port_rate=1.0)
        virtual = [
            i
            for i in world.interconnections.values()
            if i.is_virtual and not i.uses_private_addresses
        ]
        cbis = [i.cbi_ip for i in virtual]
        # With forced reuse, clients with several VPIs share one port.
        assert len(set(cbis)) < len(cbis) or len(cbis) <= len(world.client_ases)

    def test_dx_backhaul_relocates_abis(self):
        world = _tiny(dx_backhaul_rate=1.0)
        region_metros = {rt.metro_code for rt in world.regions["amazon"].values()}
        backhauled = [
            i
            for i in world.interconnections.values()
            if i.abi_metro_code is not None
        ]
        for icx in backhauled:
            assert icx.metro_code not in region_metros
            assert icx.abi_metro_code != icx.metro_code or True


class TestAnnouncementKnobs:
    def test_all_infra_announced(self):
        world = _tiny(infra_announced_r1_rate=1.0)
        assert all(not c.late_announced for c in world.client_ases.values())

    def test_no_infra_announced_round1(self):
        world = _tiny(infra_announced_r1_rate=0.0, infra_late_announce_rate=1.0)
        # Every client's infra block is late-announced.
        assert all(c.late_announced for c in world.client_ases.values())


class TestResponsivenessKnobs:
    def test_all_routers_responsive(self):
        world = _tiny(router_unresponsive_rate=0.0)
        assert all(r.responsiveness > 0 for r in world.routers.values())

    def test_reachability_extremes(self):
        world = _tiny(cbi_public_reachable_rate=1.0, abi_public_reachable_rate=0.0)
        cbis = world.true_cbis()
        abis = world.true_abis()
        reachable_cbis = cbis & world.publicly_reachable
        assert len(reachable_cbis) == len(cbis)
        assert not (abis & world.publicly_reachable)
