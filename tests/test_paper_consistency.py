"""Cross-consistency checks between paper constants, the census, and the
world generator -- guarding against drift between the three."""

import pytest

from repro.analysis import paper_values as paper
from repro.world.profiles import (
    ALL_GROUPS,
    CENSUS_TOTAL,
    HYBRID_CENSUS,
    PB_B,
    PB_NB,
    PR_B_NV,
    PR_B_V,
    PR_NB_NV,
    PR_NB_V,
)


class TestCensusVsTable5:
    """Table 6's census must reproduce Table 5's AS percentages."""

    def _census_share(self, group: str) -> float:
        member = sum(c for p, c in HYBRID_CENSUS.items() if group in p)
        return member / CENSUS_TOTAL

    @pytest.mark.parametrize(
        "group,expected",
        [
            (PB_NB, 0.71),
            (PB_B, 0.05),
            (PR_NB_V, 0.07),
            (PR_NB_NV, 0.31),
            (PR_B_NV, 0.03),
            (PR_B_V, 0.02),
        ],
    )
    def test_group_share_matches_table5(self, group, expected):
        share = self._census_share(group)
        assert share == pytest.approx(expected, abs=0.025)

    def test_paper_table5_constants_match_census(self):
        for group in ALL_GROUPS:
            paper_share = paper.TABLE5[group][0]
            assert self._census_share(group) == pytest.approx(
                paper_share, abs=0.03
            )

    def test_hidden_share_matches_paper_constant(self):
        hidden = sum(
            c
            for p, c in HYBRID_CENSUS.items()
            if p & {PR_NB_V, PR_NB_NV, PR_B_V}
        )
        assert hidden / CENSUS_TOTAL == pytest.approx(
            paper.HIDDEN_PEERING_FRACTION, abs=0.03
        )


class TestPaperConstantsInternalConsistency:
    def test_table1_fractions_sum_to_one(self):
        for label, (count, bgp, whois, ixp) in paper.TABLE1.items():
            assert bgp + whois + ixp == pytest.approx(1.0, abs=0.01), label
            assert count > 0

    def test_table4_cumulative_monotone(self):
        order = ["microsoft", "google", "ibm", "oracle"]
        values = [paper.TABLE4_CUMULATIVE[c][0] for c in order]
        assert values == sorted(values)

    def test_table3_cumulative_monotone(self):
        order = ["dns", "ixp", "metro", "native", "alias", "min-rtt"]
        values = [paper.TABLE3_CUMULATIVE[k] for k in order]
        assert values == sorted(values)
        # Per-evidence counts can overlap, so their sum bounds the final
        # cumulative value from above (the paper's dedup).
        assert sum(paper.TABLE3_EXCLUSIVE.values()) >= paper.TABLE3_CUMULATIVE["min-rtt"]

    def test_table2_cumulative_monotone(self):
        order = ["ixp", "hybrid", "reachable"]
        abis = [paper.TABLE2[k][2] for k in order]
        cbis = [paper.TABLE2[k][3] for k in order]
        assert abis == sorted(abis)
        assert cbis == sorted(cbis)

    def test_pinning_fractions(self):
        assert paper.METRO_PIN_COVERAGE < paper.TOTAL_PIN_COVERAGE < 1.0
        assert paper.PINNING_RECALL < paper.PINNING_PRECISION

    def test_table6_top_counts_match_census(self):
        for profile, count in paper.TABLE6_TOP:
            assert HYBRID_CENSUS[profile] == count


class TestWorldRecoversCensus:
    """The sampled client population preserves the census mixture."""

    def test_profile_distribution(self, small_world):
        from collections import Counter

        counts = Counter(c.profile for c in small_world.client_ases.values())
        # Pb-nB-only must dominate, as in Table 6.
        top_profile, _top_count = counts.most_common(1)[0]
        assert top_profile == frozenset({PB_NB})

    def test_group_membership_shares(self, small_world):
        total = len(small_world.client_ases)
        pb_nb = sum(
            1 for c in small_world.client_ases.values() if PB_NB in c.profile
        )
        pr_nb_nv = sum(
            1 for c in small_world.client_ases.values() if PR_NB_NV in c.profile
        )
        # Binomial noise at ~70 ASes is wide; check coarse brackets.
        assert 0.5 < pb_nb / total < 0.9
        assert 0.15 < pr_nb_nv / total < 0.55
