"""Tests for AS identity primitives and seeded RNG helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.net.asn import (
    AMAZON_ASNS,
    AMAZON_ORG_ID,
    ASInfo,
    ASRegistry,
    is_amazon_asn,
)
from repro.net.rng import (
    bounded_lognormal,
    coin,
    jittered,
    make_rng,
    partition_sizes,
    sample_counts,
    weighted_choice,
    zipf_sample,
)


class TestASRegistry:
    def _registry(self):
        reg = ASRegistry()
        reg.add(ASInfo(asn=16509, name="amazon", org_id=AMAZON_ORG_ID, kind="cloud"))
        reg.add(ASInfo(asn=7224, name="amazon-dx", org_id=AMAZON_ORG_ID, kind="cloud"))
        reg.add(ASInfo(asn=3356, name="level3", org_id="ORG-L3", kind="tier1"))
        return reg

    def test_membership_and_len(self):
        reg = self._registry()
        assert 16509 in reg
        assert 9999 not in reg
        assert len(reg) == 3

    def test_duplicate_rejected(self):
        reg = self._registry()
        with pytest.raises(ValueError):
            reg.add(ASInfo(asn=16509, name="x", org_id="O", kind="cloud"))

    def test_get_and_maybe(self):
        reg = self._registry()
        assert reg.get(3356).name == "level3"
        assert reg.maybe(9999) is None
        with pytest.raises(KeyError):
            reg.get(9999)

    def test_org_grouping(self):
        reg = self._registry()
        assert reg.same_org(16509, 7224)
        assert not reg.same_org(16509, 3356)
        assert sorted(reg.asns_of_org(AMAZON_ORG_ID)) == [7224, 16509]

    def test_of_kind(self):
        reg = self._registry()
        assert [i.asn for i in reg.of_kind("tier1")] == [3356]

    def test_asinfo_validates_range(self):
        with pytest.raises(ValueError):
            ASInfo(asn=-1, name="x", org_id="O", kind="cloud")

    def test_amazon_sibling_set(self):
        assert is_amazon_asn(7224)
        assert is_amazon_asn(16509)
        assert not is_amazon_asn(15169)
        assert len(AMAZON_ASNS) == 8


class TestRngHelpers:
    def test_make_rng_deterministic(self):
        a = make_rng(7, "x").random()
        b = make_rng(7, "x").random()
        c = make_rng(7, "y").random()
        assert a == b
        assert a != c

    def test_bounded_lognormal_bounds(self):
        rng = make_rng(1, "ln")
        for _ in range(200):
            v = bounded_lognormal(rng, mean=10.0, sigma=1.0, lo=1, hi=50)
            assert 1 <= v <= 50

    def test_bounded_lognormal_mean_approx(self):
        rng = make_rng(2, "ln")
        draws = [bounded_lognormal(rng, 10.0, 0.5, 1, 1000) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 8 < mean < 13

    def test_bounded_lognormal_rejects_bad_args(self):
        rng = make_rng(1, "ln")
        with pytest.raises(ValueError):
            bounded_lognormal(rng, -1.0, 1.0, 1, 10)
        with pytest.raises(ValueError):
            bounded_lognormal(rng, 1.0, 1.0, 10, 1)

    def test_zipf_prefers_low_ranks(self):
        rng = make_rng(3, "zipf")
        draws = [zipf_sample(rng, 10, alpha=1.5) for _ in range(2000)]
        assert all(1 <= d <= 10 for d in draws)
        assert draws.count(1) > draws.count(10)

    def test_zipf_rejects_zero(self):
        with pytest.raises(ValueError):
            zipf_sample(make_rng(0, "z"), 0)

    def test_weighted_choice_respects_weights(self):
        rng = make_rng(4, "wc")
        draws = [weighted_choice(rng, ["a", "b"], [99.0, 1.0]) for _ in range(500)]
        assert draws.count("a") > 400

    def test_weighted_choice_validation(self):
        rng = make_rng(4, "wc")
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])

    def test_sample_counts_distribution(self):
        rng = make_rng(5, "sc")
        profile = {"x": 90, "y": 10}
        draws = sample_counts(rng, profile, 1000)
        assert 800 < draws.count("x") < 980

    def test_coin(self):
        rng = make_rng(6, "coin")
        heads = sum(coin(rng, 0.8) for _ in range(1000))
        assert 700 < heads < 900

    def test_jittered_non_negative_and_zero_spread(self):
        rng = make_rng(7, "j")
        assert jittered(rng, 5.0, 0.0) == 5.0
        assert jittered(rng, 5.0, 1.0) >= 5.0

    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=20))
    def test_partition_sizes_sums(self, total, parts):
        rng = make_rng(8, "p", total, parts)
        sizes = partition_sizes(rng, total, parts)
        assert len(sizes) == parts
        assert sum(sizes) == total
        assert all(s >= 0 for s in sizes)

    def test_partition_sizes_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            partition_sizes(make_rng(0, "p"), 10, 0)
