"""Tests for the bdrmap baseline (§8) and the analysis layer."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import figures, tables
from repro.analysis.report import render_report
from repro.bdrmap.compare import compare
from repro.bdrmap.engine import BdrmapEngine
from repro.world.profiles import ALL_GROUPS


@pytest.fixture(scope="module")
def bdrmap_result(study):
    runner, _result = study
    engine = BdrmapEngine(
        runner.world, runner.bgp_r2, runner.relationships, runner.engine
    )
    # Three regions keep the test fast while still exposing conflicts.
    return engine.run_all(regions=runner.world.region_names("amazon")[:3])


class TestBdrmapEngine:
    def test_targets_only_announced_space(self, study):
        runner, _ = study
        engine = BdrmapEngine(
            runner.world, runner.bgp_r2, runner.relationships, runner.engine
        )
        for dst in engine.select_targets()[:300]:
            assert runner.bgp_r2.is_announced(dst)

    def test_runs_have_borders(self, bdrmap_result):
        assert bdrmap_result.runs
        assert bdrmap_result.all_abis()
        assert bdrmap_result.all_cbis()

    def test_owner_map_covers_cbis(self, bdrmap_result):
        for run in bdrmap_result.runs.values():
            for cbi in run.cbis:
                assert cbi in run.owner

    def test_as0_cbis_have_no_owner_anywhere(self, bdrmap_result):
        as0 = bdrmap_result.as0_cbis()
        for ip in as0:
            for run in bdrmap_result.runs.values():
                assert run.owner.get(ip, 0) == 0

    def test_flips_are_in_both_sets(self, bdrmap_result):
        for ip in bdrmap_result.flip_interfaces():
            assert ip in bdrmap_result.all_abis()
            assert ip in bdrmap_result.all_cbis()

    def test_misses_unannounced_cbis(self, study, bdrmap_result):
        """§8: bdrmap's BGP-driven targets skip WHOIS-only space, so our
        method should see CBIs bdrmap cannot."""
        _runner, result = study
        ours_only = result.cbis - bdrmap_result.all_cbis()
        assert ours_only


class TestBdrmapComparison:
    def test_compare_fields(self, study, bdrmap_result):
        runner, result = study
        cmp = compare(bdrmap_result, result, runner.relationships)
        assert cmp.bdrmap_cbis == len(bdrmap_result.all_cbis())
        assert cmp.common_cbis <= min(cmp.bdrmap_cbis, cmp.ours_cbis)
        assert cmp.common_ases <= min(cmp.bdrmap_ases, cmp.ours_ases)
        assert cmp.as0_owner_cbis >= 0
        assert cmp.flip_interfaces >= 0

    def test_our_method_finds_more_cbis(self, study, bdrmap_result):
        """§8 headline: expansion + WHOIS space give us ~2.5x the CBIs."""
        _runner, result = study
        assert len(result.cbis) > len(bdrmap_result.all_cbis())


class TestTables:
    def test_table1_rows(self, study_result):
        rows = tables.table1(study_result)
        assert [r.label for r in rows] == ["ABI", "CBI", "eABI", "eCBI"]
        for row in rows:
            assert 0 <= row.bgp_pct <= 100
            assert row.total > 0

    def test_table2_cumulative_monotone(self, study_result):
        rows = tables.table2(study_result)
        cums = [r.cumulative_abis for r in rows]
        assert cums == sorted(cums)

    def test_table3_structure(self, study_result):
        rows = tables.table3(study_result)
        assert [r.evidence for r in rows] == [
            "dns", "ixp", "metro", "native", "alias", "min-rtt",
        ]
        cums = [r.cumulative for r in rows]
        assert cums == sorted(cums)

    def test_table4_rows(self, study_result):
        rows = tables.table4(study_result)
        assert [r.cloud for r in rows] == ["microsoft", "google", "ibm", "oracle"]
        for row in rows:
            assert row.pairwise <= row.cumulative or row.cloud == "microsoft"

    def test_table5_percentages(self, study_result):
        rows = tables.table5(study_result)
        assert [r.group for r in rows] == list(ALL_GROUPS)
        for row in rows:
            assert 0 <= row.ases_pct <= 100

    def test_table5_aggregates(self, study_result):
        agg = tables.table5_aggregates(study_result)
        assert set(agg) == {"Pb", "Pr-nB", "Pr-B"}
        rows = {r.group: r for r in tables.table5(study_result)}
        a, c, b = agg["Pr-nB"]
        assert a >= max(rows["Pr-nB-V"].ases, rows["Pr-nB-nV"].ases)

    def test_table6_sorted(self, study_result):
        census = tables.table6(study_result)
        counts = [c for _p, c in census]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(study_result.grouping.profiles)


class TestFigures:
    def test_cdf_points_monotone(self):
        points = figures.cdf_points([3.0, 1.0, 2.0, 2.0])
        assert points == [(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]

    def test_cdf_points_empty(self):
        assert figures.cdf_points([]) == []

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_cdf_reaches_one(self, values):
        points = figures.cdf_points(values)
        assert points[-1][1] == pytest.approx(1.0)

    def test_fraction_helpers(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert figures.fraction_below(vals, 2.5) == 0.5
        assert figures.fraction_above(vals, 2.5) == 0.5
        assert figures.fraction_below([], 1) == 0.0

    def test_box_stats(self):
        stats = figures.box_stats([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.q1 == 2
        assert stats.q3 == 4
        assert stats.count == 5

    def test_box_stats_empty(self):
        assert figures.box_stats([]).count == 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
    def test_box_stats_ordering(self, values):
        stats = figures.box_stats(values)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum

    def test_fig6_features(self, study):
        runner, result = study
        feats = figures.fig6_features(result, runner.relationships)
        assert set(feats) == set(ALL_GROUPS)

    def test_fig7_series(self, study_result):
        a = figures.fig7a_series(study_result)
        b = figures.fig7b_series(study_result)
        assert a and b
        assert a[-1][1] == pytest.approx(1.0)


class TestReport:
    def test_report_renders(self, study):
        runner, result = study
        text = render_report(result, runner.relationships)
        assert "Table 1" in text
        assert "Table 5" in text
        assert "paper" in text
        assert "VPIs visible from other clouds" in text

    def test_report_contains_all_groups(self, study_result):
        text = render_report(study_result)
        for group in ALL_GROUPS:
            assert group in text
