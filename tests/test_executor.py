"""Sharded executor: partitioning, determinism, progress, stride edges."""

import pytest

from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.measure.campaign import ProbeCampaign
from repro.measure.executor import (
    default_shard_size,
    partition_targets,
    plan_shards,
)
from repro.measure.metrics import CampaignProgress
from repro.measure.sink import CollectorSink
from repro.measure.traceroute import TracerouteEngine


class TestPartitioning:
    def test_partition_preserves_order_and_contiguity(self):
        targets = list(range(100, 110))
        shards = partition_targets(targets, 3)
        assert [len(s) for s in shards] == [3, 3, 3, 1]
        assert [t for s in shards for t in s] == targets

    def test_partition_empty_targets(self):
        assert partition_targets([], 5) == []

    def test_partition_fewer_targets_than_shard_size(self):
        shards = partition_targets([1, 2], 100)
        assert shards == [(1, 2)]

    def test_partition_rejects_bad_shard_size(self):
        with pytest.raises(ValueError):
            partition_targets([1], 0)

    def test_plan_shards_region_major(self):
        shards = plan_shards(["r-a", "r-b"], [1, 2, 3], shard_size=2)
        assert [(s.region, s.targets) for s in shards] == [
            ("r-a", (1, 2)),
            ("r-a", (3,)),
            ("r-b", (1, 2)),
            ("r-b", (3,)),
        ]
        assert [s.index for s in shards] == [0, 1, 2, 3]

    def test_plan_shards_empty_targets_yields_no_work(self):
        assert plan_shards(["r-a", "r-b"], [], shard_size=4) == []

    def test_default_shard_size_fewer_targets_than_workers(self):
        # 3 targets, 8 workers: shards shrink to one target each rather
        # than starving; nothing is dropped.
        size = default_shard_size(3, workers=8)
        assert size == 1
        shards = plan_shards(["r-a"], [1, 2, 3], size)
        assert [s.targets for s in shards] == [(1,), (2,), (3,)]

    def test_default_shard_size_zero_targets(self):
        assert default_shard_size(0, workers=4) == 1


class TestExpansionStrideEdges:
    CBI = 0x0A000001  # 10.0.0.1

    def test_stride_one_is_exhaustive(self):
        targets = ProbeCampaign.expansion_targets([self.CBI], stride=1)
        assert len(targets) == 253  # 254 hosts minus the CBI itself
        assert self.CBI not in targets

    def test_stride_four_subsamples(self):
        targets = ProbeCampaign.expansion_targets([self.CBI], stride=4)
        expected = [0x0A000000 + off for off in range(1, 255, 4) if off != 1]
        assert targets == expected

    def test_stride_254_probes_only_dot1(self):
        # range(1, 255, 254) == [1]; the .1 is the CBI here, so nothing.
        assert ProbeCampaign.expansion_targets([self.CBI], stride=254) == []
        other = 0x0A000005
        assert ProbeCampaign.expansion_targets([other], stride=254) == [
            0x0A000001
        ]

    def test_stride_zero_rejected(self):
        with pytest.raises(ValueError):
            ProbeCampaign.expansion_targets([self.CBI], stride=0)

    def test_targets_iterable_consumed_once(self, tiny_world):
        campaign = ProbeCampaign(tiny_world)
        region = tiny_world.region_names("amazon")[:1]
        targets = iter([p.network + 1 for p in tiny_world.sweep_slash24s[:5]])
        stats = campaign.run(targets, lambda t: None, regions=region)
        assert stats.probes == 5


class TestExecutorDeterminism:
    def _run(self, world, workers):
        engine = TracerouteEngine(world, seed=1)
        campaign = ProbeCampaign(world, engine, workers=workers)
        sink = CollectorSink()
        stats = campaign.run(
            [p.network + 1 for p in world.sweep_slash24s[:30]],
            sink,
            regions=world.region_names("amazon")[:3],
        )
        return sink.traces, stats

    def test_worker_counts_agree(self, tiny_world):
        traces1, stats1 = self._run(tiny_world, workers=1)
        traces2, stats2 = self._run(tiny_world, workers=2)
        traces4, stats4 = self._run(tiny_world, workers=4)
        assert [repr(t) for t in traces1] == [repr(t) for t in traces2]
        assert [repr(t) for t in traces1] == [repr(t) for t in traces4]
        assert stats1 == stats2 == stats4

    def test_probe_independent_of_order(self, tiny_world):
        """A trace is a pure function of (seed, cloud, region, dst)."""
        engine = TracerouteEngine(tiny_world, seed=1)
        region = tiny_world.region_names("amazon")[0]
        dsts = [p.network + 1 for p in tiny_world.sweep_slash24s[:10]]
        forward = [repr(engine.trace("amazon", region, d)) for d in dsts]
        backward = [
            repr(engine.trace("amazon", region, d)) for d in reversed(dsts)
        ]
        assert forward == list(reversed(backward))

    def test_empty_target_list(self, tiny_world):
        campaign = ProbeCampaign(tiny_world, workers=4)
        sink = CollectorSink()
        stats = campaign.run([], sink)
        assert stats.probes == 0
        assert sink.traces == []


class TestProgress:
    def test_progress_counts_and_timings(self, tiny_world):
        campaign = ProbeCampaign(tiny_world, workers=2)
        progress = CampaignProgress(label="test")
        regions = tiny_world.region_names("amazon")[:2]
        targets = [p.network + 1 for p in tiny_world.sweep_slash24s[:10]]
        campaign.run(targets, lambda t: None, regions=regions, progress=progress)
        assert progress.probes == len(targets) * len(regions)
        assert progress.expected_probes == progress.probes
        assert progress.done_fraction == pytest.approx(1.0)
        assert sum(progress.by_region.values()) == progress.probes
        assert set(progress.by_region) == set(regions)
        assert sum(t.probes for t in progress.shard_timings) == progress.probes
        assert progress.probes_per_second > 0
        assert progress.max_shard_seconds >= progress.mean_shard_seconds > 0
        assert "test:" in progress.summary()

    def test_callback_fires_per_shard(self, tiny_world):
        seen = []
        progress = CampaignProgress(
            label="cb", callback=lambda p, t: seen.append(t.index)
        )
        campaign = ProbeCampaign(tiny_world)
        campaign.run(
            [p.network + 1 for p in tiny_world.sweep_slash24s[:4]],
            lambda t: None,
            regions=tiny_world.region_names("amazon")[:1],
            progress=progress,
        )
        assert seen == [t.index for t in progress.shard_timings]
        assert seen == sorted(seen)


class TestStudyDeterminism:
    """§ acceptance: identical StudyResult for any worker count."""

    @pytest.fixture(scope="class")
    def results(self, small_world):
        out = {}
        for workers in (1, 2, 4):
            config = StudyConfig(
                seed=3,
                expansion_stride=8,
                run_vpi=False,
                run_crossval=False,
                workers=workers,
            )
            out[workers] = AmazonPeeringStudy(small_world, config).run()
        return out

    def test_census_tables_byte_identical(self, results):
        baseline = repr(results[1].table1)
        assert repr(results[2].table1) == baseline
        assert repr(results[4].table1) == baseline

    def test_campaign_stats_identical(self, results):
        for workers in (2, 4):
            assert results[workers].round1_stats == results[1].round1_stats
            assert results[workers].round2_stats == results[1].round2_stats

    def test_inference_outputs_identical(self, results):
        base = results[1]
        for workers in (2, 4):
            r = results[workers]
            assert r.abis == base.abis
            assert r.cbis == base.cbis
            assert r.final_segments == base.final_segments
            assert r.alias_sets == base.alias_sets
            assert sorted(r.segment_rtt_diff.items()) == sorted(
                base.segment_rtt_diff.items()
            )
            assert r.pinning.pinned == base.pinning.pinned
            assert r.peer_ases_round1 == base.peer_ases_round1
            assert r.peer_ases_round2 == base.peer_ases_round2

    def test_result_records_config_and_metrics(self, results):
        r = results[4]
        assert r.config.workers == 4
        assert r.config.run_vpi is False
        assert "round1" in r.metrics.stages
        assert r.metrics.campaigns["round1"].workers == 4
        # The legacy timers dict snapshots the metrics stage table
        # (now folded from the span stream, so no longer the same object).
        assert r.runtime_seconds == r.metrics.stages
