"""Tests for iterative pinning (§6.1) and the regional fallback."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pinning import (
    IterativePinner,
    PinningResult,
    RegionalAssignment,
    regional_fallback,
)
from repro.measure.ping import Pinger


class TestRule1AliasSets:
    def test_anchor_propagates_through_alias_set(self):
        pinner = IterativePinner(
            anchors={1: "IAD"},
            alias_sets=[{1, 2, 3}],
            segments=[],
            segment_rtt_diff={},
        )
        result = pinner.run()
        assert result.metro_of(2) == "IAD"
        assert result.metro_of(3) == "IAD"
        assert result.pinned_by_alias == {2, 3}

    def test_conflicting_alias_set_not_propagated(self):
        pinner = IterativePinner(
            anchors={1: "IAD", 2: "LHR"},
            alias_sets=[{1, 2, 3}],
            segments=[],
            segment_rtt_diff={},
        )
        result = pinner.run()
        assert result.metro_of(3) is None
        assert 3 in result.conflicts

    def test_chained_alias_sets(self):
        pinner = IterativePinner(
            anchors={1: "FRA"},
            alias_sets=[{1, 2}, {2, 3}, {3, 4}],
            segments=[],
            segment_rtt_diff={},
        )
        result = pinner.run()
        assert result.metro_of(4) == "FRA"
        assert result.rounds >= 2


class TestRule2ShortSegments:
    def test_short_segment_pins_other_end(self):
        pinner = IterativePinner(
            anchors={10: "SIN"},
            alias_sets=[],
            segments=[(10, 20)],
            segment_rtt_diff={(10, 20): 0.5},
        )
        result = pinner.run()
        assert result.metro_of(20) == "SIN"
        assert 20 in result.pinned_by_rtt

    def test_long_segment_does_not_pin(self):
        pinner = IterativePinner(
            anchors={10: "SIN"},
            alias_sets=[],
            segments=[(10, 20)],
            segment_rtt_diff={(10, 20): 9.0},
        )
        assert pinner.run().metro_of(20) is None

    def test_missing_rtt_means_unknown_not_short(self):
        pinner = IterativePinner(
            anchors={10: "SIN"},
            alias_sets=[],
            segments=[(10, 20)],
            segment_rtt_diff={},
        )
        assert pinner.run().metro_of(20) is None

    def test_conflicting_suggestions_skip(self):
        pinner = IterativePinner(
            anchors={10: "SIN", 11: "LHR"},
            alias_sets=[],
            segments=[(10, 20), (11, 20)],
            segment_rtt_diff={(10, 20): 0.5, (11, 20): 0.4},
        )
        result = pinner.run()
        assert result.metro_of(20) is None
        assert 20 in result.conflicts

    def test_rules_compose_across_rounds(self):
        # Anchor -> alias set -> short segment -> alias set again.
        pinner = IterativePinner(
            anchors={1: "IAD"},
            alias_sets=[{1, 2}, {20, 21}],
            segments=[(2, 20)],
            segment_rtt_diff={(2, 20): 1.0},
        )
        result = pinner.run()
        assert result.metro_of(21) == "IAD"
        assert result.rounds >= 2


class TestPinnerProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.sampled_from(["IAD", "LHR", "SIN"]),
            max_size=8,
        ),
        st.lists(
            st.sets(st.integers(min_value=0, max_value=30), min_size=2, max_size=4),
            max_size=6,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_anchors_never_overwritten_and_terminates(self, anchors, alias_sets):
        pinner = IterativePinner(anchors, alias_sets, [], {})
        result = pinner.run()
        for ip, metro in anchors.items():
            assert result.metro_of(ip) == metro
        # Termination is implied by returning; rounds stays small.
        assert result.rounds <= 35

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=16, max_value=31),
            ),
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_every_pin_has_single_metro(self, segments):
        anchors = {0: "IAD", 16: "LHR"}
        diffs = {seg: 0.5 for seg in segments}
        result = IterativePinner(anchors, [], segments, diffs).run()
        # An interface is pinned at most once, and conflicts are disjoint
        # from pins.
        assert not (set(result.pinned) & result.conflicts)


class TestCoverageAndRegional:
    def test_coverage(self):
        result = PinningResult()
        from repro.core.pinning import PinnedLocation

        result.pinned[1] = PinnedLocation("IAD", "anchor", 0)
        assert result.coverage([1, 2]) == 0.5
        assert result.coverage([]) == 0.0

    def test_regional_fallback_single_region(self, tiny_world):
        result = PinningResult()
        limited = [
            ip for ip, regions in tiny_world.ping_region_limit.items()
        ]
        if not limited:
            pytest.skip("no single-region interfaces at this seed")
        pinger = Pinger(tiny_world, seed=0)
        regional_fallback(result, limited[:5], pinger)
        assigned = [
            r for r in result.regional.values() if r.reason == "single_region"
        ]
        # ICMP filtering may hide some, but at least the pattern holds:
        for r in result.regional.values():
            assert isinstance(r, RegionalAssignment)

    def test_regional_fallback_ratio(self, tiny_world):
        result = PinningResult()
        pinger = Pinger(tiny_world, seed=0)
        cbis = [
            i.cbi_ip
            for i in tiny_world.interconnections.values()
            if not i.uses_private_addresses
        ][:60]
        regional_fallback(result, cbis, pinger)
        for ip, assignment in result.regional.items():
            if assignment.reason == "rtt_ratio":
                assert assignment.ratio is not None
                assert assignment.ratio > 1.5

    def test_regional_fallback_skips_pinned(self, tiny_world):
        from repro.core.pinning import PinnedLocation

        result = PinningResult()
        icx = next(iter(tiny_world.interconnections.values()))
        result.pinned[icx.cbi_ip] = PinnedLocation("IAD", "anchor", 0)
        regional_fallback(result, [icx.cbi_ip], Pinger(tiny_world, seed=0))
        assert icx.cbi_ip not in result.regional
