"""reprolint: per-rule fixture regression tests + the repo-wide meta-test.

Every REP rule is pinned three ways: a known-bad fixture must yield
exactly the expected findings, a known-good fixture must yield none, and
the disable-comment escape hatch must behave (justified suppresses,
unjustified suppresses nothing and is itself REP000).  The meta-test
then asserts the live ``src/repro`` tree is reprolint-clean under the
repo's own scoping, so a regression anywhere in the tree fails tier-1
even before CI's dedicated lint job runs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List

import pytest

from repro.devtools.report import render_json, render_text
from repro.devtools.reprolint import (
    DEFAULT_CONFIG,
    lint_paths,
    lint_source,
    load_config,
    main,
)
from repro.devtools.rules import Finding, RULES, all_rule_codes

FIXTURES = Path(__file__).parent / "data" / "reprolint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent


def _lint_fixture(name: str, codes: List[str]) -> List[Finding]:
    source = (FIXTURES / name).read_text()
    return lint_source(source, path=name, codes=codes)


# --- rule catalogue ----------------------------------------------------


def test_rule_catalogue_is_complete():
    assert all_rule_codes() == (
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
        "REP007",
        "REP008",
    )
    for spec in RULES.values():
        assert spec.title and spec.rationale and spec.fix_hint


# --- per-rule fixtures -------------------------------------------------

#: (rule, bad fixture, expected finding count, good fixture)
CASES = [
    ("REP001", "rep001_bad.py", 4, "rep001_good.py"),
    ("REP002", "rep002_bad.py", 4, "rep002_good.py"),
    ("REP003", "rep003_bad.py", 2, "rep003_good.py"),
    ("REP004", "rep004_bad.py", 4, "rep004_good.py"),
    ("REP005", "rep005_bad.py", 4, "rep005_good.py"),
    ("REP006", "rep006_bad.py", 3, "rep006_good.py"),
    ("REP007", "rep007_bad.py", 3, "rep007_good.py"),
    ("REP008", "rep008_bad.py", 4, "rep008_good.py"),
]


@pytest.mark.parametrize("code,bad,expected,good", CASES)
def test_bad_fixture_is_flagged(code, bad, expected, good):
    findings = _lint_fixture(bad, [code])
    assert len(findings) == expected, render_text(findings, files_checked=1)
    assert {f.code for f in findings} == {code}
    for f in findings:
        assert f.line > 0 and f.message and f.fix_hint


@pytest.mark.parametrize("code,bad,expected,good", CASES)
def test_good_fixture_is_clean(code, bad, expected, good):
    findings = _lint_fixture(good, [code])
    assert findings == [], render_text(findings, files_checked=1)


def test_bad_fixtures_clean_under_other_rules():
    """Fixtures are narrow: each bad file violates only its own rule."""
    for code, bad, _expected, _good in CASES:
        others = [c for c in all_rule_codes() if c != code]
        findings = _lint_fixture(bad, others)
        assert findings == [], f"{bad}: {render_text(findings, files_checked=1)}"


def test_rep001_flags_every_receiver_shape():
    """Module stream, attribute stream, alias, and keyed-in-unsafe-loop."""
    messages = [f.message for f in _lint_fixture("rep001_bad.py", ["REP001"])]
    assert any("module-level `random`" in m for m in messages)
    assert any("shared sequential RNG" in m for m in messages)
    assert any("aliased from a shared RNG" in m for m in messages)
    assert any("iteration order the linter cannot prove" in m for m in messages)


# --- the acceptance scenario: PR 3's WhoisRegistry bug ----------------

WHOIS_BUG = '''
import random

class WhoisRegistry:
    def __init__(self, seed, coverage):
        self._seed = seed
        self._coverage = coverage
        self._rng = random.Random(repr(("whois", seed)))

    def _compute(self, key, asn):
        # the draw consumes a shared stream: lookup order changes the answer
        if asn is not None and self._rng.random() >= self._coverage:
            asn = None
        return asn
'''


def test_rep001_catches_the_whois_registry_bug():
    findings = lint_source(WHOIS_BUG, path="whois.py", codes=["REP001"])
    assert len(findings) == 1
    assert findings[0].code == "REP001"
    assert "self._rng" in findings[0].message
    assert "keyed_uniform" in findings[0].fix_hint


# --- disable comments --------------------------------------------------


def test_justified_disable_suppresses():
    findings = _lint_fixture("disable_justified.py", ["REP005"])
    assert findings == [], render_text(findings, files_checked=1)


def test_unjustified_disable_suppresses_nothing():
    findings = _lint_fixture("disable_unjustified.py", ["REP005"])
    codes = sorted(f.code for f in findings)
    assert codes == ["REP000", "REP005"]
    rep000 = next(f for f in findings if f.code == "REP000")
    assert "justification" in rep000.message


def test_disable_for_other_rule_does_not_suppress():
    source = "def f(x=[]):  # reprolint: disable=REP001 -- wrong rule\n    return x\n"
    findings = lint_source(source, codes=["REP005"])
    assert [f.code for f in findings] == ["REP005"]


# --- parse errors ------------------------------------------------------


def test_syntax_error_is_rep000():
    findings = lint_source("def broken(:\n", path="broken.py")
    assert len(findings) == 1
    assert findings[0].code == "REP000"
    assert "does not parse" in findings[0].message


# --- config ------------------------------------------------------------


def test_pyproject_config_matches_builtin_defaults():
    """[tool.reprolint] and DEFAULT_CONFIG must never drift apart."""
    config = load_config(str(REPO_ROOT / "pyproject.toml"))
    assert config.paths == DEFAULT_CONFIG.paths
    assert config.exclude == DEFAULT_CONFIG.exclude
    assert dict(config.rule_paths) == dict(DEFAULT_CONFIG.rule_paths)
    assert dict(config.rule_exclude) == dict(DEFAULT_CONFIG.rule_exclude)


def test_rule_scoping_by_path():
    config = DEFAULT_CONFIG
    # REP001 applies to the measurement layer...
    assert "REP001" in config.codes_for("src/repro/measure/ping.py")
    # ...but not to the world builder (serial RNG by contract)...
    assert "REP001" not in config.codes_for("src/repro/world/build.py")
    # ...and not to the keyed helpers themselves.
    assert "REP001" not in config.codes_for("src/repro/net/rng.py")
    # Unscoped rules apply everywhere.
    assert "REP005" in config.codes_for("src/repro/world/build.py")


# --- the meta-test: the live tree is clean -----------------------------


def test_live_tree_is_reprolint_clean():
    config = dataclasses.replace(DEFAULT_CONFIG, root=str(REPO_ROOT))
    findings, files_checked = lint_paths(config=config)
    assert files_checked > 50, "scan missed most of src/repro"
    assert findings == [], "\n" + render_text(findings, files_checked=files_checked)


# --- output formats and CLI --------------------------------------------


def test_json_report_shape():
    findings = _lint_fixture("rep005_bad.py", ["REP005"])
    payload = json.loads(render_json(findings, files_checked=1))
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"REP005": 4}
    assert "REP005" in payload["rules"]
    assert all(f["code"] == "REP005" for f in payload["findings"])


def test_text_report_mentions_code_and_hint():
    findings = _lint_fixture("rep005_bad.py", ["REP005"])
    text = render_text(findings, files_checked=1)
    assert "REP005" in text
    assert "hint:" in text
    assert "4 finding(s)" in text


def test_cli_exit_codes(capsys):
    bad = str(FIXTURES / "rep005_bad.py")
    good = str(FIXTURES / "rep005_good.py")
    assert main([bad]) == 1
    assert main([good, "--rules", "REP005"]) == 0
    assert main(["--list-rules"]) == 0
    assert main([bad, "--rules", "NOPE"]) == 2
    capsys.readouterr()


def test_cli_json_output(capsys):
    bad = str(FIXTURES / "rep005_bad.py")
    assert main([bad, "--format", "json", "--rules", "REP005"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"REP005": 4}
