"""Tests for the DRoP-style DNS parser, including generator round-trips."""

import random

import pytest

from repro.core.dnsgeo import (
    DNSGeoParser,
    has_vlan_tag,
    has_vpi_keywords,
    vpi_evidence,
)
from repro.net.geo import DEFAULT_CATALOG
from repro.world.dns import (
    enterprise_interface_name,
    generic_interface_name,
    synthesize_cbi_name,
    transit_interface_name,
    vpi_interface_name,
)


@pytest.fixture(scope="module")
def parser():
    return DNSGeoParser(DEFAULT_CATALOG)


class TestParsing:
    def test_iata_with_state_suffix(self, parser):
        hint = parser.parse("ae-4.amazon.atlnga05.us.bb.gin.ntt.net")
        assert hint is not None
        assert hint.metro_code == "ATL"
        assert hint.kind == "iata"

    def test_plain_iata(self, parser):
        hint = parser.parse("xe-0.aws.fra03.de.bb.carrier.net")
        assert hint.metro_code == "FRA"

    def test_city_name(self, parser):
        hint = parser.parse("po-1.amazon.singapore3.sg.bb.telco.net")
        assert hint.metro_code == "SIN"
        assert hint.kind == "city"

    def test_no_hint_in_flat_corporate_name(self, parser):
        assert parser.parse("edge3.bigcorp.com") is None

    def test_none_and_empty(self, parser):
        assert parser.parse(None) is None
        assert parser.parse("") is None

    def test_stopwords_not_matched(self, parser):
        # 'bb', 'core', 'net' must never resolve to metros.
        assert parser.parse("core1.bb.example.net") is None

    def test_domain_labels_ignored(self, parser):
        # 'nrt' inside the operator domain must not count.
        assert parser.parse("edge1.nrt-networks.com") is None

    def test_address_literal_name(self, parser):
        assert parser.parse("ip-52-1-2-3.carrier.net") is None


class TestGeneratorRoundTrip:
    """The parser must recover the metros the name generator embeds."""

    def test_transit_names_parse_back(self, parser):
        rng = random.Random(42)
        hits = total = 0
        for code in DEFAULT_CATALOG.codes():
            metro = DEFAULT_CATALOG.get(code)
            for i in range(3):
                name = transit_interface_name(f"carrier-{i}", metro, rng)
                hint = parser.parse(name)
                total += 1
                if hint is not None and hint.metro_code == code:
                    hits += 1
        # City-name tokens occasionally collide; demand a high hit rate.
        assert hits / total > 0.9

    def test_enterprise_names_have_no_hints(self, parser):
        rng = random.Random(43)
        for i in range(20):
            name = enterprise_interface_name(f"corp-{i}", rng)
            assert parser.parse(name) is None

    def test_generic_names_have_no_hints(self, parser):
        rng = random.Random(44)
        for i in range(20):
            name = generic_interface_name(f"net-{i}", 0x34010203 + i, rng)
            hint = parser.parse(name)
            assert hint is None

    def test_vpi_names_usually_carry_evidence(self):
        # A minority of VPI names fall back to a bare 'vifNNN' label with
        # neither a vlan tag nor a dx keyword (as in the wild).
        rng = random.Random(45)
        evidence = sum(
            vpi_evidence(vpi_interface_name(f"ent-{i}", rng)) for i in range(50)
        )
        assert evidence >= 40

    def test_synthesize_respects_coverage(self, tiny_world):
        rng = random.Random(46)
        metro = DEFAULT_CATALOG.get("IAD")
        names = [
            synthesize_cbi_name(
                kind="enterprise",
                as_name="corp",
                metro=metro,
                ip=0x34010203,
                rng=rng,
                is_vpi=False,
            )
            for _ in range(300)
        ]
        got = [n for n in names if n is not None]
        # Enterprise coverage is 25%.
        assert 0.1 < len(got) / len(names) < 0.45


class TestVPIKeywords:
    @pytest.mark.parametrize(
        "name",
        [
            "vlan1203.dxvif-8abc.corp.net",
            "dxcon-ff00.carrier.net",
            "awsdx-1a2b.enterprise.net",
            "port1.aws-dx.colo.net",
        ],
    )
    def test_positive(self, name):
        assert vpi_evidence(name)

    @pytest.mark.parametrize(
        "name",
        [
            "edge1.corp.com",
            "ae-4.amazon.atlnga05.us.bb.gin.ntt.net",
            "advlans.example.com",   # 'vlan' inside a word, no digits boundary
        ],
    )
    def test_negative(self, name):
        assert not has_vpi_keywords(name)

    def test_vlan_tag_detection(self):
        assert has_vlan_tag("vlan100.x.net")
        assert not has_vlan_tag("lan100.x.net")
        assert not has_vlan_tag(None)

    def test_keywords_none(self):
        assert not has_vpi_keywords(None)
