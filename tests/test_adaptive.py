"""The adaptive resilience control plane, end to end (DESIGN.md 6.6).

Pins the tentpole contracts:

* adaptation **off** is the default and leaves no trace on the result;
* adaptation **on** under a clean plan is digest-identical to golden --
  the control plane is inert when nothing is sick;
* under a rate-limit-heavy plan, breakers engage, the recovery round
  heals, and completed-probe counts are **strictly higher** than the
  non-adaptive run under the same plan;
* a fixed ``(seed, fault plan)`` yields **one** adaptive digest across
  worker counts {1, 2, 4};
* quarantine losses heal through the breaker recovery path;
* stage-checkpoint resume restores governor state and replays the
  recovery stage digest-identically.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import AmazonPeeringStudy, FaultPlan, StudyConfig, render_report
from repro.measure.adapt import CAUSE_BREAKER, ProbeGovernor
from repro.measure.health import BreakerState, HealthLedger, classify
from repro.measure.traceroute import StopReason, TraceHop, Traceroute

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_study.json"

#: The canonical sick plan: heavy ICMP rate-limiting with a window
#: short enough (3 < the scamper gap limit of 5) to leave *interior*
#: silenced runs that fingerprint as rate-limiting rather than killing
#: the trace outright.
RL_PLAN = FaultPlan(seed=7, rate_limit_rate=0.3, rate_limit_window=3)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _config(golden, **overrides):
    base = golden["config"]
    return StudyConfig(
        seed=base["seed"],
        expansion_stride=base["expansion_stride"],
        run_vpi=base["run_vpi"],
        run_crossval=base["run_crossval"],
        **overrides,
    )


def _adaptive_config(golden, **overrides):
    return _config(
        golden,
        adaptive=True,
        breaker_threshold=2,
        recovery_rounds=2,
        **overrides,
    )


@pytest.fixture(scope="module")
def nonadaptive_rl(golden, tiny_world):
    return AmazonPeeringStudy(
        tiny_world, _config(golden, fault_plan=RL_PLAN)
    ).run()


@pytest.fixture(scope="module")
def adaptive_rl(golden, tiny_world):
    return AmazonPeeringStudy(
        tiny_world, _adaptive_config(golden, fault_plan=RL_PLAN)
    ).run()


# --- classify: the failure fingerprint ---------------------------------


def _trace(ips, completed):
    hops = tuple(
        TraceHop(ttl=i + 1, ip=ip, rtt_ms=1.0 if ip else None)
        for i, ip in enumerate(ips)
    )
    reason = StopReason.COMPLETED if completed else StopReason.GAP_LIMIT
    return Traceroute("amazon", "use1", 99, hops, reason)


def test_classify_counts_only_interior_silence():
    # 3-long silent run *resumed* by a responsive hop: fingerprinted.
    sick = _trace([1, None, None, None, 2], completed=True)
    assert classify(sick).silenced_run == 3
    assert not classify(sick).healthy

    # The same silence as an unresumed tail: gap-limited, not sick.
    tail = _trace([1, 2, None, None, None], completed=False)
    assert classify(tail).silenced_run == 0
    assert classify(tail).healthy

    # Short interior gaps are ordinary loss.
    noisy = _trace([1, None, 2, None, 3], completed=True)
    assert classify(noisy).silenced_run == 1
    assert classify(noisy).healthy


def test_healthy_ignores_completion():
    """A clean-but-incomplete trace must never look like region sickness."""
    silent_dst = _trace([1, 2, 3], completed=False)
    assert classify(silent_dst).healthy


# --- governor unit behavior --------------------------------------------


def test_governor_defers_behind_an_open_breaker():
    governor = ProbeGovernor(HealthLedger(threshold=2))
    governor.begin_campaign("round1")
    sick = _trace([1, None, None, None, 2], completed=True)
    assert governor.admit(sick)  # streak 1
    assert governor.admit(sick)  # streak 2 -> opens
    breaker = governor.ledger.breaker("amazon", "use1")
    assert breaker.state == BreakerState.OPEN
    assert not governor.admit(sick)  # deferred, not folded
    assert governor.deferred == 1
    assert governor.pending[0].cause == CAUSE_BREAKER
    assert governor.pending[0].label == "round1"
    assert breaker.outcomes == 2  # the deferral never folded


def test_governor_state_dict_round_trip():
    governor = ProbeGovernor(HealthLedger(threshold=2))
    governor.begin_campaign("round1")
    sick = _trace([1, None, None, None, 2], completed=True)
    for _ in range(3):
        governor.admit(sick)
    governor.note_quarantine("usw2", (7, 8, 9))
    state = governor.state_dict()

    fresh = ProbeGovernor(HealthLedger(threshold=2))
    fresh.load_state(state)
    assert fresh.state_dict() == state
    assert fresh.ledger.snapshot() == governor.ledger.snapshot()
    assert fresh.pending == governor.pending


# --- the end-to-end contracts ------------------------------------------


def test_adaptation_off_is_the_inert_default(nonadaptive_rl):
    assert nonadaptive_rl.resilience is None
    assert nonadaptive_rl.round1_stats.deferred_probes == 0
    assert nonadaptive_rl.round1_stats.recovered_probes == 0


def test_adaptive_clean_run_matches_golden(golden, tiny_world):
    """With nothing sick, the control plane must not move the digest."""
    result = AmazonPeeringStudy(tiny_world, _adaptive_config(golden)).run()
    assert result.digest() == golden["digest"]
    assert result.resilience is not None
    assert result.resilience.deferred == 0
    assert result.resilience.breaker_events == ()


def test_breakers_engage_under_rate_limiting(adaptive_rl):
    report = adaptive_rl.resilience
    assert report is not None
    opens = sum(
        1 for e in report.breaker_events if e.to_state == BreakerState.OPEN
    )
    assert opens > 0, "the rate-limit plan never opened a breaker"
    assert report.deferred > 0
    assert report.rounds_run == 2
    assert report.trial_probes > 0
    # Re-pacing never loses probes: every deferral was recovered.
    assert report.recovered == report.deferred
    assert report.still_lost == 0
    assert adaptive_rl.round1_stats.lost_probes == 0
    assert adaptive_rl.round2_stats.lost_probes == 0


def test_adaptive_completeness_strictly_beats_nonadaptive(
    nonadaptive_rl, adaptive_rl
):
    base = (
        nonadaptive_rl.round1_stats.completed
        + nonadaptive_rl.round2_stats.completed
    )
    adaptive = (
        adaptive_rl.round1_stats.completed
        + adaptive_rl.round2_stats.completed
    )
    assert adaptive > base
    # ...and probe accounting balances: same expected totals per round.
    for attr in ("round1_stats", "round2_stats"):
        b, a = getattr(nonadaptive_rl, attr), getattr(adaptive_rl, attr)
        assert a.probes + a.lost_probes == b.probes + b.lost_probes


@pytest.mark.parametrize("workers", [2, 4])
def test_adaptive_digest_stable_across_workers(
    golden, tiny_world, adaptive_rl, workers
):
    result = AmazonPeeringStudy(
        tiny_world,
        _adaptive_config(golden, fault_plan=RL_PLAN, workers=workers),
    ).run()
    assert result.digest() == adaptive_rl.digest()


def test_quarantine_losses_heal_through_recovery(golden, tiny_world):
    result = AmazonPeeringStudy(
        tiny_world,
        _adaptive_config(
            golden,
            fault_plan=FaultPlan(poison_shards=(0,)),
            max_retries=0,
            retry_backoff_s=0.0,
        ),
    ).run()
    report = result.resilience
    assert report is not None
    assert report.quarantine_lost > 0
    assert report.still_lost == 0
    assert result.round1_stats.lost_probes == 0
    assert result.round1_stats.completeness == 1.0
    assert result.round2_stats.lost_probes == 0


def test_adaptive_resume_replays_recovery_stage(golden, tiny_world, tmp_path):
    checkpoint_dir = str(tmp_path / "ckpt")
    first = AmazonPeeringStudy(
        tiny_world,
        _adaptive_config(
            golden, fault_plan=RL_PLAN, checkpoint_dir=checkpoint_dir
        ),
    ).run()
    resumed = AmazonPeeringStudy(
        tiny_world,
        _adaptive_config(
            golden,
            fault_plan=RL_PLAN,
            checkpoint_dir=checkpoint_dir,
            resume=True,
        ),
    ).run()
    assert resumed.digest() == first.digest()
    assert resumed.resilience is not None
    assert resumed.resilience.recovered == first.resilience.recovered
    assert resumed.resilience.breakers == first.resilience.breakers


def test_adaptive_study_span_counters(golden, tiny_world):
    result = AmazonPeeringStudy(
        tiny_world,
        _adaptive_config(golden, fault_plan=RL_PLAN, trace=True),
    ).run()
    study = next(
        r for r in result.metrics.tracer.records if r.name == "study"
    )
    counters = dict(study.counters)
    assert counters["breaker_opens"] > 0
    assert counters["governor_deferred"] > 0
    assert counters["recovered_probes"] == counters["governor_deferred"]
    assert counters["recovery_still_lost"] == 0
    recovery = [
        r for r in result.metrics.tracer.records if r.category == "recovery"
    ]
    assert [r.name for r in recovery] == ["recovery:1", "recovery:2"]


def test_report_renders_resilience_block(adaptive_rl, nonadaptive_rl):
    text = render_report(adaptive_rl)
    assert "adaptive control plane:" in text
    assert "round1 yield: completed" in text
    assert "breaker amazon/" in text
    base_text = render_report(nonadaptive_rl)
    assert "adaptive control plane:" not in base_text
