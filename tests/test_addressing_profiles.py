"""Tests for the address plan and the Table-6 profile mixture."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import AddressPool, Prefix, parse_ip
from repro.world.addressing import AddressPlan
from repro.world.profiles import (
    ALL_GROUPS,
    CENSUS_TOTAL,
    GROUP_STATS,
    HYBRID_CENSUS,
    PB_B,
    PB_NB,
    PR_B_NV,
    PR_B_V,
    PR_NB_NV,
    PR_NB_V,
    census_profiles,
    dominant_kind_weights,
    group_is_bgp_visible,
    group_is_public,
    group_is_virtual,
)


class TestAddressPlan:
    def test_superblocks_disjoint(self):
        blocks = [Prefix.parse(t) for t in AddressPlan.SUPERBLOCKS.values()]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                assert not a.overlaps(b), (a, b)

    def test_allocate_and_lookup(self):
        plan = AddressPlan()
        p = plan.client_network(4242, "acme", 20)
        alloc = plan.owner_of(p.network + 7)
        assert alloc is not None
        assert alloc.owner_asn == 4242
        assert alloc.category == "client"

    def test_lookup_outside_allocations(self):
        plan = AddressPlan()
        plan.client_network(1, "a", 20)
        assert plan.owner_of(parse_ip("11.0.0.1")) is None

    def test_categories(self):
        plan = AddressPlan()
        plan.cloud_block("amazon", 12, 16509)
        plan.client_infra(5, "x", 24)
        plan.ixp_lan("ix-1", 22)
        assert len(plan.allocations_of("cloud")) == 1
        assert len(plan.allocations_of("infra")) == 1
        assert len(plan.allocations_of("ixp")) == 1

    def test_ixp_lan_owner_zero(self):
        plan = AddressPlan()
        p = plan.ixp_lan("ix-1")
        assert plan.owner_of(p.network + 1).owner_asn == 0

    def test_client_carve_interconnect(self):
        plan = AddressPlan()
        block = plan.client_infra(9, "c9", 24)
        cursor = {}
        s1 = plan.carve_interconnect("client", block, None, cursor)
        s2 = plan.carve_interconnect("client", block, None, cursor)
        assert not s1.prefix.overlaps(s2.prefix)
        assert s1.provided_by == "client"
        assert s1.client_side in block

    def test_client_carve_requires_block(self):
        plan = AddressPlan()
        with pytest.raises(ValueError):
            plan.carve_interconnect("client", None, None, {})

    def test_carve_rejects_bad_provider(self):
        plan = AddressPlan()
        block = plan.client_infra(9, "c9", 24)
        with pytest.raises(ValueError):
            plan.carve_interconnect("martian", block, None, {})

    def test_client_carve_exhaustion(self):
        plan = AddressPlan()
        block = plan.client_infra(9, "c9", 28)  # 16 addresses = 4 subnets
        cursor = {}
        for _ in range(4):
            plan.carve_interconnect("client", block, None, cursor)
        with pytest.raises(ValueError):
            plan.carve_interconnect("client", block, None, cursor)

    @given(st.lists(st.integers(min_value=18, max_value=24), min_size=1, max_size=30))
    def test_allocations_never_overlap(self, lengths):
        plan = AddressPlan()
        for i, length in enumerate(lengths):
            plan.client_network(i + 1, f"as{i}", length)
        allocs = plan.allocations
        for i, a in enumerate(allocs):
            for b in allocs[i + 1 :]:
                assert not a.prefix.overlaps(b.prefix)

    @given(st.integers(min_value=0, max_value=50))
    def test_owner_of_matches_linear_scan(self, offset):
        plan = AddressPlan()
        for i in range(8):
            plan.client_network(i + 1, f"as{i}", 22)
        addr = Prefix.parse("60.0.0.0/6").network + offset * 1024
        fast = plan.owner_of(addr)
        slow = next(
            (a for a in plan.allocations if addr in a.prefix), None
        )
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert fast.prefix == slow.prefix


class TestProfiles:
    def test_census_total_matches_paper(self):
        # The paper reports ~3.55k peer ASes; Table 6 sums to 3,548.
        assert CENSUS_TOTAL == 3548

    def test_every_census_group_is_known(self):
        for profile in HYBRID_CENSUS:
            assert profile <= set(ALL_GROUPS)

    def test_largest_profile_is_public_only(self):
        top = max(HYBRID_CENSUS.items(), key=lambda kv: kv[1])
        assert top[0] == frozenset({PB_NB})
        assert top[1] == 2187

    def test_census_profiles_sorted(self):
        ordered = census_profiles()
        counts = [c for _p, c in ordered]
        assert counts == sorted(counts, reverse=True)

    def test_group_flags(self):
        assert group_is_public(PB_NB) and group_is_public(PB_B)
        assert not group_is_public(PR_NB_NV)
        assert group_is_bgp_visible(PB_B)
        assert group_is_bgp_visible(PR_B_NV) and group_is_bgp_visible(PR_B_V)
        assert not group_is_bgp_visible(PB_NB)
        assert group_is_virtual(PR_NB_V) and group_is_virtual(PR_B_V)
        assert not group_is_virtual(PR_B_NV)

    def test_group_stats_cover_all_groups(self):
        assert set(GROUP_STATS) == set(ALL_GROUPS)

    def test_cbis_per_as_ordering(self):
        # Table 5: Pr-B peers have far more CBIs per AS than public peers.
        assert GROUP_STATS[PR_B_NV].cbis_per_as > GROUP_STATS[PR_NB_NV].cbis_per_as
        assert GROUP_STATS[PR_NB_NV].cbis_per_as > GROUP_STATS[PB_NB].cbis_per_as

    def test_cone_ordering(self):
        # Fig. 6: transit groups have the largest customer cones.
        assert GROUP_STATS[PR_B_NV].cone_median > GROUP_STATS[PB_B].cone_median
        assert GROUP_STATS[PB_B].cone_median > GROUP_STATS[PB_NB].cone_median

    def test_dominant_kind_weights_blend(self):
        weights = dominant_kind_weights(frozenset({PB_NB, PR_NB_NV}))
        assert weights
        assert all(w > 0 for w in weights.values())
        single = dominant_kind_weights(frozenset({PR_B_NV}))
        assert single["tier1"] > single.get("tier2", 0)
