"""repro audit: import-graph layering, schema lock, API lock, exit codes.

The fixture corpus under ``tests/data/audit_fixtures/`` exercises each
finding class on miniature trees; the mutation tests copy the real
``src/repro`` into a tmpdir and flip one locked fact at a time; and the
meta-test asserts the live tree itself is audit-clean, mirroring
``test_reprolint.py``'s.
"""

import dataclasses
import json
import shutil
from pathlib import Path

from repro.devtools.audit.apilock import extract_api
from repro.devtools.audit.driver import (
    AUDIT_RULES,
    DEFAULT_AUDIT_CONFIG,
    load_audit_config,
    main as audit_main,
    run_audit,
)
from repro.devtools.audit.importgraph import (
    build_graph,
    check_layering,
    find_cycles,
    layer_of,
)
from repro.devtools.audit.schemalock import (
    canonical_json,
    diff_locked,
    extract_schemas,
)
from repro.devtools.report import render_text
from repro.devtools.reprolint import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "audit_fixtures"

#: Layer table for the three-layer fixture tree.
_FIXTURE_LAYERS = {
    "low": ("pkg.low",),
    "mid": ("pkg.mid",),
    "high": ("pkg.high",),
    "root": ("pkg",),
}
_FIXTURE_MAY_IMPORT = {
    "low": (),
    "mid": ("low",),
    "high": ("mid",),
    "root": ("high", "mid", "low"),
}


def _codes(findings):
    return sorted(f.code for f in findings)


# --- import graph: cycles ----------------------------------------------


def test_runtime_cycle_is_arc001():
    graph = build_graph(str(FIXTURES / "cycle_tree"), "src/pkg")
    cycles = find_cycles(graph)
    assert cycles == [("pkg.a", "pkg.b")]
    findings = check_layering(
        graph, {"all": ("pkg",)}, {"all": ()}
    )
    assert _codes(findings) == ["ARC001"]
    assert "pkg.a -> pkg.b -> pkg.a" in findings[0].message


def test_type_checking_edge_breaks_no_cycle():
    graph = build_graph(str(FIXTURES / "cycle_tree"), "src/pkg")
    kinds = {(e.src, e.dst): e.kind for e in graph.edges}
    assert kinds[("pkg.c", "pkg.a")] == "type"
    assert all(
        "pkg.c" not in cycle for cycle in find_cycles(graph)
    )


# --- import graph: layering --------------------------------------------


def test_layering_findings_on_fixture_tree():
    graph = build_graph(str(FIXTURES / "layers_tree"), "src/pkg")
    findings = check_layering(graph, _FIXTURE_LAYERS, _FIXTURE_MAY_IMPORT)
    by_code = {}
    for f in findings:
        by_code.setdefault(f.code, []).append(f)
    # high -> low skips the declared high -> mid -> low chain.
    assert len(by_code["ARC003"]) == 1
    assert "pkg.high.top" in by_code["ARC003"][0].message
    # low -> high is forbidden outright (upward), and so is the
    # unjustified-allow edge low -> mid in excused.py.
    assert len(by_code["ARC002"]) == 2
    # The bare `# reproaudit: allow-edge` is its own finding.
    assert len(by_code["AUD000"]) == 1
    assert by_code["AUD000"][0].path.endswith("excused.py")
    # The justified allow-edge suppressed the low -> high edge there.
    assert not any(
        f.code == "ARC002" and "excused" in f.path and f.line == 3
        for f in findings
    )


def test_unassigned_module_is_arc004():
    graph = build_graph(str(FIXTURES / "layers_tree"), "src/pkg")
    # Without the "root" catch-all and "mid", pkg itself and the two
    # pkg.mid modules belong to no layer.
    layers = {"low": ("pkg.low",), "high": ("pkg.high",)}
    may = {"low": (), "high": ("low",)}
    findings = check_layering(graph, layers, may)
    arc004 = sorted(
        f.message for f in findings if f.code == "ARC004"
    )
    assert len(arc004) == 3
    assert any("pkg.mid.middle" in m for m in arc004)


def test_layer_of_longest_prefix_wins():
    assert layer_of("pkg.low.base", _FIXTURE_LAYERS) == "low"
    assert layer_of("pkg", _FIXTURE_LAYERS) == "root"
    assert layer_of("other.module", _FIXTURE_LAYERS) is None


# --- parse failures: exit 2, never a traceback -------------------------


def test_broken_file_is_fatal_finding():
    graph = build_graph(str(FIXTURES / "broken_tree"), "src/pkg")
    assert len(graph.parse_failures) == 1
    failure = graph.parse_failures[0]
    assert failure.code == "AUD001"
    assert failure.fatal
    # The healthy sibling still parsed.
    assert "pkg.fine" in graph.modules


def test_audit_cli_exits_2_on_broken_source(tmp_path):
    root = _copy_live_tree(tmp_path)
    (root / "src" / "repro" / "broken.py").write_text("def broken(:\n")
    assert audit_main(["--config", str(root / "pyproject.toml")]) == 2


def test_lint_cli_exits_2_on_broken_source(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert lint_main([str(broken)]) == 2


def test_lint_cli_exits_2_on_nul_bytes(tmp_path):
    # ast.parse raises ValueError (not SyntaxError) on NUL bytes; both
    # CLIs must report it as a finding, not a traceback.
    broken = tmp_path / "nul.py"
    broken.write_text("x = 1\n\x00\n")
    assert lint_main([str(broken)]) == 2


# --- schema extraction -------------------------------------------------


def test_live_schema_extraction_covers_all_surfaces():
    schemas, findings = extract_schemas(str(REPO_ROOT))
    assert findings == []
    assert sorted(schemas) == [
        "bench_report",
        "campaign_checkpoint",
        "shard_wire",
        "span_record",
        "stage_store",
        "version",
    ]
    store = schemas["stage_store"]
    assert store["format_version"] == 1
    assert store["stage_order"][0] == "validate"
    assert len(store["registered_dataclasses"]) == 24
    assert schemas["shard_wire"]["span_row_index"] == 4
    assert schemas["bench_report"]["schema"] == "repro-bench-v1"
    span_fields = [f["name"] for f in schemas["span_record"]["fields"]]
    assert span_fields == [
        "span_id",
        "parent_id",
        "name",
        "category",
        "start",
        "duration",
        "counters",
    ]


def test_live_api_extraction_records_slim_sink_surface():
    api, findings = extract_api(str(REPO_ROOT))
    assert findings == []
    exported = api["measure"]["all"]
    assert "as_event_sink" in exported
    assert "EventSink" in exported
    assert "as_sink" not in exported
    assert "FanoutSink" not in exported


def test_diff_locked_reports_per_surface():
    locked = {"a": {"x": 1, "y": 2}, "b": {"z": 3}}
    live = {"a": {"x": 1, "y": 9}, "b": {"z": 3}}
    findings = diff_locked(
        locked,
        live,
        "lock.json",
        code="SCH002",
        surface_paths={"a": "src/a.py"},
        update_hint="update",
    )
    assert _codes(findings) == ["SCH002"]
    assert findings[0].path == "src/a.py"
    assert "a.y" in findings[0].message


# --- lockfile round trips on a copied live tree ------------------------


def _copy_live_tree(tmp_path):
    """The real src tree + pyproject + lockfiles, safe to mutate."""
    root = tmp_path / "repo"
    shutil.copytree(
        REPO_ROOT / "src" / "repro",
        root / "src" / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    for name in ("pyproject.toml", "schemas.lock.json", "api.lock.json"):
        shutil.copy(REPO_ROOT / name, root / name)
    return root


def _audit(root, *args):
    return audit_main(["--config", str(root / "pyproject.toml"), *args])


def test_copied_live_tree_is_clean(tmp_path):
    assert _audit(_copy_live_tree(tmp_path)) == 0


def test_schema_field_mutation_flips_exit_1(tmp_path):
    root = _copy_live_tree(tmp_path)
    span = root / "src" / "repro" / "obs" / "span.py"
    text = span.read_text().replace(
        "    duration: float\n",
        "    duration: float\n    jitter: float = 0.0\n",
        1,
    )
    span.write_text(text)
    assert _audit(root) == 1
    config = load_audit_config(str(root / "pyproject.toml"))
    findings, _ = run_audit(config)
    sch = [f for f in findings if f.code == "SCH002"]
    assert any("span_record" in f.message for f in sch)


def test_stage_order_mutation_flips_exit_1(tmp_path):
    root = _copy_live_tree(tmp_path)
    stages = root / "src" / "repro" / "core" / "stages.py"
    stages.write_text(
        stages.read_text().replace('"round1",', '"round1b",', 1)
    )
    assert _audit(root) == 1


def test_api_mutation_flips_exit_1(tmp_path):
    root = _copy_live_tree(tmp_path)
    span = root / "src" / "repro" / "obs" / "span.py"
    span.write_text(
        span.read_text() + "\n\ndef sneaky_new_api():\n    return None\n"
    )
    assert _audit(root) == 1
    config = load_audit_config(str(root / "pyproject.toml"))
    findings, _ = run_audit(config)
    assert any(f.code == "API002" for f in findings)


def test_forbidden_edge_mutation_flips_exit_1(tmp_path):
    root = _copy_live_tree(tmp_path)
    asn = root / "src" / "repro" / "net" / "asn.py"
    asn.write_text(
        asn.read_text() + "\nfrom repro.core import anchors  # noqa\n"
    )
    assert _audit(root) == 1
    config = load_audit_config(str(root / "pyproject.toml"))
    findings, _ = run_audit(config)
    arc = [f for f in findings if f.code == "ARC002"]
    assert any("repro.net.asn" in f.message for f in arc)


def test_update_locks_round_trip(tmp_path):
    root = _copy_live_tree(tmp_path)
    span = root / "src" / "repro" / "obs" / "span.py"
    span.write_text(
        span.read_text().replace(
            "    duration: float\n",
            "    duration: float\n    jitter: float = 0.0\n",
            1,
        )
    )
    assert _audit(root) == 1
    assert _audit(root, "--update-locks") == 0
    assert _audit(root) == 0
    locked = json.loads((root / "schemas.lock.json").read_text())
    names = [f["name"] for f in locked["span_record"]["fields"]]
    assert "jitter" in names


def test_update_locks_does_not_launder_forbidden_edges(tmp_path):
    root = _copy_live_tree(tmp_path)
    asn = root / "src" / "repro" / "net" / "asn.py"
    asn.write_text(asn.read_text() + "\nfrom repro.core import anchors\n")
    assert _audit(root, "--update-locks") == 1


def test_missing_lockfiles_are_findings(tmp_path):
    root = _copy_live_tree(tmp_path)
    (root / "schemas.lock.json").unlink()
    (root / "api.lock.json").unlink()
    config = load_audit_config(str(root / "pyproject.toml"))
    findings, _ = run_audit(config)
    assert _codes(findings) == ["API001", "SCH001"]
    assert _audit(root) == 1


def test_lockfiles_are_canonical_json():
    for name in ("schemas.lock.json", "api.lock.json"):
        text = (REPO_ROOT / name).read_text()
        assert text == canonical_json(json.loads(text)), name


# --- config ------------------------------------------------------------


def test_pyproject_config_matches_builtin_defaults():
    """[tool.reproaudit] and DEFAULT_AUDIT_CONFIG must never drift."""
    config = load_audit_config(str(REPO_ROOT / "pyproject.toml"))
    assert config.package_root == DEFAULT_AUDIT_CONFIG.package_root
    assert config.schema_lock == DEFAULT_AUDIT_CONFIG.schema_lock
    assert config.api_lock == DEFAULT_AUDIT_CONFIG.api_lock
    assert config.api_packages == DEFAULT_AUDIT_CONFIG.api_packages
    assert dict(config.layer_modules) == dict(
        DEFAULT_AUDIT_CONFIG.layer_modules
    )
    assert dict(config.may_import) == dict(DEFAULT_AUDIT_CONFIG.may_import)


def test_rule_catalog_covers_every_emitted_code():
    assert sorted(AUDIT_RULES) == [
        "API001",
        "API002",
        "ARC001",
        "ARC002",
        "ARC003",
        "ARC004",
        "AUD000",
        "AUD001",
        "SCH001",
        "SCH002",
        "SCH003",
    ]


def test_list_rules_exits_0(capsys):
    assert audit_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "ARC002" in out and "SCH002" in out


# --- the meta-test: the live tree is clean -----------------------------


def test_live_tree_is_audit_clean():
    config = dataclasses.replace(DEFAULT_AUDIT_CONFIG, root=str(REPO_ROOT))
    findings, files_checked = run_audit(config)
    assert files_checked > 50, "scan missed most of src/repro"
    assert findings == [], "\n" + render_text(
        findings, files_checked=files_checked, tool="reproaudit"
    )


def test_live_tree_with_lint_is_clean(capsys):
    # The CI audit job runs exactly this: one artifact for both tools.
    status = audit_main(
        ["--config", str(REPO_ROOT / "pyproject.toml"), "--with-lint"]
    )
    out = capsys.readouterr().out
    assert status == 0, out
    payload_status = audit_main(
        [
            "--config",
            str(REPO_ROOT / "pyproject.toml"),
            "--with-lint",
            "--format",
            "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload_status == 0
    assert payload["tool"] == "reproaudit"
    assert payload["findings"] == []


def test_unknown_config_path_exits_2(tmp_path):
    missing = tmp_path / "nope" / "pyproject.toml"
    assert audit_main(["--config", str(missing)]) == 2
