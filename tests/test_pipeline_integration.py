"""End-to-end integration tests over the full study fixture."""

import pytest

from repro.core.evaluation import evaluate_study
from repro.core.pipeline import AmazonPeeringStudy
from repro.world.build import WorldConfig, build_world


class TestCampaignOutcomes:
    def test_round_stats_present(self, study_result):
        assert study_result.round1_stats is not None
        assert study_result.round2_stats is not None
        assert study_result.round1_stats.probes > 0

    def test_most_probes_leave_amazon(self, study_result):
        """§3: ~77% of round-1 traceroutes exit Amazon's network."""
        frac = study_result.round1_stats.left_cloud_fraction
        assert 0.55 < frac < 0.95

    def test_completion_is_low(self, study_result):
        """§3: completed traceroutes are rare (paper: 7.7%)."""
        assert study_result.round1_stats.completed_fraction < 0.25

    def test_table1_has_four_rows(self, study_result):
        labels = [row.label for row in study_result.table1]
        assert labels == ["ABI", "CBI", "eABI", "eCBI"]

    def test_expansion_grows_cbis(self, study_result):
        by_label = {row.label: row.total for row in study_result.table1}
        assert by_label["eCBI"] >= by_label["CBI"]

    def test_expansion_collapses_whois_share(self, study_result):
        """Table 1: WHOIS% drops sharply once late announcements land."""
        by_label = {row.label: row for row in study_result.table1}
        assert by_label["eCBI"].whois_fraction < by_label["CBI"].whois_fraction

    def test_abis_mostly_whois(self, study_result):
        """Table 1: ~62% of ABIs live in unannounced Amazon space."""
        by_label = {row.label: row for row in study_result.table1}
        assert by_label["eABI"].whois_fraction > 0.35

    def test_cbis_include_ixp_addresses(self, study_result):
        by_label = {row.label: row for row in study_result.table1}
        assert 0.05 < by_label["eCBI"].ixp_fraction < 0.40


class TestVerificationOutcomes:
    def test_majority_of_abis_confirmed(self, study_result):
        h = study_result.heuristics
        total = len(h.confirmed_abis) + len(h.unconfirmed_abis)
        assert len(h.confirmed_abis) / total > 0.6

    def test_final_segments_nonempty(self, study_result):
        assert len(study_result.final_segments) > 100

    def test_final_interface_sets_match_segments(self, study_result):
        assert study_result.abis == {a for a, _c in study_result.final_segments}
        assert study_result.cbis == {c for _a, c in study_result.final_segments}

    def test_alias_sets_disjoint(self, study_result):
        seen = set()
        for group in study_result.alias_sets:
            assert not (group & seen)
            seen |= group


class TestPinningOutcomes:
    def test_half_or_more_pinned(self, study_result):
        assert study_result.metro_pin_coverage > 0.4

    def test_regional_fallback_extends_coverage(self, study_result):
        assert study_result.total_pin_coverage >= study_result.metro_pin_coverage

    def test_crossval_precision_high(self, study_result):
        """§6.2: conservative propagation -> precision near 1."""
        assert study_result.crossval.mean_precision > 0.9

    def test_fig4a_knee_visible(self, study_result):
        rtts = study_result.abi_min_rtts
        assert rtts
        under = sum(1 for r in rtts if r < 2.0) / len(rtts)
        assert 0.15 < under < 0.85

    def test_fig4b_diffs_nonnegative(self, study_result):
        assert all(d >= 0 for d in study_result.segment_rtt_diff.values())


class TestDeterminism:
    def test_same_seed_same_key_outputs(self):
        world_a = build_world(WorldConfig(scale=0.01, seed=21))
        world_b = build_world(WorldConfig(scale=0.01, seed=21))
        res_a = AmazonPeeringStudy(
            world_a, seed=21, expansion_stride=16, run_vpi=False, run_crossval=False
        ).run()
        res_b = AmazonPeeringStudy(
            world_b, seed=21, expansion_stride=16, run_vpi=False, run_crossval=False
        ).run()
        assert res_a.final_segments == res_b.final_segments
        assert res_a.abis == res_b.abis
        assert [r.total for r in res_a.table1] == [r.total for r in res_b.table1]


class TestGroundTruthEvaluation:
    def test_border_inference_accurate(self, study, study_result):
        runner, result = study
        ev = evaluate_study(runner.world, result)
        assert ev.borders.abi_precision > 0.9
        assert ev.borders.cbi_precision > 0.9
        assert ev.borders.abi_recall > 0.5
        assert ev.borders.cbi_recall > 0.5

    def test_pinning_accuracy_reasonable(self, study, study_result):
        runner, result = study
        ev = evaluate_study(runner.world, result)
        assert ev.pinning.evaluated > 0
        assert ev.pinning.accuracy > 0.6

    def test_vpi_lower_bound_property(self, study, study_result):
        """The method may undercount VPIs but barely overcounts."""
        runner, result = study
        ev = evaluate_study(runner.world, result)
        assert ev.vpi.detected_true <= ev.vpi.true_vpi_cbis
        if ev.vpi.detected:
            assert ev.vpi.precision > 0.85

    def test_private_vpis_never_observed(self, study, study_result):
        runner, result = study
        world = runner.world
        private = {
            icx.cbi_ip
            for icx in world.interconnections.values()
            if icx.uses_private_addresses
        }
        assert not (private & result.cbis)
        assert not (private & result.abis)
