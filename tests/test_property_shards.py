"""Property tests for shard planning and fault-schedule determinism.

Hypothesis explores the input space the example-based executor tests
cannot: arbitrary target counts, shard sizes, worker counts, and region
lists -- asserting the invariants the deterministic merge relies on
(exact order-preserving partitions, region-major contiguous indices) and
that a ``FaultPlan`` is a pure function of its fields.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.measure.executor import (
    SHARDS_PER_WORKER,
    default_shard_size,
    partition_targets,
    plan_shards,
)
from repro.measure.faults import FaultPlan

targets_st = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), max_size=64
)
regions_st = st.lists(
    st.sampled_from(["use1", "usw2", "euw1", "aps1", "sae1"]),
    max_size=5,
    unique=True,
)
shard_size_st = st.integers(min_value=1, max_value=80)
rate_st = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


# ----------------------------------------------------------------------
# partition_targets: an exact, order-preserving, bounded partition.
# ----------------------------------------------------------------------


@given(targets=targets_st, shard_size=shard_size_st)
def test_partition_is_exact_and_order_preserving(targets, shard_size):
    chunks = partition_targets(targets, shard_size)
    flattened = [t for chunk in chunks for t in chunk]
    assert flattened == targets


@given(targets=targets_st, shard_size=shard_size_st)
def test_partition_chunks_bounded_and_nonempty(targets, shard_size):
    chunks = partition_targets(targets, shard_size)
    assert all(1 <= len(chunk) <= shard_size for chunk in chunks)
    assert len(chunks) == math.ceil(len(targets) / shard_size)


@given(targets=targets_st, shard_size=st.integers(max_value=0))
def test_partition_rejects_nonpositive_shard_size(targets, shard_size):
    with pytest.raises(ValueError):
        partition_targets(targets, shard_size)


# ----------------------------------------------------------------------
# plan_shards: region-major enumeration matching the serial loop.
# ----------------------------------------------------------------------


@given(regions=regions_st, targets=targets_st, shard_size=shard_size_st)
def test_plan_shards_indices_contiguous(regions, targets, shard_size):
    shards = plan_shards(regions, targets, shard_size)
    assert [s.index for s in shards] == list(range(len(shards)))


@given(regions=regions_st, targets=targets_st, shard_size=shard_size_st)
def test_plan_shards_is_region_major_serial_order(regions, targets, shard_size):
    shards = plan_shards(regions, targets, shard_size)
    serial = [(region, t) for region in regions for t in targets]
    planned = [(s.region, t) for s in shards for t in s.targets]
    assert planned == serial


@given(regions=regions_st, shard_size=shard_size_st)
def test_plan_shards_empty_targets_plans_nothing(regions, shard_size):
    assert plan_shards(regions, [], shard_size) == []


@given(targets=targets_st, shard_size=shard_size_st)
def test_plan_shards_single_region(targets, shard_size):
    shards = plan_shards(["use1"], targets, shard_size)
    assert all(s.region == "use1" for s in shards)
    assert [t for s in shards for t in s.targets] == targets


@given(regions=regions_st, targets=targets_st)
def test_plan_shards_oversized_shard_is_one_per_region(regions, targets):
    hypothesis.assume(targets)
    shards = plan_shards(regions, targets, len(targets) + 7)
    assert len(shards) == len(regions)
    assert all(list(s.targets) == targets for s in shards)


# ----------------------------------------------------------------------
# default_shard_size: always valid, bounds the shard count per region.
# ----------------------------------------------------------------------


@given(
    n_targets=st.integers(min_value=-5, max_value=10_000),
    workers=st.integers(min_value=-2, max_value=64),
)
def test_default_shard_size_is_always_valid(n_targets, workers):
    size = default_shard_size(n_targets, workers)
    assert size >= 1
    if n_targets > 0:
        n_shards = math.ceil(n_targets / size)
        assert n_shards <= max(1, workers) * SHARDS_PER_WORKER
        assert size * n_shards >= n_targets  # no target left unassigned


# ----------------------------------------------------------------------
# FaultPlan: same seed (and fields) => same fault schedule, everywhere.
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    crash_rate=rate_st,
    slow_rate=rate_st,
    slow_seconds=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    crash_attempts=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_fault_plan_transport_schedule_deterministic(
    seed, crash_rate, slow_rate, slow_seconds, crash_attempts
):
    make = lambda: FaultPlan(
        seed=seed,
        crash_rate=crash_rate,
        crash_attempts=crash_attempts,
        slow_rate=slow_rate,
        slow_seconds=slow_seconds,
    )
    a, b = make(), make()
    assert a == b
    for index in range(32):
        failures = a.crash_failures(index)
        assert failures == b.crash_failures(index)
        assert failures in (0, crash_attempts)
        assert a.slow_delay(index) == b.slow_delay(index)
        assert a.slow_delay(index) in (0.0, slow_seconds)
        # should_crash is consistent with the attempt schedule.
        survived = next(
            attempt for attempt in range(crash_attempts + 1)
            if not a.should_crash(index, attempt)
        )
        assert survived == failures


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    loss=rate_st,
    rate_limit=rate_st,
    window=st.integers(min_value=1, max_value=8),
    dst=st.integers(min_value=0, max_value=2**32 - 1),
    ttl=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=50)
def test_fault_plan_observation_schedule_deterministic(
    seed, loss, rate_limit, window, dst, ttl
):
    make = lambda: FaultPlan(
        seed=seed,
        region_loss={"use1": loss},
        rate_limit_rate=rate_limit,
        rate_limit_window=window,
    )
    a, b = make(), make()
    assert a.probe_signature() == b.probe_signature()
    assert a.hop_suppressed("amazon", "use1", dst, ttl) == \
        b.hop_suppressed("amazon", "use1", dst, ttl)
    # Repeated queries never flip: no hidden mutable RNG state.
    first = a.hop_suppressed("amazon", "use1", dst, ttl)
    assert all(
        a.hop_suppressed("amazon", "use1", dst, ttl) == first
        for _ in range(3)
    )
    if loss == 0.0 and rate_limit == 0.0:
        assert not first


@given(spec_seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25)
def test_fault_plan_parse_describe_fields_roundtrip(spec_seed):
    plan = FaultPlan(
        seed=spec_seed, crash_rate=0.25, slow_rate=0.5, slow_seconds=0.125,
        region_loss={"use1": 0.0625}, rate_limit_rate=0.5, poison_shards=(2,),
    )
    spec = (
        f"seed={spec_seed},crash=0.25,slow=0.5,slow-seconds=0.125,"
        "loss=use1:0.0625,rate-limit=0.5,poison=2"
    )
    assert FaultPlan.parse(spec) == plan
