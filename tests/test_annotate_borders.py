"""Tests for hop annotation (§3) and the basic border strategy (§4.1)."""

import pytest

from repro.core.annotate import AnnotationSource, HopAnnotator
from repro.core.borders import BorderObservatory, DropReason
from repro.datasets import (
    as2org_from_world,
    ixp_directory_from_world,
    peeringdb_from_world,
    snapshot_from_world,
)
from repro.datasets.whois import WhoisRegistry
from repro.measure.traceroute import StopReason, TraceHop, Traceroute
from repro.net.asn import AMAZON_ORG_ID, AMAZON_PRIMARY_ASN
from repro.net.ip import parse_ip


@pytest.fixture(scope="module")
def annotator(tiny_world):
    pdb = peeringdb_from_world(tiny_world, seed=0)
    return HopAnnotator(
        snapshot_from_world(tiny_world, "r1"),
        WhoisRegistry(tiny_world, seed=0, asn_coverage=1.0),
        as2org_from_world(tiny_world, seed=0, coverage=1.0),
        ixp_directory_from_world(tiny_world, pdb, seed=0),
    )


class TestAnnotator:
    def test_private_space_is_as0(self, annotator):
        ann = annotator.annotate(parse_ip("10.1.2.3"))
        assert ann.asn == 0
        assert ann.source == AnnotationSource.PRIVATE
        assert not annotator.is_border_candidate(ann)

    def test_amazon_announced_is_home(self, tiny_world, annotator):
        block = tiny_world.cloud_announced_blocks["amazon"][0]
        ann = annotator.annotate(block.network + 5)
        assert ann.org == AMAZON_ORG_ID
        assert annotator.is_home(ann)
        assert not annotator.is_border_candidate(ann)

    def test_amazon_infra_resolved_via_whois(self, tiny_world, annotator):
        infra = tiny_world.cloud_infra_blocks["amazon"][0]
        ann = annotator.annotate(infra.network + 5)
        assert ann.source == AnnotationSource.WHOIS
        assert annotator.is_home(ann)

    def test_client_space_is_border_candidate(self, tiny_world, annotator):
        client = next(iter(tiny_world.client_ases.values()))
        ann = annotator.annotate(client.announced_prefixes[0].network + 3)
        assert ann.asn == client.asn
        assert annotator.is_border_candidate(ann)

    def test_ixp_address_always_candidate(self, tiny_world, annotator):
        ixp = next(iter(tiny_world.ixps.values()))
        members = [ip for ips in ixp.member_ips.values() for ip in ips]
        if not members:
            pytest.skip("empty IXP")
        ann = annotator.annotate(members[0])
        assert ann.is_ixp
        assert annotator.is_border_candidate(ann)

    def test_unknown_space_not_candidate(self, annotator):
        ann = annotator.annotate(parse_ip("11.3.4.5"))
        assert ann.asn == 0
        assert ann.source == AnnotationSource.NONE
        assert not annotator.is_border_candidate(ann)

    def test_cache_returns_same_object(self, annotator):
        a = annotator.annotate(parse_ip("10.0.0.1"))
        b = annotator.annotate(parse_ip("10.0.0.1"))
        assert a is b


def _trace(hop_ips, dst, region="us-east-1", completed=False):
    hops = [
        TraceHop(ttl=i + 1, ip=ip, rtt_ms=None if ip is None else 1.0 + i)
        for i, ip in enumerate(hop_ips)
    ]
    return Traceroute(
        cloud="amazon",
        region=region,
        dst=dst,
        hops=hops,
        stop_reason=StopReason.COMPLETED if completed else StopReason.GAP_LIMIT,
    )


@pytest.fixture()
def fresh_observatory(annotator):
    return BorderObservatory(annotator)


@pytest.fixture(scope="module")
def sample_ips(tiny_world):
    """(amazon ip 1, amazon ip 2, client cbi, client internal, dst)."""
    amazon = tiny_world.cloud_announced_blocks["amazon"][0]
    icx = next(
        i
        for i in tiny_world.interconnections.values()
        if i.subnet is not None and i.subnet.provided_by == "client"
    )
    client = tiny_world.client_ases[icx.peer_asn]
    dst = client.announced_prefixes[0].network + 7
    return (
        amazon.network + 200,
        amazon.network + 201,
        icx.cbi_ip,
        icx.cbi_ip + 40,  # same infra block -> client-owned address
        dst,
    )


class TestBasicStrategy:
    def test_segment_detected(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _internal, dst = sample_ips
        seg = fresh_observatory.ingest(_trace([a1, a2, cbi], dst))
        assert seg == (a2, cbi)
        assert (a2, cbi) in fresh_observatory.segments

    def test_no_border_trace(self, fresh_observatory, sample_ips):
        a1, a2, _cbi, _i, dst = sample_ips
        assert fresh_observatory.ingest(_trace([a1, a2, None], dst)) is None
        assert fresh_observatory.stats.dropped[DropReason.NO_BORDER] == 1

    def test_gap_before_border_dropped(self, fresh_observatory, sample_ips):
        a1, _a2, cbi, _i, dst = sample_ips
        assert fresh_observatory.ingest(_trace([a1, None, cbi], dst)) is None
        assert fresh_observatory.stats.dropped[DropReason.GAP_BEFORE_BORDER] == 1

    def test_duplicate_before_border_dropped(self, fresh_observatory, sample_ips):
        a1, _a2, cbi, _i, dst = sample_ips
        assert fresh_observatory.ingest(_trace([a1, a1, cbi], dst)) is None
        assert (
            fresh_observatory.stats.dropped[DropReason.DUPLICATE_BEFORE_BORDER] == 1
        )

    def test_loop_after_border_dropped(self, fresh_observatory, sample_ips):
        a1, a2, cbi, internal, dst = sample_ips
        assert (
            fresh_observatory.ingest(_trace([a1, a2, cbi, internal, cbi], dst)) is None
        )
        assert fresh_observatory.stats.dropped[DropReason.LOOP] == 1

    def test_cbi_as_destination_dropped(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _i, _dst = sample_ips
        assert fresh_observatory.ingest(_trace([a1, a2, cbi], cbi)) is None
        assert fresh_observatory.stats.dropped[DropReason.CBI_IS_DESTINATION] == 1

    def test_reentering_amazon_dropped(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _i, dst = sample_ips
        assert fresh_observatory.ingest(_trace([a1, a2, cbi, a1 + 5], dst)) is None
        assert fresh_observatory.stats.dropped[DropReason.REENTERS_HOME] == 1

    def test_border_at_first_hop_dropped(self, fresh_observatory, sample_ips):
        _a1, _a2, cbi, _i, dst = sample_ips
        assert fresh_observatory.ingest(_trace([cbi], dst)) is None

    def test_successor_map_updated(self, fresh_observatory, sample_ips):
        a1, a2, cbi, internal, dst = sample_ips
        fresh_observatory.ingest(_trace([a1, a2, cbi, internal], dst))
        assert fresh_observatory.successors[a2][cbi] == 1
        assert fresh_observatory.successors[cbi][internal] == 1

    def test_prev_ip_recorded(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _i, dst = sample_ips
        fresh_observatory.ingest(_trace([a1, a2, cbi], dst))
        record = fresh_observatory.segments[(a2, cbi)]
        assert record.prev_ips[a1] == 1

    def test_dst_slash24_tracked(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _i, dst = sample_ips
        fresh_observatory.ingest(_trace([a1, a2, cbi], dst))
        record = fresh_observatory.segments[(a2, cbi)]
        assert dst & 0xFFFFFF00 in record.dst_slash24s
        assert dst in record.dst_sample

    def test_regions_accumulate(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _i, dst = sample_ips
        fresh_observatory.ingest(_trace([a1, a2, cbi], dst, region="r-a"))
        fresh_observatory.ingest(_trace([a1, a2, cbi], dst + 1, region="r-b"))
        record = fresh_observatory.segments[(a2, cbi)]
        assert record.regions == {"r-a", "r-b"}
        assert record.count == 2

    def test_round_tracking(self, fresh_observatory, sample_ips):
        a1, a2, cbi, internal, dst = sample_ips
        fresh_observatory.ingest(_trace([a1, a2, cbi], dst))
        fresh_observatory.start_round("r2")
        fresh_observatory.ingest(_trace([a1, a2, internal], dst + 1))
        r2_only = fresh_observatory.segments_first_seen_in("r2")
        assert len(r2_only) == 1
        assert fresh_observatory.iface_round[cbi] == "r1"

    def test_min_rtt_tracked(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _i, dst = sample_ips
        fresh_observatory.ingest(_trace([a1, a2, cbi], dst))
        assert fresh_observatory.min_rtt_of(cbi) is not None

    def test_candidate_views(self, fresh_observatory, sample_ips):
        a1, a2, cbi, _i, dst = sample_ips
        fresh_observatory.ingest(_trace([a1, a2, cbi], dst))
        assert fresh_observatory.candidate_abis() == {a2}
        assert fresh_observatory.candidate_cbis() == {cbi}
        assert fresh_observatory.cbis_of_abi(a2) == {cbi}
