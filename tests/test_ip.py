"""Unit and property tests for IPv4 primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import (
    AddressError,
    AddressPool,
    InterconnectSubnet,
    MAX_IPV4,
    Prefix,
    PrefixAllocator,
    dot1_of_slash24,
    format_ip,
    is_private,
    is_probe_excluded,
    is_shared,
    parse_ip,
    slash24_of,
)

ips = st.integers(min_value=0, max_value=MAX_IPV4)
lengths = st.integers(min_value=0, max_value=32)


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1

    def test_parse_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ip("255.255.255.255") == MAX_IPV4

    def test_format_basic(self):
        assert format_ip(parse_ip("192.168.4.77")) == "192.168.4.77"

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", ""]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ip(MAX_IPV4 + 1)
        with pytest.raises(AddressError):
            format_ip(-1)

    @given(ips)
    def test_roundtrip(self, addr):
        assert parse_ip(format_ip(addr)) == addr


class TestPrefix:
    def test_parse(self):
        p = Prefix.parse("10.1.0.0/16")
        assert p.length == 16
        assert p.size == 65536

    def test_canonicalizes_host_bits(self):
        assert Prefix.parse("10.1.2.3/16") == Prefix.parse("10.1.0.0/16")

    def test_of(self):
        assert Prefix.of(parse_ip("10.1.2.3"), 24) == Prefix.parse("10.1.2.0/24")

    def test_contains(self):
        p = Prefix.parse("10.1.2.0/24")
        assert parse_ip("10.1.2.255") in p
        assert parse_ip("10.1.3.0") not in p

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/9")
        b = Prefix.parse("10.64.0.0/10")
        c = Prefix.parse("10.128.0.0/9")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_subnets(self):
        subs = list(Prefix.parse("10.0.0.0/22").subnets(24))
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("10.0.0.0/24")
        assert subs[-1] == Prefix.parse("10.0.3.0/24")

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))

    def test_slash24s_of_longer_prefix(self):
        subs = list(Prefix.parse("10.0.0.128/30").slash24s())
        assert subs == [Prefix.parse("10.0.0.0/24")]

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_bad_length(self):
        with pytest.raises(AddressError):
            Prefix(0, 33)

    @given(ips, st.integers(min_value=0, max_value=32))
    def test_of_always_contains(self, addr, length):
        assert addr in Prefix.of(addr, length)

    @given(ips, st.integers(min_value=8, max_value=30))
    def test_subnet_union_is_parent(self, addr, length):
        parent = Prefix.of(addr, length)
        subs = list(parent.subnets(min(length + 2, 32)))
        assert sum(s.size for s in subs) == parent.size
        assert subs[0].first == parent.first
        assert subs[-1].last == parent.last

    @given(ips)
    def test_slash24_of(self, addr):
        p = slash24_of(addr)
        assert p.length == 24
        assert addr in p

    def test_dot1(self):
        assert dot1_of_slash24(Prefix.parse("8.8.8.0/24")) == parse_ip("8.8.8.1")

    def test_dot1_rejects_non_slash24(self):
        with pytest.raises(AddressError):
            dot1_of_slash24(Prefix.parse("8.8.0.0/16"))


class TestSpecialRanges:
    def test_private(self):
        assert is_private(parse_ip("10.1.2.3"))
        assert is_private(parse_ip("172.16.0.1"))
        assert is_private(parse_ip("192.168.100.1"))
        assert not is_private(parse_ip("8.8.8.8"))

    def test_shared(self):
        assert is_shared(parse_ip("100.64.0.1"))
        assert not is_shared(parse_ip("100.128.0.1"))

    def test_probe_excluded(self):
        assert is_probe_excluded(parse_ip("224.0.0.1"))
        assert is_probe_excluded(parse_ip("240.0.0.1"))
        assert is_probe_excluded(parse_ip("127.0.0.1"))
        assert not is_probe_excluded(parse_ip("52.1.2.3"))


class TestPrefixAllocator:
    def test_sequential_disjoint(self):
        alloc = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
        seen = []
        for _ in range(16):
            p = alloc.allocate(22)
            for old in seen:
                assert not p.overlaps(old)
            seen.append(p)

    def test_exhaustion(self):
        alloc = PrefixAllocator(Prefix.parse("10.0.0.0/24"))
        alloc.allocate(25)
        alloc.allocate(25)
        with pytest.raises(AddressError):
            alloc.allocate(25)

    def test_alignment(self):
        alloc = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
        alloc.allocate(24)
        p = alloc.allocate(20)
        assert p.network % p.size == 0

    def test_rejects_shorter_than_parent(self):
        alloc = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
        with pytest.raises(AddressError):
            alloc.allocate(8)

    @given(st.lists(st.integers(min_value=20, max_value=28), max_size=20))
    def test_never_overlapping(self, requests):
        alloc = PrefixAllocator(Prefix.parse("10.0.0.0/12"))
        allocated = []
        for length in requests:
            p = alloc.allocate(length)
            for old in allocated:
                assert not p.overlaps(old)
            allocated.append(p)


class TestAddressPool:
    def test_skips_network_and_broadcast(self):
        pool = AddressPool(Prefix.parse("10.0.0.0/30"))
        assert pool.allocate() == parse_ip("10.0.0.1")
        assert pool.allocate() == parse_ip("10.0.0.2")
        with pytest.raises(AddressError):
            pool.allocate()

    def test_allocate_many_unique(self):
        pool = AddressPool(Prefix.parse("10.0.0.0/24"))
        addrs = pool.allocate_many(100)
        assert len(set(addrs)) == 100

    def test_remaining(self):
        pool = AddressPool(Prefix.parse("10.0.0.0/24"))
        before = pool.remaining
        pool.allocate()
        assert pool.remaining == before - 1


class TestInterconnectSubnet:
    def test_carve_slash30(self):
        alloc = PrefixAllocator(Prefix.parse("10.0.0.0/24"))
        sub = InterconnectSubnet.carve(alloc, "provider", 30)
        assert sub.prefix.length == 30
        assert sub.provider_side == sub.prefix.network + 1
        assert sub.client_side == sub.prefix.network + 2

    def test_carve_slash31(self):
        alloc = PrefixAllocator(Prefix.parse("10.0.0.0/24"))
        sub = InterconnectSubnet.carve(alloc, "client", 31)
        assert sub.provider_side == sub.prefix.network
        assert sub.client_side == sub.prefix.network + 1

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            InterconnectSubnet(
                prefix=Prefix.parse("10.0.0.0/29"),
                provider_side=parse_ip("10.0.0.1"),
                client_side=parse_ip("10.0.0.2"),
                provided_by="client",
            )

    def test_rejects_same_endpoints(self):
        with pytest.raises(AddressError):
            InterconnectSubnet(
                prefix=Prefix.parse("10.0.0.0/30"),
                provider_side=parse_ip("10.0.0.1"),
                client_side=parse_ip("10.0.0.1"),
                provided_by="client",
            )

    def test_rejects_outside_addresses(self):
        with pytest.raises(AddressError):
            InterconnectSubnet(
                prefix=Prefix.parse("10.0.0.0/30"),
                provider_side=parse_ip("10.0.0.1"),
                client_side=parse_ip("10.0.1.2"),
                provided_by="client",
            )

    def test_rejects_bad_provider(self):
        with pytest.raises(AddressError):
            InterconnectSubnet(
                prefix=Prefix.parse("10.0.0.0/30"),
                provider_side=parse_ip("10.0.0.1"),
                client_side=parse_ip("10.0.0.2"),
                provided_by="nobody",
            )
