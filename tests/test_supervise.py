"""StudySupervisor and the error taxonomy: budgets, signals, hung shards."""

import multiprocessing
import signal
import threading

import pytest

from repro.errors import (
    EXIT_INTERRUPTED,
    DataError,
    DeadlineExceeded,
    HungShardError,
    ReproError,
    ShardTimeoutError,
    StageError,
    StudyInterrupted,
    TransportError,
    classify_error,
    wrap_error,
)
from repro.measure.supervise import StudySupervisor


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# --- taxonomy ----------------------------------------------------------


class TestTaxonomy:
    def test_categories(self):
        assert TransportError("x").category == "transport"
        assert ShardTimeoutError("x").category == "timeout"
        assert HungShardError("x").category == "hung"
        assert DataError("x").category == "data"
        assert StudyInterrupted("x").category == "interrupted"
        assert DeadlineExceeded(5.0).category == "deadline"

    def test_interrupt_hierarchy(self):
        # Resumable interrupts are ReproErrors but never TransportErrors:
        # the retry ladder must not eat them.
        assert issubclass(DeadlineExceeded, StudyInterrupted)
        assert issubclass(StudyInterrupted, ReproError)
        assert not issubclass(StudyInterrupted, TransportError)

    def test_stage_error_names_the_stage(self):
        cause = ValueError("boom")
        err = StageError("pinning", cause)
        assert err.stage == "pinning"
        assert err.cause is cause
        assert "pinning" in str(err) and "boom" in str(err)

    def test_classify_error(self):
        assert classify_error(ShardTimeoutError("t")) == "timeout"
        assert classify_error(multiprocessing.TimeoutError()) == "timeout"
        assert classify_error(TimeoutError()) == "timeout"
        assert classify_error(RuntimeError("x")) == "transport"
        assert classify_error(DataError("x")) == "data"

    def test_wrap_error_is_idempotent(self):
        original = TransportError("already wrapped")
        assert wrap_error(original) is original

    def test_wrap_error_preserves_the_cause_and_message(self):
        cause = RuntimeError("worker died")
        wrapped = wrap_error(cause)
        assert isinstance(wrapped, TransportError)
        assert wrapped.__cause__ is cause
        assert "RuntimeError: worker died" in str(wrapped)

    def test_wrap_error_refuses_to_swallow_interrupts(self):
        with pytest.raises(StudyInterrupted):
            wrap_error(StudyInterrupted("received SIGINT"))

    def test_exit_code_is_ex_tempfail(self):
        assert EXIT_INTERRUPTED == 75


# --- supervisor budgets ------------------------------------------------


class TestDeadline:
    def test_poll_is_quiet_inside_the_deadline(self):
        clock = FakeClock()
        with StudySupervisor(deadline_s=10.0, clock=clock) as sup:
            clock.now = 9.9
            sup.poll()

    def test_poll_raises_a_resumable_interrupt_past_the_deadline(self):
        clock = FakeClock()
        with StudySupervisor(deadline_s=10.0, clock=clock) as sup:
            clock.now = 10.1
            with pytest.raises(DeadlineExceeded) as excinfo:
                sup.poll()
        assert isinstance(excinfo.value, StudyInterrupted)
        assert excinfo.value.deadline_s == 10.0

    def test_no_deadline_means_no_interrupt(self):
        clock = FakeClock()
        with StudySupervisor(clock=clock) as sup:
            clock.now = 1e9
            sup.poll()


class TestRetryBudget:
    def test_unbounded_by_default(self):
        sup = StudySupervisor()
        assert all(sup.consume_retry() for _ in range(1000))
        assert sup.retries_spent == 0

    def test_budget_is_spent_study_wide(self):
        sup = StudySupervisor(retry_budget=2)
        assert sup.consume_retry()
        assert sup.consume_retry()
        assert not sup.consume_retry()
        assert not sup.consume_retry()
        assert sup.retries_spent == 2

    def test_zero_budget_quarantines_immediately(self):
        assert not StudySupervisor(retry_budget=0).consume_retry()


class TestCancellation:
    def test_request_cancel_is_idempotent_and_keeps_the_first_reason(self):
        sup = StudySupervisor()
        sup.request_cancel("received SIGINT")
        sup.request_cancel("received SIGTERM")
        assert sup.cancel_requested
        with pytest.raises(StudyInterrupted, match="SIGINT"):
            sup.poll()

    def test_abort_after_stage_fires_after_the_named_stage(self):
        sup = StudySupervisor(abort_after_stage="alias")
        sup.note_stage_complete("round1")
        with pytest.raises(StudyInterrupted, match="alias"):
            sup.note_stage_complete("alias")
        assert sup.stages_completed == ["round1", "alias"]


# --- signal handling ---------------------------------------------------


class TestSignals:
    def test_first_signal_requests_cancel(self):
        with StudySupervisor(handle_signals=True) as sup:
            signal.raise_signal(signal.SIGINT)
            assert sup.cancel_requested
            with pytest.raises(StudyInterrupted, match="SIGINT"):
                sup.poll()

    def test_second_signal_restores_and_redelivers(self):
        with pytest.raises(KeyboardInterrupt):
            with StudySupervisor(handle_signals=True):
                signal.raise_signal(signal.SIGINT)
                signal.raise_signal(signal.SIGINT)

    def test_handlers_are_restored_on_exit(self):
        before = signal.getsignal(signal.SIGINT)
        with StudySupervisor(handle_signals=True):
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before

    def test_non_main_thread_skips_installation(self):
        failures = []

        def run():
            try:
                with StudySupervisor(handle_signals=True) as sup:
                    sup.poll()
            except Exception as exc:  # pragma: no cover - diagnostic only
                failures.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert failures == []


# --- hung-shard detection ----------------------------------------------


class _NeverReadyHandle:
    """A pool AsyncResult stand-in that never produces."""

    def get(self, timeout):
        raise multiprocessing.TimeoutError


class _Shard:
    index = 3
    region = "use1"


def _executor(tiny_world, supervisor, shard_timeout=None):
    from repro.measure.campaign import CloudMembership
    from repro.measure.executor import RetryPolicy, ShardedExecutor
    from repro.measure.traceroute import TracerouteEngine

    return ShardedExecutor(
        tiny_world,
        TracerouteEngine(tiny_world),
        CloudMembership(tiny_world, "amazon"),
        retry=RetryPolicy(shard_timeout=shard_timeout, backoff_base_s=0.0),
        supervisor=supervisor,
    )


class TestHungShards:
    def test_hung_horizon_fires_before_shard_timeout(self, tiny_world):
        sup = StudySupervisor(hung_shard_after_s=0.1)
        executor = _executor(tiny_world, sup, shard_timeout=60.0)
        with pytest.raises(HungShardError, match="shard 3"):
            executor._wait_for_shard(_NeverReadyHandle(), _Shard())

    def test_shard_timeout_fires_without_a_horizon(self, tiny_world):
        sup = StudySupervisor()
        executor = _executor(tiny_world, sup, shard_timeout=0.1)
        with pytest.raises(ShardTimeoutError):
            executor._wait_for_shard(_NeverReadyHandle(), _Shard())

    def test_cancel_interrupts_the_wait(self, tiny_world):
        sup = StudySupervisor()
        sup.request_cancel("received SIGTERM")
        executor = _executor(tiny_world, sup, shard_timeout=60.0)
        with pytest.raises(StudyInterrupted):
            executor._wait_for_shard(_NeverReadyHandle(), _Shard())
