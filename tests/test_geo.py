"""Tests for the metro catalog and RTT model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.net.geo import (
    DEFAULT_CATALOG,
    FIBER_KM_PER_MS_ONE_WAY,
    Metro,
    MetroCatalog,
    ROUTE_INFLATION,
    haversine_km,
    metro_distance_km,
    propagation_rtt_ms,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(40.0, -75.0, 40.0, -75.0) == 0.0

    def test_known_distance_nyc_la(self):
        # JFK to LAX great-circle is ~3,980 km.
        d = haversine_km(40.71, -74.01, 34.05, -118.24)
        assert 3800 < d < 4100

    def test_symmetric(self):
        a = haversine_km(10, 20, -30, 140)
        b = haversine_km(-30, 140, 10, 20)
        assert math.isclose(a, b)

    @given(
        st.floats(min_value=-89, max_value=89),
        st.floats(min_value=-179, max_value=179),
        st.floats(min_value=-89, max_value=89),
        st.floats(min_value=-179, max_value=179),
    )
    def test_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        d = haversine_km(lat1, lon1, lat2, lon2)
        assert 0 <= d <= 20_100  # half the equator, circa


class TestMetroDistance:
    def test_same_metro_is_zero(self):
        iad = DEFAULT_CATALOG.get("IAD")
        assert metro_distance_km(iad, iad) == 0.0

    def test_inflation_applied(self):
        a, b = DEFAULT_CATALOG.get("IAD"), DEFAULT_CATALOG.get("SJC")
        raw = haversine_km(a.lat, a.lon, b.lat, b.lon)
        assert math.isclose(metro_distance_km(a, b), raw * ROUTE_INFLATION)

    def test_propagation_rtt(self):
        a, b = DEFAULT_CATALOG.get("IAD"), DEFAULT_CATALOG.get("LHR")
        rtt = propagation_rtt_ms(a, b)
        expected = 2 * metro_distance_km(a, b) / FIBER_KM_PER_MS_ONE_WAY
        assert math.isclose(rtt, expected)
        # Transatlantic RTT should be tens of ms.
        assert 30 < rtt < 120

    def test_nearby_metros_under_2ms(self):
        # The pinning knee: interfaces in the same metro are < 2 ms away.
        a = DEFAULT_CATALOG.get("IAD")
        assert propagation_rtt_ms(a, a) < 2.0


class TestCatalog:
    def test_contains_aws_region_metros(self):
        regions = DEFAULT_CATALOG.aws_region_metros()
        assert len(regions) == 15
        assert regions["us-east-1"].code == "IAD"
        assert regions["ap-south-1"].code == "BOM"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_CATALOG.get("XXX")

    def test_by_city(self):
        assert DEFAULT_CATALOG.by_city("ashburn").code == "IAD"
        assert DEFAULT_CATALOG.by_city("nowhere") is None

    def test_codes_unique(self):
        codes = DEFAULT_CATALOG.codes()
        assert len(codes) == len(set(codes))
        assert len(codes) >= 70

    def test_duplicate_code_rejected(self):
        rows = (
            ("AAA", "A", "US", 0.0, 0.0, None),
            ("AAA", "B", "US", 1.0, 1.0, None),
        )
        with pytest.raises(ValueError):
            MetroCatalog(rows)

    def test_nearest(self):
        lax = DEFAULT_CATALOG.get("LAX")
        nearest = DEFAULT_CATALOG.nearest(lax)
        assert nearest.code != "LAX"
        # Nearest to LA among the catalog should be on the US west coast.
        assert nearest.code in {"SJC", "PHX", "LAS", "SLC", "PDX", "SEA"}

    def test_nearest_with_candidates(self):
        lax = DEFAULT_CATALOG.get("LAX")
        candidates = [DEFAULT_CATALOG.get("LHR"), DEFAULT_CATALOG.get("SJC")]
        assert DEFAULT_CATALOG.nearest(lax, candidates).code == "SJC"

    def test_nearest_no_candidates_raises(self):
        lax = DEFAULT_CATALOG.get("LAX")
        with pytest.raises(ValueError):
            DEFAULT_CATALOG.nearest(lax, [lax])

    def test_distance_cache_consistent(self):
        d1 = DEFAULT_CATALOG.distance_km("IAD", "SJC")
        d2 = DEFAULT_CATALOG.distance_km("SJC", "IAD")
        assert d1 == d2
        direct = metro_distance_km(DEFAULT_CATALOG.get("IAD"), DEFAULT_CATALOG.get("SJC"))
        assert math.isclose(d1, direct)

    def test_rtt_ms_cached(self):
        r = DEFAULT_CATALOG.rtt_ms("IAD", "IAD")
        assert r == 0.0
        assert DEFAULT_CATALOG.rtt_ms("IAD", "FRA") > 20

    def test_non_region_metros(self):
        non = DEFAULT_CATALOG.non_region_metros()
        assert all(m.region_hint is None for m in non)
        assert len(non) == len(DEFAULT_CATALOG) - 15
