"""Tests for the data-plane fault subsystem.

Covers the :class:`DataFaultPlan` schedule itself, the per-dataset
degradations it drives, the order-independence contract of every
per-key RNG draw (WHOIS, as2org, IXP/PCH -- the regression for the old
shared-RNG lookup bug), the annotation fallback chain's provenance and
confidence edge cases, and the up-front dataset cross-validation pass.
"""

import random

import pytest

from repro.core.annotate import (
    AnnotationSource,
    CONF_BGP,
    CONF_IXP_MEMBER,
    CONF_IXP_NO_MEMBER,
    CONF_NONE,
    CONF_PRIVATE,
    CONF_WHOIS_ASN,
    CONF_WHOIS_NAME_ONLY,
    DISAGREEMENT_PENALTY,
    Disagreement,
    HopAnnotator,
)
from repro.datasets import (
    DataFaultPlan,
    as2org_from_world,
    ixp_directory_from_world,
    peeringdb_from_world,
    snapshot_from_world,
    validate_datasets,
)
from repro.datasets.as2org import AS2Org
from repro.datasets.bgp import Announcement, BGPSnapshot
from repro.datasets.ixp import IXPDirectory
from repro.datasets.whois import WhoisRecord, WhoisRegistry
from repro.net.ip import Prefix, parse_ip
from repro.net.rng import keyed_uniform

DIRTY = DataFaultPlan(
    seed=3,
    bgp_stale_rate=0.2,
    moas_rate=0.2,
    as2org_drop_rate=0.3,
    ixp_member_drop_rate=0.3,
    ixp_member_conflict_rate=0.3,
    whois_gap_rate=0.3,
    whois_nameonly_rate=0.3,
)


class TestDataFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="moas_rate"):
            DataFaultPlan(moas_rate=1.5)
        with pytest.raises(ValueError, match="whois_gap_rate"):
            DataFaultPlan(whois_gap_rate=-0.1)

    def test_parse_round_trip(self):
        plan = DataFaultPlan.parse(
            "bgp-stale=0.1,moas=0.05,as2org-drop=0.2,ixp-drop=0.3,"
            "ixp-conflict=0.4,whois-gap=0.5,whois-nameonly=0.6,seed=9"
        )
        assert plan == DataFaultPlan(
            seed=9,
            bgp_stale_rate=0.1,
            moas_rate=0.05,
            as2org_drop_rate=0.2,
            ixp_member_drop_rate=0.3,
            ixp_member_conflict_rate=0.4,
            whois_gap_rate=0.5,
            whois_nameonly_rate=0.6,
        )
        assert DataFaultPlan.parse(plan.describe()[len("DataFaultPlan("):-1]) == plan

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            DataFaultPlan.parse("bogus=0.5")
        with pytest.raises(ValueError, match="key=value"):
            DataFaultPlan.parse("moas")

    def test_empty_spec_is_clean(self):
        plan = DataFaultPlan.parse("")
        assert not plan.affects_datasets
        assert plan.signature() == "clean"
        assert DIRTY.signature() != "clean"

    def test_decisions_are_pure_functions_of_the_key(self):
        twin = DataFaultPlan(**{
            f: getattr(DIRTY, f)
            for f in ("seed", "bgp_stale_rate", "moas_rate", "as2org_drop_rate",
                      "ixp_member_drop_rate", "ixp_member_conflict_rate",
                      "whois_gap_rate", "whois_nameonly_rate")
        })
        prefix = Prefix.parse("198.51.100.0/24")
        for _ in range(3):  # repeated queries never drift
            assert DIRTY.bgp_announcement_stale(prefix) == twin.bgp_announcement_stale(prefix)
            assert DIRTY.moas_conflict(prefix, 100) == twin.moas_conflict(prefix, 100)
            for n in range(64):
                assert DIRTY.as2org_dropped(n) == twin.as2org_dropped(n)
                assert DIRTY.ixp_member_dropped(n) == twin.ixp_member_dropped(n)
                assert DIRTY.whois_gap(n) == twin.whois_gap(n)

    def test_different_seed_changes_decisions(self):
        other = DIRTY.replace(seed=DIRTY.seed + 1)
        keys = range(512)
        assert [DIRTY.whois_gap(k) for k in keys] != [other.whois_gap(k) for k in keys]

    def test_moas_conflict_never_returns_the_real_origin(self):
        hits = 0
        for n in range(256):
            prefix = Prefix.parse(f"10.{n}.0.0/16")
            for origin in (100, 64512, 65535):
                other = DataFaultPlan(seed=1, moas_rate=1.0).moas_conflict(
                    prefix, origin
                )
                assert other is not None and other != origin
                hits += 1
        assert hits == 768


class TestDirtyDatasetViews:
    def test_stale_rate_one_empties_the_snapshot(self, tiny_world):
        snap = snapshot_from_world(
            tiny_world, "r1", data_faults=DataFaultPlan(bgp_stale_rate=1.0)
        )
        assert snap.announcements == []

    def test_moas_rate_one_conflicts_every_prefix(self, tiny_world):
        snap = snapshot_from_world(
            tiny_world, "r1", data_faults=DataFaultPlan(moas_rate=1.0)
        )
        clean = snapshot_from_world(tiny_world, "r1")
        assert snap.moas_prefix_count == len(clean.announcements)
        ann = clean.announcements[0]
        origins = snap.origins_of(ann.prefix.network)
        assert len(origins) == 2 and origins[0] == ann.origin_asn
        assert snap.is_moas(ann.prefix.network)
        # The LPM winner is unchanged: collectors pick one best path too.
        assert snap.origin_of(ann.prefix.network) == ann.origin_asn

    def test_partial_dirt_drops_some_keeps_most(self, tiny_world):
        clean = snapshot_from_world(tiny_world, "r2")
        dirty = snapshot_from_world(tiny_world, "r2", data_faults=DIRTY)
        assert 0 < len(dirty.announcements) < len(clean.announcements)
        assert dirty.moas_prefix_count > 0

    def test_as2org_drop_spares_clouds(self, tiny_world):
        from repro.net.asn import AMAZON_PRIMARY_ASN

        dirty = as2org_from_world(
            tiny_world, seed=0, coverage=1.0,
            data_faults=DataFaultPlan(as2org_drop_rate=1.0),
        )
        clean = as2org_from_world(tiny_world, seed=0, coverage=1.0)
        assert AMAZON_PRIMARY_ASN in dirty
        assert len(dirty) < len(clean)
        assert all(
            info.kind == "cloud"
            for info in tiny_world.as_registry
            if info.asn in dirty
        )

    def test_ixp_drop_and_conflict(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        emptied = ixp_directory_from_world(
            tiny_world, pdb, seed=0,
            data_faults=DataFaultPlan(ixp_member_drop_rate=1.0),
        )
        assert all(not emptied.member_ips_of(i) for i in emptied.ixp_ids())

        conflicted = ixp_directory_from_world(
            tiny_world, pdb, seed=0,
            data_faults=DataFaultPlan(ixp_member_conflict_rate=1.0),
        )
        assert conflicted.conflict_count == len(pdb.netixlans)
        for ip in conflicted.conflicted_ips():
            claimed, other = conflicted.member_conflict(ip)
            assert claimed != other
            # PeeringDB wins in the merged view.
            assert conflicted.member_asn(ip) == claimed

    def test_whois_gap_and_nameonly(self, tiny_world):
        client = next(iter(tiny_world.client_ases.values()))
        ip = client.announced_prefixes[0].network + 3
        gone = WhoisRegistry(
            tiny_world, seed=0, asn_coverage=1.0,
            data_faults=DataFaultPlan(whois_gap_rate=1.0),
        )
        assert gone.lookup(ip) is None
        stripped = WhoisRegistry(
            tiny_world, seed=0, asn_coverage=1.0,
            data_faults=DataFaultPlan(whois_nameonly_rate=1.0),
        )
        record = stripped.lookup(ip)
        assert record is not None and record.asn is None
        assert record.holder_name


class TestOrderIndependence:
    """Per-key RNG audit: shuffled construction/lookup order is invisible."""

    def _client_ips(self, world):
        ips = []
        for client in world.client_ases.values():
            for prefix in client.announced_prefixes:
                ips.append(prefix.network + 1)
        return ips

    @pytest.mark.parametrize("faults", [None, DIRTY])
    def test_whois_lookup_order_invisible(self, tiny_world, faults):
        ips = self._client_ips(tiny_world)
        forward = WhoisRegistry(tiny_world, seed=4, data_faults=faults)
        shuffled = WhoisRegistry(tiny_world, seed=4, data_faults=faults)
        order = list(ips)
        random.Random(17).shuffle(order)
        for ip in order:  # warm the second registry's cache backwards
            shuffled.lookup(ip)
        assert [forward.lookup(ip) for ip in ips] == [
            shuffled.lookup(ip) for ip in ips
        ]

    def test_whois_draw_matches_the_keyed_contract(self, tiny_world):
        registry = WhoisRegistry(tiny_world, seed=4, asn_coverage=0.5)
        for ip in self._client_ips(tiny_world):
            record = registry.lookup(ip)
            assert record is not None
            expect_asn = keyed_uniform("whois", 4, ip >> 8) < 0.5
            assert (record.asn is not None) == expect_asn

    @pytest.mark.parametrize("faults", [None, DIRTY])
    def test_as2org_rebuild_identical(self, tiny_world, faults):
        a = as2org_from_world(tiny_world, seed=4, coverage=0.9, data_faults=faults)
        b = as2org_from_world(tiny_world, seed=4, coverage=0.9, data_faults=faults)
        for info in tiny_world.as_registry:
            assert a.org_of(info.asn) == b.org_of(info.asn)
            assert (info.asn in a) == (info.asn in b)

    @pytest.mark.parametrize("faults", [None, DIRTY])
    def test_ixp_rebuild_identical(self, tiny_world, faults):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        a = ixp_directory_from_world(tiny_world, pdb, seed=4, data_faults=faults)
        b = ixp_directory_from_world(tiny_world, pdb, seed=4, data_faults=faults)
        assert a.ixp_ids() == b.ixp_ids()
        for ixp_id in a.ixp_ids():
            assert a.member_ips_of(ixp_id) == b.member_ips_of(ixp_id)
        assert a.conflicted_ips() == b.conflicted_ips()
        for ip in a.conflicted_ips():
            assert a.member_conflict(ip) == b.member_conflict(ip)

    def test_annotator_order_invisible(self, tiny_world):
        def build():
            pdb = peeringdb_from_world(tiny_world, seed=0)
            return HopAnnotator(
                snapshot_from_world(tiny_world, "r1", data_faults=DIRTY),
                WhoisRegistry(tiny_world, seed=4, data_faults=DIRTY),
                as2org_from_world(tiny_world, seed=4, data_faults=DIRTY),
                ixp_directory_from_world(tiny_world, pdb, seed=4, data_faults=DIRTY),
            )

        ips = sorted(tiny_world.interfaces)
        backwards = list(reversed(ips))
        one, two = build(), build()
        for ip in backwards:
            two.annotate(ip)
        assert [one.annotate(ip) for ip in ips] == [two.annotate(ip) for ip in ips]


# --- hand-built fallback-chain edge cases ------------------------------


class FakeWhois:
    """A WHOIS stub keyed by exact IP (the annotator's only surface)."""

    def __init__(self, records):
        self._records = dict(records)

    def lookup(self, ip):
        return self._records.get(ip)

    def owner_asn(self, ip):
        record = self._records.get(ip)
        return record.asn if record else None


IXP_PREFIX = Prefix.parse("203.0.113.0/24")
IXP_MEMBER = parse_ip("203.0.113.10")
IXP_ORPHAN = parse_ip("203.0.113.20")
ANNOUNCED = parse_ip("198.51.100.5")
UNANNOUNCED = parse_ip("192.0.2.5")


def _chain(announcements=(), moas=None, whois=None, conflicts=None,
           members=None, as2org=None):
    bgp = BGPSnapshot(list(announcements), [], moas=moas)
    directory = IXPDirectory(
        [(IXP_PREFIX, 7)],
        {IXP_MEMBER: (7, 100)} if members is None else members,
        {7: ("ams",)},
        {7: "test-ix"},
        conflicts=conflicts,
    )
    return HopAnnotator(
        bgp,
        FakeWhois(whois or {}),
        AS2Org(as2org if as2org is not None else {100: "org-a", 300: "org-b"}),
        directory,
        home_org="org-home",
    )


class TestFallbackChain:
    def test_private_and_shared_space(self):
        annotator = _chain()
        for addr in ("10.1.2.3", "172.16.9.9", "100.64.1.1"):
            ann = annotator.annotate(parse_ip(addr))
            assert ann.source == AnnotationSource.PRIVATE
            assert (ann.asn, ann.org) == (0, None)
            assert ann.confidence == CONF_PRIVATE
            assert ann.disagreements == ()
            assert AnnotationSource.IXP in ann.sources_consulted

    def test_public_unannounced_with_whois_asn(self):
        annotator = _chain(
            whois={UNANNOUNCED: WhoisRecord("client-x", 300)}
        )
        ann = annotator.annotate(UNANNOUNCED)
        assert ann.source == AnnotationSource.WHOIS
        assert (ann.asn, ann.org) == (300, "org-b")
        assert ann.confidence == CONF_WHOIS_ASN
        # The chain consulted IXP, private, BGP, then WHOIS -- in order.
        assert ann.sources_consulted == ("ixp", "private", "bgp", "whois")

    def test_public_unannounced_name_only(self):
        annotator = _chain(
            whois={UNANNOUNCED: WhoisRecord("client-x", None)}
        )
        ann = annotator.annotate(UNANNOUNCED)
        assert ann.source == AnnotationSource.WHOIS
        assert (ann.asn, ann.org) == (0, "WHOIS-client-x")
        assert ann.confidence == CONF_WHOIS_NAME_ONLY

    def test_public_unannounced_without_record(self):
        ann = _chain().annotate(UNANNOUNCED)
        assert ann.source == AnnotationSource.NONE
        assert (ann.asn, ann.org) == (0, None)
        assert ann.confidence == CONF_NONE

    def test_bgp_moas_discounts_confidence(self):
        annotator = _chain(
            announcements=[Announcement(Prefix.parse("198.51.100.0/24"), 100)],
            moas={Prefix.parse("198.51.100.0/24"): (100, 64600)},
        )
        ann = annotator.annotate(ANNOUNCED)
        assert ann.source == AnnotationSource.BGP
        assert ann.asn == 100  # the LPM winner is still selected
        assert ann.disagreements == (Disagreement.BGP_MOAS,)
        assert ann.confidence == pytest.approx(CONF_BGP * DISAGREEMENT_PENALTY)

    def test_bgp_vs_whois_org_mismatch(self):
        annotator = _chain(
            announcements=[Announcement(Prefix.parse("198.51.100.0/24"), 100)],
            whois={ANNOUNCED: WhoisRecord("client-x", 300)},
        )
        ann = annotator.annotate(ANNOUNCED)
        assert ann.source == AnnotationSource.BGP
        assert ann.asn == 100
        assert ann.disagreements == (Disagreement.BGP_VS_WHOIS,)

    def test_bgp_whois_same_org_is_not_a_disagreement(self):
        annotator = _chain(
            announcements=[Announcement(Prefix.parse("198.51.100.0/24"), 100)],
            whois={ANNOUNCED: WhoisRecord("client-x", 300)},
            as2org={100: "org-a", 300: "org-a"},  # siblings
        )
        ann = annotator.annotate(ANNOUNCED)
        assert ann.disagreements == ()
        assert ann.confidence == CONF_BGP

    def test_ixp_member_vs_bgp_origin_conflict(self):
        # The IXP LAN address is (bogusly) announced in BGP under an AS
        # whose org differs from the directory's member ASN.
        annotator = _chain(
            announcements=[Announcement(IXP_PREFIX, 300)],
        )
        ann = annotator.annotate(IXP_MEMBER)
        assert ann.source == AnnotationSource.IXP
        assert ann.asn == 100  # the directory's member still wins
        assert ann.org == "org-a"
        assert ann.disagreements == (Disagreement.IXP_VS_BGP,)
        assert ann.confidence == pytest.approx(
            CONF_IXP_MEMBER * DISAGREEMENT_PENALTY
        )

    def test_ixp_source_conflict(self):
        annotator = _chain(conflicts={IXP_MEMBER: (100, 64600)})
        ann = annotator.annotate(IXP_MEMBER)
        assert ann.source == AnnotationSource.IXP
        assert ann.asn == 100
        assert Disagreement.IXP_SOURCE_CONFLICT in ann.disagreements

    def test_ixp_address_without_member_record(self):
        ann = _chain().annotate(IXP_ORPHAN)
        assert ann.source == AnnotationSource.IXP
        assert ann.is_ixp
        assert (ann.asn, ann.org) == (0, "IXP-7")
        assert ann.confidence == CONF_IXP_NO_MEMBER


class TestValidation:
    def test_clean_world_has_no_hard_disagreements(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        report = validate_datasets(
            snapshot_from_world(tiny_world, "r2"),
            WhoisRegistry(tiny_world, seed=0),
            as2org_from_world(tiny_world, seed=0),
            ixp_directory_from_world(tiny_world, pdb, seed=0),
        )
        assert report.checked_prefixes > 0
        assert report.total_disagreements == 0

    def test_dirty_world_is_flagged(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        report = validate_datasets(
            snapshot_from_world(tiny_world, "r2", data_faults=DIRTY),
            WhoisRegistry(tiny_world, seed=0, data_faults=DIRTY),
            as2org_from_world(tiny_world, seed=0, data_faults=DIRTY),
            ixp_directory_from_world(tiny_world, pdb, seed=0, data_faults=DIRTY),
        )
        assert report.moas_prefixes > 0
        assert report.ixp_member_conflicts > 0
        assert report.whois_gaps > 0
        assert report.total_disagreements > 0
        assert report.total_gaps > 0
        assert set(report.as_dict()) >= {
            "moas_prefixes", "whois_gaps", "as2org_missing_asns",
        }
        assert any("MOAS" in line for line in report.describe_lines())
