"""Golden-snapshot regression test for the end-to-end study.

``tests/data/golden_study.json`` pins the sha256 content digest (census
counts, campaign yields, ABI/CBI sets, segments, alias sets, VPI
intersections -- see ``StudyResult.digest_inputs``) of a tiny-scale study.
Every run here must reproduce that digest bit-for-bit:

* a clean serial run (the reference),
* parallel runs at workers = 2 and 4,
* a run under an injected transport-fault plan with retries,
* a run degraded by a poisoned shard, then killed and ``--resume``-d
  from its checkpoint journal under a clean plan,
* runs under a fixed ``DataFaultPlan`` (dirty datasets), which must be
  digest-stable across worker counts and shuffled lookup order while
  differing from the clean digest.

If an intentional change to the world model or inference shifts these
outputs, regenerate the snapshot (the ``world``/``config`` keys in the
JSON say exactly how to rebuild it) and account for the diff in review.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import (
    AmazonPeeringStudy,
    DataFaultPlan,
    FaultPlan,
    StudyConfig,
    WorldConfig,
    build_world,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_study.json"

#: the fixed dirty-dataset schedule the degradation tests run under.
DIRTY_PLAN = DataFaultPlan(
    seed=1,
    bgp_stale_rate=0.1,
    moas_rate=0.05,
    as2org_drop_rate=0.1,
    ixp_member_drop_rate=0.2,
    ixp_member_conflict_rate=0.1,
    whois_gap_rate=0.2,
    whois_nameonly_rate=0.3,
)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden_world(golden, tiny_world):
    spec = golden["world"]
    # The session fixture is the same world; assert rather than rebuild.
    assert (tiny_world.config.scale, tiny_world.config.seed) == (
        spec["scale"],
        spec["seed"],
    ), "tiny_world fixture drifted from the golden snapshot spec"
    return tiny_world


def _config(golden, **overrides):
    base = golden["config"]
    return StudyConfig(
        seed=base["seed"],
        expansion_stride=base["expansion_stride"],
        run_vpi=base["run_vpi"],
        run_crossval=base["run_crossval"],
        **overrides,
    )


def test_snapshot_is_regenerable(golden):
    """The committed spec must rebuild the committed world."""
    world = build_world(
        WorldConfig(scale=golden["world"]["scale"], seed=golden["world"]["seed"])
    )
    assert len(world.client_ases) > 0


def test_serial_run_matches_golden(golden, golden_world):
    result = AmazonPeeringStudy(golden_world, _config(golden)).run()
    summary = golden["summary"]
    assert len(result.abis) == summary["abis"]
    assert len(result.cbis) == summary["cbis"]
    assert len(result.final_segments) == summary["segments"]
    assert len(result.alias_sets) == summary["alias_sets"]
    assert result.peer_ases_round2 == summary["peer_ases_round2"]
    assert result.round1_stats.probes == summary["round1_probes"]
    assert result.round2_stats.probes == summary["round2_probes"]
    assert result.vpi.pool_size == summary["vpi_pool_size"]
    assert result.vpi.amazon_cbis == summary["vpi_amazon_cbis"]
    assert result.digest() == golden["digest"]


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_run_matches_golden(golden, golden_world, workers):
    result = AmazonPeeringStudy(
        golden_world, _config(golden, workers=workers)
    ).run()
    assert result.digest() == golden["digest"]


def test_fault_injected_run_matches_golden(golden, golden_world):
    plan = FaultPlan(seed=5, crash_rate=0.3, crash_attempts=1,
                     slow_rate=0.1, slow_seconds=0.02)
    result = AmazonPeeringStudy(
        golden_world,
        _config(golden, workers=2, fault_plan=plan, retry_backoff_s=0.0),
    ).run()
    assert result.digest() == golden["digest"]
    assert result.metrics.total_failures > 0, "the fault plan never fired"
    assert result.metrics.total_quarantined == 0
    assert not result.metrics.degraded


def test_quarantined_then_resumed_run_matches_golden(
    golden, golden_world, tmp_path
):
    checkpoint_dir = str(tmp_path / "ckpt")
    # First run: shard 0 of every campaign is poisoned, so the study
    # degrades (lost probes, completeness < 1) but still completes --
    # journalling every healthy shard along the way.
    degraded = AmazonPeeringStudy(
        golden_world,
        _config(
            golden,
            fault_plan=FaultPlan(poison_shards=(0,)),
            max_retries=0,
            retry_backoff_s=0.0,
            checkpoint_dir=checkpoint_dir,
        ),
    ).run()
    assert degraded.metrics.degraded
    assert degraded.metrics.total_quarantined > 0
    assert degraded.round1_stats.lost_probes > 0
    assert degraded.round1_stats.completeness < 1.0
    assert degraded.digest() != golden["digest"]

    # Second run: same campaign identity, clean plan, --resume.  Healthy
    # shards replay from the journal; the quarantined shard (and any
    # campaign whose targets shifted in the degraded run) is re-probed.
    # The merged result must be bit-identical to the clean serial run.
    resumed = AmazonPeeringStudy(
        golden_world,
        _config(golden, checkpoint_dir=checkpoint_dir, resume=True),
    ).run()
    assert resumed.digest() == golden["digest"]
    assert resumed.metrics.total_resumed > 0
    assert not resumed.metrics.degraded
    assert resumed.round1_stats.lost_probes == 0


# --- annotation-cache sharing ------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_private_annotation_caches_match_golden(golden, golden_world, workers):
    """Turning the shared cache *off* must change nothing but allocations."""
    result = AmazonPeeringStudy(
        golden_world,
        _config(golden, workers=workers, shared_annotation_cache=False),
    ).run()
    assert result.digest() == golden["digest"]


@pytest.mark.parametrize("shared_cache", [True, False])
def test_traced_run_matches_golden_with_either_cache_mode(
    golden, golden_world, shared_cache
):
    """Fine-grained tracing composes with both cache modes, digest-neutrally."""
    result = AmazonPeeringStudy(
        golden_world,
        _config(
            golden,
            workers=2,
            trace=True,
            shared_annotation_cache=shared_cache,
        ),
    ).run()
    assert result.digest() == golden["digest"]
    assert result.metrics.tracer.records, "tracing recorded no spans"


def test_shared_cache_actually_shares(golden, golden_world):
    """The r2 and VPI annotators hold one cache object; r1 never does
    (it reads a different BGP snapshot, so sharing would be unsound)."""
    study = AmazonPeeringStudy(golden_world, _config(golden))
    r2_cache = study.annotator_r2._cache
    for annotator in study.cloud_annotators.values():
        assert annotator._cache is r2_cache
    assert study.annotator_r1._cache is not r2_cache

    private = AmazonPeeringStudy(
        golden_world, _config(golden, shared_annotation_cache=False)
    )
    caches = {
        id(a._cache)
        for a in (private.annotator_r1, private.annotator_r2,
                  *private.cloud_annotators.values())
    }
    assert len(caches) == 2 + len(private.cloud_annotators)


# --- dirty datasets ----------------------------------------------------


@pytest.fixture(scope="module")
def dirty_serial(golden, golden_world):
    """The reference dirty run: serial, fixed DataFaultPlan."""
    return AmazonPeeringStudy(
        golden_world,
        _config(golden, data_fault_plan=DIRTY_PLAN, min_confidence=0.8),
    ).run()


def test_dirty_run_diverges_from_clean_but_reports_quality(
    golden, dirty_serial
):
    """The plan must actually inject dirt, and the report must show it."""
    assert dirty_serial.digest() != golden["digest"]
    dq = dirty_serial.data_quality
    assert dq is not None
    assert dq.fault_plan == DIRTY_PLAN
    assert dq.validation is not None
    assert dq.total_disagreements > 0
    assert dq.mean_confidence < 1.0

    from repro import render_report

    report = render_report(dirty_serial)
    assert "data quality:" in report
    assert "disagreements" in report
    assert "flagged below min-confidence" in report


@pytest.mark.parametrize("workers", [2, 4])
def test_dirty_run_digest_stable_across_workers(
    golden, golden_world, dirty_serial, workers
):
    result = AmazonPeeringStudy(
        golden_world,
        _config(
            golden,
            workers=workers,
            data_fault_plan=DIRTY_PLAN,
            min_confidence=0.8,
        ),
    ).run()
    assert result.digest() == dirty_serial.digest()


def test_dirty_run_digest_stable_under_shuffled_lookup_order(
    golden, golden_world, dirty_serial
):
    """Pre-warming dataset caches in a shuffled order must change nothing.

    The dataset views draw per-key randomness, so the order lookups
    happen in (and therefore the order caches fill in) must not leak
    into any derived view or the final digest.
    """
    import random

    study = AmazonPeeringStudy(
        golden_world,
        _config(golden, data_fault_plan=DIRTY_PLAN, min_confidence=0.8),
    )
    ips = list(golden_world.interfaces)
    random.Random(99).shuffle(ips)
    for ip in ips:
        study.whois.lookup(ip)
        study.annotator_r1.annotate(ip)
    result = study.run()
    assert result.digest() == dirty_serial.digest()
