"""Differential tests: the LPM index against the retained naive oracle.

``BGPSnapshot`` answers longest-prefix matches from a flattened
sorted-interval index (one bisect per lookup); ``NaiveLPMTable`` is the
pre-index per-length dict scan, kept precisely so these tests can assert
the two are *extensionally equal* -- same ``lookup``, ``origin_of``, and
``origins_of`` answers on every address -- over adversarial tables:
deeply nested prefixes, MOAS conflicts, duplicate announcements
(last-write-wins), /8 and /32 extremes, and thousands of random IPs
aimed at prefix boundaries.

A separate group locks the ``prefixes_of`` index: answers equal the
linear scan, and a call-count spy proves the full announcement list is
no longer consulted per query.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.datasets.bgp import Announcement, BGPSnapshot, NaiveLPMTable
from repro.net.ip import MAX_IPV4, Prefix, PrefixLPMIndex

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

lengths_st = st.integers(min_value=8, max_value=32)
asn_st = st.integers(min_value=1, max_value=99999)


@st.composite
def prefix_st(draw):
    length = draw(lengths_st)
    base = draw(st.integers(min_value=0, max_value=MAX_IPV4))
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    return Prefix(base & mask, length)


@st.composite
def table_st(draw):
    """A list of announcements biased toward nesting and duplicates."""
    prefixes = draw(st.lists(prefix_st(), min_size=1, max_size=40))
    announcements = []
    for i, prefix in enumerate(prefixes):
        announcements.append(Announcement(prefix, draw(asn_st)))
        # Nest a more-specific under every third prefix so covering
        # chains (the hard case for interval flattening) always occur.
        if i % 3 == 0 and prefix.length < 32:
            deeper = draw(
                st.integers(min_value=prefix.length + 1, max_value=32)
            )
            mask = (0xFFFFFFFF << (32 - deeper)) & 0xFFFFFFFF
            child = Prefix(prefix.network & mask, deeper)
            announcements.append(Announcement(child, draw(asn_st)))
        # Re-announce every fifth prefix: duplicates must keep the
        # *last* origin on both implementations.
        if i % 5 == 0:
            announcements.append(Announcement(prefix, draw(asn_st)))
    return announcements


def probe_ips(announcements, rng_ints):
    """Boundary-seeking probe set: edges of every prefix ± 1, plus noise."""
    ips = set(rng_ints)
    for ann in announcements:
        for edge in (ann.prefix.network, ann.prefix.last):
            for delta in (-1, 0, 1):
                ips.add(max(0, min(MAX_IPV4, edge + delta)))
    return sorted(ips)


def build_pair(announcements):
    snapshot = BGPSnapshot(announcements, as_links=())
    return snapshot, snapshot.naive_reference()


# ----------------------------------------------------------------------
# differential equivalence
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    announcements=table_st(),
    noise=st.lists(
        st.integers(min_value=0, max_value=MAX_IPV4), max_size=50
    ),
)
def test_lookup_equivalent_to_naive_oracle(announcements, noise):
    snapshot, naive = build_pair(announcements)
    for ip in probe_ips(announcements, noise):
        assert snapshot.lookup(ip) == naive.lookup(ip), hex(ip)
        assert snapshot.origin_of(ip) == naive.origin_of(ip), hex(ip)


@settings(max_examples=100, deadline=None)
@given(
    announcements=table_st(),
    origins=st.lists(asn_st, min_size=2, max_size=4),
    noise=st.lists(
        st.integers(min_value=0, max_value=MAX_IPV4), max_size=30
    ),
)
def test_origins_of_equivalent_under_moas(announcements, origins, noise):
    # Mark every fourth announced prefix as a MOAS conflict.
    moas = {
        ann.prefix: tuple(origins)
        for i, ann in enumerate(announcements)
        if i % 4 == 0
    }
    snapshot = BGPSnapshot(announcements, as_links=(), moas=moas)
    naive = snapshot.naive_reference()
    for ip in probe_ips(announcements, noise):
        assert snapshot.origins_of(ip) == naive.origins_of(ip), hex(ip)
        assert snapshot.is_moas(ip) == (len(naive.origins_of(ip)) > 1)


def test_duplicate_prefix_keeps_last_origin():
    prefix = Prefix(0x0A000000, 8)
    announcements = [
        Announcement(prefix, 100),
        Announcement(prefix, 200),
        Announcement(prefix, 300),
    ]
    snapshot, naive = build_pair(announcements)
    ip = 0x0A123456
    assert snapshot.lookup(ip) == (prefix, 300)
    assert naive.lookup(ip) == (prefix, 300)


def test_slash8_and_slash32_extremes():
    wide = Prefix(0x0A000000, 8)
    host = Prefix(0x0A0000FF, 32)
    snapshot, naive = build_pair(
        [Announcement(wide, 1), Announcement(host, 2)]
    )
    for ip, expected in (
        (0x0A0000FF, (host, 2)),      # the /32 wins inside the /8
        (0x0A0000FE, (wide, 1)),      # one below the host route
        (0x0A000100, (wide, 1)),      # one above
        (0x0AFFFFFF, (wide, 1)),      # last address of the /8
        (0x0B000000, None),           # first address after it
        (0x09FFFFFF, None),           # last address before it
        (0x00000000, None),
        (MAX_IPV4, None),
    ):
        assert snapshot.lookup(ip) == expected, hex(ip)
        assert naive.lookup(ip) == expected, hex(ip)


def test_deep_nesting_chain():
    """A full /8 → /30 covering chain: deepest prefix always wins."""
    announcements = [
        Announcement(Prefix(0xC0000000 & ((0xFFFFFFFF << (32 - n)) & 0xFFFFFFFF), n), n)
        for n in range(8, 31)
    ]
    snapshot, naive = build_pair(announcements)
    for ip in range(0xC0000000, 0xC0000000 + 4):
        assert snapshot.lookup(ip) == naive.lookup(ip) == (Prefix(0xC0000000, 30), 30)
    # Walking out of the chain peels one nesting level at a time.
    for ip in (0xC0000004, 0xC0000010, 0xC0001000, 0xC0800000, 0xDFFFFFFF):
        assert snapshot.lookup(ip) == naive.lookup(ip), hex(ip)


def test_empty_table():
    snapshot, naive = build_pair([])
    for ip in (0, 1, 0x7F000001, MAX_IPV4):
        assert snapshot.lookup(ip) is None
        assert naive.lookup(ip) is None
        assert snapshot.origins_of(ip) == () == naive.origins_of(ip)


def test_indexed_lookup_costs_one_probe():
    """The acceptance criterion's counters: 1 probe/lookup vs up to 33."""
    announcements = [
        Announcement(Prefix(0x0A000000, 8), 1),
        Announcement(Prefix(0x0A000000, 24), 2),
        Announcement(Prefix(0x0A000080, 25), 3),
    ]
    snapshot, naive = build_pair(announcements)
    ips = [0x0A0000FF, 0x0A000001, 0x0B000000, 0x0A0100FF]
    for ip in ips:
        assert snapshot.lookup(ip) == naive.lookup(ip)
    assert snapshot.lookup_count == naive.lookup_count == len(ips)
    assert snapshot.probe_count == len(ips)
    assert naive.probe_count >= 2 * snapshot.probe_count


# ----------------------------------------------------------------------
# PrefixLPMIndex unit surface
# ----------------------------------------------------------------------


def test_index_segment_count_is_bounded():
    """Flattening n prefixes yields at most 2n+1 disjoint segments."""
    announcements = [
        Announcement(Prefix((i << 24) & 0xFF000000, 8), i + 1)
        for i in range(0, 200, 2)
    ]
    index = PrefixLPMIndex(
        (ann.prefix, ann.origin_asn) for ann in announcements
    )
    assert 0 < index.segment_count <= 2 * len(announcements) + 1


# ----------------------------------------------------------------------
# prefixes_of: indexed by origin ASN, no per-query announcement scan
# ----------------------------------------------------------------------


def test_prefixes_of_matches_linear_scan():
    announcements = [
        Announcement(Prefix(0x0A000000, 8), 100),
        Announcement(Prefix(0x14000000, 8), 200),
        Announcement(Prefix(0x0A010000, 16), 100),
        Announcement(Prefix(0x1E000000, 8), 300),
        Announcement(Prefix(0x0A020000, 16), 100),
    ]
    snapshot = BGPSnapshot(announcements, as_links=())
    for asn in (100, 200, 300, 999):
        expected = [
            ann.prefix for ann in announcements if ann.origin_asn == asn
        ]
        assert snapshot.prefixes_of(asn) == expected


def test_prefixes_of_does_not_scan_announcements():
    """Call-count spy: queries never iterate the announcement list."""

    class SpyList(list):
        def __init__(self, items):
            super().__init__(items)
            self.iterations = 0

        def __iter__(self):
            self.iterations += 1
            return super().__iter__()

    announcements = [
        Announcement(Prefix((i << 16) & 0xFFFF0000, 16), i % 7)
        for i in range(1, 300)
    ]
    snapshot = BGPSnapshot(announcements, as_links=())
    spy = SpyList(snapshot.announcements)
    snapshot.announcements = spy
    for asn in range(0, 7):
        assert snapshot.prefixes_of(asn)
    for asn in (1000, 2000):
        assert snapshot.prefixes_of(asn) == []
    assert spy.iterations == 0, (
        "prefixes_of iterated the announcement list "
        f"{spy.iterations} time(s); it must use the origin index"
    )
