"""Tests for ground-truth evaluation, ASCII rendering, and result props."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.ascii import ascii_cdf, ascii_hist
from repro.core.evaluation import evaluate_study
from repro.core.results import StudyResult


class TestEvaluation:
    @pytest.fixture(scope="class")
    def evaluation(self, study):
        runner, result = study
        return evaluate_study(runner.world, result)

    def test_metrics_bounded(self, evaluation):
        b = evaluation.borders
        for value in (b.abi_precision, b.abi_recall, b.cbi_precision, b.cbi_recall):
            assert 0.0 <= value <= 1.0
        assert 0.0 <= evaluation.pinning.accuracy <= 1.0
        assert 0.0 <= evaluation.vpi.precision <= 1.0
        assert 0.0 <= evaluation.vpi.lower_bound_tightness <= 1.0

    def test_detectable_subset_of_true(self, evaluation):
        assert evaluation.vpi.detectable_vpi_cbis <= evaluation.vpi.true_vpi_cbis

    def test_unobserved_includes_private(self, evaluation):
        assert (
            evaluation.private_vpi_interconnections
            <= evaluation.unobserved_interconnections
        )

    def test_pinned_count_consistent(self, study, evaluation):
        _runner, result = study
        assert evaluation.pinning.evaluated <= len(result.pinning.pinned)
        assert evaluation.pinning.correct <= evaluation.pinning.evaluated

    def test_empty_result_evaluates_cleanly(self, study):
        runner, _result = study
        empty = StudyResult()
        ev = evaluate_study(runner.world, empty)
        assert ev.borders.abi_precision == 0.0
        assert ev.vpi.detected == 0
        # Every real interconnection counts as unobserved.
        visible = [
            i
            for i in runner.world.interconnections.values()
        ]
        assert ev.unobserved_interconnections == len(visible)


class TestAsciiRendering:
    def test_cdf_shape(self):
        art = ascii_cdf([1, 2, 3, 4, 5], width=20, height=4, title="t")
        lines = art.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 4 + 1  # title + rows + axis
        assert all(len(l) <= 26 for l in lines[1:-1])

    def test_cdf_marker_column(self):
        art = ascii_cdf([10.0] * 5 + [0.5], width=20, height=4, marker=2.0, x_max=10.0)
        assert "|" in art

    def test_cdf_empty(self):
        assert "(no data)" in ascii_cdf([], title="x")

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=80))
    def test_cdf_never_crashes_and_is_monotone(self, values):
        art = ascii_cdf(values, width=30, height=5)
        rows = [l[5:] for l in art.splitlines()[:-1]]
        # Each row's '#' region must be a suffix (CDF is nondecreasing).
        for row in rows:
            stripped = row.rstrip()
            if "#" in stripped:
                first = stripped.index("#")
                tail = stripped[first:]
                assert set(tail) <= {"#"}

    def test_hist(self):
        art = ascii_hist([("a", 0.5), ("bb", 1.0)], width=10, title="h")
        lines = art.splitlines()
        assert lines[0] == "h"
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_hist_empty(self):
        assert "(no data)" in ascii_hist([])


class TestStudyResultProperties:
    def test_coverage_properties_empty(self):
        result = StudyResult()
        assert result.metro_pin_coverage == 0.0
        assert result.total_pin_coverage == 0.0
        assert result.bgp_recovery_fraction == 0.0

    def test_coverages_ordered(self, study_result):
        assert (
            0.0
            <= study_result.metro_pin_coverage
            <= study_result.total_pin_coverage
            <= 1.0
        )

    def test_runtime_sections_present(self, study_result):
        for key in ("round1", "round2", "heuristics", "alias", "pinning"):
            assert key in study_result.runtime_seconds
            assert study_result.runtime_seconds[key] >= 0
