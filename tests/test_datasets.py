"""Tests for the public-data substrates (BGP, WHOIS, as2org, PeeringDB, IXP)."""

import pytest

from repro.datasets.as2org import AS2Org, as2org_from_world
from repro.datasets.bgp import Announcement, BGPSnapshot, snapshot_from_world
from repro.datasets.ixp import ixp_directory_from_world
from repro.datasets.peeringdb import peeringdb_from_world
from repro.datasets.relationships import relationships_from_world
from repro.datasets.whois import WhoisRegistry
from repro.net.asn import AMAZON_ORG_ID, AMAZON_PRIMARY_ASN
from repro.net.ip import Prefix, parse_ip


class TestBGPSnapshot:
    def test_longest_prefix_match(self):
        snap = BGPSnapshot(
            [
                Announcement(Prefix.parse("10.0.0.0/8"), 1),
                Announcement(Prefix.parse("10.1.0.0/16"), 2),
            ],
            [],
        )
        assert snap.origin_of(parse_ip("10.1.2.3")) == 2
        assert snap.origin_of(parse_ip("10.2.2.3")) == 1
        assert snap.origin_of(parse_ip("11.0.0.1")) is None

    def test_links(self):
        snap = BGPSnapshot([], [(AMAZON_PRIMARY_ASN, 42), (5, 6)])
        assert snap.has_link(42, AMAZON_PRIMARY_ASN)
        assert snap.amazon_peers() == {42}

    def test_prefixes_of(self):
        p = Prefix.parse("10.0.0.0/20")
        snap = BGPSnapshot([Announcement(p, 7)], [])
        assert snap.prefixes_of(7) == [p]

    def test_world_snapshot_covers_client_space(self, tiny_world):
        snap = snapshot_from_world(tiny_world, "r1")
        client = next(iter(tiny_world.client_ases.values()))
        block = client.announced_prefixes[0]
        assert snap.origin_of(block.network + 5) == client.asn

    def test_late_announcements_only_in_r2(self, tiny_world):
        r1 = snapshot_from_world(tiny_world, "r1")
        r2 = snapshot_from_world(tiny_world, "r2")
        late_clients = [
            c for c in tiny_world.client_ases.values() if c.late_announced
        ]
        if not late_clients:
            pytest.skip("no late announcements at this seed")
        block = late_clients[0].late_announced[0]
        assert r1.origin_of(block.network + 1) is None
        assert r2.origin_of(block.network + 1) == late_clients[0].asn

    def test_bgp_links_only_visible_peerings(self, tiny_world):
        snap = snapshot_from_world(tiny_world, "r1")
        peers = snap.amazon_peers()
        visible = {
            i.peer_asn
            for i in tiny_world.interconnections.values()
            if i.bgp_visible
        }
        assert peers == visible

    def test_cloud_infra_space_unannounced(self, tiny_world):
        snap = snapshot_from_world(tiny_world, "r2")
        infra = tiny_world.cloud_infra_blocks["amazon"][0]
        assert snap.origin_of(infra.network + 10) is None


class TestWhois:
    def test_lookup_owner(self, tiny_world):
        whois = WhoisRegistry(tiny_world, seed=0, asn_coverage=1.0)
        client = next(iter(tiny_world.client_ases.values()))
        block = client.announced_prefixes[0]
        record = whois.lookup(block.network + 3)
        assert record is not None
        assert record.asn == client.asn

    def test_unallocated_is_none(self, tiny_world):
        whois = WhoisRegistry(tiny_world)
        assert whois.lookup(parse_ip("11.0.0.1")) is None

    def test_amazon_infra_resolves_to_amazon(self, tiny_world):
        whois = WhoisRegistry(tiny_world, asn_coverage=1.0)
        infra = tiny_world.cloud_infra_blocks["amazon"][0]
        record = whois.lookup(infra.network + 9)
        assert record.holder_name == "amazon"
        assert record.asn == AMAZON_PRIMARY_ASN

    def test_asn_coverage_drops_asn_not_holder(self, tiny_world):
        whois = WhoisRegistry(tiny_world, seed=1, asn_coverage=0.0)
        client = next(iter(tiny_world.client_ases.values()))
        record = whois.lookup(client.announced_prefixes[0].network + 3)
        assert record is not None
        assert record.asn is None
        assert record.holder_name


class TestAS2Org:
    def test_amazon_siblings_collapse(self, tiny_world):
        dataset = as2org_from_world(tiny_world, seed=0)
        assert dataset.same_org(16509, 7224)
        assert dataset.org_of(16509) == AMAZON_ORG_ID

    def test_coverage_gap(self, tiny_world):
        sparse = as2org_from_world(tiny_world, seed=0, coverage=0.5)
        full = as2org_from_world(tiny_world, seed=0, coverage=1.0)
        assert len(sparse) < len(full)

    def test_clouds_always_covered(self, tiny_world):
        sparse = as2org_from_world(tiny_world, seed=0, coverage=0.0)
        assert 16509 in sparse
        assert 8075 in sparse

    def test_same_org_none_for_unknown(self):
        dataset = AS2Org({1: "A"})
        assert not dataset.same_org(2, 2)


class TestPeeringDB:
    def test_ixps_have_prefixes(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        assert pdb.ixps
        for ixp in pdb.ixps:
            assert ixp.prefix.length <= 24

    def test_member_lookup(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0, netixlan_coverage=1.0)
        true_members = [
            (ixp, asn, ip)
            for ixp in tiny_world.ixps.values()
            for asn, ips in ixp.member_ips.items()
            for ip in ips
        ]
        if not true_members:
            pytest.skip("no IXP members at this seed")
        ixp, asn, ip = true_members[0]
        rec = pdb.member_of_ip(ip)
        assert rec is not None and rec.asn == asn

    def test_netixlan_coverage_partial(self, tiny_world):
        full = peeringdb_from_world(tiny_world, seed=0, netixlan_coverage=1.0)
        partial = peeringdb_from_world(tiny_world, seed=0, netixlan_coverage=0.4)
        assert len(partial.netixlans) < len(full.netixlans)

    def test_single_metro_asns_consistent(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0, tenant_coverage=1.0)
        for asn, metro in pdb.single_metro_asns().items():
            assert pdb.metros_of_asn(asn) <= {metro} | set()

    def test_metros_of_unknown_asn_empty(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        assert pdb.metros_of_asn(999999) == set()


class TestIXPDirectory:
    def test_prefix_membership(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        directory = ixp_directory_from_world(tiny_world, pdb, seed=0)
        ixp = next(iter(tiny_world.ixps.values()))
        assert directory.ixp_of(ixp.prefix.network + 5) == ixp.ixp_id
        assert directory.is_ixp_address(ixp.prefix.network + 5)
        assert not directory.is_ixp_address(parse_ip("11.0.0.1"))

    def test_pch_supplements_members(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0, netixlan_coverage=0.0)
        directory = ixp_directory_from_world(
            tiny_world, pdb, seed=0, pch_recovery_rate=1.0
        )
        total_members = sum(
            len(ips)
            for ixp in tiny_world.ixps.values()
            for ips in ixp.member_ips.values()
        )
        recovered = sum(
            len(directory.member_ips_of(i)) for i in directory.ixp_ids()
        )
        assert recovered == total_members

    def test_multi_metro_flag(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        directory = ixp_directory_from_world(tiny_world, pdb, seed=0)
        for ixp in tiny_world.ixps.values():
            assert directory.is_multi_metro(ixp.ixp_id) == ixp.multi_metro

    def test_cities_match_world(self, tiny_world):
        pdb = peeringdb_from_world(tiny_world, seed=0)
        directory = ixp_directory_from_world(tiny_world, pdb, seed=0)
        for ixp in tiny_world.ixps.values():
            assert directory.cities_of(ixp.ixp_id) == tuple(ixp.metro_codes)


class TestRelationships:
    def test_visible_amazon_links(self, tiny_world):
        rel = relationships_from_world(tiny_world)
        visible = {
            i.peer_asn for i in tiny_world.interconnections.values() if i.bgp_visible
        }
        assert rel.amazon_links() == visible

    def test_transit_edges_for_every_client(self, tiny_world):
        rel = relationships_from_world(tiny_world)
        from repro.net.asn import TRANSIT_ASNS

        for asn in tiny_world.client_ases:
            providers = rel.providers_of(asn)
            assert providers
            assert providers <= set(TRANSIT_ASNS)

    def test_stub_providers_are_their_carriers(self, tiny_world):
        rel = relationships_from_world(tiny_world)
        stubs = [
            (owner, carrier)
            for owner, carrier in tiny_world.asn_carrier.items()
            if owner != carrier
        ]
        if not stubs:
            pytest.skip("no downstream stubs at this seed")
        for owner, carrier in stubs:
            assert rel.providers_of(owner) == {carrier}

    def test_cone_sizes_positive(self, tiny_world):
        rel = relationships_from_world(tiny_world)
        for asn, client in tiny_world.client_ases.items():
            assert rel.cone_slash24(asn) == client.cone_slash24
            assert rel.cone_slash24(asn) >= 1

    def test_unknown_asn_cone_default(self, tiny_world):
        rel = relationships_from_world(tiny_world)
        assert rel.cone_slash24(123456789) == 1
