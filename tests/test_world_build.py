"""Invariant and determinism tests for the world builder."""

import pytest

from repro.net.asn import AMAZON_ASNS, AMAZON_PRIMARY_ASN
from repro.net.ip import is_private
from repro.world.build import WorldConfig, build_world
from repro.world.entities import PeeringType, RouterRole
from repro.world.profiles import ALL_GROUPS


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(WorldConfig(scale=0.01, seed=5))
        b = build_world(WorldConfig(scale=0.01, seed=5))
        assert len(a.interconnections) == len(b.interconnections)
        assert sorted(a.interfaces) == sorted(b.interfaces)
        assert {i.cbi_ip for i in a.interconnections.values()} == {
            i.cbi_ip for i in b.interconnections.values()
        }

    def test_different_seed_differs(self):
        a = build_world(WorldConfig(scale=0.01, seed=5))
        b = build_world(WorldConfig(scale=0.01, seed=6))
        assert {i.cbi_ip for i in a.interconnections.values()} != {
            i.cbi_ip for i in b.interconnections.values()
        }

    def test_scale_controls_population(self):
        small = build_world(WorldConfig(scale=0.01, seed=5))
        larger = build_world(WorldConfig(scale=0.03, seed=5))
        assert len(larger.client_ases) > 2 * len(small.client_ases)
        assert len(larger.interconnections) > len(small.interconnections)


class TestStructuralInvariants:
    def test_interconnection_endpoints_exist(self, tiny_world):
        w = tiny_world
        for icx in w.interconnections.values():
            assert icx.abi_router_id in w.routers
            assert icx.cbi_router_id in w.routers
            assert icx.abi_ip in w.interfaces
            assert icx.cbi_ip in w.interfaces

    def test_abi_on_amazon_router(self, tiny_world):
        w = tiny_world
        for icx in w.interconnections.values():
            router = w.routers[icx.abi_router_id]
            assert router.owner_asn == AMAZON_PRIMARY_ASN

    def test_cbi_on_client_router(self, tiny_world):
        w = tiny_world
        for icx in w.interconnections.values():
            router = w.routers[icx.cbi_router_id]
            assert router.owner_asn == icx.peer_asn

    def test_interfaces_belong_to_their_router(self, tiny_world):
        w = tiny_world
        for ip, iface in w.interfaces.items():
            assert ip in w.routers[iface.router_id].interface_ips

    def test_ecmp_contains_primary(self, tiny_world):
        for icx in tiny_world.interconnections.values():
            if icx.abi_ecmp:
                assert icx.abi_ip in icx.abi_ecmp

    def test_regions_present(self, tiny_world):
        assert len(tiny_world.regions["amazon"]) == 15
        for cloud in ("microsoft", "google", "ibm", "oracle"):
            assert cloud in tiny_world.regions
            assert tiny_world.regions[cloud]

    def test_region_vms_have_internal_paths(self, tiny_world):
        for region in tiny_world.regions["amazon"].values():
            assert len(region.internal_path) >= 2
            first_ip = region.internal_path[0][1]
            assert is_private(first_ip)

    def test_peering_types_cover_profile_groups(self, tiny_world):
        w = tiny_world
        types = {icx.ptype for icx in w.interconnections.values()}
        assert PeeringType.PUBLIC_IXP in types
        assert PeeringType.PRIVATE_PHYSICAL in types
        assert PeeringType.PRIVATE_VIRTUAL in types

    def test_public_icx_cbi_inside_ixp_prefix(self, tiny_world):
        w = tiny_world
        for icx in w.interconnections.values():
            if icx.ptype == PeeringType.PUBLIC_IXP:
                ixp = w.ixps[icx.ixp_id]
                assert icx.cbi_ip in ixp.prefix

    def test_private_icx_have_subnets(self, tiny_world):
        for icx in tiny_world.interconnections.values():
            if icx.ptype != PeeringType.PUBLIC_IXP and not icx.uses_private_addresses:
                assert icx.subnet is not None
                assert icx.cbi_ip == icx.subnet.client_side

    def test_client_profiles_from_census(self, tiny_world):
        for client in tiny_world.client_ases.values():
            assert client.profile
            assert client.profile <= set(ALL_GROUPS)

    def test_client_icx_groups_match_profile(self, tiny_world):
        w = tiny_world
        for client in w.client_ases.values():
            assert client.icx_ids, f"client {client.asn} has no interconnections"

    def test_routes_reference_valid_carriers(self, tiny_world):
        w = tiny_world
        for route in w.routes.values():
            assert route.carrier_asn in w.asn_carrier.values() or route.carrier_asn in w.client_ases

    def test_sweep_has_no_duplicates(self, tiny_world):
        nets = [p.network for p in tiny_world.sweep_slash24s]
        assert len(nets) == len(set(nets))

    def test_via_metros_for_border_interfaces(self, tiny_world):
        w = tiny_world
        fabric_metros_of_cbi = {}
        for icx in w.interconnections.values():
            fabric_metros_of_cbi.setdefault(icx.cbi_ip, set()).add(icx.metro_code)
        for icx in w.interconnections.values():
            if icx.uses_private_addresses:
                continue
            assert icx.cbi_ip in w.via_metros
            legs = w.via_metros[icx.cbi_ip]
            # Multi-region ports keep the legs of their first provisioning.
            assert legs[0] in fabric_metros_of_cbi[icx.cbi_ip]

    def test_remote_icx_has_two_legs(self, tiny_world):
        w = tiny_world
        for icx in w.interconnections.values():
            if icx.remote and not icx.uses_private_addresses:
                legs = w.via_metros[icx.cbi_ip]
                if len(legs) == 2:
                    assert legs == (icx.metro_code, icx.client_metro_code)

    def test_vpi_mirrors_exist_for_multicloud_ports(self, tiny_world):
        w = tiny_world
        for icx in w.interconnections.values():
            others = set(icx.vpi_clouds) - {"amazon"}
            if not others or icx.uses_private_addresses:
                continue
            for cloud in others:
                assert (cloud, icx.icx_id) in w.mirror_of

    def test_mirror_shares_ip_only_when_port_shared(self, tiny_world):
        w = tiny_world
        for (cloud, icx_id), mirror_id in w.mirror_of.items():
            icx = w.interconnections[icx_id]
            mirror = w.other_cloud_icx[cloud][mirror_id]
            shared = w.interfaces[icx.cbi_ip].shared_port_response
            if shared:
                assert mirror.cbi_ip == icx.cbi_ip
            else:
                assert mirror.cbi_ip != icx.cbi_ip

    def test_backbone_interfaces_on_border_routers(self, tiny_world):
        w = tiny_world
        for rid, bb_ip in w.router_backbone_iface.items():
            assert w.interfaces[bb_ip].router_id == rid

    def test_client_router_first_interface_is_loopback(self, tiny_world):
        """Third-party responders must expose a client-owned default
        address, never a cloud-side port (§7.1 soundness)."""
        w = tiny_world
        cbis = w.true_cbis()
        for router in w.routers.values():
            if router.role != RouterRole.CLIENT_BORDER or not router.interface_ips:
                continue
            first = router.interface_ips[0]
            if is_private(first):
                continue  # private-address VPI routers
            assert first not in cbis or w.interfaces[first].addr_owner_asn not in AMAZON_ASNS

    def test_facility_tenants_within_footprints(self, tiny_world):
        w = tiny_world
        for fac in w.facilities.values():
            for asn in fac.tenant_asns:
                client = w.client_ases[asn]
                assert fac.metro_code in client.footprint_metros

    def test_ixp_members_recorded(self, tiny_world):
        w = tiny_world
        member_total = sum(len(ips) for ixp in w.ixps.values() for ips in ixp.member_ips.values())
        public = [
            i for i in w.interconnections.values() if i.ptype == PeeringType.PUBLIC_IXP
        ]
        assert member_total >= len(public)

    def test_private_vpi_cbis_are_private_addresses(self, tiny_world):
        for icx in tiny_world.interconnections.values():
            if icx.uses_private_addresses:
                assert is_private(icx.cbi_ip)
                assert icx.ptype == PeeringType.PRIVATE_VIRTUAL
