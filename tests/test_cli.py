"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 0.05
        assert args.seed == 7
        assert not args.with_bdrmap

    def test_flags(self):
        args = build_parser().parse_args(
            ["--scale", "0.2", "--seed", "9", "--skip-vpi", "--with-bdrmap"]
        )
        assert args.scale == 0.2
        assert args.seed == 9
        assert args.skip_vpi
        assert args.with_bdrmap

    def test_worker_flags(self):
        args = build_parser().parse_args(["--workers", "4", "--progress"])
        assert args.workers == 4
        assert args.progress
        assert build_parser().parse_args([]).workers == 1


class TestMain:
    def test_tiny_run(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--seed", "13",
                "--expansion-stride", "16",
                "--skip-vpi",
                "--skip-crossval",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 5" in out

    def test_parallel_run_with_progress(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--seed", "13",
                "--expansion-stride", "16",
                "--skip-vpi",
                "--skip-crossval",
                "--workers", "2",
                "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "campaign throughput:" in captured.out
        assert "round1:" in captured.err

    def test_run_with_evaluation(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--seed", "13",
                "--expansion-stride", "16",
                "--skip-vpi",
                "--skip-crossval",
                "--with-evaluation",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ground-truth evaluation" in out
