"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 0.05
        assert args.seed == 7
        assert not args.with_bdrmap

    def test_flags(self):
        args = build_parser().parse_args(
            ["--scale", "0.2", "--seed", "9", "--skip-vpi", "--with-bdrmap"]
        )
        assert args.scale == 0.2
        assert args.seed == 9
        assert args.skip_vpi
        assert args.with_bdrmap

    def test_worker_flags(self):
        args = build_parser().parse_args(["--workers", "4", "--progress"])
        assert args.workers == 4
        assert args.progress
        assert build_parser().parse_args([]).workers == 1

    def test_data_fault_flags(self):
        args = build_parser().parse_args(
            [
                "--data-fault-plan", "whois-gap=0.2,seed=3",
                "--min-confidence", "0.8",
                "--sensitivity",
            ]
        )
        assert args.data_fault_plan == "whois-gap=0.2,seed=3"
        assert args.min_confidence == 0.8
        assert args.sensitivity
        assert build_parser().parse_args([]).data_fault_plan is None
        assert build_parser().parse_args([]).min_confidence == 0.0

    def test_sensitivity_requires_a_plan(self, capsys):
        with pytest.raises(SystemExit):
            main(["--sensitivity"])
        assert "--data-fault-plan" in capsys.readouterr().err

    def test_bad_data_fault_plan_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--data-fault-plan", "bogus=1"])
        assert "unknown data-fault-plan key" in capsys.readouterr().err


class TestMain:
    def test_tiny_run(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--seed", "13",
                "--expansion-stride", "16",
                "--skip-vpi",
                "--skip-crossval",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 5" in out

    def test_parallel_run_with_progress(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--seed", "13",
                "--expansion-stride", "16",
                "--skip-vpi",
                "--skip-crossval",
                "--workers", "2",
                "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "campaign throughput:" in captured.out
        assert "round1:" in captured.err

    def test_dirty_run_with_sensitivity(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--seed", "13",
                "--expansion-stride", "16",
                "--skip-vpi",
                "--skip-crossval",
                "--data-fault-plan",
                "bgp-stale=0.1,moas=0.1,whois-gap=0.2,ixp-conflict=0.2,seed=2",
                "--min-confidence", "0.8",
                "--sensitivity",
                "--digest",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "data quality:" in out
        assert "sensitivity (clean -> dirty paper-table deltas):" in out
        assert "study digest:" in out

    def test_run_with_evaluation(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--seed", "13",
                "--expansion-stride", "16",
                "--skip-vpi",
                "--skip-crossval",
                "--with-evaluation",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ground-truth evaluation" in out
