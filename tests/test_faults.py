"""Fault injection and resilience: FaultPlan, retries, quarantine,
checkpoints -- and the determinism contract that ties them together.

The core guarantee under test: a campaign run with injected transport
faults (crashes, slow shards, timeouts) or a checkpoint kill/resume
produces the *same trace stream and stats* as a clean serial run, while
observation faults (probe loss, rate limiting) change trace content as a
pure function of the fault seed -- never of the execution schedule.
"""

from __future__ import annotations

import json

import pytest

from repro.measure.campaign import CampaignStats, CloudMembership, ProbeCampaign
from repro.measure.checkpoint import CampaignCheckpoint, CheckpointStore
from repro.measure.executor import RetryPolicy, ShardedExecutor, plan_shards
from repro.measure.faults import FaultPlan, InjectedWorkerCrash
from repro.measure.metrics import CampaignProgress
from repro.measure.traceroute import TracerouteEngine


def _trace_key(trace):
    return (
        trace.cloud,
        trace.region,
        trace.dst,
        trace.stop_reason,
        tuple((h.ttl, h.ip, h.rtt_ms) for h in trace.hops),
    )


def _fingerprint(traces):
    return [_trace_key(t) for t in traces]


def _run(world, targets, regions, workers=1, faults=None, retry=None,
         engine=None, shard_size=None, progress=None,
         checkpoint_store=None, label="campaign"):
    """Run one campaign, returning (trace fingerprints, stats)."""
    engine = engine or TracerouteEngine(world, faults=faults)
    executor = ShardedExecutor(
        world,
        engine,
        CloudMembership(world, "amazon"),
        workers=workers,
        shard_size=shard_size,
        faults=faults,
        retry=retry or RetryPolicy(backoff_base_s=0.0),
    )
    traces = []
    stats = CampaignStats()
    executor.run(
        targets,
        traces.append,
        stats,
        regions=regions,
        progress=progress,
        checkpoint_store=checkpoint_store,
        checkpoint_label=label,
    )
    return _fingerprint(traces), stats


@pytest.fixture(scope="module")
def probe_space(tiny_world):
    """A small but multi-shard campaign: 2 regions x 12 targets."""
    campaign = ProbeCampaign(tiny_world)
    targets = list(campaign.round1_targets())[:12]
    regions = campaign.regions[:2]
    return targets, regions


# ----------------------------------------------------------------------
# FaultPlan: validation, parsing, and pure-function determinism.
# ----------------------------------------------------------------------


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"crash_rate": 1.5},
            {"slow_rate": 2.0},
            {"rate_limit_rate": -1.0},
            {"crash_attempts": 0},
            {"slow_seconds": -0.5},
            {"rate_limit_window": 0},
            {"region_loss": {"use1": 1.5}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_same_fields_same_schedule(self):
        a = FaultPlan(seed=3, crash_rate=0.4, slow_rate=0.3, slow_seconds=0.1)
        b = FaultPlan(seed=3, crash_rate=0.4, slow_rate=0.3, slow_seconds=0.1)
        assert a == b
        for i in range(64):
            assert a.crash_failures(i) == b.crash_failures(i)
            assert a.slow_delay(i) == b.slow_delay(i)

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=0, crash_rate=0.5)
        b = FaultPlan(seed=1, crash_rate=0.5)
        assert [a.crash_failures(i) for i in range(64)] != [
            b.crash_failures(i) for i in range(64)
        ]

    def test_crash_rate_one_crashes_everything(self):
        plan = FaultPlan(crash_rate=1.0, crash_attempts=2)
        for i in range(16):
            assert plan.crash_failures(i) == 2
            assert plan.should_crash(i, attempt=0)
            assert plan.should_crash(i, attempt=1)
            assert not plan.should_crash(i, attempt=2)
        with pytest.raises(InjectedWorkerCrash):
            plan.raise_if_crashed(0, attempt=0)
        plan.raise_if_crashed(0, attempt=2)  # survives after the failures

    def test_poison_fails_forever(self):
        plan = FaultPlan(poison_shards=(5,))
        assert plan.crash_failures(5) == -1
        for attempt in (0, 1, 10, 1000):
            assert plan.should_crash(5, attempt)
        assert plan.crash_failures(4) == 0

    def test_hop_suppressed_is_pure(self):
        plan = FaultPlan(seed=9, region_loss={"use1": 0.5}, rate_limit_rate=0.3)
        twin = FaultPlan(seed=9, region_loss={"use1": 0.5}, rate_limit_rate=0.3)
        for dst in range(40):
            for ttl in range(1, 10):
                assert plan.hop_suppressed("amazon", "use1", dst, ttl) == \
                    twin.hop_suppressed("amazon", "use1", dst, ttl)

    def test_region_loss_wildcard(self):
        plan = FaultPlan(seed=2, region_loss={"*": 1.0})
        assert plan.hop_suppressed("amazon", "anywhere", 42, 3)
        scoped = FaultPlan(seed=2, region_loss={"use1": 1.0})
        assert scoped.hop_suppressed("amazon", "use1", 42, 3)
        assert not scoped.hop_suppressed("amazon", "euw1", 42, 3)

    def test_affects_flags_and_signature(self):
        transport = FaultPlan(crash_rate=0.5, slow_rate=0.2, slow_seconds=1.0,
                              poison_shards=(1,))
        assert transport.affects_execution and not transport.affects_probes
        assert transport.probe_signature() == "clean"
        observation = FaultPlan(region_loss={"use1": 0.1})
        assert observation.affects_probes and not observation.affects_execution
        assert observation.probe_signature() != "clean"
        # Transport knobs never leak into the observation signature.
        assert observation.probe_signature() == \
            observation.replace(crash_rate=0.9).probe_signature()
        # ... but observation knobs (and the seed) do change it.
        assert observation.probe_signature() != \
            observation.replace(seed=1).probe_signature()

    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "crash=0.25,crash-attempts=2,slow=0.1,slow-seconds=0.5,"
            "loss=use1:0.05;euw1:0.1,rate-limit=0.2,window=4,"
            "poison=3;7,seed=1"
        )
        assert plan == FaultPlan(
            seed=1,
            crash_rate=0.25,
            crash_attempts=2,
            slow_rate=0.1,
            slow_seconds=0.5,
            region_loss={"use1": 0.05, "euw1": 0.1},
            rate_limit_rate=0.2,
            rate_limit_window=4,
            poison_shards=(3, 7),
        )

    def test_parse_bare_loss_is_wildcard(self):
        assert FaultPlan.parse("loss=0.2").region_loss == {"*": 0.2}

    def test_parse_empty_and_errors(self):
        assert FaultPlan.parse("") == FaultPlan()
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash")

    def test_describe_mentions_active_faults(self):
        text = FaultPlan(crash_rate=0.25, region_loss={"use1": 0.1}).describe()
        assert "crash=0.25" in text and "use1:0.1" in text

    def test_parse_inline_rate_limit_window(self):
        # `0.2w5` is the describe() form: rate and window in one token.
        # It used to raise (float("0.2w5")); parsing it while dropping
        # the suffix would silently run window=3 -- both are wrong.
        plan = FaultPlan.parse("rate-limit=0.2w5")
        assert plan.rate_limit_rate == 0.2
        assert plan.rate_limit_window == 5

    def test_spec_plan_spec_round_trip_every_field(self):
        # One plan with every field off its default.
        plan = FaultPlan(
            seed=9,
            crash_rate=0.25,
            crash_attempts=2,
            slow_rate=0.1,
            slow_seconds=0.5,
            poison_shards=(3, 7),
            region_loss={"use1": 0.05, "*": 0.01},
            rate_limit_rate=0.2,
            rate_limit_window=5,
        )
        spec = plan.to_spec()
        reparsed = FaultPlan.parse(spec)
        assert reparsed == plan
        # spec -> plan -> spec is a fixed point (canonical form).
        assert reparsed.to_spec() == spec
        # The human-oriented describe() form must parse too: window
        # rides inline on the rate-limit token there.
        rate_part = next(
            part
            for part in plan.describe().strip("FaultPlan()").split(", ")
            if part.startswith("rate-limit=")
        )
        assert rate_part == "rate-limit=0.2w5"
        via_describe = FaultPlan.parse(rate_part)
        assert via_describe.rate_limit_rate == plan.rate_limit_rate
        assert via_describe.rate_limit_window == plan.rate_limit_window


# ----------------------------------------------------------------------
# Observation faults on the engine: deterministic, seed-keyed content.
# ----------------------------------------------------------------------


class TestEngineObservationFaults:
    def test_transport_only_plan_leaves_traces_untouched(self, tiny_world, probe_space):
        targets, regions = probe_space
        clean, _ = _run(tiny_world, targets, regions)
        crashy_engine = TracerouteEngine(
            tiny_world, faults=FaultPlan(crash_rate=0.9, slow_rate=0.5,
                                         slow_seconds=0.1)
        )
        assert crashy_engine._probe_faults is None
        got = [_trace_key(crashy_engine.trace("amazon", regions[0], t))
               for t in targets]
        want = [k for k in clean if k[1] == regions[0]]
        assert got == want

    def test_full_loss_silences_a_region(self, tiny_world, probe_space):
        targets, regions = probe_space
        lossy = TracerouteEngine(
            tiny_world, faults=FaultPlan(region_loss={regions[0]: 1.0})
        )
        for t in targets:
            assert not lossy.trace("amazon", regions[0], t).responsive_ips

    def test_observation_faults_deterministic_and_different(
        self, tiny_world, probe_space
    ):
        targets, regions = probe_space
        plan = FaultPlan(seed=4, region_loss={"*": 0.3}, rate_limit_rate=0.2)
        clean, _ = _run(tiny_world, targets, regions)
        once, _ = _run(tiny_world, targets, regions, faults=plan)
        again, _ = _run(tiny_world, targets, regions, faults=plan, workers=2)
        assert once == again  # pure function of the fault seed
        assert once != clean  # ... that actually changes what probes see


# ----------------------------------------------------------------------
# Executor resilience: retry, timeout, quarantine -- results unchanged.
# ----------------------------------------------------------------------


class TestExecutorResilience:
    def test_crash_retry_matches_clean_run(self, tiny_world, probe_space):
        targets, regions = probe_space
        clean_traces, clean_stats = _run(tiny_world, targets, regions)
        plan = FaultPlan(seed=5, crash_rate=0.5, crash_attempts=1)
        for workers in (1, 2):
            progress = CampaignProgress(label="crashy")
            traces, stats = _run(
                tiny_world, targets, regions, workers=workers,
                faults=plan, progress=progress,
            )
            assert traces == clean_traces
            assert stats == clean_stats
            assert progress.failures, "the crash plan never fired"
            assert not progress.quarantined
            assert progress.completeness == 1.0

    def test_timeout_retries_inline_and_matches_clean(
        self, tiny_world, probe_space
    ):
        targets, regions = probe_space
        targets = targets[:6]
        regions = regions[:1]
        clean_traces, clean_stats = _run(
            tiny_world, targets, regions, shard_size=3
        )
        progress = CampaignProgress(label="slow")
        traces, stats = _run(
            tiny_world, targets, regions, workers=2, shard_size=3,
            faults=FaultPlan(slow_rate=1.0, slow_seconds=0.25),
            retry=RetryPolicy(shard_timeout=0.05, max_retries=3,
                              backoff_base_s=0.0),
            progress=progress,
        )
        assert traces == clean_traces
        assert stats == clean_stats
        assert any(f.error == "shard timeout" for f in progress.failures)

    def test_poisoned_shard_is_quarantined(self, tiny_world, probe_space):
        targets, regions = probe_space
        shard_size = 6
        shards = plan_shards(regions, targets, shard_size)
        poisoned = shards[1]
        progress = CampaignProgress(label="poison")
        traces, stats = _run(
            tiny_world, targets, regions, shard_size=shard_size,
            faults=FaultPlan(poison_shards=(poisoned.index,)),
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.0),
            progress=progress,
        )
        clean_traces, _ = _run(
            tiny_world, targets, regions, shard_size=shard_size
        )
        lost = {(poisoned.region, dst) for dst in poisoned.targets}
        assert traces == [k for k in clean_traces if (k[1], k[2]) not in lost]
        assert stats.lost_probes == len(poisoned.targets)
        assert stats.quarantined_shards == 1
        assert stats.completeness == pytest.approx(
            (len(clean_traces) - len(lost)) / len(clean_traces)
        )
        assert [q.index for q in progress.quarantined] == [poisoned.index]
        assert len(progress.failures) == 2  # first attempt + one retry
        assert progress.completeness < 1.0

    def test_no_backoff_sleep_on_quarantine_paths(
        self, tiny_world, probe_space, monkeypatch
    ):
        """Backoff may only run when a retry definitely remains.

        Both quarantine exits (retries exhausted, study retry budget
        spent) return before the backoff sleep; with a poisoned shard,
        max_retries=0, and a huge backoff base, any sleep at all is the
        regression.
        """
        import repro.measure.executor as executor_mod

        sleeps: list = []
        monkeypatch.setattr(
            executor_mod.time, "sleep", lambda s: sleeps.append(s)
        )
        targets, regions = probe_space
        shards = plan_shards(regions, targets, 6)
        _, stats = _run(
            tiny_world, targets, regions, shard_size=6,
            faults=FaultPlan(poison_shards=(shards[0].index,)),
            retry=RetryPolicy(max_retries=0, backoff_base_s=60.0),
        )
        assert stats.quarantined_shards == 1
        assert sleeps == []

    def test_retry_policy_validation_and_backoff(self):
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5)
        delays = [policy.backoff_seconds(a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # doubles, then caps
        assert RetryPolicy(backoff_base_s=0.0).backoff_seconds(3) == 0.0


# ----------------------------------------------------------------------
# Checkpoint/resume: journal, fingerprint, and the kill/resume identity.
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_full_resume_replays_every_shard(
        self, tiny_world, probe_space, tmp_path
    ):
        targets, regions = probe_space
        first, first_stats = _run(
            tiny_world, targets, regions,
            checkpoint_store=CheckpointStore(tmp_path, resume=False),
        )
        progress = CampaignProgress(label="resumed")
        second, second_stats = _run(
            tiny_world, targets, regions,
            checkpoint_store=CheckpointStore(tmp_path, resume=True),
            progress=progress,
        )
        assert second == first
        assert second_stats == first_stats
        assert progress.resumed_shards == progress.shard_count

    def test_killed_midway_then_resumed_matches_clean(
        self, tiny_world, probe_space, tmp_path
    ):
        targets, regions = probe_space
        clean, clean_stats = _run(
            tiny_world, targets, regions,
            checkpoint_store=CheckpointStore(tmp_path, resume=False),
        )
        # Simulate the driver dying mid-campaign: keep the journal header
        # plus the first three completed shards, drop the rest.
        journal = tmp_path / "campaign.jsonl"
        lines = journal.read_text().splitlines()
        keep = 3
        journal.write_text("\n".join(lines[: 1 + keep]) + "\n")
        progress = CampaignProgress(label="resumed")
        resumed, resumed_stats = _run(
            tiny_world, targets, regions,
            checkpoint_store=CheckpointStore(tmp_path, resume=True),
            progress=progress,
        )
        assert resumed == clean
        assert resumed_stats == clean_stats
        assert progress.resumed_shards == keep

    def test_torn_final_line_is_dropped(self, tiny_world, probe_space, tmp_path):
        targets, regions = probe_space
        _run(
            tiny_world, targets, regions,
            checkpoint_store=CheckpointStore(tmp_path, resume=False),
        )
        journal = tmp_path / "campaign.jsonl"
        with open(journal, "a") as fh:
            fh.write('{"shard": 99, "packed": [99, "u')  # died mid-write
        progress = CampaignProgress(label="resumed")
        resumed, _ = _run(
            tiny_world, targets, regions,
            checkpoint_store=CheckpointStore(tmp_path, resume=True),
            progress=progress,
        )
        clean, _ = _run(tiny_world, targets, regions)
        assert resumed == clean
        assert progress.resumed_shards == progress.shard_count

    def test_fingerprint_mismatch_discards_journal(self, tmp_path):
        path = tmp_path / "c.jsonl"
        old = CampaignCheckpoint(path, fingerprint="aaaa")
        old.put(0, [0, "use1", 0.1, []])
        reloaded = CampaignCheckpoint(path, fingerprint="bbbb")
        assert reloaded.stale
        assert reloaded.completed_shards == 0
        # The discarded journal is replaced by a fresh one for "bbbb".
        header = json.loads(path.read_text().splitlines()[0])
        assert header["fingerprint"] == "bbbb"

    def test_resume_false_starts_over(self, tmp_path):
        path = tmp_path / "c.jsonl"
        old = CampaignCheckpoint(path, fingerprint="aaaa")
        old.put(0, [0, "use1", 0.1, []])
        fresh = CampaignCheckpoint(path, fingerprint="aaaa", resume=False)
        assert fresh.completed_shards == 0

    def test_put_is_idempotent(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path / "c.jsonl", fingerprint="f")
        cp.put(0, [0, "use1", 0.1, []])
        cp.put(0, [0, "use1", 9.9, []])  # ignored: shard already journalled
        assert cp.get(0)[2] == 0.1
        assert len((tmp_path / "c.jsonl").read_text().splitlines()) == 2

    def test_fingerprint_ignores_transport_but_not_observation_faults(
        self, tiny_world, probe_space
    ):
        targets, regions = probe_space

        def fp(faults):
            engine = TracerouteEngine(tiny_world, faults=faults)
            executor = ShardedExecutor(
                tiny_world, engine, CloudMembership(tiny_world, "amazon"),
                faults=faults,
            )
            return executor._fingerprint(regions, targets, 4)

        clean = fp(None)
        assert fp(FaultPlan(crash_rate=0.5, poison_shards=(1,))) == clean
        assert fp(FaultPlan(region_loss={"*": 0.1})) != clean

    def test_store_sanitizes_labels(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cp = store.campaign("vpi:google", "f")
        assert cp.path.name == "vpi_google.jsonl"
