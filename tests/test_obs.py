"""Observability layer: span tracer, trace export, and `repro trace`.

Covers the three contracts of :mod:`repro.obs` -- digest neutrality,
near-zero disabled cost, and cross-process span adoption -- plus the
export round-trips and the offline analyzer.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.measure.campaign import ProbeCampaign
from repro.measure.sink import CollectorSink
from repro.obs.analyze import (
    campaign_funnel,
    render_trace_summary,
    self_time_table,
)
from repro.obs.analyze import main as trace_main
from repro.obs.export import read_trace, to_chrome_trace, write_jsonl, write_trace
from repro.obs.span import (
    NULL_SPAN,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    pack_spans,
)


class TestTracerBasics:
    def test_stack_parenting_and_close_order(self):
        tracer = Tracer()
        outer = tracer.span("outer", category="stage")
        inner = tracer.span("inner", category="shard")
        inner.close()
        outer.close()
        records = tracer.records
        assert [r.name for r in records] == ["inner", "outer"]
        assert records[0].parent_id == records[1].span_id
        assert records[1].parent_id is None
        assert records[0].start >= records[1].start
        assert records[0].end <= records[1].end + 1e-9

    def test_counters_sorted_and_accumulated(self):
        tracer = Tracer()
        span = tracer.span("s")
        span.set("zeta", 3)
        span.incr("alpha")
        span.incr("alpha", 2.5)
        span.close()
        (record,) = tracer.records
        assert record.counters == (("alpha", 3.5), ("zeta", 3.0))
        assert record.counter("alpha") == 3.5
        assert record.counter("missing", -1.0) == -1.0

    def test_context_manager_and_double_close(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            pass
        span.close()  # second close is a no-op
        assert len(tracer.records) == 1

    def test_out_of_order_close_tolerated(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("leaked")  # never closed explicitly
        outer.close()
        # The leaked span is popped with its parent; only `outer` records.
        assert [r.name for r in tracer.records] == ["outer"]
        follow = tracer.span("next")
        follow.close()
        assert tracer.records[-1].parent_id is None

    def test_listener_sees_every_close(self):
        tracer = Tracer()
        seen = []
        tracer.add_listener(seen.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r.name for r in seen] == ["b", "a"]

    def test_null_tracer_is_free_and_silent(self):
        span = NULL_TRACER.span("anything", category="shard")
        assert span is NULL_SPAN
        span.set("k", 1)
        span.incr("k")
        span.close()
        assert NULL_TRACER.records == ()
        assert NULL_TRACER.pack() == []
        assert NULL_TRACER.adopt_packed([("n", "c", 0, 0, -1, ())], span) == 0
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True


class TestPackAdopt:
    def _worker_trace(self):
        tracer = Tracer()
        root = tracer.span("worker:3", category="worker")
        with tracer.span("probe-batch:3", category="probe-batch") as batch:
            batch.set("probes", 64)
        with tracer.span("pack:3", category="pack"):
            pass
        root.set("probes", 64)
        root.close()
        return tracer

    def test_pack_encodes_parent_links_as_indices(self):
        tracer = self._worker_trace()
        packed = pack_spans(tracer.records)
        by_name = {row[0]: row for row in packed}
        root_index = [row[0] for row in packed].index("worker:3")
        assert by_name["worker:3"][4] == -1
        assert by_name["probe-batch:3"][4] == root_index
        assert by_name["pack:3"][4] == root_index
        # JSON-safe: the wire format survives the pool's pickling and the
        # same structure a JSON round-trip imposes on checkpoint rows.
        assert json.loads(json.dumps(packed))

    def test_adopt_rebases_under_parent(self):
        worker = self._worker_trace()
        packed = worker.pack()
        parent_tracer = Tracer()
        shard = parent_tracer.span("shard:3", category="shard")
        adopted = parent_tracer.adopt_packed(packed, shard)
        shard.close()
        assert adopted == len(packed)
        records = {r.name: r for r in parent_tracer.records}
        shard_rec = records["shard:3"]
        root_rec = records["worker:3"]
        # The worker root hangs off the shard span; inner spans keep
        # their worker-side parent even though they closed first.
        assert root_rec.parent_id == shard_rec.span_id
        assert records["probe-batch:3"].parent_id == root_rec.span_id
        assert records["pack:3"].parent_id == root_rec.span_id
        # Re-based onto the adopting tracer's timeline, anchored at the
        # shard span's start.
        assert root_rec.start >= shard_rec.start
        assert records["probe-batch:3"].counter("probes") == 64

    def test_adopt_empty_and_none(self):
        tracer = Tracer()
        span = tracer.span("shard:0", category="shard")
        assert tracer.adopt_packed(None, span) == 0
        assert tracer.adopt_packed([], span) == 0
        span.close()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_parenting_invariants_hold_for_any_open_close_sequence(self, ops):
        """Property: whatever the open/close interleaving, every record's
        parent is a span that was open when it opened, and adopting the
        packed stream preserves the exact parent structure."""
        tracer = Tracer()
        open_spans = []
        for do_open in ops:
            if do_open or not open_spans:
                open_spans.append(tracer.span(f"s{len(open_spans)}"))
            else:
                open_spans.pop().close()
        while open_spans:
            open_spans.pop().close()

        records = tracer.records
        ids = {r.span_id for r in records}
        for record in records:
            assert record.parent_id is None or record.parent_id in ids

        packed = pack_spans(records)
        host = Tracer()
        anchor_span = host.span("shard:0", category="shard")
        host.adopt_packed(packed, anchor_span)
        anchor_span.close()
        adopted = [r for r in host.records if r.category != "shard"]
        # Parent structure is isomorphic: map old ids to adopted ids by
        # stream position (adoption preserves row order).
        id_map = {
            old.span_id: new.span_id for old, new in zip(records, adopted)
        }
        for old, new in zip(records, adopted):
            expected = (
                id_map[old.parent_id]
                if old.parent_id is not None
                else anchor_span.span_id
            )
            assert new.parent_id == expected
            assert new.counters == old.counters
            assert new.duration == pytest.approx(old.duration)


class TestExportRoundTrip:
    def _records(self):
        tracer = Tracer()
        with tracer.span("study", category="study"):
            with tracer.span("campaign:round1", category="campaign") as c:
                c.set("probes", 120)
                c.set("expected", 128)
                c.set("lost", 8)
        return tracer.records

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        records = self._records()
        path = tmp_path / "trace.jsonl"
        write_trace(path, records, meta={"seed": 7, "workers": 4})
        meta, loaded = read_trace(path)
        assert meta == {"seed": 7, "workers": 4}
        assert tuple(loaded) == records

    def test_chrome_round_trip_preserves_structure(self, tmp_path):
        records = self._records()
        path = tmp_path / "trace.json"
        write_trace(path, records, meta={"seed": 7})
        meta, loaded = read_trace(path)
        assert meta == {"seed": 7}
        assert [(r.span_id, r.parent_id, r.name, r.category) for r in loaded] == [
            (r.span_id, r.parent_id, r.name, r.category) for r in records
        ]
        for got, want in zip(loaded, records):
            assert got.start == pytest.approx(want.start, abs=1e-6)
            assert got.duration == pytest.approx(want.duration, abs=1e-6)
            assert got.counters == want.counters

    def test_chrome_document_shape(self):
        doc = to_chrome_trace(self._records(), meta={"seed": 7})
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        campaign = next(e for e in events if e["cat"] == "campaign")
        assert campaign["args"]["probes"] == 120
        assert "spanId" in campaign["args"]
        names = [
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        ]
        assert "study" in names and "campaign" in names

    def test_torn_final_jsonl_line_is_dropped(self, tmp_path):
        records = self._records()
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, records)
        with open(path, "a") as fh:
            fh.write('{"id": 99, "parent": null, "na')  # torn write
        _, loaded = read_trace(path)
        assert len(loaded) == len(records)

    def test_read_rejects_non_trace_files(self, tmp_path):
        path = tmp_path / "not-a-trace.json"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ValueError):
            read_trace(path)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_trace(empty)


class TestCampaignTracing:
    def _traced_run(self, world, workers):
        tracer = Tracer()
        campaign = ProbeCampaign(world, workers=workers)
        sink = CollectorSink()
        stats = campaign.run(
            [p.network + 1 for p in world.sweep_slash24s[:20]],
            sink,
            regions=world.region_names("amazon")[:2],
            checkpoint_label="round1",
            tracer=tracer,
            worker_spans=True,
        )
        return tracer.records, stats, sink

    @pytest.mark.parametrize("workers", [1, 2])
    def test_span_hierarchy_covers_the_campaign(self, tiny_world, workers):
        records, stats, sink = self._traced_run(tiny_world, workers)
        by_cat = {}
        for r in records:
            by_cat.setdefault(r.category, []).append(r)
        (campaign_rec,) = by_cat["campaign"]
        assert campaign_rec.counter("probes") == stats.probes
        assert campaign_rec.counter("expected") == stats.probes
        assert campaign_rec.counter("workers") == workers
        shard_ids = {r.span_id: r for r in by_cat["shard"]}
        # Every shard span is a child of the campaign span.
        assert all(
            r.parent_id == campaign_rec.span_id for r in shard_ids.values()
        )
        assert sum(int(r.counter("probes")) for r in shard_ids.values()) == stats.probes

    @pytest.mark.parametrize("workers", [1, 2])
    def test_every_worker_span_nests_under_exactly_one_shard(
        self, tiny_world, workers
    ):
        records, _, _ = self._traced_run(tiny_world, workers)
        by_id = {r.span_id: r for r in records}
        shards = [r for r in records if r.category == "shard"]
        worker_roots = [r for r in records if r.category == "worker"]
        batches = [r for r in records if r.category == "probe-batch"]
        assert worker_roots if workers > 1 else True
        assert batches, "worker_spans=True must record probe batches"
        for root in worker_roots:
            parent = by_id[root.parent_id]
            assert parent.category == "shard"
            # worker:N sits under shard:N -- attribution never crosses.
            assert root.name.split(":")[1] == parent.name.split(":")[1]
        for batch in batches:
            parent = by_id[batch.parent_id]
            # Pooled shards nest batches under the adopted worker root;
            # serial shards nest them directly under the shard span.
            assert parent.category in ("worker", "shard")
            assert batch.name.split(":")[1] == parent.name.split(":")[1]
        assert len(shards) == len({s.name for s in shards})

    def test_tracing_does_not_change_the_trace_stream(self, tiny_world):
        _, stats_traced, sink_traced = self._traced_run(tiny_world, 2)
        campaign = ProbeCampaign(tiny_world, workers=2)
        sink_plain = CollectorSink()
        stats_plain = campaign.run(
            [p.network + 1 for p in tiny_world.sweep_slash24s[:20]],
            sink_plain,
            regions=tiny_world.region_names("amazon")[:2],
            checkpoint_label="round1",
        )
        assert stats_traced == stats_plain
        assert [repr(t) for t in sink_traced.traces] == [
            repr(t) for t in sink_plain.traces
        ]


class TestTraceAnalyzer:
    def _campaign_trace(self, tiny_world, tmp_path):
        tracer = Tracer()
        campaign = ProbeCampaign(tiny_world, workers=2)
        campaign.run(
            [p.network + 1 for p in tiny_world.sweep_slash24s[:20]],
            lambda t: None,
            regions=tiny_world.region_names("amazon")[:2],
            checkpoint_label="round1",
            tracer=tracer,
            worker_spans=True,
        )
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer.records, meta={"seed": 11})
        return path, tracer.records

    def test_self_time_never_exceeds_total(self, tiny_world, tmp_path):
        _, records = self._campaign_trace(tiny_world, tmp_path)
        for row in self_time_table(records, top_n=50):
            assert 0.0 <= row.self_seconds <= row.total_seconds + 1e-9
            assert row.count >= 1

    def test_funnel_recovers_progress_counters(self, tiny_world, tmp_path):
        _, records = self._campaign_trace(tiny_world, tmp_path)
        (row,) = campaign_funnel(records)
        assert row.label == "round1"
        assert row.probes == row.expected == 40
        assert row.lost == 0
        assert row.yield_fraction == 1.0

    def test_render_and_cli_subcommand(self, tiny_world, tmp_path, capsys):
        path, _ = self._campaign_trace(tiny_world, tmp_path)
        text = render_trace_summary(str(path))
        assert "span families by self time" in text
        assert "probe-yield funnel" in text
        assert "seed=11" in text

        from repro.cli import main as cli_main

        assert cli_main(["trace", str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "round1" in out

    def test_cli_rejects_bad_file(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            cli_main(["trace", str(bad)])
