"""Tests for anchor identification (§6.1) and cross-validation (§6.2)."""

import random

import pytest

from repro.core.crossval import (
    cross_validate_pinning,
    stratified_split,
)


class TestStratifiedSplit:
    def test_partition(self):
        anchors = {i: ("IAD" if i % 2 else "LHR") for i in range(40)}
        rng = random.Random(1)
        train, test = stratified_split(anchors, rng)
        assert set(train) | set(test) == set(anchors)
        assert not set(train) & set(test)

    def test_metro_proportions_preserved(self):
        anchors = {i: "IAD" for i in range(30)}
        anchors.update({100 + i: "LHR" for i in range(10)})
        train, test = stratified_split(anchors, random.Random(2), 0.7)
        iad_train = sum(1 for m in train.values() if m == "IAD")
        lhr_train = sum(1 for m in train.values() if m == "LHR")
        assert iad_train == 21
        assert lhr_train == 7

    def test_singleton_metro_stays_in_train(self):
        anchors = {1: "SIN"}
        train, test = stratified_split(anchors, random.Random(3))
        assert train == {1: "SIN"}
        assert test == {}

    def test_deterministic_given_seed(self):
        anchors = {i: ("IAD" if i % 3 else "FRA") for i in range(30)}
        t1 = stratified_split(anchors, random.Random(4))
        t2 = stratified_split(anchors, random.Random(4))
        assert t1 == t2


class TestCrossValidation:
    def _inputs(self):
        # Alias sets tie anchors together so held-out ones are re-pinned.
        anchors = {}
        alias_sets = []
        for i in range(10):
            base = i * 10
            metro = ["IAD", "LHR", "FRA"][i % 3]
            anchors[base] = metro
            anchors[base + 1] = metro
            anchors[base + 2] = metro
            alias_sets.append({base, base + 1, base + 2})
        return anchors, alias_sets

    def test_perfect_recovery_through_alias_sets(self):
        anchors, alias_sets = self._inputs()
        cv = cross_validate_pinning(anchors, alias_sets, [], {}, folds=5, seed=1)
        assert len(cv.folds) == 5
        assert cv.mean_precision == 1.0
        assert cv.mean_recall > 0.9

    def test_no_propagation_means_zero_recall(self):
        anchors, _ = self._inputs()
        cv = cross_validate_pinning(anchors, [], [], {}, folds=3, seed=1)
        assert cv.mean_recall == 0.0
        # Precision defaults to 1.0 when nothing is pinned.
        assert cv.mean_precision == 1.0

    def test_fold_metrics_bounded(self, study_result):
        cv = study_result.crossval
        if cv is None:
            pytest.skip("study ran without cross-validation")
        for fold in cv.folds:
            assert 0.0 <= fold.precision <= 1.0
            assert 0.0 <= fold.recall <= 1.0
            assert fold.test_size > 0

    def test_std_zero_for_single_fold(self):
        anchors, alias_sets = self._inputs()
        cv = cross_validate_pinning(anchors, alias_sets, [], {}, folds=1, seed=2)
        assert cv.std_precision == 0.0
        assert cv.std_recall == 0.0


class TestAnchorsOnStudy:
    """Anchor invariants over the real end-to-end study fixture."""

    def test_anchor_ips_are_border_interfaces(self, study_result):
        anchors = study_result.anchors
        universe = study_result.abis | study_result.cbis
        for ip in anchors.anchors:
            assert ip in universe

    def test_flagged_anchors_not_in_final_set(self, study_result):
        anchors = study_result.anchors
        for ip in anchors.flagged_alias:
            assert ip not in anchors.anchors

    def test_exclusive_counts_sum_to_anchor_total(self, study_result):
        anchors = study_result.anchors
        assert sum(anchors.exclusive_counts().values()) == len(anchors.anchors)

    def test_cumulative_monotone(self, study_result):
        cumulative = study_result.anchors.cumulative_counts()
        values = [cumulative[k] for k in ("dns", "ixp", "metro", "native")]
        assert values == sorted(values)

    def test_native_anchors_at_region_metros(self, study, study_result):
        runner, result = study
        region_metros = set(runner.region_metro.values())
        for ip, evidence in result.anchors.evidence.items():
            if evidence == {"native"}:
                assert result.anchors.anchors[ip] in region_metros

    def test_anchor_metros_exist_in_catalog(self, study, study_result):
        runner, result = study
        for metro in result.anchors.anchors.values():
            assert metro in runner.world.catalog

    def test_dns_rtt_exclusions_counted(self, study_result):
        # The RTT-feasibility filter exists and its counter is sane.
        assert study_result.anchors.dns_rtt_excluded >= 0

    def test_ixp_local_remote_partition(self, study_result):
        anchors = study_result.anchors
        assert anchors.local_ixp_members >= 0
        assert anchors.remote_ixp_members >= 0
        assert anchors.local_ixp_members + anchors.remote_ixp_members > 0
