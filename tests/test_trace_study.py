"""End-to-end tracing: digest neutrality, coverage, and metrics views.

Four tiny studies (workers {1, 4} x {traced, untraced}) share a module
fixture; the traced twins write both on-disk formats so ``--trace-out``
is exercised exactly as the CLI drives it.
"""

from __future__ import annotations

import pytest

from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.obs.analyze import campaign_funnel, render_trace_summary
from repro.obs.export import read_trace


@pytest.fixture(scope="module")
def trace_runs(tiny_world, tmp_path_factory):
    """{(workers, traced): (result, trace_path or None)}."""
    out_dir = tmp_path_factory.mktemp("traces")
    base = StudyConfig(
        seed=11,
        expansion_stride=16,
        run_vpi=False,
        run_crossval=False,
    )
    runs = {}
    for workers in (1, 4):
        for traced in (False, True):
            # One run per format: w1 -> JSONL, w4 -> Chrome JSON.
            suffix = "jsonl" if workers == 1 else "json"
            config = base.replace(
                workers=workers,
                trace=traced,
                trace_out=(
                    str(out_dir / f"trace-w{workers}.{suffix}")
                    if traced
                    else None
                ),
            )
            result = AmazonPeeringStudy(tiny_world, config).run()
            runs[(workers, traced)] = (result, config.trace_out)
    return runs


class TestDigestNeutrality:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_traced_digest_equals_untraced(self, trace_runs, workers):
        untraced, _ = trace_runs[(workers, False)]
        traced, _ = trace_runs[(workers, True)]
        assert traced.digest() == untraced.digest()
        assert traced.digest_inputs() == untraced.digest_inputs()

    def test_digest_identical_across_worker_counts(self, trace_runs):
        digests = {
            result.digest() for result, _ in trace_runs.values()
        }
        assert len(digests) == 1

    def test_trace_flags_never_enter_digest_inputs(self, trace_runs):
        result, _ = trace_runs[(1, True)]
        assert "trace" not in repr(result.digest_inputs())


class TestTraceCoverage:
    def _records(self, trace_runs, workers):
        _, path = trace_runs[(workers, True)]
        meta, records = read_trace(path)
        return meta, records

    @pytest.mark.parametrize("workers", [1, 4])
    def test_study_span_covers_95_percent_of_wall_clock(
        self, trace_runs, workers
    ):
        _, records = self._records(trace_runs, workers)
        study = next(r for r in records if r.category == "study")
        wall = max(r.end for r in records)
        assert wall > 0
        assert study.duration / wall >= 0.95

    @pytest.mark.parametrize("workers", [1, 4])
    def test_hierarchy_layers_present(self, trace_runs, workers):
        meta, records = self._records(trace_runs, workers)
        assert meta["seed"] == 11
        assert meta["workers"] == workers
        categories = {r.category for r in records}
        assert {"study", "stage", "campaign", "shard", "probe-batch"} <= categories
        if workers > 1:
            assert "worker" in categories
        stage_names = {r.name for r in records if r.category == "stage"}
        assert {"round1", "round2"} <= stage_names

    def test_worker_spans_nest_under_exactly_one_shard(self, trace_runs):
        _, records = self._records(trace_runs, 4)
        by_id = {r.span_id: r for r in records}
        worker_roots = [r for r in records if r.category == "worker"]
        assert worker_roots, "pooled traced run must ship worker spans"
        for root in worker_roots:
            ancestors = []
            cursor = root
            while cursor.parent_id is not None:
                cursor = by_id[cursor.parent_id]
                ancestors.append(cursor.category)
            # Exactly one shard ancestor, and the chain continues up
            # through campaign (+ stage) to the study root.
            assert ancestors.count("shard") == 1
            assert ancestors[-1] == "study"
            assert "campaign" in ancestors

    def test_study_span_carries_annotation_counters(self, trace_runs):
        _, records = self._records(trace_runs, 1)
        study = next(r for r in records if r.category == "study")
        names = dict(study.counters)
        assert "annotation_cache_hits" in names
        assert "annotation_cache_misses" in names
        assert "annotation_fallback_depth" in names
        assert names["annotation_cache_misses"] > 0
        # Fallback chains consult at least one source per cache miss.
        assert (
            names["annotation_fallback_depth"]
            >= names["annotation_cache_misses"]
        )

    def test_funnel_and_summary_render_from_file(self, trace_runs):
        _, path = trace_runs[(4, True)]
        _, records = read_trace(path)
        rows = {row.label: row for row in campaign_funnel(records)}
        assert set(rows) == {"round1", "round2"}
        assert rows["round1"].probes == rows["round1"].expected > 0
        assert rows["round1"].lost == 0
        text = render_trace_summary(str(path))
        assert "probe-yield funnel" in text and "round1" in text


class TestMetricsAsSpanViews:
    def test_stage_table_is_folded_from_spans(self, trace_runs):
        result, _ = trace_runs[(1, True)]
        metrics = result.metrics
        spans = {
            r.name for r in metrics.tracer.records if r.category == "stage"
        }
        assert set(metrics.stages) == spans
        for name, seconds in metrics.stages.items():
            assert seconds >= 0
        assert result.runtime_seconds == metrics.stages

    def test_untraced_run_still_records_coarse_spans(self, trace_runs):
        result, _ = trace_runs[(1, False)]
        categories = {r.category for r in result.metrics.tracer.records}
        # Coarse layers always on; fine-grained layers strictly opt-in.
        assert {"study", "stage", "campaign", "shard"} <= categories
        assert "probe-batch" not in categories
        assert "worker" not in categories

    def test_campaign_progress_agrees_with_campaign_spans(self, trace_runs):
        result, _ = trace_runs[(4, True)]
        records = result.metrics.tracer.records
        for label, progress in result.metrics.campaigns.items():
            span = next(
                r
                for r in records
                if r.category == "campaign" and r.name == f"campaign:{label}"
            )
            assert int(span.counter("probes")) == progress.probes
            assert int(span.counter("expected")) == progress.expected_probes
            assert int(span.counter("workers")) == progress.workers
