"""Tests for ping, reachability, alias resolution, DNS lookup, campaigns."""

import pytest

from repro.measure.alias import AliasResolver, _UnionFind
from repro.measure.campaign import CampaignStats, ProbeCampaign, vpi_target_pool
from repro.measure.dnslookup import ReverseDNS
from repro.measure.ping import PROCESSING_FLOOR_MS, Pinger
from repro.measure.reachability import PublicVantagePoint
from repro.measure.traceroute import TracerouteEngine


def _region(world):
    return world.region_names("amazon")[0]


class TestPinger:
    def test_min_rtt_above_propagation_floor(self, tiny_world):
        pinger = Pinger(tiny_world, seed=4)
        icx = next(
            i
            for i in tiny_world.interconnections.values()
            if not i.uses_private_addresses
        )
        for region in tiny_world.region_names("amazon")[:3]:
            rtt = pinger.min_rtt("amazon", region, icx.abi_ip)
            if rtt is None:
                continue
            base = tiny_world.rtt_legs_ms("amazon", region, icx.abi_ip)
            assert rtt >= base + PROCESSING_FLOOR_MS

    def test_cache_stability(self, tiny_world):
        pinger = Pinger(tiny_world, seed=4)
        icx = next(iter(tiny_world.interconnections.values()))
        region = _region(tiny_world)
        assert pinger.min_rtt("amazon", region, icx.abi_ip) == pinger.min_rtt(
            "amazon", region, icx.abi_ip
        )

    def test_unknown_ip_none(self, tiny_world):
        assert Pinger(tiny_world).min_rtt("amazon", _region(tiny_world), 1) is None

    def test_closest_region_is_minimum(self, tiny_world):
        pinger = Pinger(tiny_world, seed=4)
        icx = next(
            i
            for i in tiny_world.interconnections.values()
            if not i.uses_private_addresses
        )
        closest = pinger.closest_region("amazon", icx.abi_ip)
        if closest is None:
            pytest.skip("interface filters ICMP")
        region, rtt = closest
        all_rtts = pinger.min_rtt_by_region("amazon", icx.abi_ip)
        assert rtt == min(all_rtts.values())
        assert all_rtts[region] == rtt

    def test_two_lowest_sorted(self, tiny_world):
        pinger = Pinger(tiny_world, seed=4)
        icx = next(
            i
            for i in tiny_world.interconnections.values()
            if not i.uses_private_addresses
        )
        ranked = pinger.two_lowest("amazon", icx.abi_ip)
        if not ranked or len(ranked) < 2:
            pytest.skip("needs two visible regions")
        assert ranked[0][1] <= ranked[1][1]

    def test_icmp_filtering_is_per_interface(self, tiny_world):
        pinger = Pinger(tiny_world, seed=4)
        filtered = 0
        checked = 0
        for icx in list(tiny_world.interconnections.values())[:80]:
            if icx.uses_private_addresses:
                continue
            checked += 1
            if pinger.min_rtt_by_region("amazon", icx.cbi_ip) == {}:
                filtered += 1
        assert checked > 0
        # Some but not all interfaces filter ICMP.
        assert filtered < checked


class TestPublicVantagePoint:
    def test_reachability_subset_of_world_flags(self, tiny_world):
        vp = PublicVantagePoint(tiny_world, seed=2, loss_rate=0.0)
        for ip in list(tiny_world.interfaces)[:200]:
            if vp.reachable(ip):
                assert ip in tiny_world.publicly_reachable

    def test_cached(self, tiny_world):
        vp = PublicVantagePoint(tiny_world, seed=2)
        ip = next(iter(tiny_world.interfaces))
        assert vp.reachable(ip) == vp.reachable(ip)

    def test_probe_all(self, tiny_world):
        vp = PublicVantagePoint(tiny_world, seed=2)
        ips = list(tiny_world.interfaces)[:10]
        result = vp.probe_all(ips)
        assert set(result) == set(ips)


class TestUnionFind:
    def test_groups_of_size_one_dropped(self):
        uf = _UnionFind()
        uf.find(1)
        uf.union(2, 3)
        groups = uf.groups()
        assert groups == [{2, 3}]

    def test_transitive_merge(self):
        uf = _UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(10, 11)
        groups = sorted(uf.groups(), key=len, reverse=True)
        assert {1, 2, 3} in groups
        assert {10, 11} in groups


class TestAliasResolver:
    def test_sets_are_disjoint(self, tiny_world):
        resolver = AliasResolver(tiny_world, seed=9)
        candidates = [i.cbi_ip for i in tiny_world.interconnections.values()]
        sets = resolver.resolve(candidates)
        seen = set()
        for group in sets:
            assert not (group & seen)
            seen |= group

    def test_sets_respect_true_routers(self, tiny_world):
        resolver = AliasResolver(tiny_world, seed=9)
        candidates = [i.cbi_ip for i in tiny_world.interconnections.values()]
        for group in resolver.resolve(candidates):
            routers = {tiny_world.interfaces[ip].router_id for ip in group}
            assert len(routers) == 1

    def test_zero_discovery_rate_finds_nothing(self, tiny_world):
        resolver = AliasResolver(tiny_world, seed=9, pair_discovery_rate=0.0)
        candidates = [i.cbi_ip for i in tiny_world.interconnections.values()]
        assert resolver.resolve(candidates) == []

    def test_full_discovery_rate_recovers_multi_iface_routers(self, tiny_world):
        resolver = AliasResolver(tiny_world, seed=9, pair_discovery_rate=1.0)
        candidates = [
            ip
            for i in tiny_world.interconnections.values()
            for ip in (i.cbi_ip, i.abi_ip)
        ]
        sets = resolver.resolve(candidates)
        covered = {ip for g in sets for ip in g}
        # Every responsive multi-candidate router should be one set.
        from collections import Counter

        per_router = Counter(
            tiny_world.interfaces[ip].router_id for ip in set(candidates)
        )
        multi = {
            rid
            for rid, n in per_router.items()
            if n >= 2 and tiny_world.routers[rid].responsiveness > 0
        }
        recovered = {tiny_world.interfaces[ip].router_id for ip in covered}
        assert len(multi - recovered) <= len(multi) * 0.35


class TestReverseDNS:
    def test_lookup_matches_world(self, tiny_world):
        rdns = ReverseDNS(tiny_world)
        named = [
            i for i in tiny_world.interfaces.values() if i.dns_name is not None
        ]
        assert named, "world should have some PTR records"
        assert rdns.lookup(named[0].ip) == named[0].dns_name

    def test_lookup_all_skips_missing(self, tiny_world):
        rdns = ReverseDNS(tiny_world)
        result = rdns.lookup_all([1, 2, 3])
        assert result == {}

    def test_abis_have_no_names(self, tiny_world):
        """§6.1: none of the ABIs had reverse DNS."""
        rdns = ReverseDNS(tiny_world)
        for icx in list(tiny_world.interconnections.values())[:100]:
            assert rdns.lookup(icx.abi_ip) is None


class TestCampaign:
    def test_round1_targets_are_dot1(self, tiny_world):
        campaign = ProbeCampaign(tiny_world)
        for dst in list(campaign.round1_targets())[:50]:
            assert dst & 0xFF == 1

    def test_expansion_targets_exclude_the_cbi(self, tiny_world):
        cbi = next(iter(tiny_world.interconnections.values())).cbi_ip
        targets = ProbeCampaign.expansion_targets([cbi])
        assert cbi not in targets
        assert all(t & 0xFFFFFF00 == cbi & 0xFFFFFF00 for t in targets)
        assert len(targets) == 253

    def test_expansion_stride(self):
        targets = ProbeCampaign.expansion_targets([0x0A000001], stride=4)
        assert len(targets) < 70

    def test_expansion_dedupes_shared_slash24(self):
        targets = ProbeCampaign.expansion_targets([0x0A000002, 0x0A000003])
        # One /24 expanded once.
        assert len(targets) == 253

    def test_stats_counting(self, tiny_world):
        engine = TracerouteEngine(tiny_world, seed=0)
        campaign = ProbeCampaign(tiny_world, engine)
        stats = campaign.run(
            [p.network + 1 for p in tiny_world.sweep_slash24s[:10]],
            lambda t: None,
            regions=tiny_world.region_names("amazon")[:2],
        )
        assert stats.probes == 20
        assert 0 <= stats.completed_fraction <= 1
        assert stats.completed + stats.gap_limited == stats.probes

    def test_vpi_target_pool_contents(self):
        pool = vpi_target_pool([100, 200], [300])
        assert set(pool) == {100, 101, 200, 201, 300}
        assert pool == sorted(pool)
