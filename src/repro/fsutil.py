"""Filesystem durability and naming helpers shared across layers.

Both checkpoint stores -- the campaign shard journal
(:mod:`repro.measure.checkpoint`) and the stage store
(:mod:`repro.core.stages`) -- follow the same write discipline:
write-to-temp, fsync, atomic rename, fsync the directory.  The two
helpers that discipline needs live here, at the bottom of the layer
stack next to :mod:`repro.errors`, so neither store has to reach across
layers (or duplicate the code) to get them.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Union

__all__ = ["fsync_dir", "safe_name"]


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a directory so a rename within it is durable (best effort)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def safe_name(label: str, fallback: str) -> str:
    """``vpi:google`` -> ``vpi_google`` (filesystem-safe, collision-poor)."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", label) or fallback
