"""repro: a full reproduction of "How Cloud Traffic Goes Hiding: A Study of
Amazon's Peering Fabric" (IMC 2019).

The package has four layers:

* :mod:`repro.world` -- a seeded synthetic Internet with ground truth:
  clouds, regions, colo facilities, IXPs, cloud exchanges, client ASes, and
  every flavour of interconnection (public, cross-connect, VPI);
* :mod:`repro.measure` -- the measurement plane (traceroute, ping, public
  reachability, MIDAR-style alias resolution) -- the only window inference
  gets onto the world;
* :mod:`repro.datasets` -- public-data substrates (BGP, WHOIS, as2org,
  PeeringDB, merged IXP view) derived with realistic coverage gaps;
* :mod:`repro.core` -- the paper's methodology: border inference,
  verification heuristics, alias verification, pinning, VPI detection,
  peering grouping, and graph characterisation, plus :mod:`repro.bdrmap`
  (the §8 baseline) and :mod:`repro.analysis` (tables/figures/report).

Cross-cutting: :mod:`repro.obs` is the digest-neutral span tracer and
trace exporter behind ``--trace-out`` / ``repro trace``,
:class:`repro.measure.sink.EventSink` is the consolidated consumer of
probe / shard-merged / span-closed events, and :mod:`repro.bench` is
the ``repro bench`` perf harness (scenario runs folded into diffable
``BENCH_<scenario>.json`` reports).

Quickstart::

    from repro import (
        StudyConfig, WorldConfig, build_world, AmazonPeeringStudy, render_report,
    )

    world = build_world(WorldConfig(scale=0.05, seed=7))
    result = AmazonPeeringStudy(world, StudyConfig(seed=7, workers=4)).run()
    print(render_report(result))
"""

from repro.analysis.report import render_report, render_salvage, render_sensitivity
from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.core.results import DataQualityReport, StudyResult
from repro.core.stages import StageStore
from repro.datasets.datafaults import DataFaultPlan
from repro.datasets.validate import validate_datasets
from repro.errors import (
    EXIT_INTERRUPTED,
    DataError,
    DeadlineExceeded,
    HungShardError,
    ReproError,
    ShardTimeoutError,
    StageError,
    StudyInterrupted,
    TransportError,
)
from repro.measure.checkpoint import CheckpointStore
from repro.measure.executor import RetryPolicy
from repro.measure.faults import FaultPlan
from repro.measure.supervise import StudySupervisor
from repro.measure.sink import EventSink, FanoutEvents, as_event_sink
from repro.obs import (
    NULL_TRACER,
    SpanRecord,
    Tracer,
    read_trace,
    render_trace_summary,
    write_trace,
)
from repro.world.build import WorldConfig, build_world
from repro.world.model import World

__version__ = "1.6.0"

__all__ = [
    "AmazonPeeringStudy",
    "CheckpointStore",
    "DataError",
    "DataFaultPlan",
    "DataQualityReport",
    "DeadlineExceeded",
    "EXIT_INTERRUPTED",
    "EventSink",
    "FanoutEvents",
    "FaultPlan",
    "HungShardError",
    "NULL_TRACER",
    "ReproError",
    "RetryPolicy",
    "ShardTimeoutError",
    "SpanRecord",
    "StageError",
    "StageStore",
    "StudyConfig",
    "StudyInterrupted",
    "StudyResult",
    "StudySupervisor",
    "Tracer",
    "TransportError",
    "World",
    "WorldConfig",
    "as_event_sink",
    "build_world",
    "read_trace",
    "render_report",
    "render_salvage",
    "render_sensitivity",
    "render_trace_summary",
    "validate_datasets",
    "write_trace",
    "__version__",
]
