"""Performance benchmark harness: the ``repro bench`` subcommand.

Runs parameterized scenarios (annotate-only microbench, clean serial
study, parallel, faulty, dirty-data) against the seeded synthetic world,
folds span self-times and workload counters into a stable JSON schema,
and writes ``BENCH_<scenario>.json`` reports that CI can diff.

The schema separates three kinds of numbers by how they regress:

* ``counters`` -- exact workload counts (probes sent, LPM probes,
  cache misses, the study digest).  Any drift is a regression.
* ``efficiency`` -- derived lower-is-better ratios (LPM probes per
  lookup, annotation miss rate).  Gated by a relative threshold;
  improvements always pass.
* ``timings`` -- wall-clock seconds per stage / span family.
  Informational only: never gated, excluded from determinism tests.

``repro bench --compare old.json new.json`` renders the delta table and
exits 0 (ok), 1 (regression), or 2 (reports are not comparable).
"""

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    BenchMismatch,
    Delta,
    compare_reports,
    has_regression,
    render_deltas,
)
from repro.bench.report import (
    BENCH_SCHEMA,
    BenchReport,
    bench_path,
    read_report,
    write_report,
)
from repro.bench.scenarios import (
    BenchParams,
    SCENARIOS,
    run_scenario,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchMismatch",
    "BenchParams",
    "BenchReport",
    "DEFAULT_THRESHOLD",
    "Delta",
    "SCENARIOS",
    "bench_path",
    "compare_reports",
    "has_regression",
    "read_report",
    "render_deltas",
    "run_scenario",
    "write_report",
]
