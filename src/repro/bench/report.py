"""The ``BENCH_<scenario>.json`` report schema and file helpers.

A report is a frozen record of one scenario run.  Serialization is
canonical (sorted keys, two-space indent, trailing newline) so two runs
with identical content produce byte-identical files and ``git diff``
shows only real changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Union

#: Bump when the report shape changes; ``--compare`` refuses to diff
#: reports with different schemas.
BENCH_SCHEMA = "repro-bench-v1"

#: Top-level keys every report file must carry.
_REQUIRED_KEYS = (
    "schema",
    "scenario",
    "params",
    "digest",
    "counters",
    "efficiency",
    "timings",
)


@dataclass(frozen=True)
class BenchReport:
    """One scenario's folded results.

    ``counters`` hold exact integers, ``efficiency`` lower-is-better
    floats, ``timings`` informational wall-clock seconds (see the
    package docstring for how each section regresses).
    """

    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    digest: str = ""
    counters: Dict[str, int] = field(default_factory=dict)
    efficiency: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    schema: str = BENCH_SCHEMA

    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, stable indentation."""
        payload = {
            "schema": self.schema,
            "scenario": self.scenario,
            "params": dict(self.params),
            "digest": self.digest,
            "counters": dict(self.counters),
            "efficiency": dict(self.efficiency),
            "timings": dict(self.timings),
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        """Parse and validate one report document.

        Raises ``ValueError`` on anything that is not a well-formed
        report: wrong schema string, missing sections, or sections of
        the wrong shape.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("bench report must be a JSON object")
        missing = [key for key in _REQUIRED_KEYS if key not in data]
        if missing:
            raise ValueError(f"bench report missing key(s): {', '.join(missing)}")
        if data["schema"] != BENCH_SCHEMA:
            raise ValueError(
                f"unsupported bench schema {data['schema']!r} "
                f"(this build reads {BENCH_SCHEMA!r})"
            )
        for section, kind in (
            ("params", object),
            ("counters", int),
            ("efficiency", float),
            ("timings", float),
        ):
            mapping = data[section]
            if not isinstance(mapping, dict):
                raise ValueError(f"bench report {section!r} must be an object")
            if kind is int:
                bad = sorted(
                    k for k, v in mapping.items()
                    if not isinstance(v, int) or isinstance(v, bool)
                )
                if bad:
                    raise ValueError(
                        f"counter(s) must be integers: {', '.join(bad)}"
                    )
            elif kind is float:
                bad = sorted(
                    k for k, v in mapping.items()
                    if isinstance(v, bool) or not isinstance(v, (int, float))
                )
                if bad:
                    raise ValueError(
                        f"{section} value(s) must be numbers: {', '.join(bad)}"
                    )
        if not isinstance(data["scenario"], str) or not data["scenario"]:
            raise ValueError("bench report scenario must be a non-empty string")
        if not isinstance(data["digest"], str):
            raise ValueError("bench report digest must be a string")
        return cls(
            scenario=data["scenario"],
            params=dict(data["params"]),
            digest=data["digest"],
            counters={k: int(v) for k, v in data["counters"].items()},
            efficiency={k: float(v) for k, v in data["efficiency"].items()},
            timings={k: float(v) for k, v in data["timings"].items()},
            schema=data["schema"],
        )

    def params_key(self) -> Mapping[str, Any]:
        """The comparable identity of this run (scenario + params)."""
        return {"scenario": self.scenario, "params": self.params}


# ----------------------------------------------------------------------


def bench_path(scenario: str, root: Union[str, Path] = ".") -> Path:
    """Where ``scenario``'s report lives: ``<root>/BENCH_<scenario>.json``."""
    return Path(root) / f"BENCH_{scenario}.json"


def write_report(report: BenchReport, root: Union[str, Path] = ".") -> Path:
    """Write ``report`` to its canonical path and return that path."""
    path = bench_path(report.scenario, root)
    path.write_text(report.to_json())
    return path


def read_report(path: Union[str, Path]) -> BenchReport:
    """Load and validate one ``BENCH_*.json`` file."""
    return BenchReport.from_json(Path(path).read_text())
