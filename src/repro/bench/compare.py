"""Report diffing: the ``repro bench --compare old.json new.json`` path.

Two reports are *comparable* only when their scenario, schema, and
params agree -- otherwise the numbers describe different workloads and
any delta is meaningless (:class:`BenchMismatch`, exit code 2).

Comparable reports regress section by section:

* ``digest``     -- any change is a regression;
* ``counters``   -- exact integers; any drift (or a key appearing /
  disappearing) is a regression;
* ``efficiency`` -- lower is better; a regression needs the new value
  to exceed the old by more than the relative ``threshold``;
* ``timings``    -- rendered for the human, never gated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.bench.report import BenchReport

#: relative headroom an efficiency metric may grow before it regresses.
DEFAULT_THRESHOLD = 0.05


class BenchMismatch(ValueError):
    """The two reports do not describe the same workload."""


@dataclass(frozen=True)
class Delta:
    """One compared entry."""

    section: str  # "digest" | "counter" | "efficiency" | "timing"
    key: str
    old: Optional[Any]
    new: Optional[Any]
    regressed: bool

    @property
    def changed(self) -> bool:
        return self.old != self.new


def compare_reports(
    old: BenchReport,
    new: BenchReport,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Delta]:
    """Every compared entry, gated sections first.

    Raises :class:`BenchMismatch` when the reports are not comparable.
    """
    if old.schema != new.schema:
        raise BenchMismatch(
            f"schema mismatch: {old.schema!r} vs {new.schema!r}"
        )
    if old.scenario != new.scenario:
        raise BenchMismatch(
            f"scenario mismatch: {old.scenario!r} vs {new.scenario!r}"
        )
    if old.params != new.params:
        drifted = sorted(
            set(old.params) | set(new.params),
        )
        detail = ", ".join(
            f"{key}: {old.params.get(key)!r} vs {new.params.get(key)!r}"
            for key in drifted
            if old.params.get(key) != new.params.get(key)
        )
        raise BenchMismatch(f"params mismatch: {detail}")
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")

    deltas: List[Delta] = [
        Delta(
            section="digest",
            key="digest",
            old=old.digest,
            new=new.digest,
            regressed=old.digest != new.digest,
        )
    ]
    for key in sorted(set(old.counters) | set(new.counters)):
        a, b = old.counters.get(key), new.counters.get(key)
        deltas.append(
            Delta(section="counter", key=key, old=a, new=b, regressed=a != b)
        )
    for key in sorted(set(old.efficiency) | set(new.efficiency)):
        a, b = old.efficiency.get(key), new.efficiency.get(key)
        if a is None or b is None:
            regressed = True  # metric appeared or vanished
        else:
            limit = a * (1.0 + threshold) if a > 0 else threshold
            regressed = b > limit
        deltas.append(
            Delta(
                section="efficiency", key=key, old=a, new=b, regressed=regressed
            )
        )
    for key in sorted(set(old.timings) | set(new.timings)):
        deltas.append(
            Delta(
                section="timing",
                key=key,
                old=old.timings.get(key),
                new=new.timings.get(key),
                regressed=False,  # wall clock never gates
            )
        )
    return deltas


def has_regression(deltas: List[Delta]) -> bool:
    return any(d.regressed for d in deltas)


# ----------------------------------------------------------------------


def _fmt(value: Optional[Any]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, str) and len(value) > 16:
        return value[:16] + "…"
    return str(value)


def _fmt_change(delta: Delta) -> str:
    if delta.old is None or delta.new is None:
        return "added" if delta.old is None else "removed"
    if isinstance(delta.old, str) or isinstance(delta.new, str):
        return "changed" if delta.changed else ""
    diff = delta.new - delta.old
    if diff == 0:
        return ""
    pct = f" ({diff / delta.old * +100:+.1f}%)" if delta.old else ""
    if isinstance(diff, float):
        return f"{diff:+.4f}{pct}"
    return f"{diff:+d}{pct}"


def render_deltas(
    old: BenchReport, new: BenchReport, deltas: List[Delta]
) -> str:
    """The human-readable delta table."""
    regressions = [d for d in deltas if d.regressed]
    lines = [
        f"bench compare: scenario {old.scenario!r} "
        f"({len(regressions)} regression(s))",
        f"  {'section':<11} {'metric':<28} {'old':>18} {'new':>18} "
        f"{'delta':>16} {'':>4}",
    ]
    for delta in deltas:
        flag = "FAIL" if delta.regressed else ""
        lines.append(
            f"  {delta.section:<11} {delta.key:<28} {_fmt(delta.old):>18} "
            f"{_fmt(delta.new):>18} {_fmt_change(delta):>16} {flag:>4}"
        )
    if regressions:
        lines.append(
            "  regressed: "
            + ", ".join(f"{d.section}/{d.key}" for d in regressions)
        )
    else:
        lines.append("  ok: no counter, digest, or efficiency regressions")
    return "\n".join(lines)
