"""``repro bench``: run scenarios, write ``BENCH_*.json``, diff reports.

::

    python -m repro bench                        # annotate + study
    python -m repro bench --all                  # every scenario
    python -m repro bench study-workers4         # named scenarios
    python -m repro bench --list
    python -m repro bench --compare BENCH_study.json new/BENCH_study.json

Exit status: 0 clean, 1 regression (``--compare``), 2 usage error or
incomparable reports.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    BenchMismatch,
    compare_reports,
    has_regression,
    render_deltas,
)
from repro.bench.report import read_report, write_report
from repro.bench.scenarios import (
    SCENARIOS,
    BenchParams,
    run_scenario,
    scenario_table,
)

#: scenarios a bare ``repro bench`` runs (the committed baselines).
DEFAULT_SCENARIOS = ("annotate", "study")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run performance benchmark scenarios against the seeded "
            "synthetic world and write BENCH_<scenario>.json reports, "
            "or diff two existing reports."
        ),
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help=f"scenarios to run (default: {' '.join(DEFAULT_SCENARIOS)}; "
             "see --list)",
    )
    parser.add_argument("--list", action="store_true",
                        help="list the known scenarios and exit")
    parser.add_argument("--all", action="store_true",
                        help="run every known scenario")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="diff two BENCH_*.json reports instead of "
                             "running anything; exit 1 on regression")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative headroom for efficiency metrics "
                             f"under --compare (default {DEFAULT_THRESHOLD})")
    parser.add_argument("--out-dir", type=str, default=".", metavar="DIR",
                        help="directory the reports are written to "
                             "(default: current directory)")
    parser.add_argument("--scale", type=float, default=None,
                        help="world scale override (default 0.02)")
    parser.add_argument("--seed", type=int, default=None,
                        help="world + campaign seed override (default 7)")
    parser.add_argument("--expansion-stride", type=int, default=None,
                        help="expansion sub-sampling override (default 8)")
    return parser


def _params(args: argparse.Namespace) -> BenchParams:
    defaults = BenchParams()
    return BenchParams(
        scale=args.scale if args.scale is not None else defaults.scale,
        seed=args.seed if args.seed is not None else defaults.seed,
        expansion_stride=(
            args.expansion_stride
            if args.expansion_stride is not None
            else defaults.expansion_stride
        ),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list:
        print("bench scenarios:")
        for name, description in scenario_table():
            print(f"  {name:<16} {description}")
        return 0

    if args.compare:
        old_path, new_path = args.compare
        try:
            old = read_report(old_path)
            new = read_report(new_path)
            deltas = compare_reports(old, new, threshold=args.threshold)
        except BenchMismatch as exc:
            print(f"bench compare: not comparable: {exc}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"bench compare: {exc}", file=sys.stderr)
            return 2
        print(render_deltas(old, new, deltas))
        return 1 if has_regression(deltas) else 0

    names: List[str] = list(args.scenarios)
    if args.all:
        if names:
            parser.error("--all and explicit scenario names are exclusive")
        names = list(SCENARIOS)
    elif not names:
        names = list(DEFAULT_SCENARIOS)
    unknown = sorted(set(names) - set(SCENARIOS))
    if unknown:
        parser.error(
            f"unknown scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(SCENARIOS)})"
        )

    params = _params(args)
    Path(args.out_dir).mkdir(parents=True, exist_ok=True)
    for name in names:
        print(f"bench {name}: running...", file=sys.stderr)
        t0 = time.perf_counter()
        report = run_scenario(name, params)
        path = write_report(report, args.out_dir)
        seconds = time.perf_counter() - t0
        print(
            f"bench {name}: wrote {path} "
            f"(digest {report.digest[:12]}, {seconds:.1f}s)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
