"""The parameterized bench scenarios and their runner.

Every scenario builds the seeded synthetic world fresh (construction is
part of what it measures), runs its workload, and folds the outcome into
a :class:`~repro.bench.report.BenchReport`:

* ``annotate`` -- the annotation/LPM microbench: a differential
  longest-prefix-match sweep (indexed vs. the retained naive oracle,
  answers asserted equal) over every interface address, then a cold and
  a warm annotation pass.  Its counters prove the index does strictly
  less work for identical answers.
* ``study`` / ``study-workers{2,4}`` -- the full end-to-end study,
  serial and on a worker pool (digest must match the serial run).
* ``study-faulty`` -- the study under an injected transport-fault plan
  with retries (digest must still match the clean study).
* ``study-dirty`` -- the study over degraded datasets (its *own*
  digest, stable run-to-run, different from the clean one).
* ``adaptive`` -- the clean study with the adaptive resilience control
  plane armed: the baseline pins its governor/breaker counters at zero
  and its digest to the clean study's, so arming adaptation on a
  healthy fabric provably changes nothing.

Workload counters and digests are deterministic functions of
``(scenario, params)``; only the ``timings`` section varies between
runs of the same build.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import astuple, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.report import BenchReport
from repro.core.annotate import (
    AnnotationCache,
    AnnotationInternPool,
    HopAnnotator,
)
from repro.core.config import StudyConfig
from repro.core.pipeline import AmazonPeeringStudy
from repro.datasets import (
    as2org_from_world,
    ixp_directory_from_world,
    peeringdb_from_world,
    snapshot_from_world,
)
from repro.datasets.datafaults import DataFaultPlan
from repro.datasets.whois import WhoisRegistry
from repro.measure.faults import FaultPlan
from repro.obs.analyze import self_time_by_family
from repro.world.build import WorldConfig, build_world
from repro.world.model import World


@dataclass(frozen=True)
class BenchParams:
    """Knobs shared by every scenario (the scenario adds the rest)."""

    scale: float = 0.02
    seed: int = 7
    expansion_stride: int = 8
    run_crossval: bool = False
    run_vpi: bool = True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "expansion_stride": self.expansion_stride,
            "run_crossval": self.run_crossval,
            "run_vpi": self.run_vpi,
        }


@dataclass(frozen=True)
class BenchScenario:
    """One named workload shape."""

    name: str
    description: str
    kind: str = "study"  # "study" | "annotate"
    workers: int = 1
    #: ``FaultPlan.parse`` spec for injected transport/observation faults.
    fault_plan: Optional[str] = None
    #: ``DataFaultPlan.parse`` spec for degraded dataset views.
    data_fault_plan: Optional[str] = None
    #: arm the adaptive resilience control plane (DESIGN.md 6.6).
    adaptive: bool = False


_FAULTY_SPEC = "crash=0.25,crash-attempts=1,slow=0.05,slow-seconds=0.01,seed=5"
_DIRTY_SPEC = (
    "bgp-stale=0.1,moas=0.05,as2org-drop=0.1,ixp-drop=0.2,"
    "ixp-conflict=0.1,whois-gap=0.2,whois-nameonly=0.3,seed=1"
)

#: Registry, in canonical run order.
SCENARIOS: Dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            "annotate",
            "annotation/LPM microbench: differential indexed-vs-naive "
            "LPM sweep plus cold and warm annotation passes",
            kind="annotate",
        ),
        BenchScenario("study", "clean serial end-to-end study"),
        BenchScenario(
            "study-workers2", "end-to-end study on 2 workers", workers=2
        ),
        BenchScenario(
            "study-workers4", "end-to-end study on 4 workers", workers=4
        ),
        BenchScenario(
            "study-faulty",
            "study under injected worker crashes and slowdowns (retries "
            "must reconverge on the clean digest)",
            workers=2,
            fault_plan=_FAULTY_SPEC,
        ),
        BenchScenario(
            "study-dirty",
            "study over degraded dataset views (dirty BGP/WHOIS/as2org/"
            "IXP); digest differs from clean but is stable run-to-run",
            data_fault_plan=_DIRTY_SPEC,
        ),
        BenchScenario(
            "adaptive",
            "clean study with the adaptive control plane armed: breakers "
            "must stay closed, the governor must defer nothing, and the "
            "digest must match the clean serial study",
            adaptive=True,
        ),
    )
}


def run_scenario(
    name: str, params: Optional[BenchParams] = None
) -> BenchReport:
    """Run one scenario and fold its results into a report."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(
            f"unknown bench scenario {name!r} "
            f"(known: {', '.join(SCENARIOS)})"
        )
    params = params if params is not None else BenchParams()
    if scenario.kind == "annotate":
        return _run_annotate(scenario, params)
    return _run_study(scenario, params)


# ----------------------------------------------------------------------


def _build_world(params: BenchParams) -> Tuple[World, float]:
    t0 = time.perf_counter()
    world = build_world(WorldConfig(scale=params.scale, seed=params.seed))
    return world, time.perf_counter() - t0


def _scenario_params(
    scenario: BenchScenario, params: BenchParams
) -> Dict[str, Any]:
    merged = params.as_dict()
    merged["workers"] = scenario.workers
    merged["fault_plan"] = scenario.fault_plan
    merged["data_fault_plan"] = scenario.data_fault_plan
    merged["adaptive"] = scenario.adaptive
    return merged


def _run_study(scenario: BenchScenario, params: BenchParams) -> BenchReport:
    t0 = time.perf_counter()
    world, build_seconds = _build_world(params)
    config = StudyConfig(
        scale=params.scale,
        seed=params.seed,
        expansion_stride=params.expansion_stride,
        run_crossval=params.run_crossval,
        run_vpi=params.run_vpi,
        workers=scenario.workers,
        fault_plan=(
            FaultPlan.parse(scenario.fault_plan)
            if scenario.fault_plan
            else None
        ),
        data_fault_plan=(
            DataFaultPlan.parse(scenario.data_fault_plan)
            if scenario.data_fault_plan
            else None
        ),
        retry_backoff_s=0.0,
        adaptive=scenario.adaptive,
    )
    study = AmazonPeeringStudy(world, config)
    result = study.run()
    total_seconds = time.perf_counter() - t0

    annotators = [
        study.annotator_r1,
        study.annotator_r2,
        *study.cloud_annotators.values(),
    ]
    cache_hits = sum(a.cache_hits for a in annotators)
    cache_misses = sum(a.cache_misses for a in annotators)
    lpm_lookups = study.bgp_r1.lookup_count + study.bgp_r2.lookup_count
    lpm_probes = study.bgp_r1.probe_count + study.bgp_r2.probe_count

    counters: Dict[str, int] = {
        "round1_probes": result.round1_stats.probes,
        "round1_completed": result.round1_stats.completed,
        "round1_left_cloud": result.round1_stats.left_cloud,
        "round2_probes": result.round2_stats.probes,
        "abis": len(result.abis),
        "cbis": len(result.cbis),
        "segments": len(result.final_segments),
        "alias_sets": len(result.alias_sets),
        "peer_ases_round2": result.peer_ases_round2,
        "annotation_cache_hits": cache_hits,
        "annotation_cache_misses": cache_misses,
        "lpm_lookups": lpm_lookups,
        "lpm_probes": lpm_probes,
    }
    if scenario.adaptive:
        # Pin the control plane's inertness on a clean run: any nonzero
        # value here means a breaker opened (or a probe was re-paced)
        # with nothing injected -- a false positive the baseline gates.
        resilience = result.resilience
        counters["governor_deferred"] = (
            resilience.deferred if resilience else 0
        )
        counters["recovered_probes"] = (
            resilience.recovered if resilience else 0
        )
        counters["recovery_still_lost"] = (
            resilience.still_lost if resilience else 0
        )
        counters["breaker_transitions"] = (
            len(resilience.breaker_events) if resilience else 0
        )
    total_annotations = cache_hits + cache_misses
    efficiency: Dict[str, float] = {
        "lpm_probes_per_lookup": (
            lpm_probes / lpm_lookups if lpm_lookups else 0.0
        ),
        "annotation_miss_rate": (
            cache_misses / total_annotations if total_annotations else 0.0
        ),
    }
    timings: Dict[str, float] = {
        "world_build_seconds": build_seconds,
        "total_seconds": total_seconds,
    }
    for stage, seconds in sorted(result.metrics.stages.items()):
        timings[f"stage/{stage}"] = seconds
    for family, seconds in sorted(
        self_time_by_family(result.metrics.tracer.records).items()
    ):
        timings[f"span/{family}"] = seconds
    return BenchReport(
        scenario=scenario.name,
        params=_scenario_params(scenario, params),
        digest=result.digest(),
        counters=counters,
        efficiency=efficiency,
        timings=timings,
    )


def _run_annotate(scenario: BenchScenario, params: BenchParams) -> BenchReport:
    t0 = time.perf_counter()
    world, build_seconds = _build_world(params)
    seed = params.seed
    bgp = snapshot_from_world(world, "r2")
    whois = WhoisRegistry(world, seed=seed)
    as2org = as2org_from_world(world, seed=seed)
    peeringdb = peeringdb_from_world(world, seed=seed)
    ixps = ixp_directory_from_world(world, peeringdb, seed=seed)
    ips = sorted(world.interfaces)

    # Differential LPM sweep: the indexed path and the retained naive
    # oracle must return identical matches over every address; their
    # counters quantify exactly how much probing the index saves.
    naive = bgp.naive_reference()
    t = time.perf_counter()
    indexed_matches = [bgp.lookup(ip) for ip in ips]
    indexed_sweep_seconds = time.perf_counter() - t
    t = time.perf_counter()
    naive_matches = [naive.lookup(ip) for ip in ips]
    naive_sweep_seconds = time.perf_counter() - t
    if indexed_matches != naive_matches:
        diverged = sum(
            1 for a, b in zip(indexed_matches, naive_matches) if a != b
        )
        raise RuntimeError(
            f"LPM differential failure: indexed and naive lookups "
            f"diverged on {diverged}/{len(ips)} addresses"
        )

    # Cold pass computes every annotation; the warm pass must be pure
    # cache hits.  A private cache + intern pool keeps the counters
    # self-contained (the process-wide pool would leak other runs in).
    pool = AnnotationInternPool()
    annotator = HopAnnotator(
        bgp, whois, as2org, ixps, cache=AnnotationCache(intern_pool=pool)
    )
    t = time.perf_counter()
    annotations = [annotator.annotate(ip) for ip in ips]
    cold_seconds = time.perf_counter() - t
    t = time.perf_counter()
    for ip in ips:
        annotator.annotate(ip)
    warm_seconds = time.perf_counter() - t

    digest = hashlib.sha256(
        "\n".join(repr(astuple(ann)) for ann in annotations).encode()
    ).hexdigest()
    lookups = len(ips)
    counters: Dict[str, int] = {
        "addresses": lookups,
        "lpm_lookups": lookups,
        # The sweep's probe cost per side: one bisect per indexed lookup
        # by construction; the naive table counts one dict probe per
        # prefix length walked.
        "lpm_probes_indexed": lookups,
        "lpm_probes_naive": naive.probe_count,
        "annotations_distinct": len(pool),
        "annotation_cache_misses": annotator.cache_misses,
        "annotation_cache_hits": annotator.cache_hits,
        "intern_hits": pool.hits,
    }
    efficiency: Dict[str, float] = {
        "probes_per_lookup_indexed": (
            counters["lpm_probes_indexed"] / lookups if lookups else 0.0
        ),
        "probes_per_lookup_naive": (
            counters["lpm_probes_naive"] / lookups if lookups else 0.0
        ),
        "lpm_probe_ratio": (
            counters["lpm_probes_indexed"] / counters["lpm_probes_naive"]
            if counters["lpm_probes_naive"]
            else 0.0
        ),
    }
    timings: Dict[str, float] = {
        "world_build_seconds": build_seconds,
        "lpm_sweep_indexed_seconds": indexed_sweep_seconds,
        "lpm_sweep_naive_seconds": naive_sweep_seconds,
        "annotate_cold_seconds": cold_seconds,
        "annotate_warm_seconds": warm_seconds,
        "total_seconds": time.perf_counter() - t0,
    }
    return BenchReport(
        scenario=scenario.name,
        params=_scenario_params(scenario, params),
        digest=digest,
        counters=counters,
        efficiency=efficiency,
        timings=timings,
    )


def scenario_table() -> List[Tuple[str, str]]:
    """(name, description) rows for ``repro bench --list``."""
    return [(s.name, s.description) for s in SCENARIOS.values()]
