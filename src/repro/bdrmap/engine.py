"""A bdrmap-style border-mapping baseline (§8).

bdrmap [55] infers the borders of a *single* network from traceroutes
launched inside it.  Its design assumptions differ from the cloud setting
in two ways the paper exploits:

* it selects traceroute targets from **BGP-announced prefixes** of known
  neighbours and feeds AS-relationship data into its heuristics -- so
  peerings invisible in BGP (a third of Amazon's) bias its output;
* it expects border routers to sit squarely in the host *or* the peer
  network, while Amazon's hybrid border routers face both.

This module implements a faithful *simplification*: per-region independent
runs with (i) BGP-driven target selection, (ii) last-home-ASN border
detection, (iii) owner assignment via announced origin, with bdrmap's
``thirdparty`` heuristic (single common provider among reached
destinations) for unannounced interfaces, and (iv) far-side reassignment
of home-announced interfaces that are only ever followed by client hops.
Running it per region reproduces the §8 inconsistencies: AS0 owners,
cross-region owner conflicts, and ABI/CBI flips.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.asn import AMAZON_ASNS, ASN
from repro.net.ip import IPv4, Prefix
from repro.datasets.bgp import BGPSnapshot
from repro.datasets.relationships import ASRelationships
from repro.measure.traceroute import Traceroute, TracerouteEngine
from repro.world.model import World


@dataclass
class RegionInference:
    """One region's bdrmap output."""

    region: str
    abis: Set[IPv4] = field(default_factory=set)
    cbis: Set[IPv4] = field(default_factory=set)
    #: interface -> inferred owner AS (0 = unknown)
    owner: Dict[IPv4, ASN] = field(default_factory=dict)
    #: interfaces whose owner came from the thirdparty heuristic
    thirdparty_owned: Set[IPv4] = field(default_factory=set)


@dataclass
class BdrmapResult:
    """Merged per-region outputs plus §8 consistency statistics."""

    runs: Dict[str, RegionInference] = field(default_factory=dict)

    def all_abis(self) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for run in self.runs.values():
            out |= run.abis
        return out

    def all_cbis(self) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for run in self.runs.values():
            out |= run.cbis
        return out

    def all_ases(self) -> Set[ASN]:
        out: Set[ASN] = set()
        for run in self.runs.values():
            out.update(asn for asn in run.owner.values() if asn)
        return out

    # -- §8 inconsistency metrics ------------------------------------------

    def as0_cbis(self) -> Set[IPv4]:
        """CBIs for which no region produced an owner AS."""
        owners: Dict[IPv4, Set[ASN]] = {}
        for run in self.runs.values():
            for ip in run.cbis:
                owners.setdefault(ip, set()).add(run.owner.get(ip, 0))
        return {ip for ip, asns in owners.items() if asns == {0}}

    def conflicting_owner_cbis(self) -> Dict[IPv4, Set[ASN]]:
        """CBIs whose inferred owner differs across regions."""
        owners: Dict[IPv4, Set[ASN]] = {}
        for run in self.runs.values():
            for ip in run.cbis:
                asn = run.owner.get(ip, 0)
                if asn:
                    owners.setdefault(ip, set()).add(asn)
        return {ip: asns for ip, asns in owners.items() if len(asns) > 1}

    def flip_interfaces(self) -> Set[IPv4]:
        """Interfaces inferred ABI in one region and CBI in another."""
        abis = self.all_abis()
        cbis = self.all_cbis()
        return abis & cbis

    def thirdparty_cbis(self) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for run in self.runs.values():
            out |= run.thirdparty_owned & run.cbis
        return out


class BdrmapEngine:
    """Per-region bdrmap-style inference against the measurement plane."""

    def __init__(
        self,
        world: World,
        bgp: BGPSnapshot,
        relationships: ASRelationships,
        engine: Optional[TracerouteEngine] = None,
        home_asns: Optional[Set[ASN]] = None,
        cloud: str = "amazon",
        targets_per_prefix: int = 12,
    ) -> None:
        self.world = world
        self.bgp = bgp
        self.relationships = relationships
        self.engine = engine or TracerouteEngine(world)
        self.home_asns = set(home_asns or AMAZON_ASNS)
        self.cloud = cloud
        self.targets_per_prefix = targets_per_prefix

    # ------------------------------------------------------------------

    def select_targets(self) -> List[IPv4]:
        """BGP-driven target selection: probes into announced prefixes.

        Several evenly spaced /24s per announced prefix, ``.1`` each --
        the way bdrmap walks its neighbours' address space.  This is the
        §8 bias: unannounced infrastructure space, where a quarter of the
        round-1 CBIs live, is never probed.
        """
        targets: List[IPv4] = []
        per_prefix = max(1, self.targets_per_prefix)
        for ann in self.bgp.announcements:
            count = min(per_prefix, max(1, ann.prefix.size // 256))
            step = max(1, (ann.prefix.size // 256) // count)
            nets = list(ann.prefix.slash24s())
            for i in range(0, len(nets), step):
                targets.append(nets[i].network + 1)
                if len(targets) and i // step + 1 >= count:
                    break
        return sorted(set(targets))

    # ------------------------------------------------------------------

    def run_region(self, region: str, targets: Optional[Iterable[IPv4]] = None) -> RegionInference:
        inference = RegionInference(region=region)
        target_list = list(targets) if targets is not None else self.select_targets()
        #: interface -> destination ASes observed beyond it (thirdparty input)
        beyond: Dict[IPv4, Set[ASN]] = {}
        #: home-announced interfaces -> ASNs of hops seen right after them
        after_home: Dict[IPv4, Set[ASN]] = {}

        for dst in target_list:
            trace = self.engine.trace(self.cloud, region, dst)
            self._ingest(trace, inference, beyond, after_home)

        self._assign_thirdparty_owners(inference, beyond)
        self._farside_reassignment(inference, after_home)
        return inference

    def run_all(self, regions: Optional[Iterable[str]] = None) -> BdrmapResult:
        result = BdrmapResult()
        targets = self.select_targets()
        for region in regions or self.world.region_names(self.cloud):
            result.runs[region] = self.run_region(region, targets)
        return result

    # ------------------------------------------------------------------

    def _asn_of(self, ip: IPv4) -> ASN:
        origin = self.bgp.origin_of(ip)
        return origin if origin is not None else 0

    def _ingest(
        self,
        trace: Traceroute,
        inference: RegionInference,
        beyond: Dict[IPv4, Set[ASN]],
        after_home: Dict[IPv4, Set[ASN]],
    ) -> None:
        hops = [(h.ip, self._asn_of(h.ip)) for h in trace.hops if h.ip is not None]
        if not hops:
            return
        # Last hop announced by the home network.
        last_home_idx: Optional[int] = None
        for idx, (_ip, asn) in enumerate(hops):
            if asn in self.home_asns:
                last_home_idx = idx
        if last_home_idx is None or last_home_idx + 1 >= len(hops):
            return
        abi_ip, _ = hops[last_home_idx]
        cbi_ip, cbi_asn = hops[last_home_idx + 1]
        if cbi_ip == trace.dst:
            return
        inference.abis.add(abi_ip)
        inference.cbis.add(cbi_ip)
        # Owner: announced origin if any; else resolved later.
        if cbi_asn:
            inference.owner[cbi_ip] = cbi_asn
        else:
            inference.owner.setdefault(cbi_ip, 0)
        # Record the destination ASes reached through the interface
        # (the thirdparty heuristic's input).
        dst_asn = self._asn_of(trace.dst)
        if dst_asn and dst_asn not in self.home_asns:
            beyond.setdefault(cbi_ip, set()).add(dst_asn)
        # Far-side bookkeeping for home-announced interfaces.
        for idx in range(len(hops) - 1):
            ip, asn = hops[idx]
            if asn in self.home_asns:
                after_home.setdefault(ip, set()).add(hops[idx + 1][1])

    # ------------------------------------------------------------------

    def _assign_thirdparty_owners(
        self, inference: RegionInference, beyond: Dict[IPv4, Set[ASN]]
    ) -> None:
        """bdrmap's thirdparty heuristic: an unowned interface is assigned
        to a provider common to the destination ASes reached through it.

        §8 shows the heuristic is only as good as the region's probing:
        when several providers fit, bdrmap still picks one (the best
        supported locally), so regions with different reachable
        destination sets produce *different* owners for the same
        interface -- the paper's owner-conflict inconsistency.
        """
        for ip, owner in list(inference.owner.items()):
            if owner:
                continue
            dst_ases = beyond.get(ip, set()) - self.home_asns
            if not dst_ases:
                continue
            provider_sets = [
                self.relationships.providers_of(asn) or {asn} for asn in dst_ases
            ]
            common = set.intersection(*provider_sets) if provider_sets else set()
            if not common:
                continue
            owner = max(
                common,
                key=lambda a: (sum(a in s for s in provider_sets), -a),
            )
            inference.owner[ip] = owner
            inference.thirdparty_owned.add(ip)

    def _farside_reassignment(
        self, inference: RegionInference, after_home: Dict[IPv4, Set[ASN]]
    ) -> None:
        """Home-announced interfaces only ever followed by non-home hops
        are reassigned to the far side (they sit on the peer's router).

        This is where the hybrid border routers of the cloud setting bite:
        from one region an interface looks far-side, from another it looks
        home-side -- the §8 ABI/CBI flips.
        """
        for ip, next_asns in after_home.items():
            meaningful = {a for a in next_asns if a}
            if meaningful and not (meaningful & self.home_asns):
                if ip in inference.abis:
                    inference.abis.discard(ip)
                    inference.cbis.add(ip)
                    inference.owner.setdefault(ip, 0)
