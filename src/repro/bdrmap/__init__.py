"""bdrmap-style baseline (§8): per-region border mapping and comparison."""

from repro.bdrmap.compare import BdrmapComparison, compare
from repro.bdrmap.engine import BdrmapEngine, BdrmapResult, RegionInference

__all__ = [
    "BdrmapComparison",
    "BdrmapEngine",
    "BdrmapResult",
    "RegionInference",
    "compare",
]
