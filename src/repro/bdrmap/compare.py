"""Comparison of bdrmap's output with our methodology (§8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.net.asn import ASN
from repro.net.ip import IPv4
from repro.bdrmap.engine import BdrmapResult
from repro.core.results import StudyResult
from repro.datasets.relationships import ASRelationships


@dataclass
class BdrmapComparison:
    """The quantities §8 reports."""

    bdrmap_abis: int = 0
    bdrmap_cbis: int = 0
    bdrmap_ases: int = 0
    ours_abis: int = 0
    ours_cbis: int = 0
    ours_ases: int = 0
    common_abis: int = 0
    common_cbis: int = 0
    common_ases: int = 0
    #: §8 inconsistency 1: CBIs with owner AS0 in every region
    as0_owner_cbis: int = 0
    #: §8 inconsistency 2: CBIs with different owners across regions
    conflicting_owner_cbis: int = 0
    max_owners_per_cbi: int = 0
    #: §8 inconsistency 3: ABI-in-one-region / CBI-in-another interfaces
    flip_interfaces: int = 0
    #: of the flips, fraction announced by the home network's ASNs
    flip_home_announced_fraction: float = 0.0
    #: ASes found only by bdrmap, and how many survive provider validation
    bdrmap_exclusive_ases: int = 0
    thirdparty_cbis: int = 0
    thirdparty_invalidated: int = 0


def compare(
    bdrmap: BdrmapResult,
    study: StudyResult,
    relationships: ASRelationships,
    home_announced: Optional[Set[IPv4]] = None,
) -> BdrmapComparison:
    """Compute the §8 comparison table."""
    cmp = BdrmapComparison()
    b_abis, b_cbis = bdrmap.all_abis(), bdrmap.all_cbis()
    b_ases = bdrmap.all_ases()
    cmp.bdrmap_abis = len(b_abis)
    cmp.bdrmap_cbis = len(b_cbis)
    cmp.bdrmap_ases = len(b_ases)
    cmp.ours_abis = len(study.abis)
    cmp.ours_cbis = len(study.cbis)
    our_ases = study.grouping.all_ases() if study.grouping else set()
    cmp.ours_ases = len(our_ases)
    cmp.common_abis = len(b_abis & study.abis)
    cmp.common_cbis = len(b_cbis & study.cbis)
    cmp.common_ases = len(b_ases & our_ases)

    cmp.as0_owner_cbis = len(bdrmap.as0_cbis())
    conflicts = bdrmap.conflicting_owner_cbis()
    cmp.conflicting_owner_cbis = len(conflicts)
    cmp.max_owners_per_cbi = max((len(v) for v in conflicts.values()), default=0)

    flips = bdrmap.flip_interfaces()
    cmp.flip_interfaces = len(flips)
    if flips and home_announced is not None:
        cmp.flip_home_announced_fraction = len(flips & home_announced) / len(flips)

    cmp.bdrmap_exclusive_ases = len(b_ases - our_ases)

    # Validate thirdparty-heuristic inferences the way §8 does: for each
    # thirdparty-owned CBI, the destination ASes reached through it must
    # share exactly one common provider; more than one (or none) means the
    # heuristic fired on insufficient probing.
    tp = bdrmap.thirdparty_cbis()
    cmp.thirdparty_cbis = len(tp)
    invalid = 0
    for ip in tp:
        dst_ases: Set[ASN] = set()
        for run in bdrmap.runs.values():
            owner = run.owner.get(ip)
            if owner and ip in run.thirdparty_owned:
                dst_ases.update(relationships.customers_of(owner))
        providers = [relationships.providers_of(a) or {a} for a in dst_ases]
        common = set.intersection(*providers) if providers else set()
        if len(common) != 1:
            invalid += 1
    cmp.thirdparty_invalidated = invalid
    return cmp
