"""Merged IXP directory (PeeringDB + PCH + CAIDA IXP dataset).

The paper combines three sources to decide whether a hop address belongs
to an IXP peering LAN (§3) and to map member addresses to member ASNs
(§5.1's IXP-client heuristic, via traIXroute-style lookups [63]).  We
model the merge as the PeeringDB snapshot plus a PCH-style supplement that
recovers a slice of the netixlan entries PeeringDB is missing.

Whether PCH recovers a member record is keyed to the member IP itself,
so the merged view is identical regardless of iteration order.  Under a
:class:`~repro.datasets.datafaults.DataFaultPlan` the merge can also lose
member records entirely, or carry records whose two sources *disagree*
on the member ASN; disagreements are kept in a conflict table (PeeringDB
wins in the merged view) so the annotation layer can lower its
confidence instead of silently trusting one source.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPv4, Prefix
from repro.net.rng import keyed_uniform
from repro.datasets.datafaults import DataFaultPlan
from repro.datasets.peeringdb import PeeringDB
from repro.world.model import World


class IXPDirectory:
    """Fast IXP-prefix membership and member lookups."""

    def __init__(
        self,
        prefixes: List[Tuple[Prefix, int]],
        members: Dict[IPv4, Tuple[int, ASN]],
        cities: Dict[int, Tuple[str, ...]],
        names: Dict[int, str],
        conflicts: Optional[Mapping[IPv4, Tuple[ASN, ASN]]] = None,
    ) -> None:
        self._prefix_by_net: Dict[int, Tuple[Prefix, int]] = {}
        for prefix, ixp_id in prefixes:
            for p24 in prefix.slash24s():
                self._prefix_by_net[p24.network] = (prefix, ixp_id)
        self._members = members
        self._cities = cities
        self._names = names
        #: ip -> (PeeringDB ASN, conflicting ASN from the other source)
        self._conflicts: Dict[IPv4, Tuple[ASN, ASN]] = dict(conflicts or {})

    # ------------------------------------------------------------------

    def ixp_of(self, ip: IPv4) -> Optional[int]:
        """IXP id when ``ip`` is inside a known peering LAN."""
        entry = self._prefix_by_net.get(ip & 0xFFFFFF00)
        if entry is None:
            return None
        prefix, ixp_id = entry
        return ixp_id if ip in prefix else None

    def is_ixp_address(self, ip: IPv4) -> bool:
        return self.ixp_of(ip) is not None

    def member_asn(self, ip: IPv4) -> Optional[ASN]:
        entry = self._members.get(ip)
        return entry[1] if entry else None

    def member_conflict(self, ip: IPv4) -> Optional[Tuple[ASN, ASN]]:
        """The two ASNs the sources claim for ``ip``, when they disagree."""
        return self._conflicts.get(ip)

    def conflicted_ips(self) -> List[IPv4]:
        return sorted(self._conflicts)

    @property
    def conflict_count(self) -> int:
        return len(self._conflicts)

    def cities_of(self, ixp_id: int) -> Tuple[str, ...]:
        return self._cities.get(ixp_id, ())

    def name_of(self, ixp_id: int) -> str:
        return self._names.get(ixp_id, f"ixp-{ixp_id}")

    def is_multi_metro(self, ixp_id: int) -> bool:
        return len(self._cities.get(ixp_id, ())) > 1

    def ixp_ids(self) -> Set[int]:
        return set(self._cities)

    def member_ips_of(self, ixp_id: int) -> List[IPv4]:
        return sorted(ip for ip, (i, _a) in self._members.items() if i == ixp_id)


def ixp_directory_from_world(
    world: World,
    peeringdb: PeeringDB,
    seed: int = 0,
    pch_recovery_rate: float = 0.5,
    data_faults: Optional[DataFaultPlan] = None,
) -> IXPDirectory:
    """Merge PeeringDB's view with a PCH-style supplement."""
    prefixes = [(x.prefix, x.ixp_id) for x in peeringdb.ixps]
    cities = {x.ixp_id: x.cities for x in peeringdb.ixps}
    names = {x.ixp_id: x.name for x in peeringdb.ixps}
    pdb_members: Dict[IPv4, Tuple[int, ASN]] = {
        n.ip: (n.ixp_id, n.asn) for n in peeringdb.netixlans
    }
    # PCH recovers some of the member records PeeringDB lacks.  Recovery
    # is keyed per member IP so the merge never depends on iteration order.
    pch_members: Dict[IPv4, Tuple[int, ASN]] = {}
    for ixp in world.ixps.values():
        for asn, ips in sorted(ixp.member_ips.items()):
            for ip in ips:
                if keyed_uniform("pch", seed, ip) < pch_recovery_rate:
                    pch_members[ip] = (ixp.ixp_id, asn)

    conflicts: Dict[IPv4, Tuple[ASN, ASN]] = {}
    if data_faults is not None and data_faults.affects_ixp:
        for ip in list(pdb_members):
            if data_faults.ixp_member_dropped(ip):
                del pdb_members[ip]
        for ip in list(pch_members):
            if data_faults.ixp_member_dropped(ip):
                del pch_members[ip]
        for ip, (_ixp_id, asn) in sorted(pdb_members.items()):
            other = data_faults.ixp_member_conflict(ip, asn)
            if other is not None:
                conflicts[ip] = (asn, other)

    members = dict(pch_members)
    members.update(pdb_members)  # PeeringDB wins where the sources overlap
    return IXPDirectory(prefixes, members, cities, names, conflicts=conflicts)
