"""Merged IXP directory (PeeringDB + PCH + CAIDA IXP dataset).

The paper combines three sources to decide whether a hop address belongs
to an IXP peering LAN (§3) and to map member addresses to member ASNs
(§5.1's IXP-client heuristic, via traIXroute-style lookups [63]).  We
model the merge as the PeeringDB snapshot plus a PCH-style supplement that
recovers a slice of the netixlan entries PeeringDB is missing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPv4, Prefix
from repro.datasets.peeringdb import PeeringDB
from repro.world.model import World


class IXPDirectory:
    """Fast IXP-prefix membership and member lookups."""

    def __init__(
        self,
        prefixes: List[Tuple[Prefix, int]],
        members: Dict[IPv4, Tuple[int, ASN]],
        cities: Dict[int, Tuple[str, ...]],
        names: Dict[int, str],
    ) -> None:
        self._prefix_by_net: Dict[int, Tuple[Prefix, int]] = {}
        for prefix, ixp_id in prefixes:
            for p24 in prefix.slash24s():
                self._prefix_by_net[p24.network] = (prefix, ixp_id)
        self._members = members
        self._cities = cities
        self._names = names

    # ------------------------------------------------------------------

    def ixp_of(self, ip: IPv4) -> Optional[int]:
        """IXP id when ``ip`` is inside a known peering LAN."""
        entry = self._prefix_by_net.get(ip & 0xFFFFFF00)
        if entry is None:
            return None
        prefix, ixp_id = entry
        return ixp_id if ip in prefix else None

    def is_ixp_address(self, ip: IPv4) -> bool:
        return self.ixp_of(ip) is not None

    def member_asn(self, ip: IPv4) -> Optional[ASN]:
        entry = self._members.get(ip)
        return entry[1] if entry else None

    def cities_of(self, ixp_id: int) -> Tuple[str, ...]:
        return self._cities.get(ixp_id, ())

    def name_of(self, ixp_id: int) -> str:
        return self._names.get(ixp_id, f"ixp-{ixp_id}")

    def is_multi_metro(self, ixp_id: int) -> bool:
        return len(self._cities.get(ixp_id, ())) > 1

    def ixp_ids(self) -> Set[int]:
        return set(self._cities)

    def member_ips_of(self, ixp_id: int) -> List[IPv4]:
        return sorted(ip for ip, (i, _a) in self._members.items() if i == ixp_id)


def ixp_directory_from_world(
    world: World,
    peeringdb: PeeringDB,
    seed: int = 0,
    pch_recovery_rate: float = 0.5,
) -> IXPDirectory:
    """Merge PeeringDB's view with a PCH-style supplement."""
    rng = random.Random(repr(("pch", seed)))
    prefixes = [(x.prefix, x.ixp_id) for x in peeringdb.ixps]
    cities = {x.ixp_id: x.cities for x in peeringdb.ixps}
    names = {x.ixp_id: x.name for x in peeringdb.ixps}
    members: Dict[IPv4, Tuple[int, ASN]] = {
        n.ip: (n.ixp_id, n.asn) for n in peeringdb.netixlans
    }
    # PCH recovers some of the member records PeeringDB lacks.
    for ixp in world.ixps.values():
        for asn, ips in sorted(ixp.member_ips.items()):
            for ip in ips:
                if ip not in members and rng.random() < pch_recovery_rate:
                    members[ip] = (ixp.ixp_id, asn)
    return IXPDirectory(prefixes, members, cities, names)
