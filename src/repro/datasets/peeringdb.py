"""PeeringDB-style dataset: IXPs, LAN prefixes, facilities, tenants.

§6.1 uses PeeringDB for (i) IXP peering-LAN prefixes and their cities,
(ii) netixlan records mapping member addresses to ASNs, and (iii) colo
facility tenant lists (the single-colo/metro-footprint anchor).  Coverage
is partial: not every AS registers, and some netixlan entries are missing,
exactly the texture the paper's conservative heuristics tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPv4, Prefix
from repro.net.rng import keyed_uniform
from repro.world.model import World


@dataclass(frozen=True)
class PDBIXP:
    ixp_id: int
    name: str
    prefix: Prefix
    cities: Tuple[str, ...]       # metro codes; >1 marks a multi-metro IXP


@dataclass(frozen=True)
class PDBNetixlan:
    ixp_id: int
    asn: ASN
    ip: IPv4


@dataclass
class PDBFacility:
    facility_id: int
    name: str
    metro_code: str
    tenant_asns: Set[ASN] = field(default_factory=set)


class PeeringDB:
    """Queryable snapshot of the registry."""

    def __init__(
        self,
        ixps: List[PDBIXP],
        netixlans: List[PDBNetixlan],
        facilities: List[PDBFacility],
    ) -> None:
        self.ixps = ixps
        self.netixlans = netixlans
        self.facilities = facilities
        self._ixp_by_id = {x.ixp_id: x for x in ixps}
        self._member_by_ip: Dict[IPv4, PDBNetixlan] = {
            n.ip: n for n in netixlans
        }

    # -- IXP queries -----------------------------------------------------

    def ixp_of_ip(self, ip: IPv4) -> Optional[PDBIXP]:
        for ixp in self.ixps:
            if ip in ixp.prefix:
                return ixp
        return None

    def member_of_ip(self, ip: IPv4) -> Optional[PDBNetixlan]:
        return self._member_by_ip.get(ip)

    def ixp(self, ixp_id: int) -> Optional[PDBIXP]:
        return self._ixp_by_id.get(ixp_id)

    # -- footprint queries -------------------------------------------------

    def metros_of_asn(self, asn: ASN) -> Set[str]:
        """Metros where the AS is listed as a facility tenant or IXP member."""
        metros: Set[str] = set()
        for fac in self.facilities:
            if asn in fac.tenant_asns:
                metros.add(fac.metro_code)
        for n in self.netixlans:
            ixp = self._ixp_by_id.get(n.ixp_id)
            if ixp is not None and n.asn == asn and len(ixp.cities) == 1:
                metros.add(ixp.cities[0])
        return metros

    def single_metro_asns(self) -> Dict[ASN, str]:
        """ASes whose whole registered footprint is one metro (§6.1)."""
        by_asn: Dict[ASN, Set[str]] = {}
        for fac in self.facilities:
            for asn in fac.tenant_asns:
                by_asn.setdefault(asn, set()).add(fac.metro_code)
        for n in self.netixlans:
            ixp = self._ixp_by_id.get(n.ixp_id)
            if ixp is not None and len(ixp.cities) == 1:
                by_asn.setdefault(n.asn, set()).add(ixp.cities[0])
        return {
            asn: next(iter(metros))
            for asn, metros in by_asn.items()
            if len(metros) == 1
        }


def peeringdb_from_world(
    world: World,
    seed: int = 0,
    netixlan_coverage: float = 0.92,
    tenant_coverage: float = 0.35,
) -> PeeringDB:
    ixps = [
        PDBIXP(
            ixp_id=ixp.ixp_id,
            name=ixp.name,
            prefix=ixp.prefix,
            cities=tuple(ixp.metro_codes),
        )
        for ixp in world.ixps.values()
    ]
    # Whether a record is listed is keyed to the record's identity, never
    # to a shared draw sequence: any construction order of the same world
    # yields the identical registry (the digest contract depends on it).
    netixlans: List[PDBNetixlan] = []
    for ixp in world.ixps.values():
        for asn, ips in sorted(ixp.member_ips.items()):
            for ip in ips:
                if keyed_uniform(
                    "peeringdb-netixlan", seed, ixp.ixp_id, asn, ip
                ) < netixlan_coverage:
                    netixlans.append(PDBNetixlan(ixp_id=ixp.ixp_id, asn=asn, ip=ip))
    facilities: List[PDBFacility] = []
    for fac in world.facilities.values():
        listed = {
            asn
            for asn in sorted(fac.tenant_asns)
            if keyed_uniform("peeringdb-tenant", seed, fac.facility_id, asn)
            < tenant_coverage
        }
        facilities.append(
            PDBFacility(
                facility_id=fac.facility_id,
                name=fac.name,
                metro_code=fac.metro_code,
                tenant_asns=listed,
            )
        )
    return PeeringDB(ixps, netixlans, facilities)
