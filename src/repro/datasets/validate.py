"""Dataset cross-validation: inter-source disagreement detection.

"AS Relationships: Inference and Validation" argues inference quality
must be quantified against dataset error; "Misleading Stars" shows how
silently-missing data corrupts inferred topologies.  This pass runs
*before* any inference and counts where the public datasets disagree
with each other, so a study report can state up front how dirty its
inputs were:

* **MOAS prefixes** -- announcements claimed by more than one origin;
* **BGP vs. WHOIS** -- announced prefixes whose WHOIS record names a
  different organization's ASN than the BGP origin;
* **IXP member conflicts** -- merged directory records whose sources
  disagree on the member ASN;
* **coverage gaps** -- announced prefixes with no WHOIS record (or a
  name-only record), and origin ASes missing from as2org.

The pass is itself order-independent: WHOIS draws are keyed per /24
(see :mod:`repro.datasets.whois`), so probing every announcement here
never perturbs what later pipeline lookups observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.net.asn import ASN
from repro.datasets.as2org import AS2Org
from repro.datasets.bgp import BGPSnapshot
from repro.datasets.ixp import IXPDirectory
from repro.datasets.whois import WhoisRegistry


@dataclass(frozen=True)
class DatasetValidationReport:
    """Counts of inter-source disagreements and coverage gaps."""

    checked_prefixes: int = 0
    moas_prefixes: int = 0
    bgp_whois_mismatches: int = 0
    ixp_member_conflicts: int = 0
    whois_gaps: int = 0
    whois_nameonly: int = 0
    as2org_missing_asns: int = 0

    @property
    def total_disagreements(self) -> int:
        """Hard conflicts between sources (coverage gaps excluded)."""
        return (
            self.moas_prefixes
            + self.bgp_whois_mismatches
            + self.ixp_member_conflicts
        )

    @property
    def total_gaps(self) -> int:
        return self.whois_gaps + self.whois_nameonly + self.as2org_missing_asns

    def as_dict(self) -> Dict[str, Any]:
        return {
            "checked_prefixes": self.checked_prefixes,
            "moas_prefixes": self.moas_prefixes,
            "bgp_whois_mismatches": self.bgp_whois_mismatches,
            "ixp_member_conflicts": self.ixp_member_conflicts,
            "whois_gaps": self.whois_gaps,
            "whois_nameonly": self.whois_nameonly,
            "as2org_missing_asns": self.as2org_missing_asns,
        }

    def describe_lines(self) -> List[str]:
        return [
            f"checked {self.checked_prefixes} announced prefixes",
            f"{self.moas_prefixes} MOAS prefixes",
            f"{self.bgp_whois_mismatches} BGP-vs-WHOIS origin mismatches",
            f"{self.ixp_member_conflicts} IXP member-ASN conflicts",
            f"{self.whois_gaps} WHOIS gaps, {self.whois_nameonly} name-only records",
            f"{self.as2org_missing_asns} origin ASes missing from as2org",
        ]


def validate_datasets(
    bgp: BGPSnapshot,
    whois: WhoisRegistry,
    as2org: AS2Org,
    ixps: IXPDirectory,
) -> DatasetValidationReport:
    """Cross-check the four dataset views against each other."""
    mismatches = gaps = nameonly = 0
    missing_asns: Set[ASN] = set()
    for ann in bgp.announcements:
        record = whois.lookup(ann.prefix.network)
        if record is None:
            gaps += 1
        elif record.asn is None:
            nameonly += 1
        elif record.asn != ann.origin_asn and not as2org.same_org(
            record.asn, ann.origin_asn
        ):
            mismatches += 1
        if ann.origin_asn not in as2org:
            missing_asns.add(ann.origin_asn)
    return DatasetValidationReport(
        checked_prefixes=len(bgp.announcements),
        moas_prefixes=bgp.moas_prefix_count,
        bgp_whois_mismatches=mismatches,
        ixp_member_conflicts=ixps.conflict_count,
        whois_gaps=gaps,
        whois_nameonly=nameonly,
        as2org_missing_asns=len(missing_asns),
    )
