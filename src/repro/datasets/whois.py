"""WHOIS registry view: RIR allocations for unannounced space.

§3: 7% of observed hop addresses were in public space announced by no AS;
the paper maps them to owners via WHOIS.  This dataset exposes the
allocation registry of the world's address plan with realistic coverage.

Whether a record carries an ASN (and, under a
:class:`~repro.datasets.datafaults.DataFaultPlan`, whether it exists at
all) is a pure function of the /24 key -- never of lookup order -- so
any probing schedule sees the identical registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.asn import ASN
from repro.net.ip import IPv4
from repro.net.rng import keyed_uniform
from repro.datasets.datafaults import DataFaultPlan
from repro.world.model import World


@dataclass(frozen=True)
class WhoisRecord:
    holder_name: str
    asn: Optional[ASN]           # RIRs record an ASN for some holders only


class WhoisRegistry:
    """ip -> registered holder lookup."""

    def __init__(
        self,
        world: World,
        seed: int = 0,
        asn_coverage: float = 0.9,
        data_faults: Optional[DataFaultPlan] = None,
    ) -> None:
        self._world = world
        self._seed = seed
        self._asn_coverage = asn_coverage
        self._faults = data_faults
        self._cache: Dict[int, Optional[WhoisRecord]] = {}

    def lookup(self, ip: IPv4) -> Optional[WhoisRecord]:
        """The registered allocation covering ``ip``, if any."""
        key = ip >> 8  # allocations never split /24s in our plan
        if key in self._cache:
            return self._cache[key]
        record = self._compute(key, ip)
        self._cache[key] = record
        return record

    def _compute(self, key: int, ip: IPv4) -> Optional[WhoisRecord]:
        alloc = self._world.plan.owner_of(ip)
        if alloc is None:
            return None
        if self._faults is not None and self._faults.whois_gap(key):
            return None
        asn: Optional[ASN] = alloc.owner_asn if alloc.owner_asn else None
        # Some RIR records carry only a holder name, no ASN.  The draw is
        # keyed per /24 so the registry is identical for any lookup order.
        if asn is not None and keyed_uniform(
            "whois", self._seed, key
        ) >= self._asn_coverage:
            asn = None
        if (
            asn is not None
            and self._faults is not None
            and self._faults.whois_nameonly(key)
        ):
            asn = None
        return WhoisRecord(holder_name=alloc.holder_name, asn=asn)

    def owner_asn(self, ip: IPv4) -> Optional[ASN]:
        record = self.lookup(ip)
        return record.asn if record else None
