"""WHOIS registry view: RIR allocations for unannounced space.

§3: 7% of observed hop addresses were in public space announced by no AS;
the paper maps them to owners via WHOIS.  This dataset exposes the
allocation registry of the world's address plan with realistic coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.asn import ASN
from repro.net.ip import IPv4
from repro.world.model import World


@dataclass(frozen=True)
class WhoisRecord:
    holder_name: str
    asn: Optional[ASN]           # RIRs record an ASN for some holders only


class WhoisRegistry:
    """ip -> registered holder lookup."""

    def __init__(self, world: World, seed: int = 0, asn_coverage: float = 0.9) -> None:
        self._world = world
        self._rng = random.Random(repr(("whois", seed)))
        self._asn_coverage = asn_coverage
        self._cache: Dict[int, Optional[WhoisRecord]] = {}

    def lookup(self, ip: IPv4) -> Optional[WhoisRecord]:
        """The registered allocation covering ``ip``, if any."""
        key = ip >> 8  # allocations never split /24s in our plan
        if key in self._cache:
            return self._cache[key]
        alloc = self._world.plan.owner_of(ip)
        record: Optional[WhoisRecord] = None
        if alloc is not None:
            asn: Optional[ASN] = alloc.owner_asn if alloc.owner_asn else None
            # Some RIR records carry only a holder name, no ASN.
            if asn is not None and self._rng.random() >= self._asn_coverage:
                asn = None
            record = WhoisRecord(holder_name=alloc.holder_name, asn=asn)
        self._cache[key] = record
        return record

    def owner_asn(self, ip: IPv4) -> Optional[ASN]:
        record = self.lookup(ip)
        return record.asn if record else None
