"""CAIDA-style AS relationships and customer cones.

§7.2 checks each inferred peering against CAIDA's AS Relationships dataset
(derived from BGP feeds) and §7.3 uses the /24 customer cone as a proxy
for an AS's role.  Both views inherit BGP's blind spots: relationships
exist only for BGP-visible links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.net.asn import AMAZON_PRIMARY_ASN, ASN, TRANSIT_ASNS
from repro.world.model import World

P2P = "p2p"          # settlement-free peering
P2C = "p2c"          # provider-to-customer


@dataclass(frozen=True)
class Relationship:
    a: ASN
    b: ASN
    kind: str          # P2P or P2C with a as provider


class ASRelationships:
    """Relationship lookups plus /24 customer-cone sizes."""

    def __init__(
        self,
        relationships: List[Relationship],
        cone_slash24: Dict[ASN, int],
    ) -> None:
        self.relationships = relationships
        self._cones = dict(cone_slash24)
        self._links: Set[FrozenSet[ASN]] = set()
        self._providers: Dict[ASN, Set[ASN]] = {}
        self._customers: Dict[ASN, Set[ASN]] = {}
        for rel in relationships:
            self._links.add(frozenset((rel.a, rel.b)))
            if rel.kind == P2C:
                self._customers.setdefault(rel.a, set()).add(rel.b)
                self._providers.setdefault(rel.b, set()).add(rel.a)

    def has_link(self, a: ASN, b: ASN) -> bool:
        return frozenset((a, b)) in self._links

    def providers_of(self, asn: ASN) -> Set[ASN]:
        return set(self._providers.get(asn, set()))

    def customers_of(self, asn: ASN) -> Set[ASN]:
        return set(self._customers.get(asn, set()))

    def cone_slash24(self, asn: ASN) -> int:
        return self._cones.get(asn, 1)

    def amazon_links(self) -> Set[ASN]:
        out: Set[ASN] = set()
        for link in self._links:
            if AMAZON_PRIMARY_ASN in link:
                out.update(link - {AMAZON_PRIMARY_ASN})
        return out


def relationships_from_world(world: World) -> ASRelationships:
    """Derive the BGP-visible relationship graph and cone metadata."""
    rels: List[Relationship] = []
    seen: Set[FrozenSet[ASN]] = set()
    for icx in world.interconnections.values():
        if not icx.bgp_visible:
            continue
        key = frozenset((AMAZON_PRIMARY_ASN, icx.peer_asn))
        if key in seen:
            continue
        seen.add(key)
        rels.append(Relationship(AMAZON_PRIMARY_ASN, icx.peer_asn, P2P))
    cones: Dict[ASN, int] = {}
    for asn, client in world.client_ases.items():
        # One or two transit providers, chosen deterministically: the
        # mixed provider sets that trip bdrmap's thirdparty heuristic.
        primary = TRANSIT_ASNS[(asn * 2654435761 >> 4) % len(TRANSIT_ASNS)]
        rels.append(Relationship(primary, asn, P2C))
        if (asn * 2654435761 >> 9) % 10 < 4:
            secondary = TRANSIT_ASNS[
                ((asn * 2654435761 >> 4) + 1) % len(TRANSIT_ASNS)
            ]
            rels.append(Relationship(secondary, asn, P2C))
        cones[asn] = client.cone_slash24
    # Stub ASes hang off their transit parents in the public graph.
    for owner, carrier in sorted(world.asn_carrier.items()):
        if owner != carrier:
            rels.append(Relationship(carrier, owner, P2C))
    for info in world.as_registry:
        if 60000 <= info.asn < 100000:
            cones.setdefault(info.asn, 1)
    for transit in TRANSIT_ASNS:
        cones[transit] = max(sum(cones.values()) // len(TRANSIT_ASNS), 1)
    return ASRelationships(rels, cones)
