"""Deterministic fault injection for the data plane (dataset dirt).

PR 2's :class:`~repro.measure.faults.FaultPlan` made the *measurement*
plane survive chaos; this module injects the paper's other hard reality:
dirty **datasets**.  §3 falls back to WHOIS for the 7% of hop addresses
announced by no AS, merges three partially conflicting IXP directories,
and tolerates incomplete as2org coverage.  "Misleading Stars" shows that
missing data silently corrupts topology inference, so dataset dirt is a
*fidelity* knob the study must be testable under.

A :class:`DataFaultPlan` is a reproducible degradation schedule consulted
at dataset-construction time:

* **BGP** -- stale announcements missing from the snapshot, and MOAS
  conflicts (a second, bogus origin announced for a prefix);
* **as2org** -- dropped (non-cloud) entries;
* **IXP merge** -- member records missing from the PeeringDB/PCH merge,
  and member records whose two sources disagree on the member ASN;
* **WHOIS** -- allocations with no retrievable record, and records
  stripped down to a holder name with no ASN.

Every decision is derived from ``random.Random(repr(key))`` keyed by the
*record identity* (prefix, ASN, member IP, /24), never by a shared
sequential RNG -- so a given ``(seed, DataFaultPlan)`` yields the same
degraded dataset view for any construction order, lookup order, or worker
count, and the ``StudyResult.digest()`` contract extends to dirty runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.net.asn import ASN
from repro.net.ip import IPv4, Prefix

#: Injected bogus origins come from the private-use ASN range: they map
#: to no as2org entry (pseudo-org fallback) and can never collide with a
#: real cloud or client AS of the world.
_CONFLICT_ASN_BASE = 64512
_CONFLICT_ASN_SPREAD = 1024

_RATE_FIELDS = (
    "bgp_stale_rate",
    "moas_rate",
    "as2org_drop_rate",
    "ixp_member_drop_rate",
    "ixp_member_conflict_rate",
    "whois_gap_rate",
    "whois_nameonly_rate",
)


@dataclass(frozen=True)
class DataFaultPlan:
    """A reproducible dataset-degradation schedule.

    All rates are probabilities in ``[0, 1]``; everything is derived from
    ``seed`` alone, so two plans with equal fields degrade exactly the
    same records no matter where or when the datasets are built.
    """

    seed: int = 0

    # --- BGP snapshot ---------------------------------------------------
    #: fraction of announcements missing from the snapshot (stale RIB).
    bgp_stale_rate: float = 0.0
    #: fraction of announcements that gain a second, conflicting origin.
    moas_rate: float = 0.0

    # --- as2org ---------------------------------------------------------
    #: fraction of non-cloud entries dropped from the dataset.
    as2org_drop_rate: float = 0.0

    # --- IXP directory merge (PeeringDB + PCH + CAIDA) ------------------
    #: fraction of member records missing from the merged view entirely.
    ixp_member_drop_rate: float = 0.0
    #: fraction of member records whose sources disagree on the ASN.
    ixp_member_conflict_rate: float = 0.0

    # --- WHOIS ----------------------------------------------------------
    #: fraction of allocations with no retrievable record at all.
    whois_gap_rate: float = 0.0
    #: fraction of records stripped to a holder name (no ASN).
    whois_nameonly_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    # ------------------------------------------------------------------

    def _u(self, *key: object) -> float:
        """A uniform [0, 1) draw that is a pure function of ``key``."""
        return random.Random(repr(("datafault", self.seed) + key)).random()

    # --- BGP ------------------------------------------------------------

    def bgp_announcement_stale(self, prefix: Prefix) -> bool:
        """Whether this announcement is missing from the snapshot."""
        if self.bgp_stale_rate <= 0.0:
            return False
        return (
            self._u("bgp-stale", prefix.network, prefix.length)
            < self.bgp_stale_rate
        )

    def moas_conflict(self, prefix: Prefix, origin: ASN) -> Optional[ASN]:
        """A second, conflicting origin for this prefix, if drawn."""
        if self.moas_rate <= 0.0:
            return None
        if self._u("moas", prefix.network, prefix.length) >= self.moas_rate:
            return None
        other = _CONFLICT_ASN_BASE + int(
            self._u("moas-origin", prefix.network, prefix.length)
            * _CONFLICT_ASN_SPREAD
        )
        return other + 1 if other == origin else other

    # --- as2org ---------------------------------------------------------

    def as2org_dropped(self, asn: ASN) -> bool:
        if self.as2org_drop_rate <= 0.0:
            return False
        return self._u("as2org-drop", asn) < self.as2org_drop_rate

    # --- IXP directory --------------------------------------------------

    def ixp_member_dropped(self, ip: IPv4) -> bool:
        if self.ixp_member_drop_rate <= 0.0:
            return False
        return self._u("ixp-drop", ip) < self.ixp_member_drop_rate

    def ixp_member_conflict(self, ip: IPv4, asn: ASN) -> Optional[ASN]:
        """The ASN a second source claims for ``ip``, if it disagrees."""
        if self.ixp_member_conflict_rate <= 0.0:
            return None
        if self._u("ixp-conflict", ip) >= self.ixp_member_conflict_rate:
            return None
        other = _CONFLICT_ASN_BASE + int(
            self._u("ixp-conflict-asn", ip) * _CONFLICT_ASN_SPREAD
        )
        return other + 1 if other == asn else other

    # --- WHOIS ----------------------------------------------------------

    def whois_gap(self, slash24_key: int) -> bool:
        """Whether the allocation covering this /24 has no record."""
        if self.whois_gap_rate <= 0.0:
            return False
        return self._u("whois-gap", slash24_key) < self.whois_gap_rate

    def whois_nameonly(self, slash24_key: int) -> bool:
        """Whether the record is stripped to a holder name (no ASN)."""
        if self.whois_nameonly_rate <= 0.0:
            return False
        return self._u("whois-nameonly", slash24_key) < self.whois_nameonly_rate

    # ------------------------------------------------------------------

    @property
    def affects_bgp(self) -> bool:
        return self.bgp_stale_rate > 0.0 or self.moas_rate > 0.0

    @property
    def affects_as2org(self) -> bool:
        return self.as2org_drop_rate > 0.0

    @property
    def affects_ixp(self) -> bool:
        return (
            self.ixp_member_drop_rate > 0.0
            or self.ixp_member_conflict_rate > 0.0
        )

    @property
    def affects_whois(self) -> bool:
        return self.whois_gap_rate > 0.0 or self.whois_nameonly_rate > 0.0

    @property
    def affects_datasets(self) -> bool:
        return (
            self.affects_bgp
            or self.affects_as2org
            or self.affects_ixp
            or self.affects_whois
        )

    def signature(self) -> str:
        """Identity of the degradation, for provenance and fingerprints."""
        if not self.affects_datasets:
            return "clean"
        return repr(
            (self.seed,) + tuple(getattr(self, f) for f in _RATE_FIELDS)
        )

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "DataFaultPlan":
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact human-readable summary for reports and provenance."""
        parts = [f"seed={self.seed}"]
        if self.bgp_stale_rate:
            parts.append(f"bgp-stale={self.bgp_stale_rate:g}")
        if self.moas_rate:
            parts.append(f"moas={self.moas_rate:g}")
        if self.as2org_drop_rate:
            parts.append(f"as2org-drop={self.as2org_drop_rate:g}")
        if self.ixp_member_drop_rate:
            parts.append(f"ixp-drop={self.ixp_member_drop_rate:g}")
        if self.ixp_member_conflict_rate:
            parts.append(f"ixp-conflict={self.ixp_member_conflict_rate:g}")
        if self.whois_gap_rate:
            parts.append(f"whois-gap={self.whois_gap_rate:g}")
        if self.whois_nameonly_rate:
            parts.append(f"whois-nameonly={self.whois_nameonly_rate:g}")
        return "DataFaultPlan(" + ", ".join(parts) + ")"

    def to_spec(self) -> str:
        """The canonical compact spec; ``DataFaultPlan.parse`` round-trips
        it.  Unlike :meth:`describe` (human-oriented), this emits exactly
        the ``key=value`` grammar :meth:`parse` reads, so config files can
        serialize a plan losslessly."""
        specs = (
            ("bgp-stale", self.bgp_stale_rate),
            ("moas", self.moas_rate),
            ("as2org-drop", self.as2org_drop_rate),
            ("ixp-drop", self.ixp_member_drop_rate),
            ("ixp-conflict", self.ixp_member_conflict_rate),
            ("whois-gap", self.whois_gap_rate),
            ("whois-nameonly", self.whois_nameonly_rate),
        )
        parts = [f"seed={self.seed}"]
        parts.extend(f"{key}={rate:g}" for key, rate in specs if rate)
        return ",".join(parts)

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "DataFaultPlan":
        """Build a plan from a compact CLI spec.

        ``"bgp-stale=0.05,moas=0.1,as2org-drop=0.1,ixp-drop=0.1,``
        ``ixp-conflict=0.3,whois-gap=0.2,whois-nameonly=0.2,seed=3"`` --
        keys may appear in any order; unknown keys raise ``ValueError``.
        """
        aliases: Dict[str, str] = {
            "bgp-stale": "bgp_stale_rate",
            "bgp_stale": "bgp_stale_rate",
            "moas": "moas_rate",
            "as2org-drop": "as2org_drop_rate",
            "as2org_drop": "as2org_drop_rate",
            "ixp-drop": "ixp_member_drop_rate",
            "ixp_drop": "ixp_member_drop_rate",
            "ixp-conflict": "ixp_member_conflict_rate",
            "ixp_conflict": "ixp_member_conflict_rate",
            "whois-gap": "whois_gap_rate",
            "whois_gap": "whois_gap_rate",
            "whois-nameonly": "whois_nameonly_rate",
            "whois_nameonly": "whois_nameonly_rate",
        }
        kwargs: Dict[str, Any] = {}
        spec = spec.strip()
        if not spec:
            return cls()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"data-fault-plan item needs key=value: {item!r}"
                )
            key, _, value = item.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key in aliases:
                kwargs[aliases[key]] = float(value)
            else:
                raise ValueError(f"unknown data-fault-plan key: {key!r}")
        return cls(**kwargs)
