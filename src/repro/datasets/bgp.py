"""BGP snapshots: prefix-to-origin mapping and visible AS links.

Mirrors what the paper gets from RouteViews/RIPE RIS (§3): a routing table
snapshot taken at campaign time.  Two snapshots exist -- ``"r1"`` for the
first sweep and ``"r2"`` for the expansion round -- because client
infrastructure blocks kept appearing in BGP between the paper's rounds
(Table 1's WHOIS% collapsing from 24.8% to 2.3%).

The *AS-link* view is deliberately partial: only peerings the world marks
``bgp_visible`` produce an Amazon edge, reproducing the paper's finding
that two-thirds of Amazon peerings never show up in public BGP data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.net.asn import AMAZON_PRIMARY_ASN, ASN, FALLBACK_TRANSIT_ASN
from repro.net.ip import IPv4, Prefix, PrefixLPMIndex
from repro.datasets.datafaults import DataFaultPlan
from repro.world.model import World


@dataclass(frozen=True)
class Announcement:
    prefix: Prefix
    origin_asn: ASN


class NaiveLPMTable:
    """The retained pre-index reference: a per-length dict scan.

    This is the classic lookup ``BGPSnapshot`` shipped with -- walk the
    announced prefix lengths from /32 down, probing one dict per length
    until something matches (up to 33 probes per address).  It is kept
    as the *oracle* for the differential equivalence tests
    (``tests/test_lpm_equivalence.py``) and as the baseline side of the
    annotate-only microbench, where ``probe_count`` quantifies exactly
    how much work the indexed path saves.  Never use it on a hot path.
    """

    def __init__(
        self,
        announcements: Iterable[Announcement],
        moas: Optional[Mapping[Tuple[int, int], Tuple[ASN, ...]]] = None,
    ) -> None:
        self._by_length: Dict[int, Dict[int, ASN]] = {}
        for ann in announcements:
            table = self._by_length.setdefault(ann.prefix.length, {})
            table[ann.prefix.network] = ann.origin_asn
        self._lengths = sorted(self._by_length, reverse=True)
        self._moas: Dict[Tuple[int, int], Tuple[ASN, ...]] = dict(moas or {})
        #: observability counters (never read back by inference).
        self.lookup_count: int = 0
        self.probe_count: int = 0

    def lookup(self, ip: IPv4) -> Optional[Tuple[Prefix, ASN]]:
        """Longest matching ``(prefix, origin)``, scanning length tables."""
        self.lookup_count += 1
        for length in self._lengths:
            mask = 0xFFFFFFFF << (32 - length) & 0xFFFFFFFF if length else 0
            network = ip & mask
            self.probe_count += 1
            asn = self._by_length[length].get(network)
            if asn is not None:
                return Prefix(network, length), asn
        return None

    def origin_of(self, ip: IPv4) -> Optional[ASN]:
        match = self.lookup(ip)
        return match[1] if match is not None else None

    def origins_of(self, ip: IPv4) -> Tuple[ASN, ...]:
        match = self.lookup(ip)
        if match is None:
            return ()
        prefix, asn = match
        return self._moas.get((prefix.network, prefix.length), (asn,))


class BGPSnapshot:
    """Longest-prefix-match table plus announced AS adjacencies.

    ``moas`` carries multi-origin (MOAS) conflicts: prefixes announced by
    more than one origin.  The LPM table keeps the first origin (route
    collectors pick one best path too), but :meth:`origins_of` exposes
    every claimed origin so the annotation layer can record the conflict.

    Lookups run on a :class:`~repro.net.ip.PrefixLPMIndex` built once at
    construction -- one bisect per address instead of the naive
    per-length dict scan (see :class:`NaiveLPMTable`, retained as the
    differential-test oracle).  ``lookup_count`` / ``probe_count``
    mirror the naive table's counters so the two costs are directly
    comparable; they are observability only and never feed inference.
    """

    def __init__(
        self,
        announcements: Iterable[Announcement],
        as_links: Iterable[Tuple[ASN, ASN]],
        label: str = "r1",
        moas: Optional[Mapping[Prefix, Tuple[ASN, ...]]] = None,
    ) -> None:
        self.label = label
        self.announcements: List[Announcement] = list(announcements)
        self._lpm: PrefixLPMIndex[ASN] = PrefixLPMIndex(
            (ann.prefix, ann.origin_asn) for ann in self.announcements
        )
        #: origin ASN -> announced prefixes, in announcement order;
        #: built once so ``prefixes_of`` never rescans the full table.
        self._by_origin: Dict[ASN, List[Prefix]] = {}
        for ann in self.announcements:
            self._by_origin.setdefault(ann.origin_asn, []).append(ann.prefix)
        self.as_links: Set[FrozenSet[ASN]] = {
            frozenset(link) for link in as_links
        }
        self._moas: Dict[Tuple[int, int], Tuple[ASN, ...]] = {}
        for prefix, origins in (moas or {}).items():
            self._moas[(prefix.network, prefix.length)] = tuple(origins)
        #: observability counters (never read back by inference).
        self.lookup_count: int = 0
        self.probe_count: int = 0

    # ------------------------------------------------------------------

    def lookup(self, ip: IPv4) -> Optional[Tuple[Prefix, ASN]]:
        """The longest matching ``(prefix, origin)`` pair, in one probe."""
        self.lookup_count += 1
        self.probe_count += 1
        return self._lpm.lookup(ip)

    def origin_of(self, ip: IPv4) -> Optional[ASN]:
        """Longest-prefix-match origin AS for ``ip`` (None if unannounced)."""
        match = self.lookup(ip)
        return match[1] if match is not None else None

    def origins_of(self, ip: IPv4) -> Tuple[ASN, ...]:
        """Every origin announcing the LPM prefix (>1 under a MOAS conflict)."""
        match = self.lookup(ip)
        if match is None:
            return ()
        prefix, asn = match
        return self._moas.get((prefix.network, prefix.length), (asn,))

    def is_moas(self, ip: IPv4) -> bool:
        return len(self.origins_of(ip)) > 1

    @property
    def moas_prefix_count(self) -> int:
        return len(self._moas)

    def is_announced(self, ip: IPv4) -> bool:
        return self.origin_of(ip) is not None

    def prefixes_of(self, asn: ASN) -> List[Prefix]:
        return list(self._by_origin.get(asn, ()))

    def naive_reference(self) -> NaiveLPMTable:
        """A fresh naive-scan table over this snapshot's announcements.

        The differential tests and the annotate microbench compare its
        answers (and ``probe_count``) against the indexed path.
        """
        return NaiveLPMTable(self.announcements, self._moas)

    # ------------------------------------------------------------------

    def has_link(self, a: ASN, b: ASN) -> bool:
        return frozenset((a, b)) in self.as_links

    def amazon_peers(self) -> Set[ASN]:
        """ASes with a BGP-visible Amazon adjacency."""
        peers: Set[ASN] = set()
        for link in self.as_links:
            if AMAZON_PRIMARY_ASN in link:
                peers.update(link - {AMAZON_PRIMARY_ASN})
        return peers


def snapshot_from_world(
    world: World,
    label: str = "r1",
    data_faults: Optional[DataFaultPlan] = None,
) -> BGPSnapshot:
    """Derive the public BGP view of a world at round ``label``."""
    announcements: List[Announcement] = []
    # Cloud blocks.
    # reprolint: disable=REP002 -- announcements are consumed as an order-insensitive set; BGPSnapshot indexes by prefix
    for cloud, blocks in world.cloud_announced_blocks.items():
        asn = _cloud_asn(cloud)
        for block in blocks:
            announcements.append(Announcement(block, asn))
    # Client space (stub space is registered under the stub's ASN).
    for alloc in world.plan.allocations:
        if alloc.category == "client":
            announcements.append(Announcement(alloc.prefix, alloc.owner_asn))
        elif alloc.category == "infra" and alloc.owner_asn != 0:
            client = world.client_ases.get(alloc.owner_asn)
            if client is None:
                if alloc.holder_name == "global-transit":
                    announcements.append(Announcement(alloc.prefix, alloc.owner_asn))
                continue
            announced_now = alloc.prefix in client.announced_prefixes or (
                label != "r1" and alloc.prefix in client.late_announced
            )
            if announced_now:
                announcements.append(Announcement(alloc.prefix, alloc.owner_asn))

    links: Set[Tuple[ASN, ASN]] = set()
    # reprolint: disable=REP002 -- membership goes into a set of AS pairs; iteration order cannot leak into the snapshot
    for icx in world.interconnections.values():
        if icx.bgp_visible:
            links.add((AMAZON_PRIMARY_ASN, icx.peer_asn))
    # Transit edges: every client buys transit from the global backbone.
    for asn in world.client_ases:
        links.add((FALLBACK_TRANSIT_ASN, asn))

    # Dataset dirt: stale announcements vanish, MOAS conflicts appear.
    # Both decisions are keyed per prefix, so any construction order of
    # the same (world, label, plan) yields the identical snapshot.
    moas: Dict[Prefix, Tuple[ASN, ...]] = {}
    if data_faults is not None and data_faults.affects_bgp:
        kept: List[Announcement] = []
        for ann in announcements:
            if data_faults.bgp_announcement_stale(ann.prefix):
                continue
            kept.append(ann)
            other = data_faults.moas_conflict(ann.prefix, ann.origin_asn)
            if other is not None:
                moas[ann.prefix] = (ann.origin_asn, other)
        announcements = kept
    return BGPSnapshot(announcements, links, label=label, moas=moas)


def _cloud_asn(cloud: str) -> ASN:
    from repro.world.clouds import CLOUD_SPECS

    return CLOUD_SPECS[cloud].primary_asn
