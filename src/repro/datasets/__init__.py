"""Public-data substrates: BGP, WHOIS, as2org, PeeringDB, merged IXP view.

Each dataset is derived from the world with realistic coverage gaps, the
way the real datasets lag the real Internet.  Inference code consumes
these, never the world's ground truth.
"""

from repro.datasets.as2org import AS2Org, as2org_from_world
from repro.datasets.bgp import (
    Announcement,
    BGPSnapshot,
    NaiveLPMTable,
    snapshot_from_world,
)
from repro.datasets.datafaults import DataFaultPlan
from repro.datasets.ixp import IXPDirectory, ixp_directory_from_world
from repro.datasets.peeringdb import (
    PDBFacility,
    PDBIXP,
    PDBNetixlan,
    PeeringDB,
    peeringdb_from_world,
)
from repro.datasets.relationships import (
    ASRelationships,
    Relationship,
    relationships_from_world,
)
from repro.datasets.validate import DatasetValidationReport, validate_datasets
from repro.datasets.whois import WhoisRecord, WhoisRegistry

__all__ = [
    "AS2Org",
    "ASRelationships",
    "Announcement",
    "BGPSnapshot",
    "DataFaultPlan",
    "DatasetValidationReport",
    "IXPDirectory",
    "NaiveLPMTable",
    "PDBFacility",
    "PDBIXP",
    "PDBNetixlan",
    "PeeringDB",
    "Relationship",
    "WhoisRecord",
    "WhoisRegistry",
    "as2org_from_world",
    "ixp_directory_from_world",
    "peeringdb_from_world",
    "relationships_from_world",
    "snapshot_from_world",
    "validate_datasets",
]
