"""CAIDA-style AS-to-Organization dataset.

The paper uses as2org to collapse Amazon's eight ASNs into one ORG so that
an inter-ASN hop inside Amazon is not mistaken for a network border (§3).
Coverage is high but not perfect; ASes missing from the dataset fall back
to a per-ASN pseudo-org in the annotation layer.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.net.asn import ASN
from repro.world.model import World


class AS2Org:
    """ASN -> organization-id mapping."""

    def __init__(self, mapping: Dict[ASN, str]) -> None:
        self._mapping = dict(mapping)

    def org_of(self, asn: ASN) -> Optional[str]:
        return self._mapping.get(asn)

    def same_org(self, a: ASN, b: ASN) -> bool:
        org_a = self._mapping.get(a)
        return org_a is not None and org_a == self._mapping.get(b)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._mapping


def as2org_from_world(world: World, seed: int = 0, coverage: float = 0.98) -> AS2Org:
    """Derive the dataset; a small fraction of ASes is missing, as in life."""
    rng = random.Random(repr(("as2org", seed)))
    mapping: Dict[ASN, str] = {}
    for info in world.as_registry:
        if info.kind == "cloud" or rng.random() < coverage:
            mapping[info.asn] = info.org_id
    return AS2Org(mapping)
