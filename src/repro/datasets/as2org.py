"""CAIDA-style AS-to-Organization dataset.

The paper uses as2org to collapse Amazon's eight ASNs into one ORG so that
an inter-ASN hop inside Amazon is not mistaken for a network border (§3).
Coverage is high but not perfect; ASes missing from the dataset fall back
to a per-ASN pseudo-org in the annotation layer.

Whether an AS is covered is keyed to the ASN itself (not to registry
iteration order), so the derived view is identical no matter how it is
built -- and a :class:`~repro.datasets.datafaults.DataFaultPlan` can
deterministically drop additional non-cloud entries.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.asn import ASN
from repro.net.rng import keyed_uniform
from repro.datasets.datafaults import DataFaultPlan
from repro.world.model import World


class AS2Org:
    """ASN -> organization-id mapping."""

    def __init__(self, mapping: Dict[ASN, str]) -> None:
        self._mapping = dict(mapping)

    def org_of(self, asn: ASN) -> Optional[str]:
        return self._mapping.get(asn)

    def same_org(self, a: ASN, b: ASN) -> bool:
        org_a = self._mapping.get(a)
        return org_a is not None and org_a == self._mapping.get(b)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._mapping


def as2org_from_world(
    world: World,
    seed: int = 0,
    coverage: float = 0.98,
    data_faults: Optional[DataFaultPlan] = None,
) -> AS2Org:
    """Derive the dataset; a small fraction of ASes is missing, as in life."""
    mapping: Dict[ASN, str] = {}
    for info in world.as_registry:
        if info.kind != "cloud":
            if keyed_uniform("as2org", seed, info.asn) >= coverage:
                continue
            if data_faults is not None and data_faults.as2org_dropped(info.asn):
                continue
        mapping[info.asn] = info.org_id
    return AS2Org(mapping)
