"""Hierarchical span tracing for the measurement pipeline.

A *span* is one timed region of the run -- the whole study, a pipeline
stage, a probing campaign, one shard, one probe batch -- with a name, a
category, counters, and a parent.  The :class:`Tracer` records spans as
they close into an append-only stream of immutable :class:`SpanRecord`
rows; exporters (:mod:`repro.obs.export`) and the ``repro trace``
analyzer (:mod:`repro.obs.analyze`) consume that stream offline.

Three contracts, in order of importance:

* **digest-neutral** -- tracing reads :func:`time.perf_counter` only
  (REP004-clean), never draws randomness, and never feeds
  ``StudyResult.digest_inputs()``; a traced run's digest is bit-identical
  to an untraced run's at any worker count.
* **near-zero cost when disabled** -- the :data:`NULL_TRACER` singleton
  answers every ``span()`` with a shared no-op span, so an untraced hot
  path pays one attribute call and one branch per span, allocating
  nothing.
* **cross-process** -- worker processes cannot share the parent's
  tracer, so a worker records into its own local :class:`Tracer`, ships
  the result through :func:`pack_spans` on the executor's compact shard
  wire format, and the parent re-bases it under the shard's span with
  :meth:`Tracer.adopt_packed`.  Worker-side time (engine, fault
  realization, serialization) therefore stays attributed separately from
  parent-side merge/retry time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "TracerLike",
    "pack_spans",
]

#: One packed span row on the shard wire format:
#: ``(name, category, start, duration, parent_index, counter_items)``
#: where ``start`` is relative to the packing tracer's epoch and
#: ``parent_index`` indexes an earlier row (-1 = the adopting span).
PackedSpan = Tuple[str, str, float, float, int, Tuple[Tuple[str, float], ...]]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: the immutable unit of the trace stream."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    #: seconds since the tracer's epoch (perf_counter timebase).
    start: float
    duration: float
    #: counters set on the span, sorted by key for stable serialization.
    counters: Tuple[Tuple[str, float], ...] = ()

    @property
    def end(self) -> float:
        return self.start + self.duration

    def counter(self, key: str, default: float = 0.0) -> float:
        for name, value in self.counters:
            if name == key:
                return value
        return default


class Span:
    """A live, open span.  Close it (or use it as a context manager)."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "category",
                 "start", "_counters", "closed")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        start: float,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self._counters: Dict[str, float] = {}
        self.closed = False

    # -- counters ------------------------------------------------------

    def set(self, key: str, value: float) -> None:
        """Set a gauge on this span (last write wins)."""
        self._counters[key] = float(value)

    def incr(self, key: str, amount: float = 1.0) -> None:
        """Bump a counter on this span."""
        self._counters[key] = self._counters.get(key, 0.0) + amount

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Tracer:
    """Records a tree of spans against one perf_counter epoch.

    Parenting is stack-based: ``span()`` nests the new span under the
    innermost still-open span of this tracer, which matches the
    synchronous call structure of the pipeline.  Closed spans become
    :class:`SpanRecord` rows (in close order -- children before parents)
    and are offered to every registered listener.
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._records: List[SpanRecord] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._listeners: List[Callable[[SpanRecord], None]] = []

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    # -- span lifecycle ------------------------------------------------

    def span(self, name: str, category: str = "span") -> Span:
        """Open a span nested under the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, self._alloc_id(), parent, name, category, self.now())
        self._stack.append(span)
        return span

    def _alloc_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _close(self, span: Span) -> None:
        # Closing out of order (an inner span leaked past its parent) is
        # tolerated: the leaked span is simply popped with its parent.
        while self._stack and self._stack[-1].span_id != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        record = SpanRecord(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            category=span.category,
            start=span.start,
            duration=self.now() - span.start,
            counters=tuple(sorted(span._counters.items())),
        )
        self._emit(record)

    def _emit(self, record: SpanRecord) -> None:
        self._records.append(record)
        for listener in self._listeners:
            listener(record)

    # -- stream access -------------------------------------------------

    @property
    def records(self) -> Tuple[SpanRecord, ...]:
        """Every closed span so far, in close order."""
        return tuple(self._records)

    def add_listener(self, listener: Callable[[SpanRecord], None]) -> None:
        """Call ``listener(record)`` for every span closed from now on."""
        self._listeners.append(listener)

    # -- crossing the process boundary ---------------------------------

    def pack(self) -> List[PackedSpan]:
        """Serialize this tracer's closed spans for the shard wire format."""
        return pack_spans(self._records)

    def adopt_packed(
        self,
        packed: Optional[Sequence[Sequence[Any]]],
        parent: Union["Span", "NullSpan"],
        anchor: Optional[float] = None,
    ) -> int:
        """Re-base worker-packed spans under ``parent`` in this tracer.

        ``anchor`` places the worker's epoch on this tracer's timeline;
        it defaults to the parent span's start, so adopted spans render
        inside the shard span that waited on them.  Returns the number
        of spans adopted.
        """
        if not packed:
            return 0
        base = parent.start if anchor is None else anchor
        # Rows arrive in close order (children before parents), so a
        # parent_index can point forward; allocate every id up front.
        id_by_index: Dict[int, int] = {
            index: self._alloc_id() for index in range(len(packed))
        }
        adopted = 0
        for index, row in enumerate(packed):
            name, category, start, duration, parent_index, counters = row
            span_id = id_by_index[index]
            parent_id = (
                id_by_index.get(int(parent_index), parent.span_id)
                if int(parent_index) >= 0
                else parent.span_id
            )
            self._emit(
                SpanRecord(
                    span_id=span_id,
                    parent_id=parent_id,
                    name=str(name),
                    category=str(category),
                    start=base + float(start),
                    duration=float(duration),
                    counters=tuple(
                        (str(k), float(v)) for k, v in counters
                    ),
                )
            )
            adopted += 1
        return adopted


def pack_spans(records: Sequence[SpanRecord]) -> List[PackedSpan]:
    """Compact, JSON-safe wire rows for a worker's closed spans.

    Parent links become indices into the packed list itself (-1 for a
    worker-side root), so the parent tracer can rebuild the tree without
    trusting the worker's span-id space.
    """
    index_by_id = {record.span_id: i for i, record in enumerate(records)}
    rows: List[PackedSpan] = []
    for record in records:
        parent_index = (
            index_by_id.get(record.parent_id, -1)
            if record.parent_id is not None
            else -1
        )
        rows.append(
            (
                record.name,
                record.category,
                record.start,
                record.duration,
                parent_index,
                record.counters,
            )
        )
    return rows


class NullSpan:
    """The shared do-nothing span; every method is a no-op."""

    __slots__ = ()

    span_id = -1
    parent_id = None
    name = ""
    category = ""
    start = 0.0
    closed = True

    def set(self, key: str, value: float) -> None:
        pass

    def incr(self, key: str, amount: float = 1.0) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


NULL_SPAN = NullSpan()


class NullTracer:
    """The disabled tracer: records nothing, allocates nothing.

    Call sites hold a ``TracerLike`` and never branch themselves -- the
    one-branch-per-span guarantee is this class answering ``span()``
    with the shared :data:`NULL_SPAN`.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "span") -> NullSpan:
        return NULL_SPAN

    @property
    def records(self) -> Tuple[SpanRecord, ...]:
        return ()

    def add_listener(self, listener: Callable[[SpanRecord], None]) -> None:
        pass

    def pack(self) -> List[PackedSpan]:
        return []

    def adopt_packed(
        self,
        packed: Optional[Sequence[Sequence[Any]]],
        parent: Union[Span, NullSpan],
        anchor: Optional[float] = None,
    ) -> int:
        return 0


NULL_TRACER = NullTracer()

#: What pipeline code accepts: a real tracer or the null one.
TracerLike = Union[Tracer, NullTracer]
