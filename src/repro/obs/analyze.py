"""Offline trace analysis: the ``repro trace`` subcommand.

Consumes a saved trace (JSONL or Chrome JSON, see
:mod:`repro.obs.export`) and renders:

* a **top-N self-time table** -- spans grouped by ``(category, name
  family)`` with call counts, total time, and *self* time (total minus
  time attributed to child spans), so the hottest layer of the
  study / stage / campaign / shard / probe-batch hierarchy is obvious;
* a **per-stage probe-yield funnel** -- every campaign span in start
  order with its expected vs. delivered vs. lost probes, retries, and
  quarantines, the same numbers ``CampaignProgress`` tracked live,
  rebuilt purely from the span stream.

Everything here is a pure function of the trace file; nothing reads
clocks or the environment.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.export import read_trace
from repro.obs.span import SpanRecord

__all__ = [
    "CampaignRow",
    "SelfTimeRow",
    "campaign_funnel",
    "main",
    "render_funnel",
    "render_self_time",
    "render_trace_summary",
    "self_time_by_family",
    "self_time_table",
]


def _family(record: SpanRecord) -> Tuple[str, str]:
    """Aggregation key: category plus the name with per-instance ids
    stripped (``shard:17`` -> ``shard``, ``campaign:round1`` stays)."""
    name = record.name
    if record.category in ("shard", "worker", "probe-batch", "pack", "faults"):
        name = name.split(":", 1)[0]
    return (record.category, name)


@dataclass(frozen=True)
class SelfTimeRow:
    """One aggregated row of the self-time table."""

    category: str
    name: str
    count: int
    total_seconds: float
    self_seconds: float


def self_time_table(
    records: Sequence[SpanRecord], top_n: int = 15
) -> List[SelfTimeRow]:
    """Spans aggregated by family, ranked by self time (descending).

    Self time is a span's duration minus the summed durations of its
    direct children, floored at zero (adopted worker spans overlap the
    parent-side wait, so a child can nominally exceed its parent).
    """
    child_time: Dict[int, float] = {}
    for record in records:
        if record.parent_id is not None:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration
            )
    totals: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        key = _family(record)
        row = totals.setdefault(key, [0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += record.duration
        row[2] += max(0.0, record.duration - child_time.get(record.span_id, 0.0))
    rows = [
        SelfTimeRow(
            category=key[0],
            name=key[1],
            count=int(agg[0]),
            total_seconds=agg[1],
            self_seconds=agg[2],
        )
        for key, agg in sorted(totals.items())
    ]
    rows.sort(key=lambda r: (-r.self_seconds, r.category, r.name))
    return rows[: max(1, top_n)]


def self_time_by_family(records: Sequence[SpanRecord]) -> Dict[str, float]:
    """Self time folded to ``"category/name"`` keys, for machine readers.

    The bench harness records these (sorted keys, floats in seconds) in
    its ``timings`` section; same aggregation as :func:`self_time_table`
    but unranked and untruncated.
    """
    return {
        f"{row.category}/{row.name}": row.self_seconds
        for row in self_time_table(records, top_n=len(records) or 1)
    }


def render_self_time(records: Sequence[SpanRecord], top_n: int = 15) -> str:
    rows = self_time_table(records, top_n)
    wall = max((r.end for r in records), default=0.0)
    lines = [
        f"top {len(rows)} span families by self time "
        f"(trace wall-clock {wall:.2f}s):",
        f"  {'category':<12} {'name':<22} {'count':>7} "
        f"{'total s':>9} {'self s':>9} {'self %':>7}",
    ]
    for row in rows:
        pct = (row.self_seconds / wall * 100.0) if wall > 0 else 0.0
        lines.append(
            f"  {row.category:<12} {row.name:<22} {row.count:>7} "
            f"{row.total_seconds:>9.3f} {row.self_seconds:>9.3f} {pct:>6.1f}%"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class CampaignRow:
    """One campaign reconstructed from its span counters.

    A thin view over the span stream: the same numbers
    ``CampaignProgress`` tracked live, recovered offline.
    """

    label: str
    seconds: float
    expected: int
    probes: int
    lost: int
    retries: int
    quarantined: int
    resumed: int

    @property
    def yield_fraction(self) -> float:
        return self.probes / self.expected if self.expected else 1.0


def campaign_funnel(records: Sequence[SpanRecord]) -> List[CampaignRow]:
    """Every campaign span, in start order -- the probe-yield funnel."""
    campaigns = sorted(
        (r for r in records if r.category == "campaign"),
        key=lambda r: (r.start, r.span_id),
    )
    rows: List[CampaignRow] = []
    for record in campaigns:
        label = record.name.split(":", 1)[1] if ":" in record.name else record.name
        rows.append(
            CampaignRow(
                label=label,
                seconds=record.duration,
                expected=int(record.counter("expected")),
                probes=int(record.counter("probes")),
                lost=int(record.counter("lost")),
                retries=int(record.counter("retries")),
                quarantined=int(record.counter("quarantined")),
                resumed=int(record.counter("resumed")),
            )
        )
    return rows


def render_funnel(records: Sequence[SpanRecord]) -> str:
    rows = campaign_funnel(records)
    if not rows:
        return "probe funnel: no campaign spans in this trace"
    first = rows[0].probes or 1
    lines = [
        "probe-yield funnel (campaigns in start order):",
        f"  {'campaign':<14} {'probes':>9} {'expected':>9} {'yield':>7} "
        f"{'vs first':>9} {'lost':>6} {'retry':>6} {'quar':>5} {'resume':>7} "
        f"{'secs':>8}",
    ]
    for row in rows:
        lines.append(
            f"  {row.label:<14} {row.probes:>9} {row.expected:>9} "
            f"{row.yield_fraction * 100:>6.1f}% "
            f"{row.probes / first * 100:>8.1f}% {row.lost:>6} "
            f"{row.retries:>6} {row.quarantined:>5} {row.resumed:>7} "
            f"{row.seconds:>8.2f}"
        )
    return "\n".join(lines)


def render_trace_summary(
    path: str, top_n: int = 15, records: Optional[Sequence[SpanRecord]] = None
) -> str:
    """The full ``repro trace`` report for one saved trace file."""
    if records is None:
        meta, records = read_trace(path)
    else:
        meta = {}
    lines = [f"trace: {path} ({len(records)} spans)"]
    if meta:
        lines.append(
            "meta: " + ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        )
    lines.append("")
    lines.append(render_self_time(records, top_n))
    lines.append("")
    lines.append(render_funnel(records))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro trace <file> [--top N]``."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Render the self-time table and probe-yield funnel of a saved "
            "trace (JSONL or Chrome trace JSON from --trace-out)."
        ),
    )
    parser.add_argument("path", help="trace file written by --trace-out")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the self-time table (default 15)")
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        print(render_trace_summary(args.path, top_n=args.top))
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    return 0
