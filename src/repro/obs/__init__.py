"""Span-based tracing and performance observability.

The :mod:`repro.obs` package is the pipeline's flight recorder:

* :mod:`repro.obs.span` -- the :class:`Tracer` / :class:`Span` /
  :class:`SpanRecord` core, the :data:`NULL_TRACER` no-op, and the
  packed wire rows that carry worker-side spans across the
  multiprocessing boundary;
* :mod:`repro.obs.export` -- JSONL and Chrome ``trace_event`` JSON
  export (``--trace-out``; load the latter in Perfetto or
  ``about:tracing``);
* :mod:`repro.obs.analyze` -- the ``repro trace`` subcommand: top-N
  self-time table and per-stage probe-yield funnel from a saved trace.

Tracing is digest-neutral by contract: spans read
:func:`time.perf_counter` only, never feed ``digest_inputs()``, and a
traced run's ``--digest`` is bit-identical to an untraced run's at any
worker count.  See DESIGN.md "Observability" for the span hierarchy.
"""

from repro.obs.analyze import (
    CampaignRow,
    campaign_funnel,
    render_funnel,
    render_self_time,
    render_trace_summary,
    self_time_table,
)
from repro.obs.export import (
    read_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.span import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    TracerLike,
    pack_spans,
)

__all__ = [
    "CampaignRow",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "TracerLike",
    "campaign_funnel",
    "pack_spans",
    "read_trace",
    "render_funnel",
    "render_self_time",
    "render_trace_summary",
    "self_time_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
