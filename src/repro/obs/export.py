"""Trace export and reload: JSONL and Chrome ``trace_event`` JSON.

Two on-disk formats, one in-memory stream:

* **JSONL** (``*.jsonl``) -- the canonical archival format: a header
  line (``{"kind": "repro-trace", "version": 1, "meta": {...}}``)
  followed by one span per line.  Torn final lines (the process died
  mid-write) are dropped on load, mirroring the checkpoint journals.
* **Chrome trace JSON** (anything else, conventionally ``*.json``) --
  the ``trace_event`` format that ``about:tracing`` and Perfetto load
  directly: complete (``"ph": "X"``) events with microsecond
  timestamps, one timeline lane per span category, and the span
  counters in ``args``.  Span and parent ids ride along in ``args`` so
  the file round-trips back into :class:`~repro.obs.span.SpanRecord`
  rows for ``repro trace``.

:func:`write_trace` / :func:`read_trace` pick the format from the file
extension / content, so the CLI's ``--trace-out`` accepts either.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.span import SpanRecord

__all__ = [
    "TRACE_VERSION",
    "read_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]

TRACE_VERSION = 1
_TRACE_KIND = "repro-trace"

#: Category -> Chrome "thread" lane, so Perfetto stacks the hierarchy
#: study / stage / campaign / shard / worker / probe-batch top-down.
_CATEGORY_LANES = {
    "study": 1,
    "stage": 2,
    "campaign": 3,
    "shard": 4,
    "worker": 5,
    "faults": 6,
    "probe-batch": 6,
    "pack": 6,
}
_DEFAULT_LANE = 7


def _record_to_row(record: SpanRecord) -> Dict[str, Any]:
    return {
        "id": record.span_id,
        "parent": record.parent_id,
        "name": record.name,
        "cat": record.category,
        "start": record.start,
        "dur": record.duration,
        "counters": dict(sorted(record.counters)),
    }


def _row_to_record(row: Mapping[str, Any]) -> SpanRecord:
    return SpanRecord(
        span_id=int(row["id"]),
        parent_id=None if row.get("parent") is None else int(row["parent"]),
        name=str(row["name"]),
        category=str(row["cat"]),
        start=float(row["start"]),
        duration=float(row["dur"]),
        counters=tuple(
            sorted((str(k), float(v)) for k, v in dict(row.get("counters") or {}).items())
        ),
    )


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def write_jsonl(
    path: Union[str, Path],
    records: Sequence[SpanRecord],
    meta: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write the span stream as a JSONL trace file."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(
            {
                "kind": _TRACE_KIND,
                "version": TRACE_VERSION,
                "meta": dict(sorted((meta or {}).items())),
            },
            fh,
        )
        fh.write("\n")
        for record in records:
            json.dump(_record_to_row(record), fh)
            fh.write("\n")
    return out


def _read_jsonl(lines: Sequence[str]) -> Tuple[Dict[str, Any], List[SpanRecord]]:
    header = json.loads(lines[0])
    if header.get("kind") != _TRACE_KIND:
        raise ValueError("not a repro-trace JSONL file (bad header kind)")
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {header.get('version')!r} "
            f"(this build reads {TRACE_VERSION})"
        )
    records: List[SpanRecord] = []
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            break  # torn final write; everything before it is good
        records.append(_row_to_record(row))
    return dict(header.get("meta") or {}), records


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------


def to_chrome_trace(
    records: Sequence[SpanRecord],
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``trace_event`` document Perfetto / ``about:tracing`` load.

    Every span becomes a complete ("X") event; counters, span id, and
    parent id travel in ``args`` so the document is lossless.
    """
    events: List[Dict[str, Any]] = []
    lanes_used: Dict[int, str] = {}
    for record in records:
        lane = _CATEGORY_LANES.get(record.category, _DEFAULT_LANE)
        lanes_used.setdefault(lane, record.category)
        args: Dict[str, Any] = {"spanId": record.span_id}
        if record.parent_id is not None:
            args["parentId"] = record.parent_id
        for key, value in sorted(record.counters):
            args[key] = value
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": 1,
                "tid": lane,
                "args": args,
            }
        )
    for lane, category in sorted(lanes_used.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": lane,
                "args": {"name": category},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": _TRACE_KIND,
            "version": TRACE_VERSION,
            "meta": dict(sorted((meta or {}).items())),
        },
    }


def write_chrome_trace(
    path: Union[str, Path],
    records: Sequence[SpanRecord],
    meta: Optional[Mapping[str, Any]] = None,
) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(to_chrome_trace(records, meta), fh)
    return out


def _read_chrome(doc: Mapping[str, Any]) -> Tuple[Dict[str, Any], List[SpanRecord]]:
    records: List[SpanRecord] = []
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = args.pop("spanId", len(records))
        parent_id = args.pop("parentId", None)
        records.append(
            SpanRecord(
                span_id=int(span_id),
                parent_id=None if parent_id is None else int(parent_id),
                name=str(event.get("name", "")),
                category=str(event.get("cat", "")),
                start=float(event.get("ts", 0.0)) / 1e6,
                duration=float(event.get("dur", 0.0)) / 1e6,
                counters=tuple(
                    sorted(
                        (str(k), float(v))
                        for k, v in args.items()
                        if isinstance(v, (int, float))
                    )
                ),
            )
        )
    other = dict(doc.get("otherData") or {})
    return dict(other.get("meta") or {}), records


# ----------------------------------------------------------------------
# Format-sniffing front door
# ----------------------------------------------------------------------


def write_trace(
    path: Union[str, Path],
    records: Sequence[SpanRecord],
    meta: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write ``records`` in the format implied by the file extension:
    ``.jsonl`` -> JSONL, anything else -> Chrome trace JSON."""
    if str(path).endswith(".jsonl"):
        return write_jsonl(path, records, meta)
    return write_chrome_trace(path, records, meta)


def read_trace(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[SpanRecord]]:
    """Load a trace file of either format into ``(meta, records)``."""
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    try:
        first = json.loads(lines[0])
    except ValueError:
        first = None
    if isinstance(first, dict) and first.get("kind") == _TRACE_KIND:
        return _read_jsonl(lines)
    doc = json.loads(text)
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _read_chrome(doc)
    raise ValueError(f"not a repro trace file (JSONL or Chrome JSON): {path}")
