"""Ground-truth evaluation of the inference pipeline.

The paper could not validate against ground truth (§9: Amazon publishes
none).  The simulator *has* ground truth, so this module answers the
questions the authors could not: how many true borders did the method
find, how accurate are the pinned locations, and how far below the truth
is the VPI lower bound.  Nothing here feeds back into inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.net.ip import IPv4
from repro.core.results import StudyResult
from repro.world.model import World


@dataclass
class BorderEvaluation:
    """Precision/recall of inferred ABIs and CBIs against the world."""

    abi_precision: float = 0.0
    abi_recall: float = 0.0
    cbi_precision: float = 0.0
    cbi_recall: float = 0.0
    #: CBIs the method found that are real router interfaces of the peer
    #: but not interconnect ports (loopbacks, internal links).
    cbi_near_misses: int = 0


@dataclass
class PinningEvaluation:
    """Accuracy of metro pins against true router locations."""

    evaluated: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.evaluated if self.evaluated else 0.0


@dataclass
class VPIEvaluation:
    """How tight is the §7.1 lower bound."""

    true_vpi_cbis: int = 0
    detectable_vpi_cbis: int = 0      # multi-cloud, shared response
    detected: int = 0
    detected_true: int = 0

    @property
    def recall_of_detectable(self) -> float:
        if not self.detectable_vpi_cbis:
            return 0.0
        return self.detected_true / self.detectable_vpi_cbis

    @property
    def precision(self) -> float:
        return self.detected_true / self.detected if self.detected else 0.0

    @property
    def lower_bound_tightness(self) -> float:
        """Detected true VPIs over ALL true VPI ports (the undercount)."""
        if not self.true_vpi_cbis:
            return 0.0
        return self.detected_true / self.true_vpi_cbis


@dataclass
class StudyEvaluation:
    borders: BorderEvaluation = field(default_factory=BorderEvaluation)
    pinning: PinningEvaluation = field(default_factory=PinningEvaluation)
    vpi: VPIEvaluation = field(default_factory=VPIEvaluation)
    #: interconnections that exist but were never observed (private VPIs,
    #: backups the expansion missed, unresponsive routers)
    unobserved_interconnections: int = 0
    private_vpi_interconnections: int = 0


def _true_abi_interfaces(world: World) -> Set[IPv4]:
    """Every Amazon-side interface a probe could legitimately surface."""
    out: Set[IPv4] = set()
    for icx in world.interconnections.values():
        if icx.uses_private_addresses:
            continue
        out.add(icx.abi_ip)
        out.update(icx.abi_ecmp)
        bb = world.router_backbone_iface.get(icx.abi_router_id)
        if bb is not None:
            out.add(bb)
    return out


def evaluate_study(world: World, result: StudyResult) -> StudyEvaluation:
    """Score the study's output against the world's ground truth."""
    ev = StudyEvaluation()

    # Borders ------------------------------------------------------------
    true_abis = _true_abi_interfaces(world)
    true_cbis = {
        icx.cbi_ip
        for icx in world.interconnections.values()
        if not icx.uses_private_addresses
    }
    inferred_abis, inferred_cbis = result.abis, result.cbis
    client_ifaces = {
        ip
        for ip, iface in world.interfaces.items()
        if world.routers[iface.router_id].owner_asn in world.client_ases
    }
    if inferred_abis:
        ev.borders.abi_precision = len(inferred_abis & true_abis) / len(inferred_abis)
    if true_abis:
        observed_true = {a for a in true_abis if a in result.abis}
        ev.borders.abi_recall = len(observed_true) / len(true_abis)
    if inferred_cbis:
        ev.borders.cbi_precision = len(inferred_cbis & true_cbis) / len(inferred_cbis)
        ev.borders.cbi_near_misses = len(
            (inferred_cbis - true_cbis) & client_ifaces
        )
    if true_cbis:
        ev.borders.cbi_recall = len(inferred_cbis & true_cbis) / len(true_cbis)

    # Pinning --------------------------------------------------------------
    if result.pinning is not None:
        for ip, loc in result.pinning.pinned.items():
            true_metro = world.true_metro_of_interface(ip)
            if true_metro is None:
                continue
            ev.pinning.evaluated += 1
            if loc.metro_code == true_metro:
                ev.pinning.correct += 1

    # VPIs ------------------------------------------------------------------
    detectable: Set[IPv4] = set()
    true_vpis: Set[IPv4] = set()
    for icx in world.interconnections.values():
        if not icx.is_virtual or icx.uses_private_addresses:
            continue
        true_vpis.add(icx.cbi_ip)
        iface = world.interfaces.get(icx.cbi_ip)
        if (
            iface is not None
            and iface.shared_port_response
            and len(icx.vpi_clouds) > 1
        ):
            detectable.add(icx.cbi_ip)
    ev.vpi.true_vpi_cbis = len(true_vpis)
    ev.vpi.detectable_vpi_cbis = len(detectable)
    if result.vpi is not None:
        detected = result.vpi.vpi_cbis
        ev.vpi.detected = len(detected)
        ev.vpi.detected_true = len(detected & true_vpis)

    # Coverage of the fabric ---------------------------------------------------
    observed_cbis = result.cbis
    for icx in world.interconnections.values():
        if icx.uses_private_addresses:
            ev.private_vpi_interconnections += 1
            ev.unobserved_interconnections += 1
        elif icx.cbi_ip not in observed_cbis:
            ev.unobserved_interconnections += 1
    return ev
