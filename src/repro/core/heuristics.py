"""Verification heuristics for candidate interconnection segments (§5.1).

Because of the address-sharing ambiguity (Fig. 2), the candidate (ABI,
CBI) segment found by the basic strategy may actually sit one hop too far
downstream.  Three heuristics -- ordered by confidence -- confirm that a
candidate ABI really is Amazon's border interface:

* **IXP-client**: a CBI inside an IXP prefix always belongs to a specific
  member, so its segment is correct.
* **Hybrid IPs** (Fig. 3): an interface observed before *both* client and
  Amazon interfaces across traces must be an ABI.
* **Interface reachability**: ABIs are generally unreachable from the
  public Internet while CBIs often answer; agreement with that pattern is
  independent supporting evidence.

Confirming an ABI confirms all of its CBIs (Table 2 reports both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.net.ip import IPv4
from repro.core.borders import BorderObservatory
from repro.measure.reachability import PublicVantagePoint


@dataclass
class HeuristicOutcome:
    """Which ABIs each heuristic confirmed, individually and cumulatively."""

    individual_abis: Dict[str, Set[IPv4]] = field(default_factory=dict)
    cumulative_abis: Dict[str, Set[IPv4]] = field(default_factory=dict)
    confirmed_abis: Set[IPv4] = field(default_factory=set)
    unconfirmed_abis: Set[IPv4] = field(default_factory=set)
    #: confirmed ABIs whose best CBI evidence fell below the confidence
    #: floor -- flagged, not removed (the digest is unchanged).
    low_confidence_abis: Set[IPv4] = field(default_factory=set)

    def confirmed_cbis(self, observatory: BorderObservatory) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for abi in self.confirmed_abis:
            out.update(observatory.cbis_of_abi(abi))
        return out


HEURISTIC_ORDER = ("ixp", "hybrid", "reachable")


class SegmentVerifier:
    """Runs the three §5.1 heuristics over an observatory's candidates."""

    def __init__(
        self,
        observatory: BorderObservatory,
        public_vp: PublicVantagePoint,
        min_confidence: float = 0.0,
    ) -> None:
        self.observatory = observatory
        self.public_vp = public_vp
        self.min_confidence = min_confidence

    # -- individual heuristics -------------------------------------------

    def ixp_confirms(self, abi: IPv4) -> bool:
        """Any CBI of the ABI inside an IXP prefix confirms the segment."""
        annotate = self.observatory.annotator.annotate
        return any(
            annotate(cbi).is_ixp for cbi in self.observatory.cbis_of_abi(abi)
        )

    def hybrid_confirms(self, abi: IPv4) -> bool:
        """The ABI precedes both Amazon and client interfaces (Fig. 3)."""
        annotator = self.observatory.annotator
        saw_home = saw_client = False
        for ann in self.observatory.successor_anns(abi):
            if annotator.is_home(ann):
                saw_home = True
            elif annotator.is_border_candidate(ann):
                saw_client = True
            if saw_home and saw_client:
                return True
        return False

    def reachability_confirms(self, abi: IPv4) -> bool:
        """ABI dark from the public Internet while >=1 of its CBIs answers."""
        if self.public_vp.reachable(abi):
            return False
        return any(
            self.public_vp.reachable(cbi)
            for cbi in self.observatory.cbis_of_abi(abi)
        )

    # -- combined run ------------------------------------------------------

    def verify(self, abis: Optional[Iterable[IPv4]] = None) -> HeuristicOutcome:
        candidates = sorted(abis if abis is not None else self.observatory.candidate_abis())
        outcome = HeuristicOutcome()
        checks = {
            "ixp": self.ixp_confirms,
            "hybrid": self.hybrid_confirms,
            "reachable": self.reachability_confirms,
        }
        for name in HEURISTIC_ORDER:
            outcome.individual_abis[name] = set()
            outcome.cumulative_abis[name] = set()
        confirmed: Set[IPv4] = set()
        for abi in candidates:
            for name in HEURISTIC_ORDER:
                if checks[name](abi):
                    outcome.individual_abis[name].add(abi)
            for name in HEURISTIC_ORDER:
                if abi in outcome.individual_abis[name]:
                    confirmed.add(abi)
                    break
        running: Set[IPv4] = set()
        for name in HEURISTIC_ORDER:
            running |= outcome.individual_abis[name]
            outcome.cumulative_abis[name] = set(running)
        outcome.confirmed_abis = confirmed
        outcome.unconfirmed_abis = set(candidates) - confirmed
        if self.min_confidence > 0.0:
            annotate = self.observatory.annotator.annotate
            for abi in confirmed:
                best = max(
                    (
                        annotate(cbi).confidence
                        for cbi in self.observatory.cbis_of_abi(abi)
                    ),
                    default=1.0,
                )
                if best < self.min_confidence:
                    outcome.low_confidence_abis.add(abi)
        return outcome
