"""End-to-end study driver: §3 through §7 in one call.

``AmazonPeeringStudy(world, config=StudyConfig(...)).run()`` executes the
full methodology -- sweep, expansion, heuristics, alias verification,
pinning, cross-validation, VPI detection, grouping, and graph
characterisation -- and returns a :class:`StudyResult` from which every
table and figure of the paper can be regenerated.

Configuration lives in one frozen :class:`StudyConfig`; the historical
loose keyword arguments still work through a deprecation shim.  With
``StudyConfig(workers=N)`` the probing campaigns run on a sharded
``multiprocessing`` pool and -- because traces are a pure function of
``(seed, cloud, region, dst)`` and shards merge in serial order -- the
``StudyResult`` is identical for any worker count.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.errors import DataError, StageError, StudyInterrupted
from repro.net.asn import AMAZON_ASNS, CLOUD_ORG_IDS
from repro.net.ip import IPv4
from repro.core.aliasverify import AliasVerifier
from repro.core.anchors import AnchorBuilder
from repro.core.annotate import AnnotationCache, AnnotationSource, HopAnnotator
from repro.core.borders import BorderObservatory
from repro.core.config import StudyConfig
from repro.core.crossval import cross_validate_pinning
from repro.core.dnsgeo import DNSGeoParser
from repro.core.graph import InterfaceConnectivityGraph
from repro.core.grouping import PeeringGrouper
from repro.core.heuristics import SegmentVerifier
from repro.core.pinning import IterativePinner, regional_fallback
from repro.core.results import DataQualityReport, InterfaceCensus, StudyResult
from repro.core.stages import StageChain, StageStore, study_fingerprint
from repro.core.vpi import VPIDetector
from repro.datasets import (
    as2org_from_world,
    ixp_directory_from_world,
    peeringdb_from_world,
    relationships_from_world,
    snapshot_from_world,
)
from repro.datasets.validate import DatasetValidationReport, validate_datasets
from repro.datasets.whois import WhoisRegistry
from repro.measure.adapt import ProbeGovernor, run_recovery
from repro.measure.alias import AliasResolver
from repro.measure.campaign import CampaignStats, ProbeCampaign
from repro.measure.checkpoint import CheckpointStore
from repro.measure.dnslookup import ReverseDNS
from repro.measure.executor import RetryPolicy
from repro.measure.health import HealthLedger
from repro.measure.metrics import CampaignProgress, ProgressCallback, StudyMetrics
from repro.measure.sink import (
    EventSink,
    FanoutEvents,
    ProgressCallbackEvents,
    SinkLike,
    as_event_sink,
)
from repro.measure.ping import Pinger
from repro.measure.supervise import StudySupervisor
from repro.obs.export import write_trace
from repro.measure.reachability import PublicVantagePoint
from repro.measure.traceroute import TracerouteEngine
from repro.world.model import World

#: Legacy ``AmazonPeeringStudy`` kwargs that map 1:1 onto ``StudyConfig``.
_LEGACY_CONFIG_KWARGS = (
    "seed",
    "expansion_stride",
    "crossval_folds",
    "run_vpi",
    "run_crossval",
    "workers",
    "fault_plan",
    "shard_timeout",
    "max_retries",
    "checkpoint_dir",
    "resume",
)


class _RunContext:
    """Mutable per-run state threaded through the stage graph.

    Holds everything a stage body needs beyond ``self``: the result under
    construction, the metrics/tracer pair, the shared probing campaign,
    and the event-stream helpers.  One context per ``run()`` (or
    ``salvage()``) call, so concurrent runs never share state.
    """

    def __init__(
        self,
        result: StudyResult,
        metrics: StudyMetrics,
        worker_spans: bool,
        campaign: ProbeCampaign,
        events: Optional[EventSink],
        governor: Optional[ProbeGovernor] = None,
    ) -> None:
        self.result = result
        self.metrics = metrics
        self.tracer = metrics.tracer
        self.worker_spans = worker_spans
        self.campaign = campaign
        self.events = events
        #: adaptive control plane (None unless ``config.adaptive``).
        self.governor = governor
        #: set by the validate stage; consumed by the quality stage.
        self.validation: Optional[DatasetValidationReport] = None

    def campaign_progress(self, label: str) -> CampaignProgress:
        return self.metrics.campaign(label)

    def campaign_sink(self, sink: SinkLike) -> SinkLike:
        """Tee a campaign's event stream to the study-wide sink."""
        if self.events is None:
            return sink
        return FanoutEvents(sink, self.events)


class _Stage(NamedTuple):
    """One node of the declarative stage graph.

    ``compute`` produces the stage's payload (a flat dict of
    checkpoint-codec-encodable values); ``apply`` projects a payload --
    freshly computed *or* loaded from a stage checkpoint -- onto the
    result and run context.  ``apply`` must be cheap and side-effect
    equivalent on both paths: that is the whole resume contract.
    """

    name: str
    enabled: bool
    compute: Callable[[_RunContext], Dict[str, Any]]
    apply: Callable[[_RunContext, Dict[str, Any], bool], None]


class AmazonPeeringStudy:
    """Runs the paper's full measurement study against a world."""

    def __init__(
        self,
        world: World,
        config: Optional[StudyConfig] = None,
        *,
        events: Optional[SinkLike] = None,
        progress: Optional[ProgressCallback] = None,
        supervisor: Optional[StudySupervisor] = None,
        **legacy: object,
    ) -> None:
        if isinstance(config, int):
            # Oldest call style: the second positional argument was `seed`.
            legacy.setdefault("seed", config)
            config = None
        config = _coerce_config(config, legacy)

        self.world = world
        self.config = config
        # One consolidated event consumer: probes, merged shards, and
        # closed spans all flow to `events`.  The legacy per-shard
        # `progress` callback is adapted onto the same stream.
        sinks: List[EventSink] = []
        if events is not None:
            sinks.append(as_event_sink(events))
        if progress is not None:
            warnings.warn(
                "AmazonPeeringStudy(progress=...) is deprecated; pass "
                "events=<EventSink> (see repro.measure.sink.EventSink)",
                DeprecationWarning,
                stacklevel=2,
            )
            sinks.append(ProgressCallbackEvents(progress))
        self.events: Optional[EventSink] = (
            FanoutEvents(*sinks) if sinks else None
        )
        # Convenience attributes, kept for existing call sites.
        self.seed = config.seed
        self.expansion_stride = config.expansion_stride
        self.crossval_folds = config.crossval_folds
        self.run_vpi = config.run_vpi
        self.run_crossval = config.run_crossval
        seed = config.seed

        # Public datasets, optionally degraded by the data fault plan.
        data_faults = config.data_fault_plan
        self.whois = WhoisRegistry(world, seed=seed, data_faults=data_faults)
        self.as2org = as2org_from_world(world, seed=seed, data_faults=data_faults)
        self.peeringdb = peeringdb_from_world(world, seed=seed)
        self.ixps = ixp_directory_from_world(
            world, self.peeringdb, seed=seed, data_faults=data_faults
        )
        self.relationships = relationships_from_world(world)
        self.bgp_r1 = snapshot_from_world(world, "r1", data_faults=data_faults)
        self.bgp_r2 = snapshot_from_world(world, "r2", data_faults=data_faults)

        # Measurement plane.  The engine carries the observation side of
        # the fault plan (loss, rate limits); the executor's retry policy
        # and the transport side ride in through every ProbeCampaign.
        self.engine = TracerouteEngine(world, seed=seed, faults=config.fault_plan)
        self.retry_policy = RetryPolicy(
            shard_timeout=config.shard_timeout,
            max_retries=config.max_retries,
            backoff_base_s=config.retry_backoff_s,
        )
        self.checkpoint_store = (
            CheckpointStore(config.checkpoint_dir, resume=config.resume)
            if config.checkpoint_dir
            else None
        )
        self.stage_store = (
            StageStore(config.checkpoint_dir, resume=config.resume)
            if config.checkpoint_dir
            else None
        )
        # The supervisor owns cancellation, the study deadline, the
        # study-wide retry budget, and hung-shard detection.  An injected
        # one (the CLI installs signal handlers on its own) wins; the
        # default is built from the config's supervision knobs.
        self.supervisor = (
            supervisor
            if supervisor is not None
            else StudySupervisor(
                deadline_s=config.deadline_s,
                retry_budget=config.retry_budget,
                hung_shard_after_s=config.hung_shard_after_s,
            )
        )
        self.pinger = Pinger(world, seed=seed)
        self.public_vp = PublicVantagePoint(world, seed=seed)
        self.rdns = ReverseDNS(world)
        self.alias_resolver = AliasResolver(world, seed=seed)

        # Annotators per round and per probing cloud.  The round-2 and
        # per-cloud annotators read the same datasets (home_org never
        # changes annotation content), so by default they share one
        # read-only cache: an address annotated during expansion is
        # never recomputed for any VPI cloud.  Round 1 reads a different
        # snapshot and always keeps its own cache.
        r2_cache = (
            AnnotationCache() if config.shared_annotation_cache else None
        )
        self.annotator_r1 = HopAnnotator(self.bgp_r1, self.whois, self.as2org, self.ixps)
        self.annotator_r2 = HopAnnotator(
            self.bgp_r2, self.whois, self.as2org, self.ixps, cache=r2_cache
        )
        self.cloud_annotators: Dict[str, HopAnnotator] = {
            cloud: HopAnnotator(
                self.bgp_r2,
                self.whois,
                self.as2org,
                self.ixps,
                home_org=org,
                cache=r2_cache,
            )
            for cloud, org in CLOUD_ORG_IDS.items()
            if cloud != "amazon"
        }

        self.observatory = BorderObservatory(
            self.annotator_r1, min_confidence=config.min_confidence
        )
        self.region_metro = {
            name: rt.metro_code for name, rt in world.regions["amazon"].items()
        }

    # ------------------------------------------------------------------
    # the declarative stage graph
    # ------------------------------------------------------------------

    def _stage_graph(self) -> List[_Stage]:
        """The study as an ordered stage graph (§3 through §7).

        Each stage is (name, enabled, compute, apply); ``run`` walks the
        graph, loading completed stages from the :class:`StageStore`
        instead of recomputing them and checkpointing fresh ones, all
        under one rolling fingerprint chain.
        """
        return [
            _Stage("validate", True, self._compute_validate, self._apply_validate),
            _Stage("round1", True, self._compute_round1, self._apply_round1),
            _Stage("round2", True, self._compute_round2, self._apply_round2),
            _Stage(
                "recovery",
                self.config.adaptive,
                self._compute_recovery,
                self._apply_recovery,
            ),
            _Stage(
                "heuristics", True, self._compute_heuristics, self._apply_heuristics
            ),
            _Stage("alias", True, self._compute_alias, self._apply_alias),
            _Stage("pinning", True, self._compute_pinning, self._apply_pinning),
            _Stage(
                "crossval",
                self.run_crossval,
                self._compute_crossval,
                self._apply_crossval,
            ),
            _Stage("vpi", self.run_vpi, self._compute_vpi, self._apply_vpi),
            _Stage("grouping", True, self._compute_grouping, self._apply_grouping),
            _Stage("icg", True, self._compute_icg, self._apply_icg),
            _Stage("quality", True, self._compute_quality, self._apply_quality),
        ]

    def _make_context(
        self, result: StudyResult, metrics: StudyMetrics, worker_spans: bool
    ) -> _RunContext:
        governor: Optional[ProbeGovernor] = None
        if self.config.adaptive:
            governor = ProbeGovernor(
                HealthLedger(threshold=self.config.breaker_threshold),
                cloud="amazon",
            )
        campaign = ProbeCampaign(
            self.world,
            self.engine,
            workers=self.config.workers,
            faults=self.config.fault_plan,
            retry=self.retry_policy,
            supervisor=self.supervisor,
            governor=governor,
        )
        return _RunContext(
            result=result,
            metrics=metrics,
            worker_spans=worker_spans,
            campaign=campaign,
            events=self.events,
            governor=governor,
        )

    def run(self) -> StudyResult:
        config = self.config
        metrics = StudyMetrics()
        tracer = metrics.tracer
        #: fine-grained (worker-side) spans are opt-in; coarse spans
        #: (study/stage/campaign/shard) are always recorded and cheap.
        worker_spans = bool(config.trace or config.trace_out)
        events = self.events
        if events is not None:
            tracer.add_listener(events.on_span_closed)
        result = StudyResult(
            seed=self.seed,
            scale=self.world.config.scale,
            config=config,
            metrics=metrics,
        )
        study_span = tracer.span("study", category="study")
        ctx = self._make_context(result, metrics, worker_spans)
        store = self.stage_store
        supervisor = self.supervisor
        chain = StageChain(
            study_fingerprint(
                self.world.config.scale, self.world.config.seed, config
            )
        )
        try:
            with supervisor:
                for stage in self._stage_graph():
                    if not stage.enabled:
                        continue
                    fingerprint = chain.fingerprint(stage.name)
                    supervisor.poll()
                    with metrics.stage(stage.name) as span:
                        loaded = (
                            store.load(stage.name, fingerprint)
                            if store is not None
                            else None
                        )
                        if loaded is not None:
                            payload, digest = loaded
                            stage.apply(ctx, payload, True)
                            span.set("resumed", 1)
                        else:
                            try:
                                payload = stage.compute(ctx)
                            except StudyInterrupted:
                                raise
                            except Exception as exc:
                                raise StageError(stage.name, exc) from exc
                            stage.apply(ctx, payload, False)
                            # A stage computed after any shard quarantine
                            # is degraded content; never checkpoint it.
                            # Resume re-runs it, healing the quarantined
                            # shards from the campaign journals instead.
                            if store is not None and not metrics.degraded:
                                digest = store.save(
                                    stage.name, fingerprint, payload
                                )
                            else:
                                digest = "-"
                    chain.advance(stage.name, digest)
                    supervisor.note_stage_complete(stage.name)
        except StudyInterrupted as exc:
            # Graceful shutdown: make the on-disk state durable, leave a
            # span explaining why the run stopped, and let the interrupt
            # propagate (the CLI maps it to a distinct exit code).
            if self.checkpoint_store is not None:
                self.checkpoint_store.finalize_all()
            interrupt_span = tracer.span("study-interrupted", category="interrupt")
            interrupt_span.set(
                "stages_completed", len(supervisor.stages_completed)
            )
            interrupt_span.set("deadline", 1 if exc.category == "deadline" else 0)
            interrupt_span.close()
            raise
        finally:
            self._close_study_span(study_span, metrics, ctx)
            # The legacy timers dict is a snapshot of the stage-span view.
            result.runtime_seconds = metrics.stages
            if config.trace_out:
                write_trace(
                    config.trace_out,
                    tracer.records,
                    meta={
                        "seed": self.seed,
                        "scale": self.world.config.scale,
                        "workers": config.workers,
                    },
                )
            if events is not None:
                events.close()
        return result

    def salvage(self) -> Tuple[StudyResult, List[str]]:
        """Rebuild a partial :class:`StudyResult` from stage checkpoints.

        No probing, no computation: the stage graph is replayed from the
        :class:`StageStore` until the first missing (or invalidated)
        checkpoint, and whatever prefix was recovered is applied to a
        fresh result.  Returns ``(result, recovered_stage_names)`` --
        the degradation ladder's last rung, feeding
        ``repro study --salvage``'s partial report.
        """
        if self.stage_store is None:
            raise DataError(
                "salvage requires a checkpoint directory with stage "
                "checkpoints (run with checkpoint_dir set)"
            )
        config = self.config
        metrics = StudyMetrics()
        result = StudyResult(
            seed=self.seed,
            scale=self.world.config.scale,
            config=config,
            metrics=metrics,
        )
        ctx = self._make_context(result, metrics, worker_spans=False)
        chain = StageChain(
            study_fingerprint(
                self.world.config.scale, self.world.config.seed, config
            )
        )
        recovered: List[str] = []
        for stage in self._stage_graph():
            if not stage.enabled:
                continue
            loaded = self.stage_store.load(
                stage.name, chain.fingerprint(stage.name)
            )
            if loaded is None:
                break  # the chain is only valid as an unbroken prefix
            payload, digest = loaded
            with metrics.stage(stage.name) as span:
                stage.apply(ctx, payload, True)
                span.set("resumed", 1)
            chain.advance(stage.name, digest)
            recovered.append(stage.name)
        result.runtime_seconds = metrics.stages
        return result, recovered

    def _close_study_span(
        self,
        study_span: Any,
        metrics: StudyMetrics,
        ctx: Optional[_RunContext] = None,
    ) -> None:
        # Annotation-layer counters ride on the study span: cache
        # behaviour, mean fallback-chain depth, and how often sources
        # disagreed.  Observability only -- outside the digest.
        annotators = [
            self.annotator_r1,
            self.annotator_r2,
            *self.cloud_annotators.values(),
        ]
        study_span.set(
            "annotation_cache_hits", sum(a.cache_hits for a in annotators)
        )
        study_span.set(
            "annotation_cache_misses", sum(a.cache_misses for a in annotators)
        )
        study_span.set(
            "annotation_fallback_depth",
            sum(a.fallback_depth_total for a in annotators),
        )
        study_span.set(
            "annotation_disagreements",
            sum(a.disagreement_flags for a in annotators),
        )
        study_span.set(
            "bgp_lpm_lookups",
            self.bgp_r1.lookup_count + self.bgp_r2.lookup_count,
        )
        study_span.set(
            "bgp_lpm_probes",
            self.bgp_r1.probe_count + self.bgp_r2.probe_count,
        )
        study_span.set("dataset_disagreements", metrics.dataset_disagreements)
        study_span.set(
            "low_confidence_inferences", metrics.low_confidence_inferences
        )
        if ctx is not None and ctx.governor is not None:
            # Adaptive control-plane counters (DESIGN.md §6.6): breaker
            # transitions fold from the ledger's event log, governor
            # decisions from its own tallies.  Digest-neutral.
            counts = ctx.governor.ledger.counts()
            study_span.set("breaker_opens", counts.opens)
            study_span.set("breaker_half_opens", counts.half_opens)
            study_span.set("breaker_closes", counts.closes)
            study_span.set("breaker_reopens", counts.reopens)
            study_span.set("governor_admitted", ctx.governor.admitted)
            study_span.set("governor_deferred", ctx.governor.deferred)
            study_span.set("governor_quarantined", ctx.governor.quarantined)
            resilience = ctx.result.resilience
            if resilience is not None:
                study_span.set("recovered_probes", resilience.recovered)
                study_span.set("recovery_still_lost", resilience.still_lost)
        study_span.close()

    # ------------------------------------------------------------------
    # stage bodies: compute() produces a checkpointable payload, apply()
    # projects it onto the result -- identically for fresh and resumed
    # payloads, which is what makes the digest resume-invariant.
    # ------------------------------------------------------------------

    def _compute_validate(self, ctx: _RunContext) -> Dict[str, Any]:
        # Dataset cross-validation, *before* any probing: how much do the
        # sources disagree with each other up front?
        return {
            "validation": validate_datasets(
                self.bgp_r2, self.whois, self.as2org, self.ixps
            )
        }

    def _apply_validate(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        ctx.validation = payload["validation"]

    def _compute_round1(self, ctx: _RunContext) -> Dict[str, Any]:
        # §3-§4.1: round-1 sweep.
        stats = ctx.campaign.run_round1(
            ctx.campaign_sink(self.observatory),
            progress=ctx.campaign_progress("round1"),
            checkpoint_store=self.checkpoint_store,
            tracer=ctx.tracer,
            worker_spans=ctx.worker_spans,
        )
        r1_abis = self.observatory.candidate_abis()
        r1_cbis = self.observatory.candidate_cbis()
        return {
            "stats": stats,
            "observatory": self.observatory.state_dict(),
            "table1": [
                self._census("ABI", r1_abis, self.annotator_r1),
                self._census("CBI", r1_cbis, self.annotator_r1),
            ],
            "peer_ases_round1": len(
                self._peer_ases(r1_cbis, self.annotator_r1)
            ),
            "adaptive": (
                ctx.governor.state_dict() if ctx.governor is not None else None
            ),
        }

    def _apply_round1(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        if resumed:
            self.observatory.load_state(payload["observatory"])
            if (
                ctx.governor is not None
                and payload.get("adaptive") is not None
            ):
                ctx.governor.load_state(payload["adaptive"])
        result = ctx.result
        result.round1_stats = payload["stats"]
        result.table1.extend(payload["table1"])
        result.peer_ases_round1 = payload["peer_ases_round1"]

    def _compute_round2(self, ctx: _RunContext) -> Dict[str, Any]:
        # §4.2: expansion probing under the round-2 snapshot.
        r1_cbis = self.observatory.candidate_cbis()
        self.observatory.start_round("r2", self.annotator_r2)
        stats = ctx.campaign.run_expansion(
            r1_cbis,
            ctx.campaign_sink(self.observatory),
            stride=self.expansion_stride,
            progress=ctx.campaign_progress("round2"),
            checkpoint_store=self.checkpoint_store,
            tracer=ctx.tracer,
            worker_spans=ctx.worker_spans,
        )
        e_abis = self.observatory.candidate_abis()
        e_cbis = self.observatory.candidate_cbis()
        return {
            "stats": stats,
            "observatory": self.observatory.state_dict(),
            "table1": [
                self._census("eABI", e_abis, self.annotator_r2),
                self._census("eCBI", e_cbis, self.annotator_r2),
            ],
            "peer_ases_round2": len(
                self._peer_ases(e_cbis, self.annotator_r2)
            ),
            "adaptive": (
                ctx.governor.state_dict() if ctx.governor is not None else None
            ),
        }

    def _apply_round2(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        if resumed:
            self.observatory.load_state(payload["observatory"])
            # The restored state says round "r2"; point the live
            # annotator at the round-2 snapshot to match.
            self.observatory.start_round("r2", self.annotator_r2)
            if (
                ctx.governor is not None
                and payload.get("adaptive") is not None
            ):
                ctx.governor.load_state(payload["adaptive"])
        result = ctx.result
        result.round2_stats = payload["stats"]
        result.table1.extend(payload["table1"])
        result.peer_ases_round2 = payload["peer_ases_round2"]

    def _compute_recovery(self, ctx: _RunContext) -> Dict[str, Any]:
        # DESIGN.md §6.6: the bounded re-probe round.  Serial in the
        # parent -- recovery never shards, so its probe order (and with
        # it the digest) is identical at any worker count.  Recovered
        # traces stream into the observatory under the current round
        # ("r2") and heal the campaign stats they were deferred from.
        assert ctx.governor is not None  # stage gated on config.adaptive
        stats_by_label: Dict[str, CampaignStats] = {}
        if ctx.result.round1_stats is not None:
            stats_by_label["round1"] = ctx.result.round1_stats
        if ctx.result.round2_stats is not None:
            stats_by_label["round2"] = ctx.result.round2_stats
        events = as_event_sink(ctx.campaign_sink(self.observatory))
        try:
            report = run_recovery(
                ctx.governor,
                self.engine,
                ctx.campaign.membership,
                stats_by_label,
                events,
                rounds=self.config.recovery_rounds,
                supervisor=self.supervisor,
                tracer=ctx.tracer,
            )
        finally:
            events.close()
        return {
            "round1_stats": ctx.result.round1_stats,
            "round2_stats": ctx.result.round2_stats,
            "observatory": self.observatory.state_dict(),
            "report": report,
        }

    def _apply_recovery(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        if resumed:
            self.observatory.load_state(payload["observatory"])
            self.observatory.start_round("r2", self.annotator_r2)
        result = ctx.result
        # Recovery heals round stats in place; on the resume path the
        # healed copies come from the payload instead.
        result.round1_stats = payload["round1_stats"]
        result.round2_stats = payload["round2_stats"]
        result.resilience = payload["report"]

    def _compute_heuristics(self, ctx: _RunContext) -> Dict[str, Any]:
        # §5.1: heuristics.
        verifier = SegmentVerifier(
            self.observatory,
            self.public_vp,
            min_confidence=self.config.min_confidence,
        )
        return {"heuristics": verifier.verify()}

    def _apply_heuristics(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        ctx.result.heuristics = payload["heuristics"]

    def _compute_alias(self, ctx: _RunContext) -> Dict[str, Any]:
        # §5.2: alias resolution and ownership verification.
        candidates = sorted(
            self.observatory.candidate_abis() | self.observatory.candidate_cbis()
        )
        alias_sets = self.alias_resolver.resolve(candidates)
        alias_verifier = AliasVerifier(self.observatory, set(AMAZON_ASNS))
        verification = alias_verifier.verify(alias_sets)
        return {"alias_sets": alias_sets, "verification": verification}

    def _apply_alias(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        result = ctx.result
        result.alias_sets = payload["alias_sets"]
        result.verification = payload["verification"]
        result.final_segments = result.verification.final_segments
        result.abis = result.verification.abis
        result.cbis = result.verification.cbis

    def _compute_pinning(self, ctx: _RunContext) -> Dict[str, Any]:
        # §6: RTT data, anchors, iterative pinning, regional fallback.
        config = self.config
        result = ctx.result
        abi_min_rtts = self._abi_min_rtts(result.abis)
        segment_rtt_diff = self._segment_rtt_diffs(result.final_segments)
        parser = DNSGeoParser(self.world.catalog)
        anchor_builder = AnchorBuilder(
            observatory=self.observatory,
            abis=result.abis,
            cbis=result.cbis,
            pinger=self.pinger,
            rdns=self.rdns,
            parser=parser,
            ixps=self.ixps,
            peeringdb=self.peeringdb,
            catalog=self.world.catalog,
            region_metro=self.region_metro,
        )
        anchors = anchor_builder.build(result.alias_sets)
        confidence = {
            ip: self.annotator_r2.annotate(ip).confidence
            for ip in sorted(result.abis | result.cbis)
        }
        pinner = IterativePinner(
            anchors.anchors,
            result.alias_sets,
            result.final_segments,
            segment_rtt_diff,
            confidence=confidence,
            min_confidence=config.min_confidence,
        )
        pinning = pinner.run()
        regional_fallback(
            pinning,
            result.abis | result.cbis,
            self.pinger,
            confidence=confidence,
            min_confidence=config.min_confidence,
        )
        return {
            "abi_min_rtts": abi_min_rtts,
            "segment_rtt_diff": segment_rtt_diff,
            "anchors": anchors,
            "pinning": pinning,
        }

    def _apply_pinning(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        result = ctx.result
        result.abi_min_rtts = payload["abi_min_rtts"]
        result.segment_rtt_diff = payload["segment_rtt_diff"]
        result.anchors = payload["anchors"]
        result.pinning = payload["pinning"]

    def _compute_crossval(self, ctx: _RunContext) -> Dict[str, Any]:
        # §6.2: stratified cross-validation.
        result = ctx.result
        return {
            "crossval": cross_validate_pinning(
                result.anchors.anchors,
                result.alias_sets,
                result.final_segments,
                result.segment_rtt_diff,
                folds=self.crossval_folds,
                seed=self.seed,
            )
        }

    def _apply_crossval(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        ctx.result.crossval = payload["crossval"]

    def _compute_vpi(self, ctx: _RunContext) -> Dict[str, Any]:
        # §7.1: VPI detection from the other clouds.
        result = ctx.result
        detector = VPIDetector(
            self.world,
            self.cloud_annotators,
            self.engine,
            workers=self.config.workers,
            faults=self.config.fault_plan,
            retry=self.retry_policy,
            checkpoint_store=self.checkpoint_store,
            supervisor=self.supervisor,
        )
        ixp_cbis = {
            cbi for cbi in result.cbis if self.annotator_r2.annotate(cbi).is_ixp
        }
        vpi = detector.detect(
            result.cbis,
            ixp_cbis,
            self.observatory.discovery_dsts(),
            progress_factory=lambda cloud: ctx.campaign_progress(f"vpi:{cloud}"),
            tracer=ctx.tracer,
            worker_spans=ctx.worker_spans,
        )
        return {"vpi": vpi}

    def _apply_vpi(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        ctx.result.vpi = payload["vpi"]

    def _compute_grouping(self, ctx: _RunContext) -> Dict[str, Any]:
        # §7.2-§7.3: grouping.
        result = ctx.result
        vpi_cbis: Set[IPv4] = (
            result.vpi.vpi_cbis if result.vpi is not None else set()
        )
        router_owner = (
            result.verification.ownership.owner_of_ip()
            if result.verification and result.verification.ownership
            else {}
        )
        grouper = PeeringGrouper(
            self.observatory,
            self.relationships,
            vpi_cbis,
            router_owner=router_owner,
            home_asns=set(AMAZON_ASNS),
        )
        amazon_bgp_peers = self.relationships.amazon_links()
        pinned_metros = {
            ip: loc.metro_code for ip, loc in result.pinning.pinned.items()
        }
        grouping = grouper.group(
            result.final_segments,
            amazon_bgp_peers,
            pinned_metro=pinned_metros,
            rtt_diff=result.segment_rtt_diff,
        )
        return {
            "grouping": grouping,
            "bgp_visible_peers": amazon_bgp_peers,
            "recovered_bgp_peers": amazon_bgp_peers & grouping.all_ases(),
        }

    def _apply_grouping(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        result = ctx.result
        result.grouping = payload["grouping"]
        result.bgp_visible_peers = payload["bgp_visible_peers"]
        result.recovered_bgp_peers = payload["recovered_bgp_peers"]

    def _compute_icg(self, ctx: _RunContext) -> Dict[str, Any]:
        # §7.4: the ICG.
        result = ctx.result
        pinned_metros = {
            ip: loc.metro_code for ip, loc in result.pinning.pinned.items()
        }
        icg = InterfaceConnectivityGraph(
            result.final_segments, result.segment_rtt_diff
        )
        return {
            "icg": icg.summarize(
                pinned_metro=pinned_metros,
                catalog=self.world.catalog,
                region_metros=sorted(self.region_metro.values()),
            )
        }

    def _apply_icg(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        ctx.result.icg = payload["icg"]

    def _compute_quality(self, ctx: _RunContext) -> Dict[str, Any]:
        # Data-quality rollup: what the sources disagreed on and which
        # inferences the confidence floor flagged.  Observability only --
        # deliberately outside the digest.
        validation = ctx.validation
        if validation is None:
            raise DataError("quality stage needs the validate stage's output")
        return {"data_quality": self._data_quality(ctx.result, validation)}

    def _apply_quality(
        self, ctx: _RunContext, payload: Dict[str, Any], resumed: bool
    ) -> None:
        ctx.result.data_quality = payload["data_quality"]
        ctx.metrics.note_data_quality(
            payload["data_quality"].total_disagreements,
            payload["data_quality"].flagged_count,
        )

    # ------------------------------------------------------------------

    def _data_quality(
        self, result: StudyResult, validation: DatasetValidationReport
    ) -> DataQualityReport:
        """Score the final border interfaces and collect flagged sets."""
        config = self.config
        annotate = self.annotator_r2.annotate
        interfaces = sorted(result.abis | result.cbis)
        source_counts: Dict[str, int] = {}
        disagreement_counts: Dict[str, int] = {}
        total_confidence = 0.0
        for ip in interfaces:
            ann = annotate(ip)
            total_confidence += ann.confidence
            source_counts[ann.source] = source_counts.get(ann.source, 0) + 1
            for label in ann.disagreements:
                disagreement_counts[label] = (
                    disagreement_counts.get(label, 0) + 1
                )
        low_cbis: Set[IPv4] = set()
        low_abis: Set[IPv4] = set()
        low_pins: Set[IPv4] = set()
        if config.min_confidence > 0.0:
            low_cbis = {
                ip
                for ip in result.cbis
                if annotate(ip).confidence < config.min_confidence
            }
            if result.heuristics is not None:
                low_abis = set(result.heuristics.low_confidence_abis)
            if result.pinning is not None:
                low_pins = set(result.pinning.low_confidence)
        return DataQualityReport(
            fault_plan=config.data_fault_plan,
            min_confidence=config.min_confidence,
            validation=validation,
            interfaces_scored=len(interfaces),
            mean_confidence=(
                total_confidence / len(interfaces) if interfaces else 1.0
            ),
            source_counts=source_counts,
            disagreement_counts=disagreement_counts,
            low_confidence_cbis=low_cbis,
            low_confidence_abis=low_abis,
            low_confidence_pins=low_pins,
        )

    def _census(
        self, label: str, ips: Set[IPv4], annotator: HopAnnotator
    ) -> InterfaceCensus:
        """A Table 1 row: counts plus BGP/WHOIS/IXP source fractions."""
        total = len(ips)
        if not total:
            return InterfaceCensus(label, 0, 0.0, 0.0, 0.0)
        bgp = whois = ixp = 0
        for ip in ips:
            ann = annotator.annotate(ip)
            if ann.is_ixp:
                ixp += 1
            elif ann.source == AnnotationSource.BGP:
                bgp += 1
            elif ann.source == AnnotationSource.WHOIS:
                whois += 1
        return InterfaceCensus(
            label=label,
            total=total,
            bgp_fraction=bgp / total,
            whois_fraction=whois / total,
            ixp_fraction=ixp / total,
        )

    def _peer_ases(self, cbis: Set[IPv4], annotator: HopAnnotator) -> Set[int]:
        peers: Set[int] = set()
        for cbi in cbis:
            ann = annotator.annotate(cbi)
            if ann.asn and ann.asn not in AMAZON_ASNS:
                peers.add(ann.asn)
        return peers

    def _abi_min_rtts(self, abis: Set[IPv4]) -> List[float]:
        """Fig. 4a series: min-RTT from the closest region per ABI."""
        rtts: List[float] = []
        for abi in sorted(abis):
            closest = self.pinger.closest_region("amazon", abi)
            if closest is not None:
                rtts.append(closest[1])
        return rtts

    def _segment_rtt_diffs(
        self, segments: Iterable[Tuple[IPv4, IPv4]]
    ) -> Dict[Tuple[IPv4, IPv4], float]:
        """Fig. 4b data: |rtt(cbi) - rtt(abi)| from the ABI's closest VM."""
        diffs: Dict[Tuple[IPv4, IPv4], float] = {}
        for abi, cbi in sorted(segments):
            closest = self.pinger.closest_region("amazon", abi)
            if closest is None:
                continue
            region, abi_rtt = closest
            cbi_rtt = self.pinger.min_rtt("amazon", region, cbi)
            if cbi_rtt is None:
                continue
            diffs[(abi, cbi)] = abs(cbi_rtt - abi_rtt)
        return diffs


def _coerce_config(
    config: Optional[StudyConfig], legacy: Dict[str, object]
) -> StudyConfig:
    """Merge the deprecated loose kwargs into a :class:`StudyConfig`."""
    unknown = set(legacy) - set(_LEGACY_CONFIG_KWARGS)
    if unknown:
        raise TypeError(
            f"AmazonPeeringStudy got unexpected keyword argument(s): "
            f"{sorted(unknown)}"
        )
    if config is None:
        config = StudyConfig()
    if legacy:
        warnings.warn(
            "passing loose keyword arguments to AmazonPeeringStudy is "
            "deprecated; pass config=StudyConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        config = config.replace(**legacy)
    return config
