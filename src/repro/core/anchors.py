"""Anchor identification for pinning (§6.1).

Anchors are border interfaces whose metro-level location is known from
reliable side information.  Four sources are used, in decreasing order of
confidence:

* **DNS** (CBIs): location hints embedded in reverse-DNS names, subject to
  an RTT feasibility check (a hint is discarded when the speed of light
  says the interface cannot be there);
* **IXP association** (CBIs): addresses inside a single-metro IXP prefix,
  excluding members that peer remotely (the minIXRTT + 2 ms test);
* **Single colo/metro footprint** (CBIs): the interface's AS is registered
  in exactly one metro across PeeringDB facilities and IXPs;
* **Native Amazon colos** (ABIs): ABIs within 2 ms of a region's VM sit in
  a native colo of that region's metro.

Anchors that disagree with a second indicator or with their alias set are
flagged and *excluded* -- the conservatism that buys the paper its 99.3%
pinning precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.ip import IPv4
from repro.core.annotate import HopAnnotator
from repro.core.borders import BorderObservatory
from repro.core.dnsgeo import DNSGeoParser
from repro.datasets.ixp import IXPDirectory
from repro.datasets.peeringdb import PeeringDB
from repro.measure.dnslookup import ReverseDNS
from repro.measure.ping import Pinger
from repro.net.geo import MetroCatalog

#: §6.1: the knee of Fig. 4a -- interfaces within 2 ms of a VM are local.
NATIVE_RTT_MS = 2.0
#: §6.1: an IXP member is local when its RTT from minIXRegion is within
#: 2 ms of the IXP's minimum.
REMOTE_MEMBER_SLACK_MS = 2.0
#: Feasibility slack for the DNS RTT-constraint check.
DNS_RTT_SLACK_MS = 2.0

EVIDENCE_ORDER = ("dns", "ixp", "metro", "native")


@dataclass
class AnchorSet:
    """Anchors by interface, plus bookkeeping for Table 3 and §6.1."""

    #: ip -> agreed metro code
    anchors: Dict[IPv4, str] = field(default_factory=dict)
    #: ip -> evidence kinds that supported it
    evidence: Dict[IPv4, Set[str]] = field(default_factory=dict)
    #: interfaces excluded for inconsistent indicators
    flagged_multi_evidence: Set[IPv4] = field(default_factory=set)
    flagged_alias: Set[IPv4] = field(default_factory=set)
    #: DNS hints rejected by the RTT-feasibility check
    dns_rtt_excluded: int = 0
    #: IXP member interfaces classified as remote peers
    remote_ixp_members: int = 0
    local_ixp_members: int = 0
    multi_metro_ixp_excluded: int = 0

    def exclusive_counts(self) -> Dict[str, int]:
        """First-evidence attribution in Table 3's priority order."""
        counts = {name: 0 for name in EVIDENCE_ORDER}
        for ip in self.anchors:
            for name in EVIDENCE_ORDER:
                if name in self.evidence.get(ip, ()):
                    counts[name] += 1
                    break
        return counts

    def cumulative_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        seen: Set[IPv4] = set()
        for name in EVIDENCE_ORDER:
            for ip in self.anchors:
                if name in self.evidence.get(ip, ()):
                    seen.add(ip)
            counts[name] = len(seen)
        return counts


class AnchorBuilder:
    """Derives the anchor set from measurements and public datasets."""

    def __init__(
        self,
        observatory: BorderObservatory,
        abis: Set[IPv4],
        cbis: Set[IPv4],
        pinger: Pinger,
        rdns: ReverseDNS,
        parser: DNSGeoParser,
        ixps: IXPDirectory,
        peeringdb: PeeringDB,
        catalog: MetroCatalog,
        region_metro: Dict[str, str],
        cloud: str = "amazon",
    ) -> None:
        self.observatory = observatory
        self.abis = abis
        self.cbis = cbis
        self.pinger = pinger
        self.rdns = rdns
        self.parser = parser
        self.ixps = ixps
        self.peeringdb = peeringdb
        self.catalog = catalog
        self.region_metro = region_metro
        self.cloud = cloud

    # ------------------------------------------------------------------

    def build(self, alias_sets: Optional[List[Set[IPv4]]] = None) -> AnchorSet:
        result = AnchorSet()
        proposals: Dict[IPv4, List[Tuple[str, str]]] = {}

        def propose(ip: IPv4, metro: str, kind: str) -> None:
            proposals.setdefault(ip, []).append((metro, kind))

        self._dns_anchors(propose, result)
        self._ixp_anchors(propose, result)
        self._footprint_anchors(propose)
        self._native_anchors(propose)

        # Consistency check 1: multiple indicators must agree.
        for ip, entries in proposals.items():
            metros = {m for m, _k in entries}
            if len(metros) > 1:
                result.flagged_multi_evidence.add(ip)
                continue
            result.anchors[ip] = next(iter(metros))
            result.evidence[ip] = {k for _m, k in entries}

        # Consistency check 2: alias sets must agree internally.
        for group in alias_sets or []:
            metros = {result.anchors[ip] for ip in group if ip in result.anchors}
            if len(metros) > 1:
                for ip in group:
                    if ip in result.anchors:
                        result.flagged_alias.add(ip)
                        del result.anchors[ip]
                        result.evidence.pop(ip, None)
        return result

    # ------------------------------------------------------------------

    def _dns_anchors(self, propose, result: AnchorSet) -> None:
        for cbi in sorted(self.cbis):
            hint = self.parser.parse(self.rdns.lookup(cbi))
            if hint is None:
                continue
            if not self._rtt_feasible(cbi, hint.metro_code):
                result.dns_rtt_excluded += 1
                continue
            propose(cbi, hint.metro_code, "dns")

    def _rtt_feasible(self, ip: IPv4, metro_code: str) -> bool:
        """Can the interface be at ``metro_code`` given measured RTTs?"""
        closest = self.pinger.closest_region(self.cloud, ip)
        if closest is None:
            # No active measurement; fall back to traceroute RTTs.
            measured = self.observatory.min_rtt_of(ip)
            if measured is None:
                return True
            best_region = min(
                self.region_metro.values(),
                key=lambda m: self.catalog.rtt_ms(m, metro_code),
            )
            return self.catalog.rtt_ms(best_region, metro_code) <= measured + DNS_RTT_SLACK_MS
        region, measured = closest
        predicted = self.catalog.rtt_ms(self.region_metro[region], metro_code)
        return predicted <= measured + DNS_RTT_SLACK_MS

    # ------------------------------------------------------------------

    def _ixp_anchors(self, propose, result: AnchorSet) -> None:
        # Group observed IXP CBIs per IXP.
        by_ixp: Dict[int, List[IPv4]] = {}
        for cbi in sorted(self.cbis):
            ixp_id = self.ixps.ixp_of(cbi)
            if ixp_id is not None:
                by_ixp.setdefault(ixp_id, []).append(cbi)

        for ixp_id, members in sorted(by_ixp.items()):
            cities = self.ixps.cities_of(ixp_id)
            if len(cities) != 1:
                result.multi_metro_ixp_excluded += len(members)
                continue
            metro = cities[0]
            min_rtt, min_region = self._min_ix_rtt(members)
            for ip in members:
                rtt = (
                    self.pinger.min_rtt(self.cloud, min_region, ip)
                    if min_region is not None
                    else None
                )
                if min_rtt is not None and rtt is not None:
                    if rtt > min_rtt + REMOTE_MEMBER_SLACK_MS:
                        result.remote_ixp_members += 1
                        continue
                result.local_ixp_members += 1
                propose(ip, metro, "ixp")

    def _min_ix_rtt(self, members: List[IPv4]) -> Tuple[Optional[float], Optional[str]]:
        """minIXRTT and minIXRegion over the IXP's observed interfaces."""
        best: Optional[float] = None
        best_region: Optional[str] = None
        for ip in members:
            closest = self.pinger.closest_region(self.cloud, ip)
            if closest is None:
                continue
            region, rtt = closest
            if best is None or rtt < best:
                best, best_region = rtt, region
        return best, best_region

    # ------------------------------------------------------------------

    def _footprint_anchors(self, propose) -> None:
        single = self.peeringdb.single_metro_asns()
        annotate = self.observatory.annotator.annotate
        for cbi in sorted(self.cbis):
            asn = annotate(cbi).asn
            if not asn:
                continue
            metro = single.get(asn)
            if metro is not None:
                propose(cbi, metro, "metro")

    # ------------------------------------------------------------------

    def _native_anchors(self, propose) -> None:
        for abi in sorted(self.abis):
            closest = self.pinger.closest_region(self.cloud, abi)
            if closest is None:
                continue
            region, rtt = closest
            if rtt < NATIVE_RTT_MS:
                propose(abi, self.region_metro[region], "native")
