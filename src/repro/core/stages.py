"""Stage-level checkpointing for the end-to-end study.

PR 2 made individual probing campaigns crash-safe (shard journals); this
module extends the same contract to the whole pipeline.  Each of the
study's stages (validate -> round1 -> ... -> quality) serializes its
output into a :class:`StageStore` under ``--checkpoint-dir``, so a study
killed *between* campaigns -- during pinning, grouping, or VPI detection
-- resumes by loading completed stages instead of recomputing them, and
still reproduces the clean run's digest bit-for-bit.

Three pieces:

* a **canonical codec** (:func:`encode` / :func:`decode`) mapping every
  stage-payload type -- the result dataclasses, sets of interfaces,
  tuple-keyed dicts, ``Counter`` s -- onto tagged JSON.  Sets are sorted
  at encode time and dict order is preserved, so the serialized bytes
  are deterministic and a decoded payload drives downstream stages to
  byte-identical outputs;
* a :class:`StageStore`: one ``stage_<name>.json`` per stage, written
  via temp-file + ``os.replace`` + fsync (a hard kill can never tear a
  stage record) and validated on read (version, stage name, fingerprint,
  and a sha256 over the payload bytes) -- anything suspect is recomputed
  rather than trusted;
* a :class:`StageChain` of fingerprints: each stage's identity covers
  the study inputs (world scale/seed, study seed, strides, fault-plan
  signatures) *plus every upstream stage's payload digest*, so editing
  anything upstream invalidates everything downstream.  Execution knobs
  that never change content -- worker count, retry policy, tracing --
  are deliberately excluded, which is what lets a study killed under
  ``workers=4`` resume under ``workers=1`` with an identical digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import Counter
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Tuple,
    Type,
    Union,
)

from repro.errors import DataError
from repro.fsutil import fsync_dir, safe_name
from repro.core.aliasverify import AliasOwnership, VerificationResult
from repro.core.anchors import AnchorSet
from repro.core.borders import ObservatoryStats, SegmentRecord
from repro.core.crossval import CrossValidationResult, FoldResult
from repro.core.graph import ICGSummary
from repro.core.grouping import GroupingResult, PeeringRecord
from repro.core.heuristics import HeuristicOutcome
from repro.core.pinning import PinnedLocation, PinningResult, RegionalAssignment
from repro.core.results import DataQualityReport, InterfaceCensus
from repro.core.vpi import VPIDetectionResult
from repro.datasets.datafaults import DataFaultPlan
from repro.datasets.validate import DatasetValidationReport
from repro.measure.adapt import DeferredTarget, RecoveryReport
from repro.measure.campaign import CampaignStats
from repro.measure.health import BreakerEvent, BreakerSnapshot

if TYPE_CHECKING:
    from repro.core.config import StudyConfig

_FORMAT_VERSION = 1

#: The fixed stage order of ``AmazonPeeringStudy.run`` (§3 through §7).
STAGE_ORDER = (
    "validate",
    "round1",
    "round2",
    "recovery",
    "heuristics",
    "alias",
    "pinning",
    "crossval",
    "vpi",
    "grouping",
    "icg",
    "quality",
)

#: Every dataclass a stage payload may contain.  The codec refuses
#: anything not listed here -- an unknown type in a payload is a bug,
#: not something to pickle silently.
_REGISTERED_TYPES: Tuple[Type[Any], ...] = (
    AliasOwnership,
    AnchorSet,
    BreakerEvent,
    BreakerSnapshot,
    CampaignStats,
    CrossValidationResult,
    DataFaultPlan,
    DataQualityReport,
    DatasetValidationReport,
    DeferredTarget,
    FoldResult,
    GroupingResult,
    HeuristicOutcome,
    ICGSummary,
    InterfaceCensus,
    ObservatoryStats,
    PeeringRecord,
    PinnedLocation,
    PinningResult,
    RecoveryReport,
    RegionalAssignment,
    SegmentRecord,
    VerificationResult,
    VPIDetectionResult,
)

_REGISTRY: Dict[str, Type[Any]] = {cls.__name__: cls for cls in _REGISTERED_TYPES}

Encoded = Union[None, bool, int, float, str, List[Any], Dict[str, Any]]


def _sorted_members(value: Any) -> List[Any]:
    """Set members in a deterministic order.

    Natural sort when the members are comparable (ints, strings, int
    tuples -- every set the pipeline produces); encoded-JSON order as the
    general fallback.
    """
    try:
        return sorted(value)
    except TypeError:
        return sorted(
            value, key=lambda v: json.dumps(encode(v), sort_keys=True)
        )


def encode(value: Any) -> Encoded:
    """Map a stage-payload object onto tagged, canonical JSON.

    Sets/frozensets are sorted (their iteration order is an
    implementation detail); dicts and Counters keep insertion order,
    which in this pipeline is itself deterministic (the serial merge
    order) and must survive the round trip so downstream iteration sees
    exactly what a live run would have seen.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [encode(v) for v in value]
    if isinstance(value, tuple):
        return {"__t__": [encode(v) for v in value]}
    if isinstance(value, Counter):
        # Counter before dict: it is a dict subclass.
        return {"__c__": [[encode(k), encode(v)] for k, v in value.items()]}
    if isinstance(value, dict):
        return {"__d__": [[encode(k), encode(v)] for k, v in value.items()]}
    if isinstance(value, frozenset):
        return {"__f__": [encode(v) for v in _sorted_members(value)]}
    if isinstance(value, set):
        return {"__s__": [encode(v) for v in _sorted_members(value)]}
    if dataclasses.is_dataclass(value) and type(value).__name__ in _REGISTRY:
        return {
            "__dc__": type(value).__name__,
            "fields": {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    raise DataError(
        f"cannot encode {type(value).__name__} into a stage checkpoint "
        f"(register it in repro.core.stages)"
    )


def decode(value: Encoded) -> Any:
    """Inverse of :func:`encode`; raises :class:`DataError` on bad input."""
    if isinstance(value, list):
        return [decode(v) for v in value]
    if isinstance(value, dict):
        if "__t__" in value:
            return tuple(decode(v) for v in value["__t__"])
        if "__s__" in value:
            return {decode(v) for v in value["__s__"]}
        if "__f__" in value:
            return frozenset(decode(v) for v in value["__f__"])
        if "__c__" in value:
            counter: Counter = Counter()
            for key, val in value["__c__"]:
                counter[decode(key)] = decode(val)
            return counter
        if "__d__" in value:
            return {decode(k): decode(v) for k, v in value["__d__"]}
        if "__dc__" in value:
            name = value["__dc__"]
            cls = _REGISTRY.get(name)
            if cls is None:
                raise DataError(f"unknown dataclass in stage checkpoint: {name}")
            fields = value.get("fields")
            if not isinstance(fields, dict):
                raise DataError(f"malformed dataclass record for {name}")
            try:
                return cls(**{k: decode(v) for k, v in fields.items()})
            except TypeError as exc:
                raise DataError(f"stale dataclass record for {name}: {exc}") from exc
        raise DataError(f"unknown codec tag in stage checkpoint: {sorted(value)}")
    return value


def payload_digest(encoded: Encoded) -> str:
    """sha256 over the canonical JSON bytes of an encoded payload."""
    return hashlib.sha256(
        json.dumps(encoded, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def study_fingerprint(
    world_scale: float, world_seed: int, config: StudyConfig
) -> str:
    """Identity of the study's *content* inputs.

    Covers everything that changes what a stage computes: the world,
    the study seed and strides, which stages run, the confidence floor,
    and the content-bearing sides of both fault plans (observation
    faults via ``probe_signature``; transport faults never change a
    completed shard's traces and are excluded, exactly like campaign
    journal fingerprints).  Execution knobs -- workers, retry policy,
    checkpointing, tracing, cache sharing, supervision budgets -- are
    excluded by design: a resumed study may run under different ones.
    """
    fault_plan = config.fault_plan
    data_plan = config.data_fault_plan
    return hashlib.sha256(
        repr(
            (
                "study-v1",
                world_scale,
                world_seed,
                config.seed,
                config.expansion_stride,
                config.crossval_folds,
                config.run_vpi,
                config.run_crossval,
                config.min_confidence,
                config.adaptive,
                config.breaker_threshold,
                config.recovery_rounds,
                fault_plan.probe_signature() if fault_plan else "clean",
                data_plan.to_spec() if data_plan else "clean",
            )
        ).encode()
    ).hexdigest()


class StageChain:
    """Rolling fingerprint over the stages executed so far.

    ``fingerprint(stage)`` is the identity a stage's checkpoint is
    stored (and validated) under; ``advance(stage, digest)`` folds the
    completed stage's payload digest into the chain, so any change to an
    upstream stage's output invalidates every downstream checkpoint.
    """

    def __init__(self, base: str) -> None:
        self._chain = base

    def fingerprint(self, stage: str) -> str:
        return hashlib.sha256(f"{self._chain}|{stage}".encode()).hexdigest()

    def advance(self, stage: str, digest: str) -> None:
        self._chain = hashlib.sha256(
            f"{self._chain}|{stage}|{digest}".encode()
        ).hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class StageStore:
    """One atomically-written checkpoint file per pipeline stage.

    Files live beside the campaign shard journals under the study's
    checkpoint directory.  ``resume=False`` clears leftovers from a
    previous run, mirroring ``CampaignCheckpoint``'s behaviour.  Reads
    are defensive: a torn, truncated, stale, or fingerprint-mismatched
    file yields ``None`` (recompute) -- never an exception.
    """

    def __init__(self, root: Union[str, Path], resume: bool = False) -> None:
        self.root = Path(root)
        self.resume = resume
        self.root.mkdir(parents=True, exist_ok=True)
        if not resume:
            for path in self.root.glob("stage_*.json"):
                path.unlink()

    def _path(self, stage: str) -> Path:
        return self.root / f"stage_{safe_name(stage, 'stage')}.json"

    def load(
        self, stage: str, fingerprint: str
    ) -> Optional[Tuple[Dict[str, Any], str]]:
        """The decoded payload and its digest, or ``None`` to recompute."""
        path = self._path(stage)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            return None  # torn or truncated write
        if (
            not isinstance(doc, dict)
            or doc.get("version") != _FORMAT_VERSION
            or doc.get("stage") != stage
            or doc.get("fingerprint") != fingerprint
        ):
            return None
        encoded = doc.get("payload")
        digest = doc.get("payload_digest")
        if not isinstance(digest, str) or payload_digest(encoded) != digest:
            return None  # bytes do not match their own checksum
        try:
            payload = decode(encoded)
        except DataError:
            return None
        if not isinstance(payload, dict):
            return None
        return payload, digest

    def save(self, stage: str, fingerprint: str, payload: Dict[str, Any]) -> str:
        """Atomically persist one stage's payload; returns its digest.

        temp-file + ``os.replace`` + fsync (file *and* directory): after
        this returns, a hard kill leaves either the complete new record
        or the previous state -- never a torn file.
        """
        encoded = encode(payload)
        digest = payload_digest(encoded)
        doc = {
            "version": _FORMAT_VERSION,
            "stage": stage,
            "fingerprint": fingerprint,
            "payload_digest": digest,
            "payload": encoded,
        }
        path = self._path(stage)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(self.root)
        return digest
