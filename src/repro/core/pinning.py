"""Iterative pinning of border interfaces (§6.1) and its regional fallback.

Starting from the anchor set, two co-presence rules propagate locations:

* **Rule 1 (alias sets)**: all interfaces of one router share a facility,
  so one pinned member pins the whole set;
* **Rule 2 (short interconnection segments)**: a segment whose two ends
  are within 2 ms of each other (min-RTT difference from the same closest
  VM) lies inside one metro, so one pinned end pins the other.

Propagation is conservative: an interface is pinned only when every pinned
neighbour agrees on the metro; conflicts are counted and skipped.  The
process runs to a fixpoint (the paper needed four rounds).

Interfaces still unpinned afterwards get the coarser *regional* treatment
of §6.1/Fig. 5: visible from a single region -> that region; ratio of the
two lowest region RTTs above 1.5 -> the closest region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.ip import IPv4
from repro.measure.ping import Pinger

#: Rule 2 threshold: the knee of Fig. 4b.
SHORT_SEGMENT_MS = 2.0
#: Fig. 5 threshold for regional assignment.
REGION_RTT_RATIO = 1.5


@dataclass(frozen=True)
class PinnedLocation:
    metro_code: str
    evidence: str            # "anchor" | "alias" | "rtt"
    round_index: int


@dataclass
class RegionalAssignment:
    region: str
    reason: str              # "single_region" | "rtt_ratio"
    ratio: Optional[float] = None


@dataclass
class PinningResult:
    """Everything §6 reports: metro pins, conflicts, regional fallback."""

    pinned: Dict[IPv4, PinnedLocation] = field(default_factory=dict)
    conflicts: Set[IPv4] = field(default_factory=set)
    rounds: int = 0
    pinned_by_alias: Set[IPv4] = field(default_factory=set)
    pinned_by_rtt: Set[IPv4] = field(default_factory=set)
    regional: Dict[IPv4, RegionalAssignment] = field(default_factory=dict)
    #: min-RTT ratios of unpinned multi-region interfaces (Fig. 5 series)
    rtt_ratios: List[float] = field(default_factory=list)
    #: pinned/assigned interfaces whose annotation confidence fell below
    #: the floor -- flagged, not removed, so pin counts are unchanged.
    low_confidence: Set[IPv4] = field(default_factory=set)

    def metro_of(self, ip: IPv4) -> Optional[str]:
        loc = self.pinned.get(ip)
        return loc.metro_code if loc else None

    def coverage(self, universe: Iterable[IPv4]) -> float:
        ips = list(universe)
        if not ips:
            return 0.0
        return sum(1 for ip in ips if ip in self.pinned) / len(ips)


class IterativePinner:
    """Runs anchor propagation over alias sets and short segments."""

    def __init__(
        self,
        anchors: Dict[IPv4, str],
        alias_sets: List[Set[IPv4]],
        segments: Iterable[Tuple[IPv4, IPv4]],
        segment_rtt_diff: Dict[Tuple[IPv4, IPv4], float],
        threshold_ms: float = SHORT_SEGMENT_MS,
        confidence: Optional[Dict[IPv4, float]] = None,
        min_confidence: float = 0.0,
    ) -> None:
        self.anchors = dict(anchors)
        self.alias_sets = [set(g) for g in alias_sets]
        self.segments = list(segments)
        self.segment_rtt_diff = dict(segment_rtt_diff)
        self.threshold_ms = threshold_ms
        self.confidence = dict(confidence or {})
        self.min_confidence = min_confidence

    # ------------------------------------------------------------------

    def run(self) -> PinningResult:
        result = PinningResult()
        for ip, metro in self.anchors.items():
            result.pinned[ip] = PinnedLocation(metro, "anchor", 0)

        short_segments = [
            seg
            for seg in self.segments
            if self.segment_rtt_diff.get(seg, float("inf")) < self.threshold_ms
        ]

        round_index = 0
        changed = True
        while changed:
            changed = False
            round_index += 1

            # Rule 1: alias sets.
            for group in self.alias_sets:
                metros = {
                    result.pinned[ip].metro_code for ip in group if ip in result.pinned
                }
                if len(metros) != 1:
                    if len(metros) > 1:
                        for ip in group:
                            if ip not in result.pinned:
                                result.conflicts.add(ip)
                    continue
                metro = next(iter(metros))
                for ip in group:
                    if ip not in result.pinned and ip not in result.conflicts:
                        result.pinned[ip] = PinnedLocation(metro, "alias", round_index)
                        result.pinned_by_alias.add(ip)
                        changed = True

            # Rule 2: short interconnection segments.
            for a, b in short_segments:
                loc_a, loc_b = result.pinned.get(a), result.pinned.get(b)
                if loc_a is None and loc_b is None:
                    continue
                if loc_a is not None and loc_b is not None:
                    continue
                known, unknown = (loc_a, b) if loc_a is not None else (loc_b, a)
                if unknown in result.conflicts:
                    continue
                # Unanimity: every pinned counterpart of `unknown` across
                # short segments must agree.
                suggestions = self._suggestions(unknown, short_segments, result)
                if len(suggestions) > 1:
                    result.conflicts.add(unknown)
                    continue
                result.pinned[unknown] = PinnedLocation(
                    known.metro_code, "rtt", round_index
                )
                result.pinned_by_rtt.add(unknown)
                changed = True

        result.rounds = round_index
        if self.min_confidence > 0.0:
            for ip in result.pinned:
                if self.confidence.get(ip, 1.0) < self.min_confidence:
                    result.low_confidence.add(ip)
        return result

    def _suggestions(
        self,
        ip: IPv4,
        short_segments: List[Tuple[IPv4, IPv4]],
        result: PinningResult,
    ) -> Set[str]:
        metros: Set[str] = set()
        for a, b in short_segments:
            other: Optional[IPv4] = None
            if a == ip:
                other = b
            elif b == ip:
                other = a
            if other is None:
                continue
            loc = result.pinned.get(other)
            if loc is not None:
                metros.add(loc.metro_code)
        return metros


def regional_fallback(
    result: PinningResult,
    unpinned: Iterable[IPv4],
    pinger: Pinger,
    cloud: str = "amazon",
    ratio_threshold: float = REGION_RTT_RATIO,
    confidence: Optional[Dict[IPv4, float]] = None,
    min_confidence: float = 0.0,
) -> None:
    """§6.1's coarser pass: assign unpinned interfaces to a region."""
    confidence = confidence or {}
    for ip in sorted(set(unpinned)):
        if ip in result.pinned:
            continue
        ranked = pinger.two_lowest(cloud, ip)
        if not ranked:
            continue
        if len(ranked) == 1:
            result.regional[ip] = RegionalAssignment(
                region=ranked[0][0], reason="single_region"
            )
        else:
            (r1, rtt1), (_r2, rtt2) = ranked
            ratio = rtt2 / rtt1 if rtt1 > 0 else float("inf")
            result.rtt_ratios.append(ratio)
            if ratio > ratio_threshold:
                result.regional[ip] = RegionalAssignment(
                    region=r1, reason="rtt_ratio", ratio=ratio
                )
        if (
            ip in result.regional
            and min_confidence > 0.0
            and confidence.get(ip, 1.0) < min_confidence
        ):
            result.low_confidence.add(ip)
