"""Virtual private interconnection detection (§7.1, Table 4).

A VPI is one client port on a cloud-exchange fabric carrying VLANs to
several cloud providers.  A CBI observed from two or more clouds must be
such a port.  The detector therefore:

1. builds a target pool from all identified non-IXP CBIs, each CBI's +1
   address, and the destinations of the traceroutes that discovered them;
2. probes the pool from every region of Microsoft, Google, IBM and Oracle,
   running the same §4 border inference on those traces;
3. intersects the CBI sets.

The result is an explicit *lower bound*: single-cloud VPIs, ports with
per-cloud response addresses, and private-address VPIs all stay invisible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Sequence, Set

from repro.net.ip import IPv4
from repro.core.annotate import HopAnnotator
from repro.core.borders import BorderObservatory
from repro.measure.campaign import CampaignStats, ProbeCampaign, vpi_target_pool
from repro.measure.checkpoint import CheckpointStore
from repro.measure.executor import RetryPolicy
from repro.measure.faults import FaultPlan
from repro.measure.metrics import CampaignProgress
from repro.measure.supervise import StudySupervisor
from repro.measure.traceroute import TracerouteEngine
from repro.obs.span import TracerLike
from repro.world.model import World

#: Probing order fixed by the paper's Table 4.
OTHER_CLOUD_ORDER = ("microsoft", "google", "ibm", "oracle")


@dataclass
class VPIDetectionResult:
    """Pairwise and cumulative overlaps (Table 4) and the VPI CBI set."""

    pool_size: int = 0
    amazon_cbis: int = 0
    #: cloud -> CBIs common between Amazon and that cloud
    pairwise: Dict[str, Set[IPv4]] = field(default_factory=dict)
    #: cloud -> union of overlaps up to and including that cloud
    cumulative: Dict[str, Set[IPv4]] = field(default_factory=dict)
    stats: Dict[str, CampaignStats] = field(default_factory=dict)

    @property
    def vpi_cbis(self) -> Set[IPv4]:
        if not self.cumulative:
            return set()
        return set(self.cumulative[OTHER_CLOUD_ORDER[-1]])

    def pairwise_fraction(self, cloud: str) -> float:
        if not self.amazon_cbis:
            return 0.0
        return len(self.pairwise.get(cloud, ())) / self.amazon_cbis

    def cumulative_fraction(self, cloud: str) -> float:
        if not self.amazon_cbis:
            return 0.0
        return len(self.cumulative.get(cloud, ())) / self.amazon_cbis


class VPIDetector:
    """Runs the multi-cloud overlap detection."""

    def __init__(
        self,
        world: World,
        annotators: Dict[str, HopAnnotator],
        engine: Optional[TracerouteEngine] = None,
        clouds: Sequence[str] = OTHER_CLOUD_ORDER,
        workers: int = 1,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        supervisor: Optional[StudySupervisor] = None,
    ) -> None:
        self.world = world
        self.annotators = annotators
        self.engine = engine or TracerouteEngine(world, faults=faults)
        self.clouds = list(clouds)
        self.workers = max(1, workers)
        self.faults = faults if faults is not None else self.engine.faults
        self.retry = retry
        self.checkpoint_store = checkpoint_store
        self.supervisor = supervisor

    def detect(
        self,
        amazon_cbis: Set[IPv4],
        ixp_cbis: Set[IPv4],
        discovery_dsts: Iterable[IPv4],
        progress_factory: Optional[Callable[[str], "CampaignProgress"]] = None,
        tracer: Optional[TracerLike] = None,
        worker_spans: bool = False,
    ) -> VPIDetectionResult:
        result = VPIDetectionResult()
        non_ixp = sorted(amazon_cbis - ixp_cbis)
        pool = vpi_target_pool(non_ixp, discovery_dsts)
        result.pool_size = len(pool)
        result.amazon_cbis = len(amazon_cbis)

        running: Set[IPv4] = set()
        for cloud in self.clouds:
            observatory = BorderObservatory(self.annotators[cloud])
            campaign = ProbeCampaign(
                self.world,
                self.engine,
                cloud=cloud,
                workers=self.workers,
                faults=self.faults,
                retry=self.retry,
                supervisor=self.supervisor,
            )
            stats = campaign.run(
                pool,
                observatory,
                progress=progress_factory(cloud) if progress_factory else None,
                checkpoint_store=self.checkpoint_store,
                checkpoint_label=f"vpi:{cloud}",
                tracer=tracer,
                worker_spans=worker_spans,
            )
            other_cbis = observatory.candidate_cbis()
            overlap = set(amazon_cbis) & other_cbis
            result.pairwise[cloud] = overlap
            running |= overlap
            result.cumulative[cloud] = set(running)
            result.stats[cloud] = stats
        return result
