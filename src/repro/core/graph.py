"""The Interface Connectivity Graph and its characterisation (§7.4).

The ICG is a bipartite graph whose nodes are border interfaces and whose
edges are inferred interconnection segments (ABI--CBI), annotated with the
min-RTT difference between the two ends from the ABI's closest VM.  §7.4
examines its connected components (92.3% of nodes in the largest one),
per-side degree distributions (Fig. 7a/7b), and the geography of edges
whose two ends are both pinned (98% intra-region, plus genuinely remote
peerings spanning continents).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.geo import MetroCatalog
from repro.net.ip import IPv4


@dataclass
class ICGSummary:
    node_count: int = 0
    edge_count: int = 0
    largest_component_fraction: float = 0.0
    component_count: int = 0
    abi_degrees: List[int] = field(default_factory=list)
    cbi_degrees: List[int] = field(default_factory=list)
    #: of edges with both ends pinned: fraction within one region
    both_pinned_edges: int = 0
    intra_region_fraction: float = 0.0
    #: (abi metro, cbi metro) pairs of inter-region edges
    remote_examples: List[Tuple[str, str]] = field(default_factory=list)


class InterfaceConnectivityGraph:
    """Bipartite ABI--CBI graph built from verified segments."""

    def __init__(
        self,
        segments: Iterable[Tuple[IPv4, IPv4]],
        rtt_diff: Optional[Dict[Tuple[IPv4, IPv4], float]] = None,
    ) -> None:
        self.edges: Set[Tuple[IPv4, IPv4]] = set(segments)
        self.rtt_diff = rtt_diff or {}
        self.abis: Set[IPv4] = {a for a, _c in self.edges}
        self.cbis: Set[IPv4] = {c for _a, c in self.edges}
        self._abi_neighbors: Dict[IPv4, Set[IPv4]] = {}
        self._cbi_neighbors: Dict[IPv4, Set[IPv4]] = {}
        for a, c in self.edges:
            self._abi_neighbors.setdefault(a, set()).add(c)
            self._cbi_neighbors.setdefault(c, set()).add(a)

    # ------------------------------------------------------------------

    def is_bipartite(self) -> bool:
        """ABIs and CBIs must be disjoint node sets."""
        return not (self.abis & self.cbis)

    def abi_degree(self, abi: IPv4) -> int:
        return len(self._abi_neighbors.get(abi, ()))

    def cbi_degree(self, cbi: IPv4) -> int:
        return len(self._cbi_neighbors.get(cbi, ()))

    def components(self) -> List[Set[IPv4]]:
        """Connected components over all border interfaces."""
        parent: Dict[IPv4, IPv4] = {}

        def find(x: IPv4) -> IPv4:
            root = x
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for a, c in self.edges:
            ra, rc = find(a), find(c)
            if ra != rc:
                parent[rc] = ra
        groups: Dict[IPv4, Set[IPv4]] = {}
        for node in list(self.abis | self.cbis):
            groups.setdefault(find(node), set()).add(node)
        return sorted(groups.values(), key=len, reverse=True)

    # ------------------------------------------------------------------

    def summarize(
        self,
        pinned_metro: Optional[Dict[IPv4, str]] = None,
        catalog: Optional[MetroCatalog] = None,
        region_metros: Optional[List[str]] = None,
    ) -> ICGSummary:
        summary = ICGSummary(
            node_count=len(self.abis | self.cbis),
            edge_count=len(self.edges),
            abi_degrees=sorted(
                (self.abi_degree(a) for a in self.abis), reverse=True
            ),
            cbi_degrees=sorted(
                (self.cbi_degree(c) for c in self.cbis), reverse=True
            ),
        )
        components = self.components()
        summary.component_count = len(components)
        if components and summary.node_count:
            summary.largest_component_fraction = len(components[0]) / summary.node_count

        if pinned_metro and catalog and region_metros:
            region_of = _RegionOfMetro(catalog, region_metros)
            both = intra = 0
            for a, c in self.edges:
                ma, mc = pinned_metro.get(a), pinned_metro.get(c)
                if ma is None or mc is None:
                    continue
                both += 1
                if region_of(ma) == region_of(mc):
                    intra += 1
                elif len(summary.remote_examples) < 20:
                    summary.remote_examples.append((ma, mc))
            summary.both_pinned_edges = both
            summary.intra_region_fraction = intra / both if both else 0.0
        return summary


class _RegionOfMetro:
    """Maps a metro to its closest Amazon-region metro (memoised)."""

    def __init__(self, catalog: MetroCatalog, region_metros: List[str]) -> None:
        self.catalog = catalog
        self.region_metros = region_metros
        self._cache: Dict[str, str] = {}

    def __call__(self, metro: str) -> str:
        cached = self._cache.get(metro)
        if cached is None:
            cached = min(
                self.region_metros,
                key=lambda rm: self.catalog.distance_km(metro, rm),
            )
            self._cache[metro] = cached
        return cached


def degree_cdf(degrees: List[int]) -> List[Tuple[int, float]]:
    """(degree, cumulative fraction <= degree) points for Fig. 7."""
    if not degrees:
        return []
    ordered = sorted(degrees)
    n = len(ordered)
    points: List[Tuple[int, float]] = []
    for i, d in enumerate(ordered, start=1):
        if i == n or ordered[i] != d:
            points.append((d, i / n))
    return points
