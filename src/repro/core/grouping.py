"""Grouping Amazon's inferred peerings by their key attributes (§7.2-7.3).

Each inferred interconnection segment gets three attributes:

* **public/private** -- is the CBI inside an IXP prefix;
* **BGP-visible** -- does the Amazon<->peer AS link appear in the public
  relationship data;
* **virtual/physical** -- was the CBI identified as a VPI port (§7.1;
  private peerings only).

The six resulting groups (Table 5), the hybrid-peering census over exact
type combinations (Table 6), the hidden-peering share, and the per-group
feature distributions of Fig. 6 are all computed here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPv4
from repro.core.borders import BorderObservatory
from repro.datasets.relationships import ASRelationships
from repro.world.profiles import (
    ALL_GROUPS,
    PB_B,
    PB_NB,
    PR_B_NV,
    PR_B_V,
    PR_NB_NV,
    PR_NB_V,
)

#: Groups hidden from conventional measurement (§7.2 "Hidden Peerings"):
#: virtual peerings plus private peerings absent from BGP.  (§7.2's prose
#: also lists Pb-nB, but the paper's 33.29% figure matches the AS share of
#: these three groups; public peerings are at least visible at IXPs.)
HIDDEN_GROUPS = (PR_NB_V, PR_NB_NV, PR_B_V)


@dataclass
class PeeringRecord:
    """One inferred (peer AS, group) peering with its interfaces."""

    peer_asn: ASN
    group: str
    cbis: Set[IPv4] = field(default_factory=set)
    abis: Set[IPv4] = field(default_factory=set)
    reachable_slash24s: Set[int] = field(default_factory=set)
    rtt_diffs: List[float] = field(default_factory=list)
    metros: Set[str] = field(default_factory=set)


@dataclass
class GroupingResult:
    """Table 5/6 style views over the peering records."""

    #: (peer_asn, group) -> record
    records: Dict[Tuple[ASN, str], PeeringRecord] = field(default_factory=dict)
    #: peer_asn -> set of groups (hybrid profile)
    profiles: Dict[ASN, FrozenSet[str]] = field(default_factory=dict)

    # -- Table 5 -----------------------------------------------------------

    def ases_in_group(self, group: str) -> Set[ASN]:
        return {asn for (asn, g) in self.records if g == group}

    def cbis_in_group(self, group: str) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for (asn, g), rec in self.records.items():
            if g == group:
                out.update(rec.cbis)
        return out

    def abis_in_group(self, group: str) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for (asn, g), rec in self.records.items():
            if g == group:
                out.update(rec.abis)
        return out

    def all_ases(self) -> Set[ASN]:
        return set(self.profiles)

    def all_cbis(self) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for rec in self.records.values():
            out.update(rec.cbis)
        return out

    def all_abis(self) -> Set[IPv4]:
        out: Set[IPv4] = set()
        for rec in self.records.values():
            out.update(rec.abis)
        return out

    # -- Table 6 -----------------------------------------------------------

    def hybrid_census(self) -> Dict[FrozenSet[str], int]:
        census: Counter = Counter()
        for profile in self.profiles.values():
            census[profile] += 1
        return dict(census)

    # -- §7.2 hidden share ---------------------------------------------------

    def hidden_fraction(self) -> float:
        """Share of peer ASes with at least one hidden peering (§7.2)."""
        total = len(self.profiles)
        if not total:
            return 0.0
        hidden = sum(
            1
            for profile in self.profiles.values()
            if profile & set(HIDDEN_GROUPS)
        )
        return hidden / total

    # -- Fig. 6 features -------------------------------------------------------

    def group_features(
        self, relationships: ASRelationships
    ) -> Dict[str, Dict[str, List[float]]]:
        """Per-group feature samples: one value per (AS, group) record."""
        features: Dict[str, Dict[str, List[float]]] = {
            g: {
                "bgp_slash24": [],
                "reachable_slash24": [],
                "abis": [],
                "cbis": [],
                "rtt_diff": [],
                "metros": [],
            }
            for g in ALL_GROUPS
        }
        for (asn, group), rec in self.records.items():
            bucket = features[group]
            bucket["bgp_slash24"].append(float(relationships.cone_slash24(asn)))
            bucket["reachable_slash24"].append(float(len(rec.reachable_slash24s)))
            bucket["abis"].append(float(len(rec.abis)))
            bucket["cbis"].append(float(len(rec.cbis)))
            bucket["rtt_diff"].extend(rec.rtt_diffs)
            bucket["metros"].append(float(len(rec.metros)))
        return features


def classify_group(is_public: bool, in_bgp: bool, is_virtual: bool) -> str:
    """Map the three §7.2 attributes to a Table 5 label."""
    if is_public:
        return PB_B if in_bgp else PB_NB
    if in_bgp:
        return PR_B_V if is_virtual else PR_B_NV
    return PR_NB_V if is_virtual else PR_NB_NV


class PeeringGrouper:
    """Builds peering records from the verified segments."""

    def __init__(
        self,
        observatory: BorderObservatory,
        relationships: ASRelationships,
        vpi_cbis: Set[IPv4],
        router_owner: Optional[Dict[IPv4, ASN]] = None,
        home_asns: Optional[Set[ASN]] = None,
    ) -> None:
        self.observatory = observatory
        self.relationships = relationships
        self.vpi_cbis = set(vpi_cbis)
        self.router_owner = router_owner or {}
        self.home_asns = home_asns or set()

    # ------------------------------------------------------------------

    def peer_asn_of(self, cbi: IPv4) -> Optional[ASN]:
        """The peer AS behind a CBI.

        Preference order: the alias-resolved router owner (it survives the
        Fig. 2 address-sharing case), then the address's own annotation,
        then the dominant successor's AS.
        """
        owner = self.router_owner.get(cbi)
        if owner is not None and owner not in self.home_asns and owner != 0:
            return owner
        ann = self.observatory.annotator.annotate(cbi)
        if ann.asn and ann.asn not in self.home_asns:
            return ann.asn
        successors = self.observatory.successors.get(cbi)
        if successors:
            for nxt, _count in successors.most_common():
                nxt_ann = self.observatory.annotator.annotate(nxt)
                if nxt_ann.asn and nxt_ann.asn not in self.home_asns:
                    return nxt_ann.asn
        return None

    # ------------------------------------------------------------------

    def group(
        self,
        segments: Iterable[Tuple[IPv4, IPv4]],
        amazon_bgp_peers: Set[ASN],
        pinned_metro: Optional[Dict[IPv4, str]] = None,
        rtt_diff: Optional[Dict[Tuple[IPv4, IPv4], float]] = None,
    ) -> GroupingResult:
        result = GroupingResult()
        annotate = self.observatory.annotator.annotate
        pinned_metro = pinned_metro or {}
        rtt_diff = rtt_diff or {}

        for abi, cbi in sorted(segments):
            peer = self.peer_asn_of(cbi)
            if peer is None:
                continue
            ann = annotate(cbi)
            is_public = ann.is_ixp
            in_bgp = peer in amazon_bgp_peers
            is_virtual = (not is_public) and cbi in self.vpi_cbis
            label = classify_group(is_public, in_bgp, is_virtual)

            key = (peer, label)
            rec = result.records.get(key)
            if rec is None:
                rec = PeeringRecord(peer_asn=peer, group=label)
                result.records[key] = rec
            rec.cbis.add(cbi)
            rec.abis.add(abi)
            seg_rec = self.observatory.segments.get((abi, cbi))
            if seg_rec is not None:
                rec.reachable_slash24s.update(seg_rec.dst_slash24s)
            diff = rtt_diff.get((abi, cbi))
            if diff is not None:
                rec.rtt_diffs.append(diff)
            metro = pinned_metro.get(cbi)
            if metro is not None:
                rec.metros.add(metro)

        for (asn, g) in result.records:
            old = result.profiles.get(asn, frozenset())
            result.profiles[asn] = old | {g}
        return result
