"""The paper's contribution: border inference, verification, pinning,
VPI detection, peering grouping, and graph characterisation."""

from repro.core.aliasverify import AliasVerifier, VerificationResult, analyze_ownership
from repro.core.anchors import AnchorBuilder, AnchorSet
from repro.core.annotate import AnnotationSource, HopAnnotation, HopAnnotator
from repro.core.borders import BorderObservatory, DropReason, SegmentRecord
from repro.core.crossval import CrossValidationResult, cross_validate_pinning
from repro.core.dnsgeo import DNSGeoParser, has_vlan_tag, has_vpi_keywords, vpi_evidence
from repro.core.graph import ICGSummary, InterfaceConnectivityGraph, degree_cdf
from repro.core.grouping import (
    GroupingResult,
    HIDDEN_GROUPS,
    PeeringGrouper,
    PeeringRecord,
    classify_group,
)
from repro.core.heuristics import HeuristicOutcome, SegmentVerifier
from repro.core.pinning import (
    IterativePinner,
    PinnedLocation,
    PinningResult,
    regional_fallback,
)
from repro.core.pipeline import AmazonPeeringStudy
from repro.core.results import InterfaceCensus, StudyResult
from repro.core.vpi import VPIDetectionResult, VPIDetector

__all__ = [
    "AliasVerifier",
    "AmazonPeeringStudy",
    "AnchorBuilder",
    "AnchorSet",
    "AnnotationSource",
    "BorderObservatory",
    "CrossValidationResult",
    "DNSGeoParser",
    "DropReason",
    "GroupingResult",
    "HIDDEN_GROUPS",
    "HeuristicOutcome",
    "HopAnnotation",
    "HopAnnotator",
    "ICGSummary",
    "InterfaceCensus",
    "InterfaceConnectivityGraph",
    "IterativePinner",
    "PeeringGrouper",
    "PeeringRecord",
    "PinnedLocation",
    "PinningResult",
    "SegmentRecord",
    "SegmentVerifier",
    "StudyResult",
    "VPIDetectionResult",
    "VPIDetector",
    "VerificationResult",
    "analyze_ownership",
    "classify_group",
    "cross_validate_pinning",
    "degree_cdf",
    "has_vlan_tag",
    "has_vpi_keywords",
    "regional_fallback",
    "vpi_evidence",
]
