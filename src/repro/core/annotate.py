"""Hop annotation: ASN, organization, and IXP membership (§3).

Every observed hop address is annotated with

* its origin **ASN** from the round's BGP snapshot, falling back to WHOIS
  for public-but-unannounced space, and AS0 for private/shared space;
* its **ORG** from the as2org dataset (so Amazon's eight sibling ASNs
  collapse into one organization);
* whether it belongs to an **IXP prefix** (PeeringDB + PCH + CAIDA merge).

Annotation is pure inference-side code: it sees datasets and addresses,
never the world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.asn import AMAZON_ORG_ID, ASN
from repro.net.ip import IPv4, is_private, is_shared
from repro.datasets.as2org import AS2Org
from repro.datasets.bgp import BGPSnapshot
from repro.datasets.ixp import IXPDirectory
from repro.datasets.whois import WhoisRegistry


class AnnotationSource:
    """Where the ASN mapping came from (string enum; Table 1 columns)."""

    BGP = "bgp"
    WHOIS = "whois"
    IXP = "ixp"
    PRIVATE = "private"
    NONE = "none"


@dataclass(frozen=True)
class HopAnnotation:
    """Annotation of one hop address."""

    ip: IPv4
    asn: ASN                  # 0 when unmapped
    org: Optional[str]        # organization id; None when unmapped
    is_ixp: bool
    ixp_id: Optional[int]
    source: str               # AnnotationSource value


class HopAnnotator:
    """Annotates addresses against one BGP snapshot round."""

    def __init__(
        self,
        bgp: BGPSnapshot,
        whois: WhoisRegistry,
        as2org: AS2Org,
        ixps: IXPDirectory,
        home_org: str = AMAZON_ORG_ID,
    ) -> None:
        self.bgp = bgp
        self.whois = whois
        self.as2org = as2org
        self.ixps = ixps
        self.home_org = home_org
        self._cache: Dict[IPv4, HopAnnotation] = {}

    def annotate(self, ip: IPv4) -> HopAnnotation:
        cached = self._cache.get(ip)
        if cached is not None:
            return cached
        ann = self._compute(ip)
        self._cache[ip] = ann
        return ann

    def _compute(self, ip: IPv4) -> HopAnnotation:
        ixp_id = self.ixps.ixp_of(ip)
        if ixp_id is not None:
            member = self.ixps.member_asn(ip)
            asn = member if member is not None else 0
            org = self._org_of(asn) if asn else f"IXP-{ixp_id}"
            return HopAnnotation(
                ip=ip, asn=asn, org=org, is_ixp=True, ixp_id=ixp_id,
                source=AnnotationSource.IXP,
            )
        if is_private(ip) or is_shared(ip):
            return HopAnnotation(
                ip=ip, asn=0, org=None, is_ixp=False, ixp_id=None,
                source=AnnotationSource.PRIVATE,
            )
        asn = self.bgp.origin_of(ip)
        if asn is not None:
            return HopAnnotation(
                ip=ip, asn=asn, org=self._org_of(asn), is_ixp=False,
                ixp_id=None, source=AnnotationSource.BGP,
            )
        whois_asn = self.whois.owner_asn(ip)
        if whois_asn is not None:
            return HopAnnotation(
                ip=ip, asn=whois_asn, org=self._org_of(whois_asn),
                is_ixp=False, ixp_id=None, source=AnnotationSource.WHOIS,
            )
        record = self.whois.lookup(ip)
        if record is not None:
            # WHOIS knows the holder name but no ASN: still enough to tell
            # whose network the hop is in (clouds are recognisable by name).
            from repro.net.asn import CLOUD_ORG_IDS

            org = CLOUD_ORG_IDS.get(record.holder_name, f"WHOIS-{record.holder_name}")
            return HopAnnotation(
                ip=ip, asn=0, org=org,
                is_ixp=False, ixp_id=None, source=AnnotationSource.WHOIS,
            )
        return HopAnnotation(
            ip=ip, asn=0, org=None, is_ixp=False, ixp_id=None,
            source=AnnotationSource.NONE,
        )

    def _org_of(self, asn: ASN) -> str:
        org = self.as2org.org_of(asn)
        return org if org is not None else f"ORG-AS{asn}"

    # ------------------------------------------------------------------

    def is_home(self, ann: HopAnnotation) -> bool:
        """Does the hop belong to the home (probing) organization?"""
        return ann.org == self.home_org

    def is_border_candidate(self, ann: HopAnnotation) -> bool:
        """§4.1: a hop whose ORG is neither unknown (0) nor the home org.

        IXP addresses always count: they belong to a specific member.
        """
        if ann.is_ixp:
            return True
        if ann.org is None:
            return False
        return ann.org != self.home_org
