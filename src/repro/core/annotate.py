"""Hop annotation: ASN, organization, and IXP membership (§3).

Every observed hop address is annotated by walking an explicit **fallback
chain** over the public datasets:

1. **IXP** membership (PeeringDB + PCH + CAIDA merge) -- an address on a
   peering LAN belongs to a specific member;
2. **private/shared** space -- unmappable by construction;
3. **BGP** longest-prefix match against the round's snapshot;
4. **WHOIS** for public-but-unannounced space (the paper's 7%), first for
   a registered ASN, then for a name-only record;
5. **none** -- nothing knows the address.

The chain records its *provenance*: which sources were consulted, which
disagreed (MOAS origins, IXP sources conflicting on a member ASN, a
member ASN whose org differs from the BGP origin's, a WHOIS owner whose
org differs from the BGP origin's), and a confidence score.  Confidence
is additive metadata: the *selected* ASN/ORG is unchanged from the
classic chain, so clean-run inference outputs (and the study digest) are
identical -- but downstream stages can flag low-confidence inferences
instead of silently counting them.

Annotation is pure inference-side code: it sees datasets and addresses,
never the world.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.asn import AMAZON_ORG_ID, ASN
from repro.net.ip import IPv4, is_private_or_shared
from repro.datasets.as2org import AS2Org
from repro.datasets.bgp import BGPSnapshot
from repro.datasets.ixp import IXPDirectory
from repro.datasets.whois import WhoisRegistry


class AnnotationSource:
    """Where the ASN mapping came from (string enum; Table 1 columns)."""

    BGP = "bgp"
    WHOIS = "whois"
    IXP = "ixp"
    PRIVATE = "private"
    NONE = "none"


class Disagreement:
    """Inter-source disagreement labels recorded on annotations."""

    BGP_MOAS = "bgp-moas"
    BGP_VS_WHOIS = "bgp-vs-whois"
    IXP_SOURCE_CONFLICT = "ixp-source-conflict"
    IXP_VS_BGP = "ixp-vs-bgp"


#: Base confidence per annotation source.
CONF_PRIVATE = 1.0
CONF_IXP_MEMBER = 0.9
CONF_IXP_NO_MEMBER = 0.5
CONF_BGP = 0.95
CONF_WHOIS_ASN = 0.7
CONF_WHOIS_NAME_ONLY = 0.5
CONF_NONE = 0.0
#: Multiplicative penalty applied per recorded disagreement.
DISAGREEMENT_PENALTY = 0.6


@dataclass(frozen=True)
class HopAnnotation:
    """Annotation of one hop address, with provenance."""

    ip: IPv4
    asn: ASN                  # 0 when unmapped
    org: Optional[str]        # organization id; None when unmapped
    is_ixp: bool
    ixp_id: Optional[int]
    source: str               # AnnotationSource value
    #: base source confidence, discounted per disagreement.
    confidence: float = 1.0
    #: datasets consulted while walking the fallback chain, in order.
    sources_consulted: Tuple[str, ...] = ()
    #: Disagreement labels for sources that contradicted each other.
    disagreements: Tuple[str, ...] = ()


class AnnotationInternPool:
    """Content-keyed intern pool: one object per distinct annotation value.

    The r1, r2, and per-cloud annotators mostly agree on any given
    address (origins rarely move between rounds), so identical
    :class:`HopAnnotation` values collapse to a single shared instance
    instead of one allocation per annotator per round.  Purely a memory
    / allocation optimization: interning is keyed by the full frozen
    content, so it can never change what any caller observes.
    """

    def __init__(self) -> None:
        self._pool: Dict[Tuple, HopAnnotation] = {}
        #: lookups answered with an already-pooled instance.
        self.hits: int = 0

    def intern(self, ann: HopAnnotation) -> HopAnnotation:
        key = astuple(ann)
        found = self._pool.get(key)
        if found is not None:
            self.hits += 1
            return found
        self._pool[key] = ann
        return ann

    def __len__(self) -> int:
        return len(self._pool)

    def clear(self) -> None:
        self._pool.clear()
        self.hits = 0


#: Process-wide default pool.  Shared across every annotator unless a
#: caller supplies its own; bounded by the number of *distinct*
#: annotation values ever computed, which scale keeps small.
GLOBAL_INTERN_POOL = AnnotationInternPool()


class AnnotationCache:
    """A read-only-after-warm annotation cache shareable across annotators.

    One cache may back several :class:`HopAnnotator` instances **as long
    as they annotate against the same datasets** -- ``home_org`` is
    deliberately not part of the identity because it never influences
    annotation content (only the ``is_home`` / border predicates).  The
    pipeline shares one cache across the round-2 annotator and every
    per-cloud VPI annotator, so an address annotated in the expansion
    campaign is never recomputed in the VPI stage.

    ``bind`` enforces the same-datasets contract: the first annotator
    binds its dataset identity, and any annotator over different
    datasets is rejected loudly instead of silently cross-reading.
    """

    def __init__(self, intern_pool: Optional[AnnotationInternPool] = None) -> None:
        self._by_ip: Dict[IPv4, HopAnnotation] = {}
        self._pool = intern_pool if intern_pool is not None else GLOBAL_INTERN_POOL
        self._dataset_key: Optional[Tuple[int, int, int, int]] = None

    def bind(self, dataset_key: Tuple[int, int, int, int]) -> None:
        if self._dataset_key is None:
            self._dataset_key = dataset_key
        elif self._dataset_key != dataset_key:
            raise ValueError(
                "AnnotationCache shared across annotators with different "
                "datasets; give each dataset family its own cache"
            )

    def get(self, ip: IPv4) -> Optional[HopAnnotation]:
        return self._by_ip.get(ip)

    def put(self, ip: IPv4, ann: HopAnnotation) -> HopAnnotation:
        ann = self._pool.intern(ann)
        self._by_ip[ip] = ann
        return ann

    def __len__(self) -> int:
        return len(self._by_ip)


class HopAnnotator:
    """Annotates addresses against one BGP snapshot round.

    ``cache`` lets several annotators over the *same* datasets share one
    :class:`AnnotationCache` (and its interned annotations); by default
    each annotator gets a private cache, preserving the historical
    behaviour.
    """

    def __init__(
        self,
        bgp: BGPSnapshot,
        whois: WhoisRegistry,
        as2org: AS2Org,
        ixps: IXPDirectory,
        home_org: str = AMAZON_ORG_ID,
        cache: Optional[AnnotationCache] = None,
    ) -> None:
        self.bgp = bgp
        self.whois = whois
        self.as2org = as2org
        self.ixps = ixps
        self.home_org = home_org
        self._cache = cache if cache is not None else AnnotationCache()
        self._cache.bind((id(bgp), id(whois), id(as2org), id(ixps)))
        # Observability counters (attached to the study span by the
        # pipeline); pure bookkeeping, never read back by inference.
        self.cache_hits: int = 0
        self.cache_misses: int = 0
        #: summed fallback-chain depth (len(sources_consulted)) over
        #: every cache miss, for mean-depth reporting.
        self.fallback_depth_total: int = 0
        #: disagreement labels recorded across all computed annotations.
        self.disagreement_flags: int = 0

    def annotate(self, ip: IPv4) -> HopAnnotation:
        cached = self._cache.get(ip)
        if cached is not None:
            self.cache_hits += 1
            return cached
        ann = self._cache.put(ip, self._compute(ip))
        self.cache_misses += 1
        self.fallback_depth_total += len(ann.sources_consulted)
        self.disagreement_flags += len(ann.disagreements)
        return ann

    def _compute(self, ip: IPv4) -> HopAnnotation:
        consulted: List[str] = [AnnotationSource.IXP]
        disagreements: List[str] = []

        ixp_id = self.ixps.ixp_of(ip)
        if ixp_id is not None:
            member = self.ixps.member_asn(ip)
            if self.ixps.member_conflict(ip) is not None:
                disagreements.append(Disagreement.IXP_SOURCE_CONFLICT)
            if member is not None:
                asn = member
                org = self._org_of(member)
                base = CONF_IXP_MEMBER
                # Cross-check: does BGP route the member address under
                # the same organization as the directory's member ASN?
                consulted.append(AnnotationSource.BGP)
                bgp_origin = self.bgp.origin_of(ip)
                if bgp_origin is not None and self._org_of(bgp_origin) != org:
                    disagreements.append(Disagreement.IXP_VS_BGP)
            else:
                asn = 0
                org = f"IXP-{ixp_id}"
                base = CONF_IXP_NO_MEMBER
            return self._finish(
                ip, asn, org, True, ixp_id, AnnotationSource.IXP,
                base, consulted, disagreements,
            )

        consulted.append(AnnotationSource.PRIVATE)
        if is_private_or_shared(ip):
            return self._finish(
                ip, 0, None, False, None, AnnotationSource.PRIVATE,
                CONF_PRIVATE, consulted, disagreements,
            )

        consulted.append(AnnotationSource.BGP)
        origin = self.bgp.origin_of(ip)
        if origin is not None:
            if self.bgp.is_moas(ip):
                disagreements.append(Disagreement.BGP_MOAS)
            # Cross-check WHOIS; safe because WHOIS draws are keyed per
            # /24, so the extra lookup can never perturb later lookups.
            consulted.append(AnnotationSource.WHOIS)
            whois_asn = self.whois.owner_asn(ip)
            if whois_asn is not None and self._org_of(whois_asn) != self._org_of(origin):
                disagreements.append(Disagreement.BGP_VS_WHOIS)
            return self._finish(
                ip, origin, self._org_of(origin), False, None,
                AnnotationSource.BGP, CONF_BGP, consulted, disagreements,
            )

        consulted.append(AnnotationSource.WHOIS)
        whois_asn = self.whois.owner_asn(ip)
        if whois_asn is not None:
            return self._finish(
                ip, whois_asn, self._org_of(whois_asn), False, None,
                AnnotationSource.WHOIS, CONF_WHOIS_ASN, consulted, disagreements,
            )
        record = self.whois.lookup(ip)
        if record is not None:
            # WHOIS knows the holder name but no ASN: still enough to tell
            # whose network the hop is in (clouds are recognisable by name).
            from repro.net.asn import CLOUD_ORG_IDS

            org = CLOUD_ORG_IDS.get(record.holder_name, f"WHOIS-{record.holder_name}")
            return self._finish(
                ip, 0, org, False, None, AnnotationSource.WHOIS,
                CONF_WHOIS_NAME_ONLY, consulted, disagreements,
            )
        return self._finish(
            ip, 0, None, False, None, AnnotationSource.NONE,
            CONF_NONE, consulted, disagreements,
        )

    def _finish(
        self,
        ip: IPv4,
        asn: ASN,
        org: Optional[str],
        is_ixp: bool,
        ixp_id: Optional[int],
        source: str,
        base_confidence: float,
        consulted: List[str],
        disagreements: List[str],
    ) -> HopAnnotation:
        confidence = round(
            base_confidence * DISAGREEMENT_PENALTY ** len(disagreements), 6
        )
        return HopAnnotation(
            ip=ip,
            asn=asn,
            org=org,
            is_ixp=is_ixp,
            ixp_id=ixp_id,
            source=source,
            confidence=confidence,
            sources_consulted=tuple(consulted),
            disagreements=tuple(disagreements),
        )

    def _org_of(self, asn: ASN) -> str:
        org = self.as2org.org_of(asn)
        return org if org is not None else f"ORG-AS{asn}"

    # ------------------------------------------------------------------

    def is_home(self, ann: HopAnnotation) -> bool:
        """Does the hop belong to the home (probing) organization?"""
        return ann.org == self.home_org

    def is_border_candidate(self, ann: HopAnnotation) -> bool:
        """§4.1: a hop whose ORG is neither unknown (0) nor the home org.

        IXP addresses always count: they belong to a specific member.
        """
        if ann.is_ixp:
            return True
        if ann.org is None:
            return False
        return ann.org != self.home_org
