"""Alias-set verification of interconnection segments (§5.2).

MIDAR-style alias sets group interfaces onto routers.  The AS that owns a
clear majority of a set's addresses is taken as the router's owner, and
every candidate segment is checked: its ABI must sit on an Amazon-owned
router and its CBI on a client-owned router.  Inconsistent interfaces are
relabelled (ABI->CBI, CBI->ABI, or CBI->CBI when the interface turns out
to belong to a different client), and the segment is shifted accordingly
-- resolving the Fig. 2 ambiguity that the §5.1 heuristics could not.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPv4
from repro.core.annotate import HopAnnotator
from repro.core.borders import BorderObservatory


@dataclass
class AliasOwnership:
    """Majority-owner analysis of the alias sets."""

    sets: List[Set[IPv4]]
    owner_of_set: List[Optional[ASN]]
    majority_over_half: int = 0
    unanimous: int = 0
    undecided_interfaces: int = 0

    @property
    def set_count(self) -> int:
        return len(self.sets)

    def owner_of_ip(self) -> Dict[IPv4, ASN]:
        out: Dict[IPv4, ASN] = {}
        for group, owner in zip(self.sets, self.owner_of_set):
            if owner is None:
                continue
            for ip in group:
                out[ip] = owner
        return out


@dataclass
class VerificationResult:
    """Corrected segments plus the §5.2 bookkeeping numbers."""

    final_segments: Set[Tuple[IPv4, IPv4]]
    abis: Set[IPv4] = field(default_factory=set)
    cbis: Set[IPv4] = field(default_factory=set)
    changed_abi_to_cbi: int = 0
    changed_cbi_to_abi: int = 0
    changed_cbi_to_cbi: int = 0
    ownership: Optional[AliasOwnership] = None

    @property
    def total_changes(self) -> int:
        return self.changed_abi_to_cbi + self.changed_cbi_to_abi + self.changed_cbi_to_cbi


def analyze_ownership(
    alias_sets: List[Set[IPv4]], annotator: HopAnnotator
) -> AliasOwnership:
    """Majority AS owner per alias set (>50% of its interfaces)."""
    owners: List[Optional[ASN]] = []
    over_half = unanimous = undecided = 0
    for group in alias_sets:
        votes: Counter = Counter()
        for ip in group:
            ann = annotator.annotate(ip)
            if ann.asn:
                votes[ann.asn] += 1
        owner: Optional[ASN] = None
        if votes:
            top_asn, top_count = votes.most_common(1)[0]
            if top_count * 2 > len(group):
                owner = top_asn
                over_half += 1
                if top_count == len(group):
                    unanimous += 1
            else:
                undecided += len(group)
        else:
            undecided += len(group)
        owners.append(owner)
    return AliasOwnership(
        sets=alias_sets,
        owner_of_set=owners,
        majority_over_half=over_half,
        unanimous=unanimous,
        undecided_interfaces=undecided,
    )


class AliasVerifier:
    """Applies router-ownership consistency to the candidate segments."""

    def __init__(
        self,
        observatory: BorderObservatory,
        home_asns: Set[ASN],
    ) -> None:
        self.observatory = observatory
        self.home_asns = set(home_asns)

    def verify(self, alias_sets: List[Set[IPv4]]) -> VerificationResult:
        annotator = self.observatory.annotator
        ownership = analyze_ownership(alias_sets, annotator)
        router_owner = ownership.owner_of_ip()

        final: Set[Tuple[IPv4, IPv4]] = set()
        abi_to_cbi = cbi_to_abi = cbi_to_cbi = 0

        for (abi, cbi), record in sorted(self.observatory.segments.items()):
            abi_owner = router_owner.get(abi)
            cbi_owner = router_owner.get(cbi)
            abi_is_home = abi_owner in self.home_asns if abi_owner is not None else None
            cbi_is_home = cbi_owner in self.home_asns if cbi_owner is not None else None

            if abi_is_home is False:
                # The "ABI" sits on a client router: the true segment is one
                # hop upstream (Fig. 2 bottom row).  The previous hop, when
                # known, becomes the ABI and the old ABI becomes the CBI.
                abi_to_cbi += 1
                prev = record.prev_ips.most_common(1)
                if prev:
                    final.add((prev[0][0], abi))
                else:
                    final.add((abi, cbi))
                continue
            if cbi_is_home is True:
                # The "CBI" is on an Amazon router (third-party response of
                # a client-provided provider-side address): the segment
                # actually starts here.
                cbi_to_abi += 1
                final.add((cbi, self._downstream_of(cbi) or cbi))
                continue
            expected = annotator.annotate(cbi).asn
            if (
                cbi_owner is not None
                and expected
                and cbi_owner != expected
                and cbi_owner not in self.home_asns
            ):
                # CBI -> CBI: the interface belongs to a different client.
                cbi_to_cbi += 1
            final.add((abi, cbi))

        result = VerificationResult(
            final_segments=final,
            abis={a for a, _c in final},
            cbis={c for _a, c in final},
            changed_abi_to_cbi=abi_to_cbi,
            changed_cbi_to_abi=cbi_to_abi,
            changed_cbi_to_cbi=cbi_to_cbi,
            ownership=ownership,
        )
        return result

    def _downstream_of(self, ip: IPv4) -> Optional[IPv4]:
        successors = self.observatory.successors.get(ip)
        if not successors:
            return None
        return successors.most_common(1)[0][0]
