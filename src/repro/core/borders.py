"""Basic border-inference strategy over traceroute streams (§4.1).

:class:`BorderObservatory` ingests traceroutes one at a time, applies the
paper's hygiene filters, finds the candidate interconnection segment
(ABI, CBI), and accumulates everything later stages need -- all without
retaining raw traces, so campaigns of millions of probes stay in bounded
memory.

Hygiene (§4.1): traceroutes are discarded when they contain an IP-level
loop, unresponsive hop(s) before Amazon's border, the CBI as the probe's
destination, duplicate hops before the border, or when they re-enter the
home network downstream of the CBI.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.ip import IPv4
from repro.core.annotate import HopAnnotation, HopAnnotator
from repro.measure.traceroute import Traceroute


class DropReason:
    """Why a traceroute was excluded (string enum)."""

    LOOP = "loop"
    GAP_BEFORE_BORDER = "gap_before_border"
    CBI_IS_DESTINATION = "cbi_is_destination"
    DUPLICATE_BEFORE_BORDER = "duplicate_before_border"
    REENTERS_HOME = "reenters_home"
    NO_BORDER = "no_border"


@dataclass
class SegmentRecord:
    """Aggregate observations of one candidate (ABI, CBI) segment."""

    abi: IPv4
    cbi: IPv4
    count: int = 0
    regions: Set[str] = field(default_factory=set)
    #: interfaces observed immediately before the ABI (for segment shifts)
    prev_ips: Counter = field(default_factory=Counter)
    #: /24s of destinations reached through this segment
    dst_slash24s: Set[int] = field(default_factory=set)
    #: sample of raw destination addresses (feeds the §7.1 target pool)
    dst_sample: Set[IPv4] = field(default_factory=set)
    first_round: str = "r1"
    #: lowest annotation confidence of any CBI observation of this segment
    min_confidence: float = 1.0

    DST_SAMPLE_CAP = 8

    def observe(
        self,
        region: str,
        dst: IPv4,
        prev_ip: Optional[IPv4],
        confidence: float = 1.0,
    ) -> None:
        self.count += 1
        self.regions.add(region)
        if prev_ip is not None:
            self.prev_ips[prev_ip] += 1
        self.dst_slash24s.add(dst & 0xFFFFFF00)
        if len(self.dst_sample) < self.DST_SAMPLE_CAP:
            self.dst_sample.add(dst)
        if confidence < self.min_confidence:
            self.min_confidence = confidence


@dataclass
class ObservatoryStats:
    ingested: int = 0
    with_border: int = 0
    dropped: Counter = field(default_factory=Counter)
    #: border observations whose annotation fell below min_confidence
    low_confidence: int = 0


class BorderObservatory:
    """Streaming implementation of the basic inference strategy.

    ``min_confidence`` flags -- never filters -- segments whose border
    annotation confidence falls below the floor: low-confidence segments
    still count (the digest is unchanged), but they are surfaced in
    :attr:`low_confidence_segments` and the data-quality report.
    """

    def __init__(
        self, annotator: HopAnnotator, min_confidence: float = 0.0
    ) -> None:
        self.annotator = annotator
        self.min_confidence = min_confidence
        #: (abi, cbi) -> SegmentRecord
        self.segments: Dict[Tuple[IPv4, IPv4], SegmentRecord] = {}
        #: segments observed (at least once) below the confidence floor
        self.low_confidence_segments: Set[Tuple[IPv4, IPv4]] = set()
        #: successor interfaces observed after each interface, with counts
        self.successors: Dict[IPv4, Counter] = {}
        #: regions from which each interface was observed
        self.iface_regions: Dict[IPv4, Set[str]] = {}
        #: minimum traceroute RTT per (interface, region)
        self.iface_min_rtt: Dict[Tuple[IPv4, str], float] = {}
        #: round each interface was first seen in
        self.iface_round: Dict[IPv4, str] = {}
        self.stats = ObservatoryStats()
        self.current_round = "r1"

    # ------------------------------------------------------------------

    def start_round(self, label: str, annotator: Optional[HopAnnotator] = None) -> None:
        """Switch to a new probing round (fresh BGP snapshot, §4.2)."""
        self.current_round = label
        if annotator is not None:
            self.annotator = annotator

    # ------------------------------------------------------------------

    def consume(self, trace: Traceroute) -> None:
        """:class:`~repro.measure.sink.ProbeSink` conformance.

        Campaign executors feed sinks; :meth:`ingest` (unchanged) remains
        the primary API and still returns the candidate segment.
        """
        self.ingest(trace)

    def ingest(self, trace: Traceroute) -> Optional[Tuple[IPv4, IPv4]]:
        """Process one traceroute; returns the candidate segment, if any."""
        self.stats.ingested += 1
        hops = trace.hops
        annotate = self.annotator.annotate
        is_border = self.annotator.is_border_candidate

        border_idx: Optional[int] = None
        border_ann: Optional[HopAnnotation] = None
        responsive_ips: List[IPv4] = []
        responsive_idx: List[int] = []
        for idx, hop in enumerate(hops):
            if hop.ip is None:
                continue
            ann = annotate(hop.ip)
            responsive_ips.append(hop.ip)
            responsive_idx.append(idx)
            self._note_interface(hop.ip, trace.region, hop.rtt_ms)
            if border_idx is None and is_border(ann):
                border_idx = idx
                border_ann = ann

        # Successor map over consecutive responsive hops (full trace).
        for a, b in zip(responsive_ips, responsive_ips[1:]):
            self.successors.setdefault(a, Counter())[b] += 1

        if border_idx is None or border_ann is None:
            self.stats.dropped[DropReason.NO_BORDER] += 1
            return None

        cbi = hops[border_idx].ip
        assert cbi is not None

        # Hygiene filters, applied in the paper's order. ----------------
        pre_border = [h for h in hops[:border_idx]]
        if any(h.ip is None for h in pre_border):
            self.stats.dropped[DropReason.GAP_BEFORE_BORDER] += 1
            return None
        pre_ips = [h.ip for h in pre_border]
        if len(set(pre_ips)) != len(pre_ips):
            self.stats.dropped[DropReason.DUPLICATE_BEFORE_BORDER] += 1
            return None
        if len(set(responsive_ips)) != len(responsive_ips):
            self.stats.dropped[DropReason.LOOP] += 1
            return None
        if cbi == trace.dst:
            self.stats.dropped[DropReason.CBI_IS_DESTINATION] += 1
            return None
        if border_idx == 0:
            self.stats.dropped[DropReason.NO_BORDER] += 1
            return None
        # Sanity: no home-org hop downstream of the CBI.
        for hop in hops[border_idx + 1 :]:
            if hop.ip is None:
                continue
            ann = annotate(hop.ip)
            if self.annotator.is_home(ann):
                self.stats.dropped[DropReason.REENTERS_HOME] += 1
                return None

        abi = hops[border_idx - 1].ip
        assert abi is not None
        prev_ip = hops[border_idx - 2].ip if border_idx >= 2 else None

        key = (abi, cbi)
        record = self.segments.get(key)
        if record is None:
            record = SegmentRecord(abi=abi, cbi=cbi, first_round=self.current_round)
            self.segments[key] = record
        record.observe(
            trace.region, trace.dst, prev_ip, confidence=border_ann.confidence
        )
        if (
            self.min_confidence > 0.0
            and border_ann.confidence < self.min_confidence
        ):
            self.stats.low_confidence += 1
            self.low_confidence_segments.add(key)
        self.stats.with_border += 1
        return key

    # ------------------------------------------------------------------

    def _note_interface(self, ip: IPv4, region: str, rtt: Optional[float]) -> None:
        self.iface_regions.setdefault(ip, set()).add(region)
        self.iface_round.setdefault(ip, self.current_round)
        if rtt is not None:
            key = (ip, region)
            old = self.iface_min_rtt.get(key)
            if old is None or rtt < old:
                self.iface_min_rtt[key] = rtt

    # ------------------------------------------------------------------
    # views over the accumulated state
    # ------------------------------------------------------------------

    def candidate_abis(self) -> Set[IPv4]:
        return {abi for abi, _cbi in self.segments}

    def candidate_cbis(self) -> Set[IPv4]:
        return {cbi for _abi, cbi in self.segments}

    def cbis_of_abi(self, abi: IPv4) -> Set[IPv4]:
        return {c for (a, c) in self.segments if a == abi}

    def low_confidence_cbis(self) -> Set[IPv4]:
        """CBIs of segments observed below the confidence floor."""
        return {cbi for _abi, cbi in self.low_confidence_segments}

    def segments_first_seen_in(self, round_label: str) -> List[SegmentRecord]:
        return [s for s in self.segments.values() if s.first_round == round_label]

    def successor_anns(self, ip: IPv4) -> List[HopAnnotation]:
        return [self.annotator.annotate(s) for s in self.successors.get(ip, ())]

    def discovery_dsts(self) -> Set[IPv4]:
        """Destinations of traceroutes that revealed each segment (§7.1)."""
        out: Set[IPv4] = set()
        for record in self.segments.values():
            out.update(record.dst_sample)
        return out

    def min_rtt_of(self, ip: IPv4) -> Optional[float]:
        """Minimum traceroute RTT to an interface across all regions."""
        best: Optional[float] = None
        for region in self.iface_regions.get(ip, ()):
            rtt = self.iface_min_rtt.get((ip, region))
            if rtt is not None and (best is None or rtt < best):
                best = rtt
        return best

    # ------------------------------------------------------------------
    # stage-checkpoint support
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Everything a stage checkpoint must capture to rebuild ingest
        state -- the annotator and confidence floor are reconstructed from
        config, not serialized."""
        return {
            "segments": self.segments,
            "low_confidence_segments": self.low_confidence_segments,
            "successors": self.successors,
            "iface_regions": self.iface_regions,
            "iface_min_rtt": self.iface_min_rtt,
            "iface_round": self.iface_round,
            "stats": self.stats,
            "current_round": self.current_round,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output (a resumed study's observatory)."""
        self.segments = state["segments"]  # type: ignore[assignment]
        self.low_confidence_segments = state["low_confidence_segments"]  # type: ignore[assignment]
        self.successors = state["successors"]  # type: ignore[assignment]
        self.iface_regions = state["iface_regions"]  # type: ignore[assignment]
        self.iface_min_rtt = state["iface_min_rtt"]  # type: ignore[assignment]
        self.iface_round = state["iface_round"]  # type: ignore[assignment]
        self.stats = state["stats"]  # type: ignore[assignment]
        self.current_round = state["current_round"]  # type: ignore[assignment]
