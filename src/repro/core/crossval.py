"""Stratified cross-validation of the pinning procedure (§6.2).

Without ground truth, the paper validates pinning by hiding 30% of the
anchors (stratified by metro so thin metros keep train anchors), re-running
the propagation, and checking how many hidden anchors are (a) re-pinned at
all (recall) and (b) re-pinned to the right metro (precision).  Ten folds
give mean and standard deviation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.net.ip import IPv4
from repro.core.pinning import IterativePinner


@dataclass
class FoldResult:
    precision: float
    recall: float
    test_size: int


@dataclass
class CrossValidationResult:
    folds: List[FoldResult] = field(default_factory=list)

    @property
    def mean_precision(self) -> float:
        return _mean([f.precision for f in self.folds])

    @property
    def mean_recall(self) -> float:
        return _mean([f.recall for f in self.folds])

    @property
    def std_precision(self) -> float:
        return _std([f.precision for f in self.folds])

    @property
    def std_recall(self) -> float:
        return _std([f.recall for f in self.folds])


def _mean(xs: List[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def _std(xs: List[float]) -> float:
    if len(xs) < 2:
        return 0.0
    mu = _mean(xs)
    return math.sqrt(sum((x - mu) ** 2 for x in xs) / (len(xs) - 1))


def stratified_split(
    anchors: Dict[IPv4, str],
    rng: random.Random,
    train_fraction: float = 0.7,
) -> Tuple[Dict[IPv4, str], Dict[IPv4, str]]:
    """70/30 split preserving the per-metro anchor distribution."""
    by_metro: Dict[str, List[IPv4]] = {}
    for ip, metro in anchors.items():
        by_metro.setdefault(metro, []).append(ip)
    train: Dict[IPv4, str] = {}
    test: Dict[IPv4, str] = {}
    for metro in sorted(by_metro):
        ips = sorted(by_metro[metro])
        rng.shuffle(ips)
        cut = max(1, int(round(len(ips) * train_fraction))) if len(ips) > 1 else 1
        for ip in ips[:cut]:
            train[ip] = metro
        for ip in ips[cut:]:
            test[ip] = metro
    return train, test


def cross_validate_pinning(
    anchors: Dict[IPv4, str],
    alias_sets: List[Set[IPv4]],
    segments: Iterable[Tuple[IPv4, IPv4]],
    segment_rtt_diff: Dict[Tuple[IPv4, IPv4], float],
    folds: int = 10,
    seed: int = 0,
    train_fraction: float = 0.7,
) -> CrossValidationResult:
    """Run ``folds`` stratified 70/30 train/test evaluations."""
    result = CrossValidationResult()
    segments = list(segments)
    for fold in range(folds):
        rng = random.Random(repr(("crossval", seed, fold)))
        train, test = stratified_split(anchors, rng, train_fraction)
        if not test:
            continue
        pinner = IterativePinner(train, alias_sets, segments, segment_rtt_diff)
        pinned = pinner.run()
        hits = correct = 0
        for ip, true_metro in test.items():
            metro = pinned.metro_of(ip)
            if metro is None:
                continue
            hits += 1
            if metro == true_metro:
                correct += 1
        precision = correct / hits if hits else 1.0
        recall = hits / len(test)
        result.folds.append(
            FoldResult(precision=precision, recall=recall, test_size=len(test))
        )
    return result
