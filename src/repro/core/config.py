"""Frozen study configuration.

:class:`StudyConfig` replaces the loose keyword arguments
``AmazonPeeringStudy`` used to take.  It is immutable (safe to share with
worker processes and to record on the ``StudyResult`` for provenance) and
carries every knob the end-to-end run honours -- including the resilience
surface: an optional :class:`~repro.measure.faults.FaultPlan`, per-shard
timeout and retry bounds, and the checkpoint directory that makes a
killed campaign resumable.  The old kwargs still work through a
deprecation shim on ``AmazonPeeringStudy``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.datasets.datafaults import DataFaultPlan
from repro.measure.faults import FaultPlan


@dataclass(frozen=True)
class StudyConfig:
    """Every knob of the end-to-end study, in one immutable record.

    ``scale`` is informational provenance: the world is built separately,
    so ``None`` means "whatever the world was built with".
    """

    scale: Optional[float] = None
    seed: int = 0
    expansion_stride: int = 1
    crossval_folds: int = 10
    run_vpi: bool = True
    run_crossval: bool = True
    workers: int = 1

    # --- resilience / chaos --------------------------------------------
    #: deterministic fault schedule consulted by the engine and executor.
    fault_plan: Optional[FaultPlan] = None
    #: seconds before a pooled shard attempt is abandoned and retried.
    shard_timeout: Optional[float] = None
    #: retries per shard before quarantine (0 = fail fast).
    max_retries: int = 2
    #: first retry backoff; doubles per retry.
    retry_backoff_s: float = 0.05
    #: directory for per-campaign shard journals (None = no checkpoints).
    checkpoint_dir: Optional[str] = None
    #: replay finished shards from ``checkpoint_dir`` instead of
    #: re-probing them (requires ``checkpoint_dir``).
    resume: bool = False

    # --- data quality ---------------------------------------------------
    #: deterministic dataset-degradation schedule (dirty BGP/WHOIS/
    #: as2org/IXP views); None = pristine datasets.
    data_fault_plan: Optional[DataFaultPlan] = None
    #: annotation-confidence floor below which CBIs, confirmed ABIs, and
    #: pins are flagged in the data-quality report (0 = no flagging).
    min_confidence: float = 0.0

    def __post_init__(self) -> None:
        if self.expansion_stride < 1:
            raise ValueError(
                f"expansion_stride must be >= 1, got {self.expansion_stride}"
            )
        if self.crossval_folds < 2:
            raise ValueError(
                f"crossval_folds must be >= 2, got {self.crossval_folds}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume=True requires checkpoint_dir")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "StudyConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)
