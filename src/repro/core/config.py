"""Frozen study configuration.

:class:`StudyConfig` replaces the loose keyword arguments
``AmazonPeeringStudy`` used to take.  It is immutable (safe to share with
worker processes and to record on the ``StudyResult`` for provenance) and
carries every knob the end-to-end run honours -- including the resilience
surface: an optional :class:`~repro.measure.faults.FaultPlan`, per-shard
timeout and retry bounds, and the checkpoint directory that makes a
killed campaign resumable.  The old kwargs still work through a
deprecation shim on ``AmazonPeeringStudy``.

A config can also live in a TOML file (``repro run --config study.toml``,
with CLI flags as overrides): :meth:`StudyConfig.from_file` /
:meth:`StudyConfig.from_toml` read one, :meth:`StudyConfig.to_toml`
writes one, and the pair round-trips every field -- fault plans travel as
their compact ``parse()`` spec strings.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

try:  # stdlib on Python >= 3.11; config files degrade gracefully below.
    import tomllib
except ImportError:  # pragma: no cover - depends on interpreter version
    tomllib = None  # type: ignore[assignment]

from repro.datasets.datafaults import DataFaultPlan
from repro.measure.faults import FaultPlan


@dataclass(frozen=True)
class StudyConfig:
    """Every knob of the end-to-end study, in one immutable record.

    ``scale`` is informational provenance: the world is built separately,
    so ``None`` means "whatever the world was built with".
    """

    scale: Optional[float] = None
    seed: int = 0
    expansion_stride: int = 1
    crossval_folds: int = 10
    run_vpi: bool = True
    run_crossval: bool = True
    workers: int = 1

    # --- resilience / chaos --------------------------------------------
    #: deterministic fault schedule consulted by the engine and executor.
    fault_plan: Optional[FaultPlan] = None
    #: seconds before a pooled shard attempt is abandoned and retried.
    shard_timeout: Optional[float] = None
    #: retries per shard before quarantine (0 = fail fast).
    max_retries: int = 2
    #: first retry backoff; doubles per retry.
    retry_backoff_s: float = 0.05
    #: directory for per-campaign shard journals (None = no checkpoints).
    checkpoint_dir: Optional[str] = None
    #: replay finished shards from ``checkpoint_dir`` instead of
    #: re-probing them (requires ``checkpoint_dir``).
    resume: bool = False

    # --- adaptive resilience (DESIGN.md §6.6) ---------------------------
    #: engage the health ledger + circuit breakers + probe governor and
    #: append the bounded re-probe recovery stage.  Off by default: the
    #: non-adaptive digest is bit-identical to the historical golden.
    adaptive: bool = False
    #: consecutive rate-limit fingerprints that trip a region's breaker.
    breaker_threshold: int = 3
    #: bounded re-probe rounds appended after round 2 (0 = defer-only;
    #: deferred probes then heal via the salt-0 fallback).
    recovery_rounds: int = 1

    # --- supervision ----------------------------------------------------
    #: wall-clock budget for the whole study; exceeding it raises a
    #: *resumable* interrupt (DeadlineExceeded), never a failure.
    deadline_s: Optional[float] = None
    #: study-wide cap on shard retries across all campaigns (None =
    #: unbounded; the per-shard ``max_retries`` always applies too).
    retry_budget: Optional[int] = None
    #: seconds of silence after which a pooled shard is declared hung and
    #: retried inline -- a supervision horizon, distinct from the
    #: per-attempt ``shard_timeout`` retry knob.
    hung_shard_after_s: Optional[float] = None

    # --- data quality ---------------------------------------------------
    #: deterministic dataset-degradation schedule (dirty BGP/WHOIS/
    #: as2org/IXP views); None = pristine datasets.
    data_fault_plan: Optional[DataFaultPlan] = None
    #: annotation-confidence floor below which CBIs, confirmed ABIs, and
    #: pins are flagged in the data-quality report (0 = no flagging).
    min_confidence: float = 0.0

    # --- performance ----------------------------------------------------
    #: share one read-only annotation cache (and interned annotations)
    #: across the round-2 and per-cloud VPI annotators.  Annotation
    #: content never depends on the annotator's home org, so this is
    #: digest-neutral by contract (enforced by the golden-snapshot
    #: tests); turn it off to give every annotator a private cache.
    shared_annotation_cache: bool = True

    # --- observability --------------------------------------------------
    #: record fine-grained worker-side spans (probe batches, fault
    #: delays, wire packing).  Coarse spans (study/stage/campaign/shard)
    #: are always recorded; tracing never affects the digest.
    trace: bool = False
    #: write the study's span stream here after the run (``*.jsonl`` ->
    #: JSONL, anything else -> Chrome trace JSON).  Implies ``trace``.
    trace_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.expansion_stride < 1:
            raise ValueError(
                f"expansion_stride must be >= 1, got {self.expansion_stride}"
            )
        if self.crossval_folds < 2:
            raise ValueError(
                f"crossval_folds must be >= 2, got {self.crossval_folds}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume=True requires checkpoint_dir")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.hung_shard_after_s is not None and self.hung_shard_after_s <= 0:
            raise ValueError(
                f"hung_shard_after_s must be > 0, got {self.hung_shard_after_s}"
            )
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.recovery_rounds < 0:
            raise ValueError(
                f"recovery_rounds must be >= 0, got {self.recovery_rounds}"
            )

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "StudyConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    # --- TOML config files ---------------------------------------------

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "StudyConfig":
        """Build a config from a plain mapping (parsed TOML).

        Fault plans may be given as compact spec strings (the
        ``FaultPlan.parse`` / ``DataFaultPlan.parse`` grammar) or as
        already-built plan objects.  Unknown keys raise ``ValueError`` so
        a typo in a config file fails loudly instead of silently running
        the defaults.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown config key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs: Dict[str, Any] = dict(data)
        plan = kwargs.get("fault_plan")
        if isinstance(plan, str):
            kwargs["fault_plan"] = FaultPlan.parse(plan)
        data_plan = kwargs.get("data_fault_plan")
        if isinstance(data_plan, str):
            kwargs["data_fault_plan"] = DataFaultPlan.parse(data_plan)
        return cls(**kwargs)

    @classmethod
    def from_toml(cls, text: str) -> "StudyConfig":
        """Parse a TOML document of flat ``key = value`` config entries."""
        if tomllib is None:
            raise RuntimeError(
                "TOML config files need the stdlib tomllib (Python >= 3.11)"
            )
        return cls.from_mapping(tomllib.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "StudyConfig":
        """Load a config from a TOML file (see ``to_toml`` for the shape)."""
        return cls.from_toml(Path(path).read_text())

    def to_toml(self) -> str:
        """This config as a TOML document ``from_toml`` round-trips.

        ``None`` fields are omitted (TOML has no null; absence means
        "default"), and fault plans are serialized as their canonical
        ``to_spec()`` strings.
        """
        lines = ["# repro study configuration (repro run --config <file>)"]
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value is None:
                continue
            if isinstance(value, (FaultPlan, DataFaultPlan)):
                value = value.to_spec()
            lines.append(f"{field.name} = {_toml_value(value)}")
        return "\n".join(lines) + "\n"


def _toml_value(value: Any) -> str:
    """Render one scalar as a TOML literal."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    raise TypeError(f"cannot render {type(value).__name__} as TOML: {value!r}")
