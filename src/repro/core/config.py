"""Frozen study configuration.

:class:`StudyConfig` replaces the loose keyword arguments
``AmazonPeeringStudy`` used to take.  It is immutable (safe to share with
worker processes and to record on the ``StudyResult`` for provenance) and
carries every knob the end-to-end run honours.  The old kwargs still work
through a deprecation shim on ``AmazonPeeringStudy``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class StudyConfig:
    """Every knob of the end-to-end study, in one immutable record.

    ``scale`` is informational provenance: the world is built separately,
    so ``None`` means "whatever the world was built with".
    """

    scale: Optional[float] = None
    seed: int = 0
    expansion_stride: int = 1
    crossval_folds: int = 10
    run_vpi: bool = True
    run_crossval: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        if self.expansion_stride < 1:
            raise ValueError(
                f"expansion_stride must be >= 1, got {self.expansion_stride}"
            )
        if self.crossval_folds < 2:
            raise ValueError(
                f"crossval_folds must be >= 2, got {self.crossval_folds}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "StudyConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)
