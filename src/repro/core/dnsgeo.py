"""DRoP-style DNS parsing: location hints and VPI vocabulary (§6.1, §7.3).

Operators embed IATA codes and city names in router interface names; this
parser extracts them against the metro catalog.  It is written against the
*formats observed in the wild* (hostname.city-token.country.role.domain),
not against the world's generator, so false hints and unparseable names
behave like they did for the paper's authors (their RTT-constraint check
excluded 0.87k CBIs with infeasible hints).

The same names occasionally carry interconnect vocabulary -- ``vlan`` tags
and Amazon's ``dxvif``/``dxcon``/``awsdx`` terms -- which §7.3 uses as
evidence that a "physical" private peering is actually a VPI.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.net.geo import MetroCatalog

#: Vocabulary indicating a Direct Connect virtual interface (§7.3).
VPI_KEYWORD_RE = re.compile(r"(?:^|[.\-])(?:dxvif|dxcon|awsdx|aws-dx)(?:$|[.\-0-9a-f])")
VLAN_RE = re.compile(r"(?:^|[.\-])vlan(\d{1,4})(?:$|[.\-])")

#: Tokens that look like IATA codes but are common name parts.
_STOPWORDS: Set[str] = {
    "net", "com", "org", "bb", "core", "edge", "ae", "ge", "xe", "po",
    "gw", "rtr", "ip", "vif", "aws", "amazon", "border",
}


@dataclass(frozen=True)
class DNSGeoHint:
    """Extracted location hint."""

    metro_code: str
    matched_token: str
    kind: str               # "iata" or "city"


class DNSGeoParser:
    """Extracts metro hints from reverse-DNS names."""

    def __init__(self, catalog: MetroCatalog) -> None:
        self.catalog = catalog
        self._iata = {m.code.lower(): m.code for m in catalog}
        self._cities = {
            m.city.lower().replace(" ", ""): m.code for m in catalog
        }

    # ------------------------------------------------------------------

    def parse(self, name: Optional[str]) -> Optional[DNSGeoHint]:
        """The first credible location hint in ``name``, or None."""
        if not name:
            return None
        for token in self._tokens(name):
            hint = self._match_token(token)
            if hint is not None:
                return hint
        return None

    def _tokens(self, name: str) -> List[str]:
        # Drop the operator's domain (last two DNS labels) *before*
        # splitting on separators, so 'nrt-networks.com' never leaks a
        # fake airport code into the hostname tokens.
        labels = name.lower().split(".")
        head = labels[:-2] if len(labels) > 2 else labels[:1]
        tokens: List[str] = []
        for label in head:
            tokens.extend(t for t in re.split(r"[\-_]", label) if t)
        return [t for t in tokens if t not in _STOPWORDS]

    def _match_token(self, token: str) -> Optional[DNSGeoHint]:
        stripped = token.rstrip("0123456789")
        if not stripped:
            return None
        # Full city name, possibly with a trailing index digit.
        city_code = self._cities.get(stripped)
        if city_code is not None:
            return DNSGeoHint(metro_code=city_code, matched_token=token, kind="city")
        # IATA code, optionally followed by a state/country suffix
        # ("atlnga05" -> atl + nga).
        if len(stripped) >= 3:
            code = self._iata.get(stripped[:3])
            if code is not None and len(stripped) <= 7:
                return DNSGeoHint(metro_code=code, matched_token=token, kind="iata")
        return None


def has_vpi_keywords(name: Optional[str]) -> bool:
    """True when the name carries dx/VPI vocabulary (§7.3's evidence)."""
    if not name:
        return False
    return bool(VPI_KEYWORD_RE.search(name.lower()))


def has_vlan_tag(name: Optional[str]) -> bool:
    if not name:
        return False
    return bool(VLAN_RE.search(name.lower()))


def vpi_evidence(name: Optional[str]) -> bool:
    """VLAN tag or dx keyword: the §7.3 combined signal."""
    return has_vlan_tag(name) or has_vpi_keywords(name)
