"""Typed result containers for the end-to-end study."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net.ip import IPv4
from repro.datasets.datafaults import DataFaultPlan
from repro.datasets.validate import DatasetValidationReport
from repro.core.aliasverify import VerificationResult
from repro.core.config import StudyConfig
from repro.core.anchors import AnchorSet
from repro.core.crossval import CrossValidationResult
from repro.core.graph import ICGSummary
from repro.core.grouping import GroupingResult
from repro.core.heuristics import HeuristicOutcome
from repro.core.pinning import PinningResult
from repro.core.vpi import VPIDetectionResult
from repro.measure.adapt import RecoveryReport
from repro.measure.campaign import CampaignStats
from repro.measure.metrics import StudyMetrics


@dataclass
class DataQualityReport:
    """How dirty the datasets were, and what the pipeline flagged.

    Everything here is *observability*, deliberately excluded from
    ``StudyResult.digest()``: a clean run's digest is unchanged by the
    existence of this report, and a dirty run's digest covers the
    (deterministically degraded) inference outputs themselves.
    """

    #: the degradation schedule the datasets were built under (None = clean).
    fault_plan: Optional[DataFaultPlan] = None
    #: the confidence floor flagging was run with (0 = flagging off).
    min_confidence: float = 0.0
    #: up-front inter-source disagreement counts (datasets/validate.py).
    validation: Optional[DatasetValidationReport] = None
    #: final border interfaces scored (|ABIs| + |CBIs|).
    interfaces_scored: int = 0
    mean_confidence: float = 1.0
    #: AnnotationSource value -> interface count.
    source_counts: Dict[str, int] = field(default_factory=dict)
    #: Disagreement label -> count over final border interfaces.
    disagreement_counts: Dict[str, int] = field(default_factory=dict)
    low_confidence_cbis: Set[IPv4] = field(default_factory=set)
    low_confidence_abis: Set[IPv4] = field(default_factory=set)
    low_confidence_pins: Set[IPv4] = field(default_factory=set)

    @property
    def annotation_disagreements(self) -> int:
        return sum(self.disagreement_counts.values())

    @property
    def total_disagreements(self) -> int:
        """Dataset-level plus annotation-level disagreements."""
        dataset = (
            self.validation.total_disagreements if self.validation else 0
        )
        return dataset + self.annotation_disagreements

    @property
    def flagged_count(self) -> int:
        return (
            len(self.low_confidence_cbis)
            + len(self.low_confidence_abis)
            + len(self.low_confidence_pins)
        )

    @property
    def degraded(self) -> bool:
        """True when sources disagreed or inferences were flagged."""
        return bool(self.total_disagreements or self.flagged_count)


@dataclass
class InterfaceCensus:
    """One row of Table 1: interface counts and annotation-source mix."""

    label: str
    total: int
    bgp_fraction: float
    whois_fraction: float
    ixp_fraction: float


@dataclass
class StudyResult:
    """Everything the paper's evaluation reports, in one place."""

    # §3 / §4: campaigns and the Table 1 censuses.
    round1_stats: Optional[CampaignStats] = None
    round2_stats: Optional[CampaignStats] = None
    table1: List[InterfaceCensus] = field(default_factory=list)
    peer_ases_round1: int = 0
    peer_ases_round2: int = 0

    # §5: verification.
    heuristics: Optional[HeuristicOutcome] = None
    alias_sets: List[Set[IPv4]] = field(default_factory=list)
    verification: Optional[VerificationResult] = None
    final_segments: Set[Tuple[IPv4, IPv4]] = field(default_factory=set)
    abis: Set[IPv4] = field(default_factory=set)
    cbis: Set[IPv4] = field(default_factory=set)

    # §6: pinning.
    anchors: Optional[AnchorSet] = None
    pinning: Optional[PinningResult] = None
    crossval: Optional[CrossValidationResult] = None
    #: Fig. 4a series: min-RTT from the closest region to each ABI.
    abi_min_rtts: List[float] = field(default_factory=list)
    #: Fig. 4b series: min-RTT difference across each segment.
    segment_rtt_diff: Dict[Tuple[IPv4, IPv4], float] = field(default_factory=dict)

    # §7: the peering fabric.
    vpi: Optional[VPIDetectionResult] = None
    grouping: Optional[GroupingResult] = None
    icg: Optional[ICGSummary] = None
    bgp_visible_peers: Set[int] = field(default_factory=set)
    recovered_bgp_peers: Set[int] = field(default_factory=set)

    # Provenance and observability.
    seed: int = 0
    scale: float = 0.0
    #: the exact configuration the study ran with, for reproducibility.
    config: Optional[StudyConfig] = None
    #: per-stage wall-clock and per-campaign throughput.
    metrics: Optional[StudyMetrics] = None
    runtime_seconds: Dict[str, float] = field(default_factory=dict)
    #: dataset dirt, annotation confidence, and flagged inferences.
    #: Excluded from ``digest_inputs`` by design (observability only).
    data_quality: Optional[DataQualityReport] = None
    #: what the adaptive control plane did: breaker history, deferrals,
    #: and recovery yield (None unless ``config.adaptive``).  Excluded
    #: from ``digest_inputs`` -- the *healed stats* are the content; the
    #: control-plane ledger is observability.
    resilience: Optional[RecoveryReport] = None

    # ------------------------------------------------------------------

    @property
    def metro_pin_coverage(self) -> float:
        universe = self.abis | self.cbis
        if not universe or self.pinning is None:
            return 0.0
        return self.pinning.coverage(universe)

    @property
    def total_pin_coverage(self) -> float:
        """Metro plus regional-level coverage (§6.1's ~80%)."""
        universe = self.abis | self.cbis
        if not universe or self.pinning is None:
            return 0.0
        covered = sum(
            1
            for ip in universe
            if ip in self.pinning.pinned or ip in self.pinning.regional
        )
        return covered / len(universe)

    @property
    def bgp_recovery_fraction(self) -> float:
        """Share of BGP-reported Amazon peers our method also found (§7.3)."""
        if not self.bgp_visible_peers:
            return 0.0
        return len(self.recovered_bgp_peers) / len(self.bgp_visible_peers)

    # ------------------------------------------------------------------

    def digest_inputs(self) -> Dict[str, Any]:
        """The canonical, order-stable content summary behind ``digest``.

        Covers everything the determinism guarantee promises: census
        counts and source mixes, campaign yields, the inferred ABI/CBI
        sets and segments, alias sets, and the VPI intersections.
        Timings, throughput, and other wall-clock observables are
        deliberately excluded -- they vary run to run.
        """
        def stats_row(stats: Optional[CampaignStats]) -> Optional[tuple]:
            if stats is None:
                return None
            return (
                stats.probes,
                stats.completed,
                stats.left_cloud,
                stats.gap_limited,
                stats.lost_probes,
                tuple(sorted(stats.by_region.items())),
            )

        vpi: Optional[Dict[str, Any]] = None
        if self.vpi is not None:
            vpi = {
                "pool_size": self.vpi.pool_size,
                "amazon_cbis": self.vpi.amazon_cbis,
                "pairwise": {
                    cloud: tuple(sorted(ips))
                    for cloud, ips in sorted(self.vpi.pairwise.items())
                },
                "cumulative": {
                    cloud: tuple(sorted(ips))
                    for cloud, ips in sorted(self.vpi.cumulative.items())
                },
            }
        return {
            "table1": [
                (r.label, r.total, r.bgp_fraction, r.whois_fraction, r.ixp_fraction)
                for r in self.table1
            ],
            "round1": stats_row(self.round1_stats),
            "round2": stats_row(self.round2_stats),
            "peer_ases": (self.peer_ases_round1, self.peer_ases_round2),
            "abis": tuple(sorted(self.abis)),
            "cbis": tuple(sorted(self.cbis)),
            "segments": tuple(sorted(self.final_segments)),
            "alias_sets": tuple(
                sorted(tuple(sorted(s)) for s in self.alias_sets)
            ),
            "vpi": vpi,
        }

    def digest(self) -> str:
        """A sha256 over the run's inference outputs.

        Two runs with equal digests produced byte-identical censuses,
        border sets, and VPI intersections -- the golden-snapshot
        regression test and the CI fault-injection smoke job compare
        exactly this value across worker counts, injected faults, and
        checkpoint resumes.
        """
        return hashlib.sha256(
            repr(self.digest_inputs()).encode()
        ).hexdigest()
