"""Typed result containers for the end-to-end study."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.ip import IPv4
from repro.core.aliasverify import VerificationResult
from repro.core.config import StudyConfig
from repro.core.anchors import AnchorSet
from repro.core.crossval import CrossValidationResult
from repro.core.graph import ICGSummary
from repro.core.grouping import GroupingResult
from repro.core.heuristics import HeuristicOutcome
from repro.core.pinning import PinningResult
from repro.core.vpi import VPIDetectionResult
from repro.measure.campaign import CampaignStats
from repro.measure.metrics import StudyMetrics


@dataclass
class InterfaceCensus:
    """One row of Table 1: interface counts and annotation-source mix."""

    label: str
    total: int
    bgp_fraction: float
    whois_fraction: float
    ixp_fraction: float


@dataclass
class StudyResult:
    """Everything the paper's evaluation reports, in one place."""

    # §3 / §4: campaigns and the Table 1 censuses.
    round1_stats: Optional[CampaignStats] = None
    round2_stats: Optional[CampaignStats] = None
    table1: List[InterfaceCensus] = field(default_factory=list)
    peer_ases_round1: int = 0
    peer_ases_round2: int = 0

    # §5: verification.
    heuristics: Optional[HeuristicOutcome] = None
    alias_sets: List[Set[IPv4]] = field(default_factory=list)
    verification: Optional[VerificationResult] = None
    final_segments: Set[Tuple[IPv4, IPv4]] = field(default_factory=set)
    abis: Set[IPv4] = field(default_factory=set)
    cbis: Set[IPv4] = field(default_factory=set)

    # §6: pinning.
    anchors: Optional[AnchorSet] = None
    pinning: Optional[PinningResult] = None
    crossval: Optional[CrossValidationResult] = None
    #: Fig. 4a series: min-RTT from the closest region to each ABI.
    abi_min_rtts: List[float] = field(default_factory=list)
    #: Fig. 4b series: min-RTT difference across each segment.
    segment_rtt_diff: Dict[Tuple[IPv4, IPv4], float] = field(default_factory=dict)

    # §7: the peering fabric.
    vpi: Optional[VPIDetectionResult] = None
    grouping: Optional[GroupingResult] = None
    icg: Optional[ICGSummary] = None
    bgp_visible_peers: Set[int] = field(default_factory=set)
    recovered_bgp_peers: Set[int] = field(default_factory=set)

    # Provenance and observability.
    seed: int = 0
    scale: float = 0.0
    #: the exact configuration the study ran with, for reproducibility.
    config: Optional[StudyConfig] = None
    #: per-stage wall-clock and per-campaign throughput.
    metrics: Optional[StudyMetrics] = None
    runtime_seconds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def metro_pin_coverage(self) -> float:
        universe = self.abis | self.cbis
        if not universe or self.pinning is None:
            return 0.0
        return self.pinning.coverage(universe)

    @property
    def total_pin_coverage(self) -> float:
        """Metro plus regional-level coverage (§6.1's ~80%)."""
        universe = self.abis | self.cbis
        if not universe or self.pinning is None:
            return 0.0
        covered = sum(
            1
            for ip in universe
            if ip in self.pinning.pinned or ip in self.pinning.regional
        )
        return covered / len(universe)

    @property
    def bgp_recovery_fraction(self) -> float:
        """Share of BGP-reported Amazon peers our method also found (§7.3)."""
        if not self.bgp_visible_peers:
            return 0.0
        return len(self.recovered_bgp_peers) / len(self.bgp_visible_peers)
