"""The paper's published numbers, for side-by-side comparison.

Every table and figure the benchmarks regenerate is compared against these
constants.  Absolute counts are scale-dependent (the paper probed the real
Internet; we probe a 1/10-scale world), so comparisons are made on
*fractions and shapes*; counts are shown scaled by ``WorldConfig.scale``
for orientation only.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

# --- Table 1: interfaces and annotation sources ---------------------------
# label -> (count, bgp%, whois%, ixp%)
TABLE1: Dict[str, Tuple[int, float, float, float]] = {
    "ABI": (3_680, 0.384, 0.616, 0.0),
    "CBI": (21_730, 0.5474, 0.248, 0.2046),
    "eABI": (3_780, 0.3885, 0.6115, 0.0),
    "eCBI": (24_750, 0.7982, 0.0232, 0.1786),
}

#: §3 campaign yield.
COMPLETED_FRACTION = 0.077
LEFT_AMAZON_FRACTION = 0.77

#: §4.2: peer AS count before and after expansion.
PEER_ASES_R1 = 3_520
PEER_ASES_R2 = 3_550

# --- Table 2: heuristic confirmation (ABIs; CBIs in parentheses) ----------
# heuristic -> (individual ABIs, individual CBIs, cumulative ABIs, cumulative CBIs)
TABLE2: Dict[str, Tuple[int, int, int, int]] = {
    "ixp": (830, 13_660, 830, 13_660),
    "hybrid": (2_050, 14_440, 2_260, 15_140),
    "reachable": (2_800, 15_140, 3_310, 24_230),
}
HEURISTIC_CONFIRMED_ABI_FRACTION = 0.878
HEURISTIC_CONFIRMED_CBI_FRACTION = 0.9696

# --- §5.2: alias verification ----------------------------------------------
ALIAS_SETS = 2_640
ALIAS_INTERFACES = 8_680
ALIAS_MAJORITY_OVER_HALF = 0.94
ALIAS_UNANIMOUS = 0.92
CHANGES_ABI_TO_CBI = 18
CHANGES_CBI_TO_ABI = 2
CHANGES_CBI_TO_CBI = 25
FINAL_ABIS = 3_770
FINAL_CBIS = 24_760
FINAL_PEER_ASES = 3_550

# --- Table 3: anchors and pinned interfaces --------------------------------
# evidence -> exclusive count
TABLE3_EXCLUSIVE: Dict[str, int] = {
    "dns": 5_310,
    "ixp": 2_000,
    "metro": 1_660,
    "native": 1_420,
    "alias": 650,
    "min-rtt": 5_380,
}
TABLE3_CUMULATIVE: Dict[str, int] = {
    "dns": 5_310,
    "ixp": 6_730,
    "metro": 7_220,
    "native": 8_640,
    "alias": 9_210,
    "min-rtt": 14_370,
}
PINNING_ROUNDS = 4
METRO_PIN_COVERAGE = 0.5021
TOTAL_PIN_COVERAGE = 0.8058
PINNING_PRECISION = 0.9934
PINNING_RECALL = 0.5721
#: §6.1: interfaces visible from a single region + conflict rate.
SINGLE_REGION_INTERFACES = 1_110
PINNING_CONFLICT_FRACTION = 0.012

# --- Figures 4 and 5 ---------------------------------------------------------
FIG4A_KNEE_MS = 2.0
FIG4A_FRACTION_UNDER_KNEE = 0.40
FIG4B_KNEE_MS = 2.0
FIG4B_FRACTION_UNDER_KNEE = 0.50
FIG5_RATIO_THRESHOLD = 1.5
FIG5_FRACTION_OVER_THRESHOLD = 0.57

# --- Table 4: VPI detection ---------------------------------------------------
# cloud -> (pairwise count, pairwise fraction of CBIs)
TABLE4_PAIRWISE: Dict[str, Tuple[int, float]] = {
    "microsoft": (4_690, 0.1893),
    "google": (790, 0.0317),
    "ibm": (230, 0.0094),
    "oracle": (0, 0.0),
}
TABLE4_CUMULATIVE: Dict[str, Tuple[int, float]] = {
    "microsoft": (4_690, 0.1893),
    "google": (4_930, 0.1991),
    "ibm": (5_010, 0.2023),
    "oracle": (5_010, 0.2023),
}

# --- Table 5: the six peering groups ------------------------------------------
# group -> (AS fraction, CBI fraction, ABI fraction)
TABLE5: Dict[str, Tuple[float, float, float]] = {
    "Pb-nB": (0.71, 0.16, 0.21),
    "Pb-B": (0.05, 0.02, 0.15),
    "Pr-nB-V": (0.07, 0.12, 0.14),
    "Pr-nB-nV": (0.31, 0.41, 0.69),
    "Pr-B-nV": (0.03, 0.23, 0.55),
    "Pr-B-V": (0.02, 0.08, 0.09),
}
HIDDEN_PEERING_FRACTION = 0.3329
#: §7.3: BGP coverage -- how many of BGP's reported Amazon peers we recover.
BGP_REPORTED_PEERINGS = 250
BGP_RECOVERY_FRACTION = 0.93

# --- Table 6: hybrid profiles (top entries) --------------------------------------
TABLE6_TOP: Tuple[Tuple[FrozenSet[str], int], ...] = (
    (frozenset({"Pb-nB"}), 2_187),
    (frozenset({"Pr-nB-nV"}), 686),
    (frozenset({"Pr-nB-nV", "Pb-nB"}), 207),
    (frozenset({"Pb-B"}), 117),
    (frozenset({"Pr-nB-nV", "Pr-nB-V"}), 83),
)

# --- Figure 6 medians (orders of magnitude, per group) ---------------------------
# group -> (bgp /24 cone median, reachable /24 median)
FIG6_CONE_MEDIANS: Dict[str, float] = {
    "Pb-nB": 4,
    "Pb-B": 200,
    "Pr-nB-V": 15,
    "Pr-nB-nV": 10,
    "Pr-B-nV": 20_000,
    "Pr-B-V": 8_000,
}

# --- §7.4: the ICG -----------------------------------------------------------------
ICG_LARGEST_COMPONENT_FRACTION = 0.923
ICG_INTRA_REGION_FRACTION = 0.98
ICG_BOTH_PINNED_FRACTION = 0.5785
FIG7A_ABI_DEG1_FRACTION = 0.30
FIG7A_ABI_UNDER10_FRACTION = 0.70
FIG7A_ABI_UNDER100_FRACTION = 0.95
FIG7B_CBI_DEG1_FRACTION = 0.50
FIG7B_CBI_UNDER8_FRACTION = 0.90

# --- §8: bdrmap --------------------------------------------------------------------
BDRMAP_ABIS = 4_830
BDRMAP_CBIS = 9_650
BDRMAP_ASES = 2_660
BDRMAP_COMMON_ABIS = 1_850
BDRMAP_COMMON_CBIS = 5_480
BDRMAP_COMMON_ASES = 2_000
BDRMAP_AS0_CBIS = 320
BDRMAP_CONFLICTING_CBIS = 500
BDRMAP_FLIP_INTERFACES = 872
BDRMAP_FLIP_HOME_FRACTION = 0.97

#: §7.1 VPI probing pool size (full scale).
VPI_POOL_SIZE = 327_000
