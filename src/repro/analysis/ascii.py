"""Tiny ASCII renderings of the paper's CDFs for terminal reports.

The paper's figures are simple empirical CDFs; a fixed-width block of
``#`` columns is enough to eyeball the knees in a terminal.  Used by the
CLI report; kept dependency-free on purpose.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def ascii_cdf(
    values: Sequence[float],
    width: int = 56,
    height: int = 8,
    x_max: Optional[float] = None,
    marker: Optional[float] = None,
    title: str = "",
) -> str:
    """Render the empirical CDF of ``values`` as an ASCII block.

    ``marker`` draws a vertical ``|`` column at a given x (e.g. the 2 ms
    knee); ``x_max`` clips the x axis (defaults to the 98th percentile so
    a long tail does not flatten the interesting part).
    """
    if not values:
        return f"{title}\n(no data)"
    ordered = sorted(values)
    if x_max is None:
        x_max = ordered[min(len(ordered) - 1, int(len(ordered) * 0.98))]
    if x_max <= 0:
        x_max = max(ordered[-1], 1e-9)

    # Fraction of samples <= x for each column.
    n = len(ordered)
    fractions: List[float] = []
    idx = 0
    for col in range(width):
        x = (col + 1) / width * x_max
        while idx < n and ordered[idx] <= x:
            idx += 1
        fractions.append(idx / n)

    marker_col = None
    if marker is not None and 0 < marker <= x_max:
        marker_col = min(width - 1, int(marker / x_max * width))

    rows: List[str] = []
    if title:
        rows.append(title)
    for level in range(height, 0, -1):
        threshold = level / height
        cells = []
        for col, frac in enumerate(fractions):
            if frac >= threshold:
                cells.append("#")
            elif col == marker_col:
                cells.append("|")
            else:
                cells.append(" ")
        rows.append(f"{threshold:4.2f} {''.join(cells)}")
    axis = f"{'':4} 0{'':{max(0, width - len(f'{x_max:.1f}') - 1)}}{x_max:.1f}"
    rows.append(axis)
    return "\n".join(rows)


def ascii_hist(
    pairs: Sequence[Tuple[str, float]], width: int = 40, title: str = ""
) -> str:
    """Horizontal bars for labelled fractions (e.g. per-group shares)."""
    if not pairs:
        return f"{title}\n(no data)"
    rows: List[str] = [title] if title else []
    peak = max(v for _l, v in pairs) or 1.0
    label_width = max(len(l) for l, _v in pairs)
    for label, value in pairs:
        bar = "#" * max(1 if value > 0 else 0, int(value / peak * width))
        rows.append(f"{label:>{label_width}} {bar} {value:.1%}")
    return "\n".join(rows)
