"""Text rendering of the full paper-vs-measured comparison."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import figures, paper_values as paper, tables
from repro.core.results import StudyResult
from repro.datasets.relationships import ASRelationships


def _fmt_pct(x: float) -> str:
    return f"{x:5.1f}%"


def _render_resilience(result: StudyResult, add) -> None:
    """Fault/retry/completeness block -- printed only when relevant.

    Relevant means a fault plan was configured, or any campaign saw a
    failed attempt, quarantine, or checkpoint resume; a clean run keeps
    the historical report byte-for-byte.
    """
    metrics = result.metrics
    fault_plan = result.config.fault_plan if result.config else None
    if metrics is None:
        return
    adaptive = result.resilience is not None
    eventful = (
        metrics.total_failures
        or metrics.total_quarantined
        or metrics.total_resumed
        or metrics.degraded
        or adaptive
    )
    if fault_plan is None and not eventful:
        return
    add("resilience:")
    if fault_plan is not None:
        add(f"  fault plan: {fault_plan.describe()}")
    for label, progress in metrics.campaigns.items():
        add(
            f"  {label}: completeness {progress.completeness * 100:.1f}% "
            f"({progress.probes}/{progress.expected_probes} probes), "
            f"{len(progress.failures)} failed attempt(s), "
            f"{len(progress.quarantined)} quarantined shard(s), "
            f"{progress.resumed_shards} resumed from checkpoint"
        )
        categories = progress.failure_categories()
        if categories:
            add(
                "    failures by class: "
                + ", ".join(
                    f"{category}={count}"
                    for category, count in sorted(categories.items())
                )
            )
        for shard in progress.quarantined:
            add(
                f"    quarantined shard {shard.index} ({shard.region}, "
                f"{shard.probes} probes): {shard.error}"
            )
    # Absolute completed counts per round: the CI chaos job compares
    # these between adaptive and non-adaptive runs of one fault plan.
    for label, stats in (
        ("round1", result.round1_stats),
        ("round2", result.round2_stats),
    ):
        if stats is None:
            continue
        expected = stats.probes + stats.lost_probes
        add(
            f"  {label} yield: completed {stats.completed} of "
            f"{expected} expected probes "
            f"({stats.recovered_probes} recovered, "
            f"{stats.lost_probes} lost)"
        )
    resilience = result.resilience
    if resilience is not None:
        add("  adaptive control plane:")
        add(
            f"    deferred {resilience.deferred} probe(s) behind open "
            f"breakers; {resilience.quarantine_lost} probe(s) lost to "
            f"quarantine"
        )
        add(
            f"    recovery: {resilience.rounds_run} round(s), "
            f"{resilience.recovered} recovered "
            f"({resilience.fallback_recovered} via salt-0 fallback), "
            f"{resilience.trial_probes} trial probe(s), "
            f"{resilience.still_lost} still lost"
        )
        if resilience.recovered_by_label:
            add(
                "    recovered by campaign: "
                + ", ".join(
                    f"{label}={count}"
                    for label, count in resilience.recovered_by_label
                )
            )
        for snap in resilience.breakers:
            if not snap.events:
                continue
            history = " -> ".join(
                f"{event.to_state}@{event.at_outcome}"
                for event in snap.events
            )
            add(
                f"    breaker {snap.cloud}/{snap.region}: {snap.state} "
                f"({snap.failures}/{snap.outcomes} failed outcomes, "
                f"{snap.rate_limited} rate-limit fingerprints; "
                f"closed -> {history})"
            )
    if metrics.degraded:
        add(
            "  WARNING: one or more campaigns are incomplete; downstream "
            "inference ran on partial data"
        )


def _render_data_quality(result: StudyResult, add) -> None:
    """Dataset-dirt block -- printed only when relevant.

    Relevant means a data fault plan was configured or a confidence
    floor was set; a pristine default run keeps the historical report
    unchanged (clean worlds still have benign coverage gaps, which would
    otherwise print noise on every run).
    """
    dq = result.data_quality
    config = result.config
    if dq is None or config is None:
        return
    if config.data_fault_plan is None and config.min_confidence <= 0.0:
        return
    add("data quality:")
    if dq.fault_plan is not None:
        add(f"  data fault plan: {dq.fault_plan.describe()}")
    v = dq.validation
    if v is not None:
        add(
            f"  dataset validation over {v.checked_prefixes} announced "
            f"prefixes: {v.moas_prefixes} MOAS, "
            f"{v.bgp_whois_mismatches} BGP-vs-WHOIS origin mismatches, "
            f"{v.ixp_member_conflicts} IXP member conflicts"
        )
        add(
            f"  coverage gaps: {v.whois_gaps} WHOIS gaps, "
            f"{v.whois_nameonly} name-only records, "
            f"{v.as2org_missing_asns} origin ASes missing from as2org"
        )
    add(
        f"  annotation confidence over {dq.interfaces_scored} border "
        f"interfaces: mean {dq.mean_confidence:.3f}"
    )
    if dq.disagreement_counts:
        add(
            "  annotation disagreements: "
            + ", ".join(
                f"{label}={count}"
                for label, count in sorted(dq.disagreement_counts.items())
            )
        )
    add(f"  disagreements: total {dq.total_disagreements}")
    if config.min_confidence > 0.0:
        add(
            f"  flagged below min-confidence {config.min_confidence:g}: "
            f"{len(dq.low_confidence_abis)} ABIs, "
            f"{len(dq.low_confidence_cbis)} CBIs, "
            f"{len(dq.low_confidence_pins)} pins"
        )
    if dq.degraded:
        add(
            "  WARNING: dataset sources disagree; flagged inferences are "
            "counted but suspect"
        )


def render_sensitivity(clean: StudyResult, dirty: StudyResult) -> str:
    """Paper-table deltas between a clean run and its dirty twin.

    Both results must come from the same world and seed; the only
    difference should be the dirty run's ``data_fault_plan`` (and
    optionally its confidence floor).
    """
    lines: List[str] = []
    add = lines.append
    plan = dirty.config.data_fault_plan if dirty.config else None
    add("sensitivity (clean -> dirty paper-table deltas):")
    if plan is not None:
        add(f"  dirty run plan: {plan.describe()}")
    clean_rows = {row.label: row for row in clean.table1}
    for row in dirty.table1:
        base = clean_rows.get(row.label)
        if base is None:
            continue
        add(
            f"  Table1 {row.label}: total {base.total} -> {row.total} "
            f"({row.total - base.total:+d}); "
            f"BGP% {base.bgp_fraction * 100:.1f} -> {row.bgp_fraction * 100:.1f}; "
            f"WHOIS% {base.whois_fraction * 100:.1f} -> {row.whois_fraction * 100:.1f}; "
            f"IXP% {base.ixp_fraction * 100:.1f} -> {row.ixp_fraction * 100:.1f}"
        )
    add(
        f"  peer ASes (r1/r2): {clean.peer_ases_round1}/{clean.peer_ases_round2}"
        f" -> {dirty.peer_ases_round1}/{dirty.peer_ases_round2}"
    )
    add(
        f"  final ABIs {len(clean.abis)} -> {len(dirty.abis)} "
        f"({len(dirty.abis) - len(clean.abis):+d}); "
        f"CBIs {len(clean.cbis)} -> {len(dirty.cbis)} "
        f"({len(dirty.cbis) - len(clean.cbis):+d}); "
        f"segments {len(clean.final_segments)} -> {len(dirty.final_segments)} "
        f"({len(dirty.final_segments) - len(clean.final_segments):+d})"
    )
    add(
        f"  metro pin coverage {clean.metro_pin_coverage * 100:.1f}% -> "
        f"{dirty.metro_pin_coverage * 100:.1f}%; with regional fallback "
        f"{clean.total_pin_coverage * 100:.1f}% -> "
        f"{dirty.total_pin_coverage * 100:.1f}%"
    )
    if clean.grouping is not None and dirty.grouping is not None:
        add(
            f"  hidden peering fraction "
            f"{clean.grouping.hidden_fraction() * 100:.1f}% -> "
            f"{dirty.grouping.hidden_fraction() * 100:.1f}%"
        )
    add(
        f"  BGP-visible peer recovery "
        f"{clean.bgp_recovery_fraction * 100:.0f}% -> "
        f"{dirty.bgp_recovery_fraction * 100:.0f}%"
    )
    same = clean.digest() == dirty.digest()
    add(f"  digest: {'identical (plan injected nothing)' if same else 'diverged, as expected'}")
    return "\n".join(lines)


def render_salvage(result: StudyResult, recovered: List[str]) -> str:
    """Partial report for ``repro study --salvage``.

    The full report assumes every stage ran; after a crash only a prefix
    of the stage graph is recoverable, so this renders exactly what each
    recovered stage contributed and says plainly what is missing.
    """
    lines: List[str] = []
    add = lines.append
    add("salvaged study (stage checkpoints only; nothing was re-probed)")
    if not recovered:
        add("  no recoverable stages: the checkpoint directory holds no "
            "stage records matching this configuration")
        return "\n".join(lines)
    add(f"  recovered stages: {', '.join(recovered)}")
    done = set(recovered)
    if "round1" in done and result.round1_stats is not None:
        stats = result.round1_stats
        add(f"  round 1: {stats.probes} probes, "
            f"{stats.completed_fraction * 100:.1f}% complete, "
            f"{result.peer_ases_round1} peer ASes")
    if "round2" in done and result.round2_stats is not None:
        stats = result.round2_stats
        add(f"  round 2: {stats.probes} probes, "
            f"{stats.completed_fraction * 100:.1f}% complete, "
            f"{result.peer_ases_round2} peer ASes")
    for row in result.table1:
        add(f"  census {row.label}: {row.total} interfaces "
            f"(BGP {row.bgp_fraction * 100:.1f}%, "
            f"WHOIS {row.whois_fraction * 100:.1f}%, "
            f"IXP {row.ixp_fraction * 100:.1f}%)")
    if "alias" in done:
        add(f"  verified borders: {len(result.abis)} ABIs, "
            f"{len(result.cbis)} CBIs, "
            f"{len(result.final_segments)} segments, "
            f"{len(result.alias_sets)} alias sets")
    if "pinning" in done and result.pinning is not None:
        add(f"  pinning: {len(result.pinning.pinned)} metro-pinned, "
            f"coverage {result.metro_pin_coverage * 100:.1f}% "
            f"(with fallback {result.total_pin_coverage * 100:.1f}%)")
    if "crossval" in done and result.crossval is not None:
        add(f"  cross-validation: mean precision "
            f"{result.crossval.mean_precision * 100:.1f}%, recall "
            f"{result.crossval.mean_recall * 100:.1f}% over "
            f"{len(result.crossval.folds)} folds")
    if "vpi" in done and result.vpi is not None:
        add(f"  VPI: {len(result.vpi.vpi_cbis)} multi-cloud CBIs out of "
            f"{result.vpi.amazon_cbis} (pool {result.vpi.pool_size})")
    if "grouping" in done and result.grouping is not None:
        add(f"  grouping: {len(result.grouping.records)} peerings, "
            f"hidden fraction "
            f"{result.grouping.hidden_fraction() * 100:.1f}%")
    if "icg" in done and result.icg is not None:
        add(f"  ICG: {result.icg.node_count} nodes, "
            f"{result.icg.edge_count} edges")
    missing = [s for s in _salvage_order(result) if s not in done]
    if missing:
        add(f"  missing stages (resume to compute): {', '.join(missing)}")
    return "\n".join(lines)


def _salvage_order(result: StudyResult) -> List[str]:
    """The stage names this result's configuration would have run."""
    from repro.core.stages import STAGE_ORDER

    config = result.config
    skip = set()
    if config is not None and not config.run_crossval:
        skip.add("crossval")
    if config is not None and not config.run_vpi:
        skip.add("vpi")
    if config is None or not config.adaptive:
        skip.add("recovery")
    return [s for s in STAGE_ORDER if s not in skip]


def render_report(
    result: StudyResult,
    relationships: Optional[ASRelationships] = None,
) -> str:
    """A complete, human-readable paper-vs-measured report."""
    lines: List[str] = []
    add = lines.append
    scale = result.scale or 1.0

    add("=" * 74)
    add("Amazon peering-fabric study: measured vs. paper (IMC '19)")
    add(f"world scale = {scale:g} of the paper's 3,548 peer ASes; seed = {result.seed}")
    add("=" * 74)

    # Table 1 -------------------------------------------------------------
    add("")
    add("Table 1 -- interfaces and annotation sources")
    add(f"{'':>6} {'count':>7} {'(paper x scale)':>16} {'BGP%':>7} {'WHOIS%':>7} {'IXP%':>6}   paper: BGP/WHOIS/IXP")
    for row in tables.table1(result):
        p_count, p_bgp, p_whois, p_ixp = paper.TABLE1[row.label]
        add(
            f"{row.label:>6} {row.total:>7} {p_count * scale:>16.0f} "
            f"{_fmt_pct(row.bgp_pct)} {_fmt_pct(row.whois_pct)} {_fmt_pct(row.ixp_pct)}"
            f"   {p_bgp * 100:.1f}/{p_whois * 100:.1f}/{p_ixp * 100:.1f}"
        )
    if result.round1_stats:
        add(
            f"round-1 yield: completed {result.round1_stats.completed_fraction * 100:.1f}% "
            f"(paper {paper.COMPLETED_FRACTION * 100:.1f}%), "
            f"left Amazon {result.round1_stats.left_cloud_fraction * 100:.1f}% "
            f"(paper {paper.LEFT_AMAZON_FRACTION * 100:.0f}%)"
        )

    # Table 2 -------------------------------------------------------------
    add("")
    add("Table 2 -- heuristic confirmation of candidate ABIs (CBIs)")
    for row in tables.table2(result):
        p_ind_a, p_ind_c, p_cum_a, p_cum_c = paper.TABLE2[row.heuristic]
        add(
            f"{row.heuristic:>10}: individual {row.individual_abis} ({row.individual_cbis})"
            f"  cumulative {row.cumulative_abis} ({row.cumulative_cbis})"
            f"   paper x scale: {p_ind_a * scale:.0f} ({p_ind_c * scale:.0f}) /"
            f" {p_cum_a * scale:.0f} ({p_cum_c * scale:.0f})"
        )
    if result.heuristics:
        total = len(result.heuristics.confirmed_abis) + len(result.heuristics.unconfirmed_abis)
        frac = len(result.heuristics.confirmed_abis) / total if total else 0.0
        add(
            f"confirmed ABI fraction: {frac * 100:.1f}% "
            f"(paper {paper.HEURISTIC_CONFIRMED_ABI_FRACTION * 100:.1f}%)"
        )

    # §5.2 ---------------------------------------------------------------
    if result.verification:
        v = result.verification
        add("")
        add("Alias verification (5.2)")
        add(
            f"alias sets: {len(result.alias_sets)} (paper x scale {paper.ALIAS_SETS * scale:.0f}); "
            f"label changes ABI->CBI {v.changed_abi_to_cbi}, CBI->ABI {v.changed_cbi_to_abi}, "
            f"CBI->CBI {v.changed_cbi_to_cbi} (paper {paper.CHANGES_ABI_TO_CBI}/"
            f"{paper.CHANGES_CBI_TO_ABI}/{paper.CHANGES_CBI_TO_CBI} at full scale)"
        )
        if v.ownership and v.ownership.set_count:
            o = v.ownership
            add(
                f"sets with >50% majority owner: {o.majority_over_half / o.set_count * 100:.0f}% "
                f"(paper {paper.ALIAS_MAJORITY_OVER_HALF * 100:.0f}%), unanimous "
                f"{o.unanimous / o.set_count * 100:.0f}% (paper {paper.ALIAS_UNANIMOUS * 100:.0f}%)"
            )
        add(
            f"final: {len(result.abis)} ABIs, {len(result.cbis)} CBIs "
            f"(paper x scale {paper.FINAL_ABIS * scale:.0f} / {paper.FINAL_CBIS * scale:.0f})"
        )

    # Table 3 / §6 ----------------------------------------------------------
    add("")
    add("Table 3 -- anchors and pinning")
    for row in tables.table3(result):
        add(
            f"{row.evidence:>8}: exclusive {row.exclusive:>5}  cumulative {row.cumulative:>5}"
            f"   paper x scale: {paper.TABLE3_EXCLUSIVE[row.evidence] * scale:.0f} /"
            f" {paper.TABLE3_CUMULATIVE[row.evidence] * scale:.0f}"
        )
    add(
        f"metro-level coverage {result.metro_pin_coverage * 100:.1f}% "
        f"(paper {paper.METRO_PIN_COVERAGE * 100:.1f}%); with regional fallback "
        f"{result.total_pin_coverage * 100:.1f}% (paper {paper.TOTAL_PIN_COVERAGE * 100:.1f}%)"
    )
    if result.pinning:
        add(f"pinning rounds: {result.pinning.rounds} (paper {paper.PINNING_ROUNDS})")
    if result.crossval:
        add(
            f"cross-validation: precision {result.crossval.mean_precision * 100:.1f}% "
            f"(paper {paper.PINNING_PRECISION * 100:.1f}%), recall "
            f"{result.crossval.mean_recall * 100:.1f}% (paper {paper.PINNING_RECALL * 100:.1f}%)"
        )

    # Figures 4-5 -----------------------------------------------------------
    add("")
    add("Figures 4-5 -- RTT distributions")
    f4a = figures.fig4a_series(result)
    f4b = figures.fig4b_series(result)
    f5 = figures.fig5_series(result)
    from repro.analysis.ascii import ascii_cdf

    add(ascii_cdf(f4a, marker=2.0, title="Fig 4a: CDF of min-RTT to ABIs (ms; | = 2 ms knee)"))
    add("")
    add(ascii_cdf(f4b, marker=2.0, title="Fig 4b: CDF of segment min-RTT differences (ms)"))
    add(
        f"Fig 4a: {figures.fraction_below(f4a, paper.FIG4A_KNEE_MS) * 100:.0f}% of ABIs under "
        f"{paper.FIG4A_KNEE_MS:.0f} ms (paper ~{paper.FIG4A_FRACTION_UNDER_KNEE * 100:.0f}%)"
    )
    add(
        f"Fig 4b: {figures.fraction_below(f4b, paper.FIG4B_KNEE_MS) * 100:.0f}% of segments under "
        f"{paper.FIG4B_KNEE_MS:.0f} ms (paper ~{paper.FIG4B_FRACTION_UNDER_KNEE * 100:.0f}%)"
    )
    add(
        f"Fig 5: {figures.fraction_above(f5, paper.FIG5_RATIO_THRESHOLD) * 100:.0f}% of ratios over "
        f"{paper.FIG5_RATIO_THRESHOLD} (paper {paper.FIG5_FRACTION_OVER_THRESHOLD * 100:.0f}%)"
    )

    # Table 4 -----------------------------------------------------------------
    add("")
    add("Table 4 -- VPIs visible from other clouds")
    for row in tables.table4(result):
        p_pair = paper.TABLE4_PAIRWISE[row.cloud]
        p_cum = paper.TABLE4_CUMULATIVE[row.cloud]
        add(
            f"{row.cloud:>10}: pairwise {row.pairwise:>5} ({row.pairwise_pct:.2f}%)  "
            f"cumulative {row.cumulative:>5} ({row.cumulative_pct:.2f}%)"
            f"   paper: {p_pair[1] * 100:.2f}% / {p_cum[1] * 100:.2f}%"
        )

    # Table 5 / 6 ----------------------------------------------------------------
    add("")
    add("Table 5 -- peering groups (AS% / CBI% / ABI%)")
    for row in tables.table5(result):
        p = paper.TABLE5[row.group]
        add(
            f"{row.group:>9}: {row.ases:>4} ({row.ases_pct:4.1f}%)  {row.cbis:>5} ({row.cbis_pct:4.1f}%)  "
            f"{row.abis:>4} ({row.abis_pct:4.1f}%)   paper: {p[0] * 100:.0f}/{p[1] * 100:.0f}/{p[2] * 100:.0f}"
        )
    if result.grouping:
        add(
            f"hidden peerings: {result.grouping.hidden_fraction() * 100:.1f}% of peer ASes "
            f"(paper {paper.HIDDEN_PEERING_FRACTION * 100:.1f}%)"
        )
    add(
        f"BGP-visible peer recovery: {result.bgp_recovery_fraction * 100:.0f}% of "
        f"{len(result.bgp_visible_peers)} (paper {paper.BGP_RECOVERY_FRACTION * 100:.0f}% of "
        f"{paper.BGP_REPORTED_PEERINGS})"
    )
    add("")
    add("Table 6 -- top hybrid peering profiles")
    for profile, count in tables.table6(result)[:8]:
        add(f"  {'; '.join(sorted(profile)):<42} {count}")

    # §7.4 --------------------------------------------------------------------------
    if result.icg:
        add("")
        add("Figure 7 / 7.4 -- the interface connectivity graph")
        add(
            f"largest component: {result.icg.largest_component_fraction * 100:.1f}% of nodes "
            f"(paper {paper.ICG_LARGEST_COMPONENT_FRACTION * 100:.1f}%)"
        )
        add(
            f"intra-region fraction of both-end-pinned edges: "
            f"{result.icg.intra_region_fraction * 100:.1f}% (paper {paper.ICG_INTRA_REGION_FRACTION * 100:.0f}%)"
        )
        abi_deg = result.icg.abi_degrees
        cbi_deg = result.icg.cbi_degrees
        add(
            f"ABI degree: deg<=1 {figures.degree_fraction_at_most(abi_deg, 1) * 100:.0f}% "
            f"(paper {paper.FIG7A_ABI_DEG1_FRACTION * 100:.0f}%), "
            f"deg<10 {figures.degree_fraction_at_most(abi_deg, 9) * 100:.0f}% "
            f"(paper {paper.FIG7A_ABI_UNDER10_FRACTION * 100:.0f}%)"
        )
        add(
            f"CBI degree: deg<=1 {figures.degree_fraction_at_most(cbi_deg, 1) * 100:.0f}% "
            f"(paper {paper.FIG7B_CBI_DEG1_FRACTION * 100:.0f}%), "
            f"deg<=8 {figures.degree_fraction_at_most(cbi_deg, 8) * 100:.0f}% "
            f"(paper {paper.FIG7B_CBI_UNDER8_FRACTION * 100:.0f}%)"
        )

    add("")
    # runtime_seconds is snapshotted from the stage-span view at the end
    # of the run; fold the spans directly if the snapshot is missing.
    timings = result.runtime_seconds or (
        result.metrics.stages if result.metrics else {}
    )
    add("timings: " + ", ".join(f"{k}={v:.1f}s" for k, v in timings.items()))
    if result.metrics and result.metrics.campaigns:
        add("campaign throughput:")
        for progress in result.metrics.campaigns.values():
            add("  " + progress.summary())
    _render_resilience(result, add)
    _render_data_quality(result, add)
    if result.config is not None:
        add(
            "config: "
            + ", ".join(f"{k}={v}" for k, v in result.config.as_dict().items())
        )
    return "\n".join(lines)
