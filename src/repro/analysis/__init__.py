"""Tables, figures, and the paper-vs-measured report."""

from repro.analysis import figures, paper_values, tables
from repro.analysis.report import render_report

__all__ = ["figures", "paper_values", "render_report", "tables"]
