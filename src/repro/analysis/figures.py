"""Computation of the paper's figure series from a :class:`StudyResult`.

Figures are returned as plain numeric series (CDF points or per-group
samples), ready for assertion in benchmarks or ASCII rendering in the CLI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.graph import degree_cdf
from repro.core.results import StudyResult
from repro.datasets.relationships import ASRelationships
from repro.world.profiles import ALL_GROUPS


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, fraction <= value) points of the empirical CDF."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    points: List[Tuple[float, float]] = []
    for i, v in enumerate(ordered, start=1):
        if i == n or ordered[i] != v:
            points.append((v, i / n))
    return points


def fraction_below(values: Sequence[float], threshold: float) -> float:
    if not values:
        return 0.0
    return sum(1 for v in values if v < threshold) / len(values)


def fraction_above(values: Sequence[float], threshold: float) -> float:
    if not values:
        return 0.0
    return sum(1 for v in values if v > threshold) / len(values)


# --- Figure 4 -----------------------------------------------------------------


def fig4a_series(result: StudyResult) -> List[float]:
    """min-RTT from the closest region to each ABI."""
    return list(result.abi_min_rtts)


def fig4b_series(result: StudyResult) -> List[float]:
    """min-RTT difference across each interconnection segment."""
    return list(result.segment_rtt_diff.values())


# --- Figure 5 -----------------------------------------------------------------


def fig5_series(result: StudyResult) -> List[float]:
    """Ratio of the two lowest region min-RTTs for unpinned interfaces."""
    if result.pinning is None:
        return []
    return list(result.pinning.rtt_ratios)


# --- Figure 6 -----------------------------------------------------------------

FIG6_FEATURES = (
    "bgp_slash24",
    "reachable_slash24",
    "abis",
    "cbis",
    "rtt_diff",
    "metros",
)


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary for one boxplot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    count: int


def _quantile(ordered: List[float], q: float) -> float:
    if not ordered:
        return float("nan")
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def box_stats(values: Sequence[float]) -> BoxStats:
    ordered = sorted(values)
    if not ordered:
        return BoxStats(0.0, 0.0, 0.0, 0.0, 0.0, 0)
    return BoxStats(
        minimum=ordered[0],
        q1=_quantile(ordered, 0.25),
        median=_quantile(ordered, 0.5),
        q3=_quantile(ordered, 0.75),
        maximum=ordered[-1],
        count=len(ordered),
    )


def fig6_features(
    result: StudyResult, relationships: ASRelationships
) -> Dict[str, Dict[str, BoxStats]]:
    """Per-group boxplot summaries of the six Fig. 6 features."""
    if result.grouping is None:
        return {}
    raw = result.grouping.group_features(relationships)
    out: Dict[str, Dict[str, BoxStats]] = {}
    for group in ALL_GROUPS:
        out[group] = {
            feature: box_stats(raw[group][feature]) for feature in FIG6_FEATURES
        }
    return out


# --- Figure 7 -----------------------------------------------------------------


def fig7a_series(result: StudyResult) -> List[Tuple[int, float]]:
    """CDF of ABI degrees in the ICG."""
    if result.icg is None:
        return []
    return degree_cdf(result.icg.abi_degrees)


def fig7b_series(result: StudyResult) -> List[Tuple[int, float]]:
    """CDF of CBI degrees in the ICG."""
    if result.icg is None:
        return []
    return degree_cdf(result.icg.cbi_degrees)


def degree_fraction_at_most(degrees: Sequence[int], k: int) -> float:
    if not degrees:
        return 0.0
    return sum(1 for d in degrees if d <= k) / len(degrees)
