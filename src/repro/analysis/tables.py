"""Computation of the paper's tables from a :class:`StudyResult`.

Each ``tableN`` function returns plain data (lists of row tuples or dicts)
so benchmarks and the CLI can render or assert on them without re-running
any inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.results import StudyResult
from repro.world.profiles import ALL_GROUPS, PB_B, PB_NB, PR_B_NV, PR_B_V, PR_NB_NV, PR_NB_V


@dataclass(frozen=True)
class Table1Row:
    label: str
    total: int
    bgp_pct: float
    whois_pct: float
    ixp_pct: float


def table1(result: StudyResult) -> List[Table1Row]:
    """Interface censuses before and after expansion probing."""
    return [
        Table1Row(
            label=row.label,
            total=row.total,
            bgp_pct=row.bgp_fraction * 100,
            whois_pct=row.whois_fraction * 100,
            ixp_pct=row.ixp_fraction * 100,
        )
        for row in result.table1
    ]


@dataclass(frozen=True)
class Table2Row:
    heuristic: str
    individual_abis: int
    individual_cbis: int
    cumulative_abis: int
    cumulative_cbis: int


def table2(result: StudyResult) -> List[Table2Row]:
    """Heuristic confirmation counts (§5.1)."""
    if result.heuristics is None:
        return []
    outcome = result.heuristics

    def cbis_of(abis) -> int:
        seen = set()
        for (a, c) in result.final_segments:
            if a in abis:
                seen.add(c)
        return len(seen)

    rows = []
    for name in ("ixp", "hybrid", "reachable"):
        rows.append(
            Table2Row(
                heuristic=name,
                individual_abis=len(outcome.individual_abis.get(name, ())),
                individual_cbis=cbis_of(outcome.individual_abis.get(name, set())),
                cumulative_abis=len(outcome.cumulative_abis.get(name, ())),
                cumulative_cbis=cbis_of(outcome.cumulative_abis.get(name, set())),
            )
        )
    return rows


@dataclass(frozen=True)
class Table3Row:
    evidence: str
    exclusive: int
    cumulative: int


def table3(result: StudyResult) -> List[Table3Row]:
    """Anchor and pinned-interface counts by evidence (§6.1)."""
    if result.anchors is None or result.pinning is None:
        return []
    rows: List[Table3Row] = []
    exclusive = result.anchors.exclusive_counts()
    cumulative = result.anchors.cumulative_counts()
    for name in ("dns", "ixp", "metro", "native"):
        rows.append(Table3Row(name, exclusive[name], cumulative[name]))
    anchor_total = len(result.anchors.anchors)
    alias_pinned = len(result.pinning.pinned_by_alias)
    rtt_pinned = len(result.pinning.pinned_by_rtt)
    rows.append(Table3Row("alias", alias_pinned, anchor_total + alias_pinned))
    rows.append(
        Table3Row("min-rtt", rtt_pinned, anchor_total + alias_pinned + rtt_pinned)
    )
    return rows


@dataclass(frozen=True)
class Table4Row:
    cloud: str
    pairwise: int
    pairwise_pct: float
    cumulative: int
    cumulative_pct: float


def table4(result: StudyResult) -> List[Table4Row]:
    """VPI overlaps per probing cloud (§7.1)."""
    if result.vpi is None:
        return []
    rows = []
    for cloud in ("microsoft", "google", "ibm", "oracle"):
        rows.append(
            Table4Row(
                cloud=cloud,
                pairwise=len(result.vpi.pairwise.get(cloud, ())),
                pairwise_pct=result.vpi.pairwise_fraction(cloud) * 100,
                cumulative=len(result.vpi.cumulative.get(cloud, ())),
                cumulative_pct=result.vpi.cumulative_fraction(cloud) * 100,
            )
        )
    return rows


@dataclass(frozen=True)
class Table5Row:
    group: str
    ases: int
    ases_pct: float
    cbis: int
    cbis_pct: float
    abis: int
    abis_pct: float


def table5(result: StudyResult) -> List[Table5Row]:
    """The six-group breakdown of Amazon's peerings (§7.2)."""
    grouping = result.grouping
    if grouping is None:
        return []
    n_ases = max(len(grouping.all_ases()), 1)
    n_cbis = max(len(grouping.all_cbis()), 1)
    n_abis = max(len(grouping.all_abis()), 1)
    rows = []
    for group in ALL_GROUPS:
        a = len(grouping.ases_in_group(group))
        c = len(grouping.cbis_in_group(group))
        b = len(grouping.abis_in_group(group))
        rows.append(
            Table5Row(
                group=group,
                ases=a,
                ases_pct=a / n_ases * 100,
                cbis=c,
                cbis_pct=c / n_cbis * 100,
                abis=b,
                abis_pct=b / n_abis * 100,
            )
        )
    return rows


def table5_aggregates(result: StudyResult) -> Dict[str, Tuple[int, int, int]]:
    """The italic aggregate rows of Table 5: Pb, Pr-nB, Pr-B."""
    grouping = result.grouping
    if grouping is None:
        return {}
    combos = {
        "Pb": (PB_NB, PB_B),
        "Pr-nB": (PR_NB_V, PR_NB_NV),
        "Pr-B": (PR_B_NV, PR_B_V),
    }
    out: Dict[str, Tuple[int, int, int]] = {}
    for label, groups in combos.items():
        ases = set()
        cbis = set()
        abis = set()
        for g in groups:
            ases |= grouping.ases_in_group(g)
            cbis |= grouping.cbis_in_group(g)
            abis |= grouping.abis_in_group(g)
        out[label] = (len(ases), len(cbis), len(abis))
    return out


def table6(result: StudyResult) -> List[Tuple[FrozenSet[str], int]]:
    """Hybrid-peering census, most common combination first (§7.2)."""
    grouping = result.grouping
    if grouping is None:
        return []
    census = grouping.hybrid_census()
    return sorted(census.items(), key=lambda kv: (-kv[1], tuple(sorted(kv[0]))))
