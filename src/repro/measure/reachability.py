"""Reachability probing from a vantage point on the public Internet.

§5.1's third heuristic probes every candidate ABI and CBI from a node at
the University of Oregon: ABIs are usually unreachable from outside
(Amazon filters), while CBIs often answer.  The prober exposes exactly
that observable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.net.ip import IPv4
from repro.net.rng import keyed_uniform
from repro.world.model import World


class PublicVantagePoint:
    """Probes interfaces from outside all clouds.

    Probe loss defaults to the world's single
    ``WorldConfig.probe_loss_rate`` knob -- the same one the traceroute
    engine draws from -- so the whole measurement plane shares one loss
    model; pass ``loss_rate`` explicitly to override (e.g. 0.0 in tests).
    """

    def __init__(
        self, world: World, seed: int = 0, loss_rate: Optional[float] = None
    ) -> None:
        self.world = world
        self.loss_rate = (
            world.config.probe_loss_rate if loss_rate is None else loss_rate
        )
        self._seed = seed
        self._cache: Dict[IPv4, bool] = {}

    def reachable(self, ip: IPv4) -> bool:
        """True when the interface answers probes from the public Internet."""
        cached = self._cache.get(ip)
        if cached is not None:
            return cached
        iface = self.world.interfaces.get(ip)
        # Loss is keyed to the probed address so the answer survives any
        # probing order (the cache is then a pure memo, not a tiebreak).
        value = (
            iface is not None
            and iface.responsive
            and ip in self.world.publicly_reachable
            and keyed_uniform("public-vp", self._seed, ip) >= self.loss_rate
        )
        self._cache[ip] = value
        return value

    def probe_all(self, ips: Iterable[IPv4]) -> Dict[IPv4, bool]:
        return {ip: self.reachable(ip) for ip in ips}
