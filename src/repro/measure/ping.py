"""Min-RTT probing of interfaces from cloud vantage points.

§6 bases its pinning anchors and co-presence rules on minimum RTT from the
regions' VMs ("This probing was done for a full day and used exclusively
ICMP echo reply messages...").  The prober samples an interface several
times and keeps the minimum; the floor of the distribution is the
propagation delay given by the world's geography, so the 2 ms knees of
Fig. 4 are emergent, not configured.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.ip import IPv4
from repro.world.model import World

#: Fixed per-probe processing/serialisation floor in milliseconds.
PROCESSING_FLOOR_MS = 0.15


class Pinger:
    """Measures min-RTT from (cloud, region) VMs to interfaces."""

    def __init__(self, world: World, seed: int = 0, samples: int = 6) -> None:
        self.world = world
        self.samples = samples
        self._seed = seed
        self._cache: Dict[Tuple[str, str, IPv4], Optional[float]] = {}

    def min_rtt(self, cloud: str, region: str, ip: IPv4) -> Optional[float]:
        """Minimum observed RTT in ms, or None when unreachable."""
        key = (cloud, region, ip)
        if key in self._cache:
            return self._cache[key]
        value = self._measure(cloud, region, ip)
        self._cache[key] = value
        return value

    def _measure(self, cloud: str, region: str, ip: IPv4) -> Optional[float]:
        iface = self.world.interfaces.get(ip)
        if iface is None or not iface.responsive:
            return None
        router = self.world.routers.get(iface.router_id)
        if router is not None and router.responsiveness <= 0.0:
            return None
        # Many interfaces filter ICMP echo entirely (config property).
        icmp_rate = getattr(self.world.config, "icmp_response_rate", 1.0)
        if ((ip * 2654435761 >> 5) & 0xFFFF) / 65536.0 >= icmp_rate:
            return None
        base = self.world.rtt_legs_ms(cloud, region, ip)
        if base is None:
            return None
        jitter = self.world.config.ping_jitter_ms
        # A private RNG keyed to the probed interface: the min-RTT of a
        # (cloud, region, ip) triple is a function of the triple alone,
        # not of how many other interfaces were measured first.
        rng = random.Random(repr(("ping", self._seed, cloud, region, ip)))
        best = min(
            rng.expovariate(1.0 / max(jitter, 1e-6))
            for _ in range(self.samples)
        )
        return base + PROCESSING_FLOOR_MS + best

    # ------------------------------------------------------------------

    def min_rtt_by_region(
        self, cloud: str, ip: IPv4, regions: Optional[Iterable[str]] = None
    ) -> Dict[str, float]:
        """RTTs from every region that can reach the interface."""
        out: Dict[str, float] = {}
        for region in regions or self.world.region_names(cloud):
            rtt = self.min_rtt(cloud, region, ip)
            if rtt is not None:
                out[region] = rtt
        return out

    def closest_region(
        self, cloud: str, ip: IPv4, regions: Optional[Iterable[str]] = None
    ) -> Optional[Tuple[str, float]]:
        """(region, min-RTT) of the closest vantage point, or None."""
        rtts = self.min_rtt_by_region(cloud, ip, regions)
        if not rtts:
            return None
        region = min(rtts, key=lambda r: rtts[r])
        return region, rtts[region]

    def two_lowest(
        self, cloud: str, ip: IPv4
    ) -> Optional[List[Tuple[str, float]]]:
        """The two (region, RTT) pairs with lowest RTT; None if unreachable.

        Feeds the regional-fallback pinning of §6.1 (Fig. 5's min-RTT
        ratio).  Returns a single-element list for single-region interfaces.
        """
        rtts = self.min_rtt_by_region(cloud, ip)
        if not rtts:
            return None
        ranked = sorted(rtts.items(), key=lambda kv: kv[1])
        return ranked[:2]
