"""Study-level supervision: deadlines, budgets, and graceful cancellation.

The executor already survives *shard* failures (retry -> quarantine);
:class:`StudySupervisor` supervises the *study*.  It owns four concerns:

* **cancellation** -- SIGINT/SIGTERM (or an explicit
  :meth:`request_cancel`) flips a flag that :meth:`poll` converts into
  :class:`~repro.errors.StudyInterrupted` at the next safe point: the
  executor polls between shard merges, the pipeline between stages, so
  journals and stage checkpoints are always finalized before exit.  A
  second signal restores the default handler and re-raises it, so a
  stuck study can still be killed hard;
* **deadline** -- an optional wall-clock budget for the whole study
  (:class:`~repro.errors.DeadlineExceeded`, a ``StudyInterrupted``
  subtype, so an over-deadline study is *resumable*, not failed);
* **retry budget** -- an optional study-wide cap on shard retries,
  independent of the per-shard ``max_retries``: once spent, further
  failures quarantine immediately instead of burning time on a campaign
  that is clearly sick;
* **hung-shard detection** -- a horizon after which a pooled shard that
  has produced no result is declared lost
  (:class:`~repro.errors.HungShardError`), distinct from the per-attempt
  ``shard_timeout`` retry knob.

The supervisor is also the chaos hook for crash-safety tests and CI:
``abort_after_stage`` raises a graceful interrupt after a named stage
completes, ``kill_after_stage`` SIGKILLs the process -- both exercise the
same resume path a real crash would.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from types import FrameType
from typing import Callable, List, Optional

from repro.errors import DeadlineExceeded, StudyInterrupted

_HandlerType = Callable[[int, Optional[FrameType]], None]


class StudySupervisor:
    """Cooperative watchdog for one study run (usable as a context manager).

    All checks happen in :meth:`poll`, called from safe points only --
    the supervisor never interrupts a shard mid-flight, so the
    measurement journals stay consistent by construction.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        retry_budget: Optional[int] = None,
        hung_shard_after_s: Optional[float] = None,
        handle_signals: bool = False,
        abort_after_stage: Optional[str] = None,
        kill_after_stage: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline_s = deadline_s
        self.retry_budget = retry_budget
        self.hung_shard_after_s = hung_shard_after_s
        self.handle_signals = handle_signals
        self.abort_after_stage = abort_after_stage
        self.kill_after_stage = kill_after_stage
        self._clock = clock
        self._started_at: Optional[float] = None
        self._retries_spent = 0
        self._cancel_reason: Optional[str] = None
        self._stages_completed: List[str] = []
        self._previous_handlers: List[
            "tuple[int, object]"
        ] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started_at is None:
            self._started_at = self._clock()
        if self.handle_signals:
            self._install_handlers()

    def stop(self) -> None:
        self._restore_handlers()

    def __enter__(self) -> "StudySupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # checks (called from safe points)
    # ------------------------------------------------------------------

    def poll(self) -> None:
        """Raise if the study should stop now (cancel or deadline)."""
        if self._cancel_reason is not None:
            raise StudyInterrupted(self._cancel_reason)
        if (
            self.deadline_s is not None
            and self._started_at is not None
            and self._clock() - self._started_at > self.deadline_s
        ):
            raise DeadlineExceeded(self.deadline_s)

    def request_cancel(self, reason: str) -> None:
        """Ask the study to stop at the next safe point (idempotent)."""
        if self._cancel_reason is None:
            self._cancel_reason = reason

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_reason is not None

    def consume_retry(self) -> bool:
        """Spend one unit of the study-wide retry budget.

        ``True`` -> the retry may proceed; ``False`` -> the budget is
        exhausted and the shard must quarantine immediately.  With no
        budget configured, retries are always allowed (the per-shard
        ``max_retries`` still applies either way).
        """
        if self.retry_budget is None:
            return True
        if self._retries_spent >= self.retry_budget:
            return False
        self._retries_spent += 1
        return True

    @property
    def retries_spent(self) -> int:
        return self._retries_spent

    # ------------------------------------------------------------------
    # stage lifecycle (pipeline hook + chaos injection)
    # ------------------------------------------------------------------

    def note_stage_complete(self, stage: str) -> None:
        """Record a completed stage; fire any configured chaos hook."""
        self._stages_completed.append(stage)
        if self.kill_after_stage == stage:
            # Chaos hook: an un-catchable kill, exactly like the OOM
            # killer or a power cut.  The stage checkpoint was already
            # fsynced, so --resume must reproduce the clean digest.
            os.kill(os.getpid(), signal.SIGKILL)
        if self.abort_after_stage == stage:
            raise StudyInterrupted(f"aborted after stage {stage!r}")

    @property
    def stages_completed(self) -> List[str]:
        return list(self._stages_completed)

    # ------------------------------------------------------------------
    # signal handling
    # ------------------------------------------------------------------

    def _install_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return  # signal.signal is main-thread-only
        if self._previous_handlers:
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous = signal.getsignal(signum)
            signal.signal(signum, self._on_signal)
            self._previous_handlers.append((signum, previous))

    def _restore_handlers(self) -> None:
        for signum, previous in reversed(self._previous_handlers):
            try:
                signal.signal(signum, previous)  # type: ignore[arg-type]
            except (ValueError, TypeError):
                pass
        self._previous_handlers.clear()

    def _on_signal(self, signum: int, frame: Optional[FrameType]) -> None:
        if self._cancel_reason is not None:
            # Second signal: the user really means it.  Restore the
            # previous disposition and re-deliver, which by default
            # terminates immediately (resume still works -- journals are
            # appended and stage files replaced atomically).
            self._restore_handlers()
            signal.raise_signal(signum)
            return
        name = signal.Signals(signum).name
        self.request_cancel(f"received {name}")
