"""Scamper-like traceroute engine over the synthetic Internet.

Reproduces the measurement semantics of §3: UDP probes from a region's VM,
per-hop responses with the *incoming* interface (usually -- a configurable
fraction of client border routers answer with a different own interface,
the classic third-party artifact of §9), termination after five consecutive
unresponsive hops, and a status flag describing how the probe ended.

The engine is the only component that turns ground-truth ``PathPlan``s into
observable measurements; everything downstream sees only ``Traceroute``
records.

Every probe draws its noise (responsiveness, loss, jitter, loop injection)
from an RNG derived solely from ``(engine seed, cloud, region, dst)``.  A
probe's outcome therefore never depends on how many probes ran before it,
which is what lets the sharded executor split a campaign across worker
processes and still reproduce the serial run bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.net.ip import IPv4

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.measure.faults import FaultPlan
from repro.world.entities import RouterRole
from repro.world.model import PathPlan, World

#: Scamper's gap limit used by the paper: five unresponsive hops (§3).
GAP_LIMIT = 5


class StopReason:
    """How a traceroute ended (string enum, mirrors scamper stop flags)."""

    COMPLETED = "completed"
    GAP_LIMIT = "gaplimit"
    LOOP = "loop"


@dataclass(frozen=True)
class TraceHop:
    """One TTL slot: the answering interface (or None) and its RTT."""

    ttl: int
    ip: Optional[IPv4]
    rtt_ms: Optional[float]


@dataclass
class Traceroute:
    """One completed measurement."""

    cloud: str
    region: str
    dst: IPv4
    hops: List[TraceHop]
    stop_reason: str

    @property
    def responsive_ips(self) -> List[IPv4]:
        return [h.ip for h in self.hops if h.ip is not None]

    @property
    def completed(self) -> bool:
        return self.stop_reason == StopReason.COMPLETED


class TracerouteEngine:
    """Executes probes against a :class:`World`."""

    def __init__(
        self,
        world: World,
        seed: int = 0,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.world = world
        self.config = world.config
        self.seed = seed
        self.faults = faults
        # Only observation faults matter here; transport faults (crashes,
        # slow shards) are the executor's business.
        self._probe_faults = (
            faults if faults is not None and faults.affects_probes else None
        )
        # Pre-fetch per-router data the hot loop needs.
        self._router_role = {
            rid: r.role for rid, r in world.routers.items()
        }
        self._router_ifaces = {
            rid: r.interface_ips for rid, r in world.routers.items()
        }
        # Violating the incoming-interface convention is a router *config*
        # property, not a per-probe accident: the same routers misbehave
        # on every probe (§9 cites >50% compliance overall).
        rate = self.config.third_party_response_rate
        world_seed = getattr(self.config, "seed", 0)
        self._third_party_routers = {
            rid
            for rid, role in self._router_role.items()
            if role == RouterRole.CLIENT_BORDER
            and ((rid * 2654435761 + world_seed * 97) & 0xFFFF) / 65536.0 < rate
        }

    # ------------------------------------------------------------------

    def _response_ip(self, router_id: int, incoming: IPv4, rng: random.Random) -> IPv4:
        """The incoming interface, unless the router is a third-party
        responder, in which case its fixed default (first) interface."""
        if router_id not in self._third_party_routers:
            return incoming
        ifaces = self._router_ifaces.get(router_id) or ()
        if not ifaces:
            return incoming
        return ifaces[0]

    def probe_rng(self, cloud: str, region: str, dst: IPv4) -> random.Random:
        """The per-probe noise stream: a pure function of the probe key."""
        return random.Random(repr(("probe", self.seed, cloud, region, dst)))

    def trace(
        self, cloud: str, region: str, dst: IPv4, salt: int = 0
    ) -> Traceroute:
        """Probe ``dst`` from the VM in ``region`` of ``cloud``.

        ``salt`` re-keys only the observation-fault draws (see
        ``FaultPlan.hop_suppressed``); the base noise stream is always
        the probe's own, so ``salt=0`` reproduces the historical trace
        byte-for-byte and a salted re-probe differs *only* where the
        fault plan fired.  The adaptive recovery round is the one
        caller that passes a non-zero salt.
        """
        plan = self.world.resolve_path(cloud, region, dst)
        return self._realize(
            plan, cloud, region, self.probe_rng(cloud, region, dst), salt
        )

    def _realize(
        self,
        plan: PathPlan,
        cloud: str,
        region: str,
        rng: random.Random,
        salt: int = 0,
    ) -> Traceroute:
        cfg = self.config
        catalog = self.world.catalog
        region_metro = self.world.regions[cloud][region].metro_code

        hops: List[TraceHop] = []
        gap = 0
        ttl = 0
        cum_rtt = 0.0
        prev_metro = region_metro
        seen_ips: List[IPv4] = []
        loop_injected = rng.random() < cfg.loop_rate
        faults = self._probe_faults

        for hop in plan.hops:
            ttl += 1
            cum_rtt_here = cum_rtt + catalog.rtt_ms(prev_metro, hop.metro_code)
            cum_rtt = cum_rtt_here
            prev_metro = hop.metro_code
            responds = (
                hop.responsiveness > 0.0
                and rng.random() < hop.responsiveness
                and rng.random() >= cfg.probe_loss_rate
            )
            # Injected loss / rate-limit windows draw from their own pure
            # hash (never ``rng``), so the base noise stream -- and with
            # it every fault-free hop -- matches the clean run exactly.
            if (
                responds
                and faults is not None
                and faults.hop_suppressed(cloud, region, plan.dest_ip, ttl, salt)
            ):
                responds = False
            if not responds:
                hops.append(TraceHop(ttl=ttl, ip=None, rtt_ms=None))
                gap += 1
                if gap >= GAP_LIMIT:
                    return Traceroute(cloud, region, plan.dest_ip, hops, StopReason.GAP_LIMIT)
                continue
            gap = 0
            ip = self._response_ip(hop.router_id, hop.ip, rng)
            if loop_injected and seen_ips and ttl > 2:
                # A forwarding loop: repeat an earlier interface once.
                ip = seen_ips[rng.randrange(len(seen_ips))]
                loop_injected = False
            rtt = (
                cum_rtt_here
                + cfg.hop_processing_ms * ttl
                + rng.expovariate(1.0 / max(cfg.ping_jitter_ms, 1e-6))
            )
            hops.append(TraceHop(ttl=ttl, ip=ip, rtt_ms=rtt))
            seen_ips.append(ip)

        dest_responds = plan.dest_responds and rng.random() >= cfg.probe_loss_rate
        if (
            dest_responds
            and faults is not None
            and faults.hop_suppressed(cloud, region, plan.dest_ip, ttl + 1, salt)
        ):
            dest_responds = False
        if dest_responds:
            ttl += 1
            rtt = cum_rtt + cfg.hop_processing_ms * ttl + rng.expovariate(
                1.0 / max(cfg.ping_jitter_ms, 1e-6)
            )
            hops.append(TraceHop(ttl=ttl, ip=plan.dest_ip, rtt_ms=rtt))
            return Traceroute(cloud, region, plan.dest_ip, hops, StopReason.COMPLETED)

        # Unresponsive tail until the gap limit fires.
        for _ in range(GAP_LIMIT - gap):
            ttl += 1
            hops.append(TraceHop(ttl=ttl, ip=None, rtt_ms=None))
        return Traceroute(cloud, region, plan.dest_ip, hops, StopReason.GAP_LIMIT)

    # ------------------------------------------------------------------

    def trace_many(
        self, cloud: str, region: str, targets: Iterator[IPv4]
    ) -> Iterator[Traceroute]:
        """Stream traceroutes for a target iterator (memory-bounded)."""
        for dst in targets:
            yield self.trace(cloud, region, dst)
