"""Composable consumers of traceroute streams.

Campaigns used to push every trace into a single bare callback, and any
extra bookkeeping (yield statistics, progress counters, the border
observatory) had to be hand-wired inside ``ProbeCampaign.run``.  The
:class:`ProbeSink` protocol replaces that: anything with a
``consume(trace)`` method is a sink, sinks compose through
:class:`FanoutSink`, and a sink may optionally expose ``close()`` to flush
state when the campaign that feeds it finishes.

Plain callables still work everywhere a sink is accepted --
:func:`as_sink` wraps them in a :class:`CallbackSink` -- so the historical
``consumer=lambda trace: ...`` call sites keep running unchanged.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Union, runtime_checkable

from repro.measure.traceroute import Traceroute


@runtime_checkable
class ProbeSink(Protocol):
    """Anything that can receive a stream of traceroutes.

    ``close()`` is optional; when present it is invoked once by the
    executor after the campaign's last trace has been delivered.
    """

    def consume(self, trace: Traceroute) -> None:  # pragma: no cover - protocol
        ...


#: What campaign APIs accept: a sink object or a bare per-trace callable.
SinkLike = Union[ProbeSink, Callable[[Traceroute], None]]


def as_sink(obj: SinkLike) -> ProbeSink:
    """Coerce ``obj`` to a :class:`ProbeSink` (callables get wrapped)."""
    if isinstance(obj, ProbeSink):
        return obj
    if callable(obj):
        return CallbackSink(obj)
    raise TypeError(f"not a ProbeSink or callable: {obj!r}")


def close_sink(sink: ProbeSink) -> None:
    """Invoke the optional ``close()`` hook, if the sink has one."""
    close = getattr(sink, "close", None)
    if close is not None:
        close()


class CallbackSink:
    """Adapter giving a bare ``Callable[[Traceroute], None]`` the sink API."""

    def __init__(self, fn: Callable[[Traceroute], None]) -> None:
        self.fn = fn

    def consume(self, trace: Traceroute) -> None:
        self.fn(trace)


class FanoutSink:
    """Deliver every trace to several sinks, in construction order."""

    def __init__(self, *sinks: SinkLike) -> None:
        self.sinks: List[ProbeSink] = [as_sink(s) for s in sinks]

    def consume(self, trace: Traceroute) -> None:
        for sink in self.sinks:
            sink.consume(trace)

    def close(self) -> None:
        for sink in self.sinks:
            close_sink(sink)


class StatsSink:
    """Record campaign yield statistics as traces stream past.

    ``left_cloud`` decides whether a trace escaped the probing cloud's
    address space (see ``CloudMembership``); omit it to count every trace
    as staying inside.
    """

    def __init__(
        self,
        stats,  # CampaignStats; untyped to avoid a circular import
        left_cloud: Optional[Callable[[Traceroute], bool]] = None,
    ) -> None:
        self.stats = stats
        self.left_cloud = left_cloud

    def consume(self, trace: Traceroute) -> None:
        left = self.left_cloud(trace) if self.left_cloud is not None else False
        self.stats.record(trace, left)


class CollectorSink:
    """Buffer every trace in order -- handy in tests and notebooks."""

    def __init__(self) -> None:
        self.traces: List[Traceroute] = []

    def consume(self, trace: Traceroute) -> None:
        self.traces.append(trace)


class NullSink:
    """Discard every trace.

    Useful when a campaign is run only for its side effects -- warming a
    checkpoint journal, smoke-testing the executor under a fault plan --
    and the traces themselves are not needed.
    """

    def consume(self, trace: Traceroute) -> None:
        pass
