"""Composable consumers of campaign event streams.

PR 1 grew three parallel callback families: the per-trace
:class:`ProbeSink` protocol, the per-shard ``ProgressCallback``, and --
with the observability layer -- per-span listeners.  :class:`EventSink`
collapses them into one consumer surface with three events:

* ``on_probe(trace)`` -- one merged traceroute, in serial order;
* ``on_shard_merged(progress, timing)`` -- a shard's results just
  entered the merged stream (``progress`` is the campaign's live
  :class:`~repro.measure.metrics.CampaignProgress`);
* ``on_span_closed(record)`` -- a tracer span closed (study, stage,
  campaign, shard, probe-batch, ...).

All handlers default to no-ops, so a sink subclasses only what it
needs; :class:`FanoutEvents` composes sinks; :func:`as_event_sink`
coerces the historical shapes (a :class:`ProbeSink`, a bare
``Callable[[Traceroute], None]``) without churn at the call sites.

The PR 1 compatibility shims (``as_sink``, ``FanoutSink``,
``CallbackSink``), deprecated since the event-sink unification, are
gone: :func:`as_event_sink` / :class:`FanoutEvents` are the one way to
coerce and compose sinks, and the API lockfile records the slimmer
surface.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.measure.traceroute import Traceroute

if TYPE_CHECKING:
    from repro.measure.metrics import CampaignProgress, ShardTiming
    from repro.obs.span import SpanRecord


@runtime_checkable
class ProbeSink(Protocol):
    """Anything that can receive a stream of traceroutes.

    ``close()`` is optional; when present it is invoked once by the
    executor after the campaign's last trace has been delivered.
    """

    def consume(self, trace: Traceroute) -> None:  # pragma: no cover - protocol
        ...


#: What campaign APIs accept: an event sink, a probe sink, or a bare
#: per-trace callable.
SinkLike = Union["EventSink", ProbeSink, Callable[[Traceroute], None]]


class EventSink:
    """The unified campaign event consumer; every handler is a no-op.

    Subclass and override only the events you care about.  ``close()``
    fires once per campaign, after that campaign's last event.
    """

    def on_probe(self, trace: Traceroute) -> None:
        pass

    def on_shard_merged(
        self, progress: "CampaignProgress", timing: "ShardTiming"
    ) -> None:
        pass

    def on_span_closed(self, record: "SpanRecord") -> None:
        pass

    def close(self) -> None:
        pass


class ProbeSinkEvents(EventSink):
    """Adapter: a :class:`ProbeSink` consuming the unified event stream."""

    def __init__(self, sink: ProbeSink) -> None:
        self.sink = sink

    def on_probe(self, trace: Traceroute) -> None:
        self.sink.consume(trace)

    def close(self) -> None:
        close_sink(self.sink)


class CallbackEvents(EventSink):
    """Adapter: a bare per-trace callable on the unified event stream."""

    def __init__(self, fn: Callable[[Traceroute], None]) -> None:
        self.fn = fn

    def on_probe(self, trace: Traceroute) -> None:
        self.fn(trace)


class ProgressCallbackEvents(EventSink):
    """Adapter: a legacy per-shard ``ProgressCallback`` as an event sink."""

    def __init__(
        self, fn: Callable[["CampaignProgress", "ShardTiming"], None]
    ) -> None:
        self.fn = fn

    def on_shard_merged(
        self, progress: "CampaignProgress", timing: "ShardTiming"
    ) -> None:
        self.fn(progress, timing)


class FanoutEvents(EventSink):
    """Deliver every event to several sinks, in construction order.

    Accepts anything :func:`as_event_sink` accepts; ``None`` entries are
    dropped, so optional sinks compose without conditionals.
    """

    def __init__(self, *sinks: Optional[SinkLike]) -> None:
        self.sinks: List[EventSink] = [
            as_event_sink(s) for s in sinks if s is not None
        ]

    def on_probe(self, trace: Traceroute) -> None:
        for sink in self.sinks:
            sink.on_probe(trace)

    def on_shard_merged(
        self, progress: "CampaignProgress", timing: "ShardTiming"
    ) -> None:
        for sink in self.sinks:
            sink.on_shard_merged(progress, timing)

    def on_span_closed(self, record: "SpanRecord") -> None:
        for sink in self.sinks:
            sink.on_span_closed(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def as_event_sink(obj: SinkLike) -> EventSink:
    """Coerce any accepted sink shape to an :class:`EventSink`.

    Accepts an :class:`EventSink` (returned as-is), a :class:`ProbeSink`
    (wrapped so ``consume`` receives ``on_probe`` events), or a bare
    per-trace callable.
    """
    if isinstance(obj, EventSink):
        return obj
    if isinstance(obj, ProbeSink):
        return ProbeSinkEvents(obj)
    if callable(obj):
        return CallbackEvents(obj)
    raise TypeError(f"not an EventSink, ProbeSink, or callable: {obj!r}")


def close_sink(sink: ProbeSink) -> None:
    """Invoke the optional ``close()`` hook, if the sink has one."""
    close = getattr(sink, "close", None)
    if close is not None:
        close()


class StatsSink:
    """Record campaign yield statistics as traces stream past.

    ``left_cloud`` decides whether a trace escaped the probing cloud's
    address space (see ``CloudMembership``); omit it to count every trace
    as staying inside.
    """

    def __init__(
        self,
        stats,  # CampaignStats; untyped to avoid a circular import
        left_cloud: Optional[Callable[[Traceroute], bool]] = None,
    ) -> None:
        self.stats = stats
        self.left_cloud = left_cloud

    def consume(self, trace: Traceroute) -> None:
        left = self.left_cloud(trace) if self.left_cloud is not None else False
        self.stats.record(trace, left)


class CollectorSink:
    """Buffer every trace in order -- handy in tests and notebooks."""

    def __init__(self) -> None:
        self.traces: List[Traceroute] = []

    def consume(self, trace: Traceroute) -> None:
        self.traces.append(trace)


class NullSink:
    """Discard every trace.

    Useful when a campaign is run only for its side effects -- warming a
    checkpoint journal, smoke-testing the executor under a fault plan --
    and the traces themselves are not needed.
    """

    def consume(self, trace: Traceroute) -> None:
        pass
