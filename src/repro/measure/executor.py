"""Sharded parallel campaign execution with a deterministic ordered merge.

The paper's measurement plane is embarrassingly parallel: round 1 sweeps
15.6M /24s from 15 regions and expansion probing exhausts every /24 around
a discovered CBI (§3, §4.2).  This module splits a campaign's
``regions x targets`` space into deterministic contiguous shards, traces
each shard on a ``multiprocessing`` worker pool, and merges the results
back **in shard order** so downstream consumers (the
``BorderObservatory``, yield stats, progress counters) see exactly the
trace stream a serial run would have produced.

Two properties make the merge bit-for-bit reproducible at any worker
count:

* every probe's noise comes from an RNG derived only from
  ``(engine seed, cloud, region, dst)`` -- see
  ``TracerouteEngine.probe_rng`` -- so a trace does not depend on how many
  probes ran before it in the same process;
* shards are enumerated region-major over the exact serial iteration
  order, and ``Pool.imap`` yields results in submission order, so the
  merged stream equals the serial stream.

Workers rebuild their ``TracerouteEngine`` from the pickled world plus the
engine seed in the pool initializer; no live engine state ever crosses the
process boundary.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.measure.metrics import CampaignProgress, ShardTiming
from repro.measure.sink import ProbeSink, SinkLike, as_sink, close_sink
from repro.measure.traceroute import TraceHop, Traceroute, TracerouteEngine
from repro.net.ip import IPv4
from repro.world.model import World

#: Target shards per worker per region; >1 keeps the pool load-balanced
#: when shard runtimes are uneven without drowning in pickling overhead.
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class Shard:
    """One unit of work: a contiguous slice of targets for one region."""

    index: int
    region: str
    targets: Tuple[IPv4, ...]


@dataclass
class ShardResult:
    """What a worker sends back: traces in target order, plus timing."""

    index: int
    region: str
    seconds: float
    #: ``(trace, left_cloud)`` per target, in the shard's target order.
    items: List[Tuple[Traceroute, bool]]


def default_shard_size(n_targets: int, workers: int) -> int:
    """Deterministic shard size: ~`SHARDS_PER_WORKER` shards per worker."""
    if n_targets <= 0:
        return 1
    return max(1, math.ceil(n_targets / max(1, workers * SHARDS_PER_WORKER)))


def partition_targets(
    targets: Sequence[IPv4], shard_size: int
) -> List[Tuple[IPv4, ...]]:
    """Contiguous, order-preserving slices of at most ``shard_size``."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        tuple(targets[i : i + shard_size])
        for i in range(0, len(targets), shard_size)
    ]


def plan_shards(
    regions: Sequence[str], targets: Sequence[IPv4], shard_size: int
) -> List[Shard]:
    """Region-major shard plan matching the serial iteration order."""
    slices = partition_targets(targets, shard_size)
    shards: List[Shard] = []
    for region in regions:
        for chunk in slices:
            shards.append(Shard(index=len(shards), region=region, targets=chunk))
    return shards


# ----------------------------------------------------------------------
# Worker side.  Globals are (re)built once per worker process by the pool
# initializer; only the world, cloud name, and engine seed cross the
# process boundary.
# ----------------------------------------------------------------------

_WORKER_STATE: Optional[Tuple[TracerouteEngine, "object", str]] = None


def _init_worker(world: World, cloud: str, seed: int) -> None:
    from repro.measure.campaign import CloudMembership

    global _WORKER_STATE
    engine = TracerouteEngine(world, seed=seed)
    _WORKER_STATE = (engine, CloudMembership(world, cloud), cloud)


def _trace_shard_in_worker(shard: Shard) -> tuple:
    assert _WORKER_STATE is not None, "pool initializer did not run"
    engine, membership, cloud = _WORKER_STATE
    return _pack_result(trace_shard(engine, membership, cloud, shard))


def _pack_result(result: ShardResult) -> tuple:
    """Compact wire format: tuples pickle ~2x smaller and faster than the
    trace dataclasses, which matters at millions of probes per round."""
    return (
        result.index,
        result.region,
        result.seconds,
        [
            (
                trace.dst,
                trace.stop_reason,
                tuple((h.ttl, h.ip, h.rtt_ms) for h in trace.hops),
                left,
            )
            for trace, left in result.items
        ],
    )


def _unpack_result(packed: tuple, cloud: str) -> ShardResult:
    index, region, seconds, rows = packed
    items = [
        (
            Traceroute(
                cloud=cloud,
                region=region,
                dst=dst,
                hops=[TraceHop(ttl, ip, rtt) for ttl, ip, rtt in hops],
                stop_reason=stop_reason,
            ),
            left,
        )
        for dst, stop_reason, hops, left in rows
    ]
    return ShardResult(index=index, region=region, seconds=seconds, items=items)


def trace_shard(
    engine: TracerouteEngine, membership, cloud: str, shard: Shard
) -> ShardResult:
    """Trace every target of ``shard``; shared by serial and pool paths."""
    t0 = time.perf_counter()
    items: List[Tuple[Traceroute, bool]] = []
    for dst in shard.targets:
        trace = engine.trace(cloud, shard.region, dst)
        items.append((trace, membership.left_cloud(trace)))
    return ShardResult(
        index=shard.index,
        region=shard.region,
        seconds=time.perf_counter() - t0,
        items=items,
    )


# ----------------------------------------------------------------------


class ShardedExecutor:
    """Runs a campaign's probe matrix over a worker pool (or inline).

    ``workers <= 1`` executes the same shard plan in-process, so the two
    paths share one code path for ordering, stats, and progress -- the
    parallel run differs only in *where* shards are traced.
    """

    def __init__(
        self,
        world: World,
        engine: TracerouteEngine,
        membership,
        cloud: str = "amazon",
        workers: int = 1,
        shard_size: Optional[int] = None,
    ) -> None:
        self.world = world
        self.engine = engine
        self.membership = membership
        self.cloud = cloud
        self.workers = max(1, workers)
        self.shard_size = shard_size

    # ------------------------------------------------------------------

    def run(
        self,
        targets: Iterable[IPv4],
        sink: SinkLike,
        stats,
        regions: Sequence[str],
        progress: Optional[CampaignProgress] = None,
    ) -> None:
        """Trace ``regions x targets`` and stream merged results to ``sink``.

        ``stats`` is a ``CampaignStats`` updated in merge order; the sink's
        optional ``close()`` fires after the last trace.
        """
        target_list = (
            targets if isinstance(targets, (list, tuple)) else list(targets)
        )
        probe_sink = as_sink(sink)
        shard_size = self.shard_size or default_shard_size(
            len(target_list), self.workers
        )
        shards = plan_shards(regions, target_list, shard_size)
        if progress is not None:
            progress.start(
                expected_probes=len(target_list) * len(regions),
                shards=len(shards),
                workers=self.workers,
            )
        try:
            if self.workers <= 1 or len(shards) <= 1:
                results: Iterator[ShardResult] = (
                    trace_shard(self.engine, self.membership, self.cloud, s)
                    for s in shards
                )
                self._merge(results, probe_sink, stats, progress)
            else:
                ctx = _pool_context()
                pool = ctx.Pool(
                    processes=min(self.workers, len(shards)),
                    initializer=_init_worker,
                    initargs=(self.world, self.cloud, self.engine.seed),
                )
                try:
                    self._merge(
                        (
                            _unpack_result(packed, self.cloud)
                            for packed in pool.imap(_trace_shard_in_worker, shards)
                        ),
                        probe_sink,
                        stats,
                        progress,
                    )
                finally:
                    pool.close()
                    pool.join()
        finally:
            if progress is not None:
                progress.finish()
            close_sink(probe_sink)

    # ------------------------------------------------------------------

    @staticmethod
    def _merge(
        results: Iterator[ShardResult],
        sink: ProbeSink,
        stats,
        progress: Optional[CampaignProgress],
    ) -> None:
        """Consume shard results in submission order -- the serial order."""
        for result in results:
            for trace, left_cloud in result.items:
                stats.record(trace, left_cloud)
                sink.consume(trace)
            if progress is not None:
                progress.note_shard(
                    ShardTiming(
                        index=result.index,
                        region=result.region,
                        probes=len(result.items),
                        seconds=result.seconds,
                    )
                )


def _pool_context():
    """Prefer fork (cheap world sharing); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
