"""Sharded parallel campaign execution with a deterministic ordered merge.

The paper's measurement plane is embarrassingly parallel: round 1 sweeps
15.6M /24s from 15 regions and expansion probing exhausts every /24 around
a discovered CBI (§3, §4.2).  This module splits a campaign's
``regions x targets`` space into deterministic contiguous shards, traces
each shard on a ``multiprocessing`` worker pool, and merges the results
back **in shard order** so downstream consumers (the
``BorderObservatory``, yield stats, progress counters) see exactly the
trace stream a serial run would have produced.

Two properties make the merge bit-for-bit reproducible at any worker
count:

* every probe's noise comes from an RNG derived only from
  ``(engine seed, cloud, region, dst)`` -- see
  ``TracerouteEngine.probe_rng`` -- so a trace does not depend on how many
  probes ran before it in the same process;
* shards are enumerated region-major over the exact serial iteration
  order and merged in that order, so the merged stream equals the serial
  stream.

At campaign scale, failure is routine, so the executor is resilient:

* each shard attempt is bounded by :class:`RetryPolicy` -- a per-shard
  timeout, then bounded retries with exponential backoff (a pool-side
  failure retries *inline* in the parent, which always makes progress);
* a shard that exhausts its retries is **quarantined**: its probes are
  reported lost (``CampaignStats.lost_probes``, progress completeness)
  and the campaign degrades gracefully instead of dying;
* with a :class:`~repro.measure.checkpoint.CampaignCheckpoint`, every
  completed shard is journalled to disk, and a killed run restarts
  without re-probing finished shards.

Because a shard's traces are a pure function of the probe key (plus the
observation-fault plan), none of this changes the merged stream: a run
with injected crashes, timeouts, or a checkpoint resume produces the same
results as a clean serial run once every shard eventually succeeds.

Workers rebuild their ``TracerouteEngine`` from the pickled world plus the
engine seed and fault plan in the pool initializer; no live engine state
ever crosses the process boundary.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.measure.checkpoint import CampaignCheckpoint, CheckpointStore
from repro.measure.faults import FaultPlan
from repro.measure.metrics import CampaignProgress, QuarantinedShard, ShardTiming
from repro.measure.sink import ProbeSink, SinkLike, as_sink, close_sink
from repro.measure.traceroute import TraceHop, Traceroute, TracerouteEngine
from repro.net.ip import IPv4
from repro.world.model import World

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext
    from multiprocessing.pool import AsyncResult

    from repro.measure.campaign import CampaignStats, CloudMembership

#: Target shards per worker per region; >1 keeps the pool load-balanced
#: when shard runtimes are uneven without drowning in pickling overhead.
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class Shard:
    """One unit of work: a contiguous slice of targets for one region."""

    index: int
    region: str
    targets: Tuple[IPv4, ...]


@dataclass
class ShardResult:
    """What a worker sends back: traces in target order, plus timing."""

    index: int
    region: str
    seconds: float
    #: ``(trace, left_cloud)`` per target, in the shard's target order.
    items: List[Tuple[Traceroute, bool]]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how hard the executor fights for each shard."""

    #: seconds to wait for a pooled shard before retrying inline;
    #: ``None`` waits forever (the pre-resilience behaviour).
    shard_timeout: Optional[float] = None
    #: attempts beyond the first before the shard is quarantined.
    max_retries: int = 2
    #: first backoff sleep; doubles per retry up to ``backoff_cap_s``.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** max(0, attempt - 1)),
        )


def default_shard_size(n_targets: int, workers: int) -> int:
    """Deterministic shard size: ~`SHARDS_PER_WORKER` shards per worker."""
    if n_targets <= 0:
        return 1
    return max(1, math.ceil(n_targets / max(1, workers * SHARDS_PER_WORKER)))


def partition_targets(
    targets: Sequence[IPv4], shard_size: int
) -> List[Tuple[IPv4, ...]]:
    """Contiguous, order-preserving slices of at most ``shard_size``."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        tuple(targets[i : i + shard_size])
        for i in range(0, len(targets), shard_size)
    ]


def plan_shards(
    regions: Sequence[str], targets: Sequence[IPv4], shard_size: int
) -> List[Shard]:
    """Region-major shard plan matching the serial iteration order."""
    slices = partition_targets(targets, shard_size)
    shards: List[Shard] = []
    for region in regions:
        for chunk in slices:
            shards.append(Shard(index=len(shards), region=region, targets=chunk))
    return shards


# ----------------------------------------------------------------------
# Worker side.  Globals are (re)built once per worker process by the pool
# initializer; only the world, cloud name, engine seed, and fault plan
# cross the process boundary.
# ----------------------------------------------------------------------

_WORKER_STATE: Optional[
    Tuple[TracerouteEngine, "CloudMembership", str, Optional[FaultPlan]]
] = None


def _init_worker(
    world: World,
    cloud: str,
    seed: int,
    engine_faults: Optional[FaultPlan] = None,
    transport_faults: Optional[FaultPlan] = None,
) -> None:
    from repro.measure.campaign import CloudMembership

    global _WORKER_STATE
    # Observation faults belong to the engine (they shape trace content
    # exactly as the parent's engine would); transport faults belong to
    # the shard attempt.  Keeping them separate guarantees worker-built
    # engines match the serial engine even when only one side is set.
    engine = TracerouteEngine(world, seed=seed, faults=engine_faults)
    _WORKER_STATE = (engine, CloudMembership(world, cloud), cloud, transport_faults)


def _trace_shard_in_worker(shard: Shard, attempt: int = 0) -> Tuple[Any, ...]:
    assert _WORKER_STATE is not None, "pool initializer did not run"
    engine, membership, cloud, faults = _WORKER_STATE
    return _pack_result(
        trace_shard(engine, membership, cloud, shard, faults=faults, attempt=attempt)
    )


def _pack_result(result: ShardResult) -> Tuple[Any, ...]:
    """Compact wire format: tuples pickle ~2x smaller and faster than the
    trace dataclasses, which matters at millions of probes per round.
    The same format is JSON-safe, so checkpoints journal it verbatim."""
    return (
        result.index,
        result.region,
        result.seconds,
        [
            (
                trace.dst,
                trace.stop_reason,
                tuple((h.ttl, h.ip, h.rtt_ms) for h in trace.hops),
                left,
            )
            for trace, left in result.items
        ],
    )


def _unpack_result(packed: Sequence[Any], cloud: str) -> ShardResult:
    index, region, seconds, rows = packed
    items = [
        (
            Traceroute(
                cloud=cloud,
                region=region,
                dst=dst,
                hops=[TraceHop(ttl, ip, rtt) for ttl, ip, rtt in hops],
                stop_reason=stop_reason,
            ),
            left,
        )
        for dst, stop_reason, hops, left in rows
    ]
    return ShardResult(index=index, region=region, seconds=seconds, items=items)


def trace_shard(
    engine: TracerouteEngine,
    membership: "CloudMembership",
    cloud: str,
    shard: Shard,
    faults: Optional[FaultPlan] = None,
    attempt: int = 0,
) -> ShardResult:
    """Trace every target of ``shard``; shared by serial and pool paths.

    Transport faults fire here -- an injected crash raises before any
    tracing, a slow shard sleeps -- so serial runs, pooled first
    attempts, and inline retries all see one fault schedule.
    """
    if faults is not None:
        faults.raise_if_crashed(shard.index, attempt)
        delay = faults.slow_delay(shard.index)
        if delay > 0:
            time.sleep(delay)
    t0 = time.perf_counter()
    items: List[Tuple[Traceroute, bool]] = []
    for dst in shard.targets:
        trace = engine.trace(cloud, shard.region, dst)
        items.append((trace, membership.left_cloud(trace)))
    return ShardResult(
        index=shard.index,
        region=shard.region,
        seconds=time.perf_counter() - t0,
        items=items,
    )


# ----------------------------------------------------------------------


class ShardedExecutor:
    """Runs a campaign's probe matrix over a worker pool (or inline).

    ``workers <= 1`` executes the same shard plan in-process, so the two
    paths share one code path for ordering, stats, progress, retries, and
    checkpoints -- the parallel run differs only in *where* a shard's
    first attempt is traced.
    """

    def __init__(
        self,
        world: World,
        engine: TracerouteEngine,
        membership: "CloudMembership",
        cloud: str = "amazon",
        workers: int = 1,
        shard_size: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.world = world
        self.engine = engine
        self.membership = membership
        self.cloud = cloud
        self.workers = max(1, workers)
        self.shard_size = shard_size
        self.faults = faults
        self.retry = retry or RetryPolicy()

    # ------------------------------------------------------------------

    def run(
        self,
        targets: Iterable[IPv4],
        sink: SinkLike,
        stats: "CampaignStats",
        regions: Sequence[str],
        progress: Optional[CampaignProgress] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_label: str = "campaign",
    ) -> None:
        """Trace ``regions x targets`` and stream merged results to ``sink``.

        ``stats`` is a ``CampaignStats`` updated in merge order; the sink's
        optional ``close()`` fires after the last trace.  With a
        ``checkpoint_store``, completed shards are journalled under
        ``checkpoint_label`` and replayed on the next run.
        """
        target_list = (
            targets if isinstance(targets, (list, tuple)) else list(targets)
        )
        probe_sink = as_sink(sink)
        shard_size = self.shard_size or default_shard_size(
            len(target_list), self.workers
        )
        shards = plan_shards(regions, target_list, shard_size)
        checkpoint: Optional[CampaignCheckpoint] = None
        if checkpoint_store is not None:
            checkpoint = checkpoint_store.campaign(
                checkpoint_label,
                self._fingerprint(regions, target_list, shard_size),
            )
        if progress is not None:
            progress.start(
                expected_probes=len(target_list) * len(regions),
                shards=len(shards),
                workers=self.workers,
            )
        try:
            if self.workers <= 1 or len(shards) <= 1:
                pairs = (
                    (s, self._run_shard(s, None, checkpoint, progress))
                    for s in shards
                )
                self._merge(pairs, probe_sink, stats, progress)
            else:
                ctx = _pool_context()
                pool = ctx.Pool(
                    processes=min(self.workers, len(shards)),
                    initializer=_init_worker,
                    initargs=(
                        self.world,
                        self.cloud,
                        self.engine.seed,
                        self.engine.faults,
                        self.faults,
                    ),
                )
                try:
                    pending = {
                        s.index: pool.apply_async(
                            _trace_shard_in_worker, (s, 0)
                        )
                        for s in shards
                        if checkpoint is None or not checkpoint.has(s.index)
                    }
                    pairs = (
                        (
                            s,
                            self._run_shard(
                                s, pending.get(s.index), checkpoint, progress
                            ),
                        )
                        for s in shards
                    )
                    self._merge(pairs, probe_sink, stats, progress)
                finally:
                    pool.terminate()
                    pool.join()
        finally:
            if progress is not None:
                progress.finish()
            close_sink(probe_sink)

    # ------------------------------------------------------------------

    def _fingerprint(
        self,
        regions: Sequence[str],
        targets: Sequence[IPv4],
        shard_size: int,
    ) -> str:
        """Identity of this campaign's shard plan and trace content.

        Transport faults are deliberately excluded (they never change a
        completed shard's traces); observation faults are included via
        ``FaultPlan.probe_signature``.
        """
        engine_faults = self.engine.faults
        probe_sig = (
            engine_faults.probe_signature()
            if engine_faults is not None
            else "clean"
        )
        h = hashlib.sha256()
        h.update(
            repr(
                (
                    "campaign-v1",
                    self.cloud,
                    self.engine.seed,
                    tuple(regions),
                    shard_size,
                    len(targets),
                    probe_sig,
                )
            ).encode()
        )
        for dst in targets:
            h.update(dst.to_bytes(4, "big"))
        return h.hexdigest()

    # ------------------------------------------------------------------

    def _run_shard(
        self,
        shard: Shard,
        handle: Optional["AsyncResult[Tuple[Any, ...]]"],
        checkpoint: Optional[CampaignCheckpoint],
        progress: Optional[CampaignProgress],
    ) -> Optional[ShardResult]:
        """One shard through resume -> attempt -> retry -> quarantine.

        Returns ``None`` only when the shard is quarantined; the merge
        then accounts for the lost probes instead of crashing the run.
        """
        if checkpoint is not None:
            stored = checkpoint.get(shard.index)
            if stored is not None:
                if progress is not None:
                    progress.note_resumed(shard.index)
                return _unpack_result(stored, self.cloud)
        attempt = 0
        while True:
            try:
                if handle is not None and attempt == 0:
                    packed = handle.get(timeout=self.retry.shard_timeout)
                    result = _unpack_result(packed, self.cloud)
                else:
                    result = trace_shard(
                        self.engine,
                        self.membership,
                        self.cloud,
                        shard,
                        faults=self.faults,
                        attempt=attempt,
                    )
            except Exception as exc:  # worker crash, timeout, injected fault
                attempt += 1
                if progress is not None:
                    progress.note_failure(shard.index, _describe_error(exc))
                if attempt > self.retry.max_retries:
                    if progress is not None:
                        progress.note_quarantine(
                            QuarantinedShard(
                                index=shard.index,
                                region=shard.region,
                                probes=len(shard.targets),
                                error=_describe_error(exc),
                            )
                        )
                    return None
                backoff = self.retry.backoff_seconds(attempt)
                if backoff > 0:
                    time.sleep(backoff)
                continue
            if checkpoint is not None:
                checkpoint.put(shard.index, _pack_result(result))
            return result

    # ------------------------------------------------------------------

    @staticmethod
    def _merge(
        pairs: Iterator[Tuple[Shard, Optional[ShardResult]]],
        sink: ProbeSink,
        stats: "CampaignStats",
        progress: Optional[CampaignProgress],
    ) -> None:
        """Consume shard results in submission order -- the serial order."""
        for shard, result in pairs:
            if result is None:  # quarantined: degrade, don't die
                stats.lost_probes += len(shard.targets)
                stats.quarantined_shards += 1
                continue
            for trace, left_cloud in result.items:
                stats.record(trace, left_cloud)
                sink.consume(trace)
            if progress is not None:
                progress.note_shard(
                    ShardTiming(
                        index=result.index,
                        region=result.region,
                        probes=len(result.items),
                        seconds=result.seconds,
                    )
                )


def _describe_error(exc: Exception) -> str:
    if isinstance(exc, multiprocessing.TimeoutError):
        return "shard timeout"
    return f"{type(exc).__name__}: {exc}"


def _pool_context() -> "BaseContext":
    """Prefer fork (cheap world sharing); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
