"""Sharded parallel campaign execution with a deterministic ordered merge.

The paper's measurement plane is embarrassingly parallel: round 1 sweeps
15.6M /24s from 15 regions and expansion probing exhausts every /24 around
a discovered CBI (§3, §4.2).  This module splits a campaign's
``regions x targets`` space into deterministic contiguous shards, traces
each shard on a ``multiprocessing`` worker pool, and merges the results
back **in shard order** so downstream consumers (the
``BorderObservatory``, yield stats, progress counters) see exactly the
trace stream a serial run would have produced.

Two properties make the merge bit-for-bit reproducible at any worker
count:

* every probe's noise comes from an RNG derived only from
  ``(engine seed, cloud, region, dst)`` -- see
  ``TracerouteEngine.probe_rng`` -- so a trace does not depend on how many
  probes ran before it in the same process;
* shards are enumerated region-major over the exact serial iteration
  order and merged in that order, so the merged stream equals the serial
  stream.

At campaign scale, failure is routine, so the executor is resilient:

* each shard attempt is bounded by :class:`RetryPolicy` -- a per-shard
  timeout, then bounded retries with exponential backoff (a pool-side
  failure retries *inline* in the parent, which always makes progress);
* a shard that exhausts its retries is **quarantined**: its probes are
  reported lost (``CampaignStats.lost_probes``, progress completeness)
  and the campaign degrades gracefully instead of dying;
* with a :class:`~repro.measure.checkpoint.CampaignCheckpoint`, every
  completed shard is journalled to disk, and a killed run restarts
  without re-probing finished shards.

Because a shard's traces are a pure function of the probe key (plus the
observation-fault plan), none of this changes the merged stream: a run
with injected crashes, timeouts, or a checkpoint resume produces the same
results as a clean serial run once every shard eventually succeeds.

Workers rebuild their ``TracerouteEngine`` from the pickled world plus the
engine seed and fault plan in the pool initializer; no live engine state
ever crosses the process boundary.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import sys
import time
from array import array
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    HungShardError,
    ReproError,
    ShardTimeoutError,
    StudyInterrupted,
    wrap_error,
)
from repro.measure.checkpoint import CampaignCheckpoint, CheckpointStore
from repro.measure.faults import FaultPlan
from repro.measure.metrics import CampaignProgress, QuarantinedShard, ShardTiming
from repro.measure.supervise import StudySupervisor
from repro.measure.sink import EventSink, SinkLike, as_event_sink
from repro.measure.traceroute import TraceHop, Traceroute, TracerouteEngine
from repro.net.ip import IPv4
from repro.obs.span import NULL_TRACER, PackedSpan, Tracer, TracerLike
from repro.world.model import World

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext
    from multiprocessing.pool import AsyncResult

    from repro.measure.adapt import ProbeGovernor
    from repro.measure.campaign import CampaignStats, CloudMembership

#: Target shards per worker per region; >1 keeps the pool load-balanced
#: when shard runtimes are uneven without drowning in pickling overhead.
SHARDS_PER_WORKER = 4

#: Probes per probe-batch span when fine-grained tracing is on; coarse
#: enough that span overhead stays invisible next to the engine work.
PROBE_BATCH = 64


@dataclass(frozen=True)
class Shard:
    """One unit of work: a contiguous slice of targets for one region."""

    index: int
    region: str
    targets: Tuple[IPv4, ...]


@dataclass
class ShardResult:
    """What a worker sends back: traces in target order, plus timing."""

    index: int
    region: str
    seconds: float
    #: ``(trace, left_cloud)`` per target, in the shard's target order.
    items: List[Tuple[Traceroute, bool]]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how hard the executor fights for each shard."""

    #: seconds to wait for a pooled shard before retrying inline;
    #: ``None`` waits forever (the pre-resilience behaviour).
    shard_timeout: Optional[float] = None
    #: attempts beyond the first before the shard is quarantined.
    max_retries: int = 2
    #: first backoff sleep; doubles per retry up to ``backoff_cap_s``.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** max(0, attempt - 1)),
        )


def default_shard_size(n_targets: int, workers: int) -> int:
    """Deterministic shard size: ~`SHARDS_PER_WORKER` shards per worker."""
    if n_targets <= 0:
        return 1
    return max(1, math.ceil(n_targets / max(1, workers * SHARDS_PER_WORKER)))


def partition_targets(
    targets: Sequence[IPv4], shard_size: int
) -> List[Tuple[IPv4, ...]]:
    """Contiguous, order-preserving slices of at most ``shard_size``."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        tuple(targets[i : i + shard_size])
        for i in range(0, len(targets), shard_size)
    ]


def plan_shards(
    regions: Sequence[str], targets: Sequence[IPv4], shard_size: int
) -> List[Shard]:
    """Region-major shard plan matching the serial iteration order."""
    slices = partition_targets(targets, shard_size)
    shards: List[Shard] = []
    for region in regions:
        for chunk in slices:
            shards.append(Shard(index=len(shards), region=region, targets=chunk))
    return shards


# ----------------------------------------------------------------------
# Worker side.  Globals are (re)built once per worker process by the pool
# initializer; only the world, cloud name, engine seed, and fault plan
# cross the process boundary.
# ----------------------------------------------------------------------

_WORKER_STATE: Optional[
    Tuple[TracerouteEngine, "CloudMembership", str, Optional[FaultPlan], bool]
] = None


def _init_worker(
    world: World,
    cloud: str,
    seed: int,
    engine_faults: Optional[FaultPlan] = None,
    transport_faults: Optional[FaultPlan] = None,
    worker_spans: bool = False,
) -> None:
    from repro.measure.campaign import CloudMembership

    global _WORKER_STATE
    # Observation faults belong to the engine (they shape trace content
    # exactly as the parent's engine would); transport faults belong to
    # the shard attempt.  Keeping them separate guarantees worker-built
    # engines match the serial engine even when only one side is set.
    engine = TracerouteEngine(world, seed=seed, faults=engine_faults)
    _WORKER_STATE = (
        engine,
        CloudMembership(world, cloud),
        cloud,
        transport_faults,
        worker_spans,
    )


def _trace_shard_in_worker(shard: Shard, attempt: int = 0) -> Tuple[Any, ...]:
    assert _WORKER_STATE is not None, "pool initializer did not run"
    engine, membership, cloud, faults, worker_spans = _WORKER_STATE
    if not worker_spans:
        return _pack_result(
            trace_shard(
                engine, membership, cloud, shard, faults=faults, attempt=attempt
            )
        )
    # Worker processes cannot share the parent's tracer: record into a
    # local one, time the wire serialization too, and ship the packed
    # spans as an extra wire element the parent adopts under its shard
    # span.  Packed spans never enter checkpoint journals -- the parent
    # re-packs the bare result before journalling -- so a resume never
    # replays stale wall-clock.
    tracer = Tracer()
    root = tracer.span(f"worker:{shard.index}", category="worker")
    result = trace_shard(
        engine,
        membership,
        cloud,
        shard,
        faults=faults,
        attempt=attempt,
        tracer=tracer,
    )
    root.set("probes", len(result.items))
    with tracer.span(f"pack:{shard.index}", category="pack"):
        packed = _pack_result(result)
    root.close()
    return packed + (tracer.pack(),)


def _pack_result(result: ShardResult) -> Tuple[Any, ...]:
    """Compact wire format: tuples pickle ~2x smaller and faster than the
    trace dataclasses, which matters at millions of probes per round.
    The same format is JSON-safe, so checkpoints journal it verbatim."""
    return (
        result.index,
        result.region,
        result.seconds,
        [
            (
                trace.dst,
                trace.stop_reason,
                tuple((h.ttl, h.ip, h.rtt_ms) for h in trace.hops),
                left,
            )
            for trace, left in result.items
        ],
    )


def _unpack_result(packed: Sequence[Any], cloud: str) -> ShardResult:
    # Element 5, when present, is the worker's packed span rows (see
    # _trace_shard_in_worker); checkpointed rows are always 4 elements.
    index, region, seconds, rows = packed[0], packed[1], packed[2], packed[3]
    items = [
        (
            Traceroute(
                cloud=cloud,
                region=region,
                dst=dst,
                hops=[TraceHop(ttl, ip, rtt) for ttl, ip, rtt in hops],
                stop_reason=stop_reason,
            ),
            left,
        )
        for dst, stop_reason, hops, left in rows
    ]
    return ShardResult(index=index, region=region, seconds=seconds, items=items)


def _packed_spans(packed: Sequence[Any]) -> Optional[List[PackedSpan]]:
    """The worker's span rows riding on the wire tuple, if any."""
    if len(packed) > 4 and packed[4]:
        return list(packed[4])
    return None


def trace_shard(
    engine: TracerouteEngine,
    membership: "CloudMembership",
    cloud: str,
    shard: Shard,
    faults: Optional[FaultPlan] = None,
    attempt: int = 0,
    tracer: TracerLike = NULL_TRACER,
) -> ShardResult:
    """Trace every target of ``shard``; shared by serial and pool paths.

    Transport faults fire here -- an injected crash raises before any
    tracing, a slow shard sleeps -- so serial runs, pooled first
    attempts, and inline retries all see one fault schedule.

    ``tracer`` attributes fault-realization delay and engine time
    (``probe-batch`` spans of :data:`PROBE_BATCH` targets); the default
    :data:`~repro.obs.span.NULL_TRACER` costs one no-op call per batch.
    """
    if faults is not None:
        faults.raise_if_crashed(shard.index, attempt)
        delay = faults.slow_delay(shard.index)
        if delay > 0:
            with tracer.span(f"fault-delay:{shard.index}", category="faults"):
                time.sleep(delay)
    t0 = time.perf_counter()
    items: List[Tuple[Traceroute, bool]] = []
    targets = shard.targets
    for base in range(0, len(targets), PROBE_BATCH):
        batch = targets[base : base + PROBE_BATCH]
        span = tracer.span(f"probe-batch:{shard.index}", category="probe-batch")
        for dst in batch:
            trace = engine.trace(cloud, shard.region, dst)
            items.append((trace, membership.left_cloud(trace)))
        span.set("probes", len(batch))
        span.close()
    return ShardResult(
        index=shard.index,
        region=shard.region,
        seconds=time.perf_counter() - t0,
        items=items,
    )


# ----------------------------------------------------------------------


@dataclass
class _ShardOutcome:
    """What one shard's resume/attempt/retry loop produced.

    ``result`` is ``None`` only for a quarantined shard.  ``worker_spans``
    carries the worker-side packed span rows (pool path with tracing on);
    ``attempts`` counts attempts actually made, and ``resumed`` marks a
    checkpoint replay.
    """

    result: Optional[ShardResult]
    worker_spans: Optional[List[PackedSpan]] = None
    attempts: int = 1
    resumed: bool = False


class ShardedExecutor:
    """Runs a campaign's probe matrix over a worker pool (or inline).

    ``workers <= 1`` executes the same shard plan in-process, so the two
    paths share one code path for ordering, stats, progress, retries, and
    checkpoints -- the parallel run differs only in *where* a shard's
    first attempt is traced.
    """

    def __init__(
        self,
        world: World,
        engine: TracerouteEngine,
        membership: "CloudMembership",
        cloud: str = "amazon",
        workers: int = 1,
        shard_size: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        supervisor: Optional[StudySupervisor] = None,
        governor: Optional["ProbeGovernor"] = None,
    ) -> None:
        self.world = world
        self.engine = engine
        self.membership = membership
        self.cloud = cloud
        self.workers = max(1, workers)
        self.shard_size = shard_size
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.supervisor = supervisor
        #: adaptive merge-time admit/defer decisions (None = admit all).
        self.governor = governor

    # ------------------------------------------------------------------

    def run(
        self,
        targets: Iterable[IPv4],
        sink: SinkLike,
        stats: "CampaignStats",
        regions: Sequence[str],
        progress: Optional[CampaignProgress] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_label: str = "campaign",
        tracer: Optional[TracerLike] = None,
        worker_spans: bool = False,
    ) -> None:
        """Trace ``regions x targets`` and stream merged results to ``sink``.

        ``sink`` is anything ``as_event_sink`` accepts; merged traces
        arrive as ``on_probe`` events in serial order, each merged shard
        fires ``on_shard_merged``, and the sink's ``close()`` fires after
        the last event.  ``stats`` is a ``CampaignStats`` updated in
        merge order.  With a ``checkpoint_store``, completed shards are
        journalled under ``checkpoint_label`` and replayed on the next
        run.

        ``tracer`` records a ``campaign:<label>`` span with one ``shard``
        span per merged shard; ``worker_spans=True`` additionally traces
        inside shard attempts (probe batches, fault delays, wire packing
        -- worker-side rows cross the pool boundary on the wire tuple and
        are adopted under the parent's shard span).  Tracing is
        digest-neutral: it reads ``perf_counter`` only and never touches
        the merged stream.
        """
        target_list = (
            targets if isinstance(targets, (list, tuple)) else list(targets)
        )
        events = as_event_sink(sink)
        trc: TracerLike = tracer if tracer is not None else NULL_TRACER
        shard_size = self.shard_size or default_shard_size(
            len(target_list), self.workers
        )
        shards = plan_shards(regions, target_list, shard_size)
        checkpoint: Optional[CampaignCheckpoint] = None
        if checkpoint_store is not None:
            checkpoint = checkpoint_store.campaign(
                checkpoint_label,
                self._fingerprint(regions, target_list, shard_size),
            )
        if progress is not None:
            progress.start(
                expected_probes=len(target_list) * len(regions),
                shards=len(shards),
                workers=self.workers,
            )
        if self.governor is not None:
            # Deferrals recorded during this campaign carry its label, so
            # the recovery round heals the right round's stats.
            self.governor.begin_campaign(checkpoint_label)
        campaign_span = trc.span(
            f"campaign:{checkpoint_label}", category="campaign"
        )
        campaign_span.set("expected", len(target_list) * len(regions))
        campaign_span.set("shards", len(shards))
        campaign_span.set("workers", self.workers)
        try:
            if self.workers <= 1 or len(shards) <= 1:
                self._merge(
                    shards,
                    lambda s: self._run_shard(
                        s, None, checkpoint, progress, trc, worker_spans
                    ),
                    events,
                    stats,
                    progress,
                    trc,
                    self.supervisor,
                    self.governor,
                )
            else:
                ctx = _pool_context()
                pool = ctx.Pool(
                    processes=min(self.workers, len(shards)),
                    initializer=_init_worker,
                    initargs=(
                        self.world,
                        self.cloud,
                        self.engine.seed,
                        self.engine.faults,
                        self.faults,
                        worker_spans,
                    ),
                )
                try:
                    pending = {
                        s.index: pool.apply_async(
                            _trace_shard_in_worker, (s, 0)
                        )
                        for s in shards
                        if checkpoint is None or not checkpoint.has(s.index)
                    }
                    self._merge(
                        shards,
                        lambda s: self._run_shard(
                            s,
                            pending.get(s.index),
                            checkpoint,
                            progress,
                            trc,
                            worker_spans,
                        ),
                        events,
                        stats,
                        progress,
                        trc,
                        self.supervisor,
                        self.governor,
                    )
                finally:
                    pool.terminate()
                    pool.join()
        finally:
            if progress is not None:
                progress.finish()
                campaign_span.set("probes", progress.probes)
                campaign_span.set("lost", progress.lost_probes)
                campaign_span.set("retries", progress.retries)
                campaign_span.set("quarantined", len(progress.quarantined))
                campaign_span.set("resumed", progress.resumed_shards)
            else:
                # Tracer-only runs still get final yield counters, from
                # the stats the merge loop updated.
                campaign_span.set("probes", stats.probes)
                campaign_span.set("lost", stats.lost_probes)
                campaign_span.set("quarantined", stats.quarantined_shards)
            if stats.deferred_probes:
                campaign_span.set("deferred", stats.deferred_probes)
            campaign_span.close()
            if checkpoint is not None:
                # Compact the append-mode journal into an atomically
                # replaced, fsynced file -- runs on interrupts too, so a
                # cancelled study leaves a durable, untorn journal behind.
                checkpoint.finalize()
            events.close()

    # ------------------------------------------------------------------

    def _fingerprint(
        self,
        regions: Sequence[str],
        targets: Sequence[IPv4],
        shard_size: int,
    ) -> str:
        """Identity of this campaign's shard plan and trace content.

        Transport faults are deliberately excluded (they never change a
        completed shard's traces); observation faults are included via
        ``FaultPlan.probe_signature``.
        """
        engine_faults = self.engine.faults
        probe_sig = (
            engine_faults.probe_signature()
            if engine_faults is not None
            else "clean"
        )
        h = hashlib.sha256()
        h.update(
            repr(
                (
                    "campaign-v1",
                    self.cloud,
                    self.engine.seed,
                    tuple(regions),
                    shard_size,
                    len(targets),
                    probe_sig,
                )
            ).encode()
        )
        # One bulk conversion instead of a to_bytes() call per target;
        # byteswap keeps the digest byte-identical (big-endian) on
        # little-endian hosts, so existing checkpoint journals stay valid.
        packed = array("I", targets)
        if sys.byteorder == "little":
            packed.byteswap()
        h.update(packed.tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------

    def _run_shard(
        self,
        shard: Shard,
        handle: Optional["AsyncResult[Tuple[Any, ...]]"],
        checkpoint: Optional[CampaignCheckpoint],
        progress: Optional[CampaignProgress],
        tracer: TracerLike,
        worker_spans: bool,
    ) -> _ShardOutcome:
        """One shard through resume -> attempt -> retry -> quarantine.

        The outcome's ``result`` is ``None`` only when the shard is
        quarantined; the merge then accounts for the lost probes instead
        of crashing the run.  Checkpoint journals always store the bare
        4-element wire tuple (via ``_pack_result``), never span rows.
        """
        if checkpoint is not None:
            stored = checkpoint.get(shard.index)
            if stored is not None:
                if progress is not None:
                    progress.note_resumed(shard.index)
                return _ShardOutcome(
                    result=_unpack_result(stored, self.cloud),
                    attempts=0,
                    resumed=True,
                )
        attempt = 0
        worker_packed: Optional[List[PackedSpan]] = None
        while True:
            try:
                if handle is not None and attempt == 0:
                    packed = self._wait_for_shard(handle, shard)
                    result = _unpack_result(packed, self.cloud)
                    worker_packed = _packed_spans(packed)
                else:
                    # Inline attempts run under the currently-open shard
                    # span, so fine-grained spans nest directly -- no
                    # packing needed on this path.
                    result = trace_shard(
                        self.engine,
                        self.membership,
                        self.cloud,
                        shard,
                        faults=self.faults,
                        attempt=attempt,
                        tracer=tracer if worker_spans else NULL_TRACER,
                    )
                    worker_packed = None
            except StudyInterrupted:
                # Cancellation is not a shard failure: it must never be
                # retried, quarantined, or otherwise absorbed.
                raise
            except Exception as exc:  # worker crash, timeout, injected fault
                failure = wrap_error(exc)
                attempt += 1
                if progress is not None:
                    progress.note_failure(
                        shard.index,
                        _describe_error(failure),
                        category=failure.category,
                    )
                if attempt > self.retry.max_retries:
                    return self._quarantine(
                        shard, attempt, _describe_error(failure), progress
                    )
                if (
                    self.supervisor is not None
                    and not self.supervisor.consume_retry()
                ):
                    # The study-wide retry budget is spent: degrade now
                    # instead of burning the deadline on a sick campaign.
                    return self._quarantine(
                        shard,
                        attempt,
                        _describe_error(failure) + " (retry budget exhausted)",
                        progress,
                    )
                # Both quarantine exits above happen *before* any sleep:
                # a retry definitely remains past this point, and only
                # then is a backoff pause justified -- quarantine paths
                # must never sleep.
                backoff = self.retry.backoff_seconds(attempt)
                if backoff > 0:
                    time.sleep(backoff)
                continue
            if checkpoint is not None:
                checkpoint.put(shard.index, _pack_result(result))
            return _ShardOutcome(
                result=result,
                worker_spans=worker_packed,
                attempts=attempt + 1,
            )

    def _quarantine(
        self,
        shard: Shard,
        attempts: int,
        error: str,
        progress: Optional[CampaignProgress],
    ) -> _ShardOutcome:
        if progress is not None:
            progress.note_quarantine(
                QuarantinedShard(
                    index=shard.index,
                    region=shard.region,
                    probes=len(shard.targets),
                    error=error,
                )
            )
        return _ShardOutcome(result=None, attempts=attempts)

    def _wait_for_shard(
        self,
        handle: "AsyncResult[Tuple[Any, ...]]",
        shard: Shard,
    ) -> Tuple[Any, ...]:
        """Wait for a pooled first attempt, under supervision.

        Without a supervisor this is the classic bounded ``get``.  With
        one, the wait is chopped into short slices so cancellation and
        the deadline are honoured mid-wait, and a shard that stays silent
        past ``hung_shard_after_s`` raises :class:`HungShardError` --
        the supervision-level "this worker is lost" verdict, as opposed
        to the retry-level per-attempt ``shard_timeout``.
        """
        supervisor = self.supervisor
        if supervisor is None:
            return handle.get(timeout=self.retry.shard_timeout)
        hung_after = supervisor.hung_shard_after_s
        step = 0.05
        waited = 0.0
        while True:
            supervisor.poll()
            try:
                return handle.get(timeout=step)
            except multiprocessing.TimeoutError:
                waited += step
                if hung_after is not None and waited >= hung_after:
                    raise HungShardError(
                        f"shard {shard.index} unresponsive for {waited:.1f}s"
                    ) from None
                timeout = self.retry.shard_timeout
                if timeout is not None and waited >= timeout:
                    raise ShardTimeoutError("shard timeout") from None

    # ------------------------------------------------------------------

    @staticmethod
    def _merge(
        shards: Sequence[Shard],
        fetch: Callable[[Shard], _ShardOutcome],
        events: EventSink,
        stats: "CampaignStats",
        progress: Optional[CampaignProgress],
        tracer: TracerLike,
        supervisor: Optional[StudySupervisor] = None,
        governor: Optional["ProbeGovernor"] = None,
    ) -> None:
        """Consume shard results in submission order -- the serial order.

        Each shard gets a ``shard`` span covering the parent-side wait,
        retries, and merge for that shard; worker-side span rows (pool
        path) are adopted under it, so worker time and parent time stay
        separately attributed.  Shard boundaries are the executor's safe
        interrupt points: the supervisor is polled before each shard, so
        a cancelled study stops with every journal record intact.

        When a governor is attached its admit/defer decisions happen
        *here*, on the merge stream: merge order is the serial order at
        any worker count, so adaptation never makes the run depend on
        worker scheduling.
        """
        for shard in shards:
            if supervisor is not None:
                supervisor.poll()
            span = tracer.span(f"shard:{shard.index}", category="shard")
            outcome = fetch(shard)
            result = outcome.result
            if result is None:  # quarantined: degrade, don't die
                stats.lost_probes += len(shard.targets)
                stats.quarantined_shards += 1
                if governor is not None:
                    governor.note_quarantine(shard.region, shard.targets)
                span.set("probes", 0)
                span.set("lost", len(shard.targets))
                span.set("attempts", outcome.attempts)
                span.close()
                continue
            tracer.adopt_packed(outcome.worker_spans, span)
            deferred_here = 0
            for trace, left_cloud in result.items:
                if governor is not None and not governor.admit(trace):
                    # Open breaker: the trace content is suspect (rate
                    # limited), so re-pace the target into the recovery
                    # queue instead of folding a poisoned observation.
                    stats.lost_probes += 1
                    stats.deferred_probes += 1
                    deferred_here += 1
                    continue
                stats.record(trace, left_cloud)
                events.on_probe(trace)
            if deferred_here:
                span.set("deferred", deferred_here)
            span.set("probes", len(result.items))
            span.set("worker_seconds", result.seconds)
            if outcome.attempts > 1:
                span.set("attempts", outcome.attempts)
            if outcome.resumed:
                span.set("resumed", 1)
            span.close()
            if progress is not None:
                timing = ShardTiming(
                    index=result.index,
                    region=result.region,
                    probes=len(result.items),
                    seconds=result.seconds,
                )
                progress.note_shard(timing)
                events.on_shard_merged(progress, timing)


def _describe_error(exc: BaseException) -> str:
    if isinstance(exc, (ShardTimeoutError, multiprocessing.TimeoutError)):
        return "shard timeout"
    if isinstance(exc, ReproError):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"


def _pool_context() -> "BaseContext":
    """Prefer fork (cheap world sharing); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
