"""MIDAR-like alias resolution.

§5.2 runs MIDAR from VMs in every region over all candidate ABIs and CBIs.
MIDAR's monotonic-IP-ID test discovers that two interfaces share a router
when both answer from the same counter; coverage is partial and varies by
vantage point.  We model exactly that observable: per region, each pair of
candidate interfaces on one (ground-truth) router is discovered with a
fixed probability, provided both interfaces answer probes from that
region; per-region alias sets that share interfaces are then merged, as
the paper does.

The resolver never reveals router identity -- only interface groupings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.net.ip import IPv4
from repro.net.rng import keyed_uniform
from repro.world.model import World


class _UnionFind:
    """Disjoint sets over interface addresses."""

    def __init__(self) -> None:
        self._parent: Dict[IPv4, IPv4] = {}

    def find(self, x: IPv4) -> IPv4:
        parent = self._parent.setdefault(x, x)
        if parent == x:
            return x
        root = self.find(parent)
        self._parent[x] = root
        return root

    def union(self, a: IPv4, b: IPv4) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def groups(self) -> List[Set[IPv4]]:
        by_root: Dict[IPv4, Set[IPv4]] = {}
        for x in self._parent:
            by_root.setdefault(self.find(x), set()).add(x)
        return [g for g in by_root.values() if len(g) >= 2]


class AliasResolver:
    """Runs the per-region alias campaigns and merges their outputs."""

    def __init__(
        self,
        world: World,
        seed: int = 0,
        pair_discovery_rate: float = 0.5,
    ) -> None:
        self.world = world
        self.pair_discovery_rate = pair_discovery_rate
        self._seed = seed

    def _visible_from(self, region: str, ip: IPv4) -> bool:
        iface = self.world.interfaces.get(ip)
        if iface is None or not iface.responsive:
            return False
        limit = self.world.ping_region_limit.get(ip)
        return limit is None or region in limit

    def resolve(
        self,
        candidate_ips: Iterable[IPv4],
        cloud: str = "amazon",
        regions: Optional[Sequence[str]] = None,
    ) -> List[Set[IPv4]]:
        """Alias sets (size >= 2) discovered across all regions."""
        regions = list(regions or self.world.region_names(cloud))
        candidates = sorted(set(candidate_ips))
        by_router: Dict[int, List[IPv4]] = {}
        for ip in candidates:
            iface = self.world.interfaces.get(ip)
            if iface is None:
                continue
            by_router.setdefault(iface.router_id, []).append(ip)

        uf = _UnionFind()
        for _rid, ips in sorted(by_router.items()):
            if len(ips) < 2:
                continue
            for region in regions:
                visible = [ip for ip in ips if self._visible_from(region, ip)]
                if len(visible) < 2:
                    continue
                # MIDAR chains pairwise tests; one pass per region.  Each
                # pair's outcome is keyed to (region, a, b) so discovery
                # never depends on which campaign asked first.
                for a, b in zip(visible, visible[1:]):
                    draw = keyed_uniform("alias", self._seed, region, a, b)
                    if draw < self.pair_discovery_rate:
                        uf.union(a, b)
        return sorted(uf.groups(), key=lambda g: (-len(g), min(g)))
