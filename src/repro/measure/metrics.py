"""Campaign and pipeline observability.

Replaces the ad-hoc ``timers`` dict the study driver used to fill by hand:

* :class:`CampaignProgress` -- live throughput of one probing campaign
  (probes completed, probes/sec, per-region counts, per-shard latencies),
  updated by the sharded executor as merged shards stream in;
* :class:`StudyMetrics` -- the study's :class:`~repro.obs.span.Tracer`
  plus the progress object of every campaign the study ran, carried on
  ``StudyResult`` and rendered by ``render_report``.  Per-stage
  wall-clock (``metrics.stages``) is a *view* over the span stream:
  ``stage()`` opens a stage-category span, and the property folds the
  closed stage records back into the name -> seconds dict the report
  has always consumed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.span import Span, Tracer


@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock of one executed shard, as observed by the worker."""

    index: int
    region: str
    probes: int
    seconds: float


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt (crash, timeout, or injected fault).

    ``category`` is the :mod:`repro.errors` taxonomy bucket (transport,
    timeout, hung, data...) so the resilience report can say *what kind*
    of failures a campaign absorbed, not just how many.
    """

    index: int
    error: str
    category: str = "transport"


@dataclass(frozen=True)
class QuarantinedShard:
    """A shard that exhausted its retries; its probes are lost."""

    index: int
    region: str
    probes: int
    error: str


#: Callback fired after every merged shard (used by ``--progress``).
ProgressCallback = Callable[["CampaignProgress", ShardTiming], None]


@dataclass
class CampaignProgress:
    """Throughput counters for one campaign (round 1, expansion, VPI...)."""

    label: str
    workers: int = 1
    expected_probes: int = 0
    shard_count: int = 0
    probes: int = 0
    by_region: Dict[str, int] = field(default_factory=dict)
    shard_timings: List[ShardTiming] = field(default_factory=list)
    #: failed shard attempts, in the order the executor observed them.
    failures: List[ShardFailure] = field(default_factory=list)
    #: shards abandoned after exhausting their retries.
    quarantined: List[QuarantinedShard] = field(default_factory=list)
    #: shards replayed from a checkpoint instead of re-probed.
    resumed_shards: int = 0
    callback: Optional[ProgressCallback] = None
    _started: Optional[float] = None
    _finished: Optional[float] = None

    # ------------------------------------------------------------------

    def start(self, expected_probes: int, shards: int, workers: int) -> None:
        self.expected_probes = expected_probes
        self.shard_count = shards
        self.workers = workers
        self._started = time.perf_counter()
        self._finished = None

    def note_shard(self, timing: ShardTiming) -> None:
        self.probes += timing.probes
        self.by_region[timing.region] = (
            self.by_region.get(timing.region, 0) + timing.probes
        )
        self.shard_timings.append(timing)
        if self.callback is not None:
            self.callback(self, timing)

    def note_failure(
        self, shard_index: int, error: str, category: str = "transport"
    ) -> None:
        self.failures.append(
            ShardFailure(index=shard_index, error=error, category=category)
        )

    def failure_categories(self) -> Dict[str, int]:
        """Taxonomy category -> count, in first-seen order."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.category] = counts.get(failure.category, 0) + 1
        return counts

    def note_quarantine(self, shard: QuarantinedShard) -> None:
        self.quarantined.append(shard)

    def note_resumed(self, shard_index: int) -> None:
        self.resumed_shards += 1

    def finish(self) -> None:
        self._finished = time.perf_counter()

    # ------------------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        if self._started is None:
            return 0.0
        end = self._finished if self._finished is not None else time.perf_counter()
        return end - self._started

    @property
    def probes_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        return self.probes / elapsed if elapsed > 0 else 0.0

    @property
    def done_fraction(self) -> float:
        if not self.expected_probes:
            return 0.0
        return self.probes / self.expected_probes

    @property
    def mean_shard_seconds(self) -> float:
        if not self.shard_timings:
            return 0.0
        return sum(t.seconds for t in self.shard_timings) / len(self.shard_timings)

    @property
    def max_shard_seconds(self) -> float:
        if not self.shard_timings:
            return 0.0
        return max(t.seconds for t in self.shard_timings)

    @property
    def lost_probes(self) -> int:
        """Probes never delivered because their shard was quarantined."""
        return sum(q.probes for q in self.quarantined)

    @property
    def retries(self) -> int:
        """Failed attempts that were retried (not final quarantines)."""
        return len(self.failures) - len(self.quarantined)

    @property
    def completeness(self) -> float:
        """Delivered / expected probes; < 1.0 after any quarantine."""
        if not self.expected_probes:
            return 1.0
        return self.probes / self.expected_probes

    def summary(self) -> str:
        text = (
            f"{self.label}: {self.probes} probes in {self.elapsed_seconds:.1f}s "
            f"({self.probes_per_second:.0f}/s) over "
            f"{len(self.shard_timings)} shards x {self.workers} worker(s); "
            f"{len(self.by_region)} regions, shard latency "
            f"mean {self.mean_shard_seconds * 1000:.0f}ms / "
            f"max {self.max_shard_seconds * 1000:.0f}ms"
        )
        if self.failures or self.quarantined or self.resumed_shards:
            text += (
                f"; resilience: {len(self.failures)} failed attempt(s), "
                f"{len(self.quarantined)} quarantined, "
                f"{self.resumed_shards} resumed, "
                f"completeness {self.completeness * 100:.1f}%"
            )
        return text


class StudyMetrics:
    """Per-stage wall-clock plus per-campaign progress for one study run.

    Always carries a real :class:`~repro.obs.span.Tracer`: stage,
    campaign, and shard spans are cheap enough to record unconditionally,
    and ``stages`` / the report are views over that stream.  Fine-grained
    worker-side spans are opt-in at the executor (``worker_spans``).
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        #: the span stream everything below is a view over.
        self.tracer: Tracer = tracer if tracer is not None else Tracer()
        #: campaign label -> its progress/throughput record.
        self.campaigns: Dict[str, CampaignProgress] = {}
        #: inter-source dataset disagreements (validation + annotations).
        self.dataset_disagreements: int = 0
        #: final inferences flagged below the annotation-confidence floor.
        self.low_confidence_inferences: int = 0

    @property
    def stages(self) -> Dict[str, float]:
        """Stage name -> wall-clock seconds, in execution order.

        Folded from the closed stage-category spans, so the dict the
        report renders and the trace a viewer loads cannot disagree.
        """
        folded: Dict[str, float] = {}
        for record in self.tracer.records:
            if record.category == "stage":
                folded[record.name] = folded.get(record.name, 0.0) + record.duration
        return folded

    @contextmanager
    def stage(self, name: str) -> Iterator[Span]:
        """Time a pipeline stage: ``with metrics.stage("round1"): ...``.

        Yields the span so callers can attach attributes (the stage
        runner marks checkpoint-restored stages with ``resumed=1``).
        """
        with self.tracer.span(name, category="stage") as span:
            yield span

    def campaign(
        self, label: str, callback: Optional[ProgressCallback] = None
    ) -> CampaignProgress:
        """Create (or fetch) the progress record for a campaign."""
        progress = self.campaigns.get(label)
        if progress is None:
            progress = CampaignProgress(label=label, callback=callback)
            self.campaigns[label] = progress
        elif callback is not None:
            progress.callback = callback
        return progress

    @property
    def total_seconds(self) -> float:
        return sum(self.stages.values())

    # --- resilience rollups -------------------------------------------

    def completeness(self) -> Dict[str, float]:
        """Per-campaign delivered/expected ratio (1.0 = nothing lost)."""
        return {
            label: progress.completeness
            for label, progress in self.campaigns.items()
        }

    @property
    def total_failures(self) -> int:
        return sum(len(p.failures) for p in self.campaigns.values())

    @property
    def total_quarantined(self) -> int:
        return sum(len(p.quarantined) for p in self.campaigns.values())

    @property
    def total_resumed(self) -> int:
        return sum(p.resumed_shards for p in self.campaigns.values())

    @property
    def degraded(self) -> bool:
        """True when any campaign delivered less than it expected."""
        return any(p.completeness < 1.0 for p in self.campaigns.values())

    # --- data-quality rollups -----------------------------------------

    def note_data_quality(
        self, disagreements: int, low_confidence: int
    ) -> None:
        """Record the data-plane dirt the quality pass observed."""
        self.dataset_disagreements = disagreements
        self.low_confidence_inferences = low_confidence

    @property
    def data_degraded(self) -> bool:
        """True when dataset sources disagreed or inferences were flagged."""
        return (
            self.dataset_disagreements > 0
            or self.low_confidence_inferences > 0
        )
