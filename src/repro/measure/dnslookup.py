"""Reverse-DNS lookups (PTR records) for observed interfaces.

§6.1 parses the DNS names of CBIs for embedded location hints; none of the
ABIs had PTR records in the paper's data.  This resolver is the public
observable over the world's name records.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.net.ip import IPv4
from repro.world.model import World


class ReverseDNS:
    """ip -> PTR name lookups."""

    def __init__(self, world: World) -> None:
        self._world = world

    def lookup(self, ip: IPv4) -> Optional[str]:
        iface = self._world.interfaces.get(ip)
        return iface.dns_name if iface else None

    def lookup_all(self, ips: Iterable[IPv4]) -> Dict[IPv4, str]:
        out: Dict[IPv4, str] = {}
        for ip in ips:
            name = self.lookup(ip)
            if name is not None:
                out[ip] = name
        return out
