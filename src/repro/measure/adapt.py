"""Adaptive probe-budget governor and bounded re-probe recovery rounds.

The *acting* half of the adaptive control plane (the sensing half is
:mod:`repro.measure.health`): the :class:`ProbeGovernor` sits on the
executor's serial merge stream and decides, per merged trace, whether to
admit it downstream or defer its target behind an open circuit breaker;
quarantined shards feed the same ledger and queue their targets for
recovery.  :func:`run_recovery` is the bounded re-probe round the
pipeline appends to the stage graph: it half-opens open breakers with a
trial-probe budget and re-issues deferred/lost probes through them,
healing completeness that a non-adaptive run permanently loses.

Determinism (DESIGN.md §6.6): governor decisions happen at **merge
time** -- the executor's merge order is the serial order at any worker
count -- and recovery re-probes run serially in deferral order, salted
per recovery round (``TracerouteEngine.trace(..., salt=r)`` re-draws
only the *fault* hashes, never the base noise stream).  A fixed
``(seed, fault plan)`` pair therefore yields one digest across any
worker count.  Re-pacing never loses probes: a breaker-deferred target
that stays sick through every recovery round falls back to its salt-0
trace -- exactly what the non-adaptive run would have recorded -- so
adaptive completeness is never below the non-adaptive run's.  Probes
lost to quarantine heal only through a breaker that closes; they stay
lost otherwise, exactly as today.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.measure.campaign import CampaignStats, CloudMembership
from repro.measure.health import (
    BreakerEvent,
    BreakerSnapshot,
    BreakerState,
    HealthLedger,
    classify,
)
from repro.measure.sink import EventSink
from repro.measure.supervise import StudySupervisor
from repro.measure.traceroute import Traceroute, TracerouteEngine
from repro.obs.span import NULL_TRACER, TracerLike

#: Half-open trial probes granted per breaker per recovery round.
TRIAL_BUDGET = 8

#: Why a target sits in the recovery queue.  Breaker-deferred targets
#: re-probe at ``salt = recovery round`` (a fresh fault draw); targets
#: lost to shard quarantine re-probe at salt 0 -- their clean-run
#: content was never observed, so recovery restores it verbatim.
CAUSE_BREAKER = "breaker"
CAUSE_QUARANTINE = "quarantine"


@dataclass(frozen=True)
class DeferredTarget:
    """One probe the governor re-paced instead of burning."""

    label: str
    cloud: str
    region: str
    dst: int
    cause: str


@dataclass(frozen=True)
class RecoveryReport:
    """What the recovery round did (stage payload + resilience report)."""

    rounds_run: int
    deferred: int
    quarantine_lost: int
    recovered: int
    #: breaker-deferred targets accepted at salt 0 after the rounds were
    #: exhausted (re-paced back to their non-adaptive content).
    fallback_recovered: int
    still_lost: int
    trial_probes: int
    recovered_by_label: Tuple[Tuple[str, int], ...]
    breakers: Tuple[BreakerSnapshot, ...]

    @property
    def breaker_events(self) -> Tuple[BreakerEvent, ...]:
        return tuple(e for snap in self.breakers for e in snap.events)


class ProbeGovernor:
    """Merge-time admit/defer decisions over the health ledger.

    One governor spans every campaign of a study run, so breaker state
    carries from round 1 into round 2.  All mutation happens in the
    executor's serial merge order (or in :func:`run_recovery`'s serial
    replay), which is what keeps adaptation worker-count invariant.
    """

    def __init__(self, ledger: HealthLedger, cloud: str = "amazon") -> None:
        self.ledger = ledger
        self.cloud = cloud
        self._label = "campaign"
        self._pending: List[DeferredTarget] = []
        self.admitted = 0
        self.deferred = 0
        self.quarantined = 0

    # ------------------------------------------------------------------

    def begin_campaign(self, label: str) -> None:
        """Tag subsequent deferrals with the campaign they came from."""
        self._label = label

    def admit(self, trace: Traceroute) -> bool:
        """Admit (and fold) or defer one merged trace, in merge order."""
        breaker = self.ledger.breaker(trace.cloud, trace.region)
        if breaker.state == BreakerState.OPEN:
            self._pending.append(
                DeferredTarget(
                    label=self._label,
                    cloud=trace.cloud,
                    region=trace.region,
                    dst=trace.dst,
                    cause=CAUSE_BREAKER,
                )
            )
            self.deferred += 1
            return False
        breaker.record(classify(trace))
        self.admitted += 1
        return True

    def note_quarantine(self, region: str, targets: Tuple[int, ...]) -> None:
        """A shard quarantined: fold the loss, queue targets for recovery."""
        self.ledger.note_quarantine(self.cloud, region, len(targets))
        for dst in targets:
            self._pending.append(
                DeferredTarget(
                    label=self._label,
                    cloud=self.cloud,
                    region=region,
                    dst=dst,
                    cause=CAUSE_QUARANTINE,
                )
            )
        self.quarantined += len(targets)

    # ------------------------------------------------------------------

    @property
    def pending(self) -> Tuple[DeferredTarget, ...]:
        return tuple(self._pending)

    def take_pending(self) -> List[DeferredTarget]:
        """Drain the recovery queue (the recovery round owns it now)."""
        pending, self._pending = self._pending, []
        return pending

    # ------------------------------------------------------------------
    # stage-checkpoint round trip
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "breakers": self.ledger.snapshot(),
            "pending": tuple(self._pending),
            "admitted": self.admitted,
            "deferred": self.deferred,
            "quarantined": self.quarantined,
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.ledger.restore(tuple(state["breakers"]))
        self._pending = list(state["pending"])
        self.admitted = int(state["admitted"])
        self.deferred = int(state["deferred"])
        self.quarantined = int(state["quarantined"])


# ----------------------------------------------------------------------
# the bounded re-probe recovery round
# ----------------------------------------------------------------------


def _salt_for(target: DeferredTarget, round_index: int) -> int:
    return 0 if target.cause == CAUSE_QUARANTINE else round_index


def run_recovery(
    governor: ProbeGovernor,
    engine: TracerouteEngine,
    membership: CloudMembership,
    stats_by_label: Mapping[str, CampaignStats],
    events: EventSink,
    rounds: int,
    supervisor: Optional[StudySupervisor] = None,
    tracer: TracerLike = NULL_TRACER,
    trial_budget: int = TRIAL_BUDGET,
) -> RecoveryReport:
    """Re-issue deferred/lost probes through half-open breakers.

    Serial and deterministic: rounds run in order, regions in sorted
    order, targets in deferral order.  Each round half-opens every open
    breaker it visits (spending one unit of the study-wide retry budget
    per breaker, when a budget is configured) and re-probes through it;
    the supervisor is polled between regions so ``--deadline`` and
    cancellation are honoured at safe points.  Recovered traces flow to
    ``events`` (the observatory) and heal their campaign's stats.
    """
    pending = governor.take_pending()
    deferred_total = sum(1 for t in pending if t.cause == CAUSE_BREAKER)
    quarantine_total = len(pending) - deferred_total
    recovered = 0
    fallback = 0
    trial_probes = 0
    rounds_run = 0
    by_label: Dict[str, int] = {}

    def accept(target: DeferredTarget, trace: Traceroute) -> None:
        nonlocal recovered
        stats = stats_by_label.get(target.label)
        if stats is not None:
            stats.record(trace, membership.left_cloud(trace))
            stats.lost_probes -= 1
            stats.recovered_probes += 1
        events.on_probe(trace)
        by_label[target.label] = by_label.get(target.label, 0) + 1
        recovered += 1

    def deliver(target: DeferredTarget, trace: Traceroute) -> Traceroute:
        """Clamp a re-probe to no worse than its salt-0 baseline.

        A salted re-probe can be fingerprint-free yet lose the
        destination (the window landed on the tail), while the salt-0
        trace -- what the non-adaptive run records -- completed.
        Re-pacing must never cost coverage, so an incomplete salted
        trace yields to a completed baseline.  Deterministic: the
        baseline is a pure replay.
        """
        if target.cause == CAUSE_BREAKER and not trace.completed:
            baseline = engine.trace(
                target.cloud, target.region, target.dst, salt=0
            )
            if baseline.completed:
                return baseline
        return trace

    for round_index in range(1, max(0, rounds) + 1):
        if not pending:
            break
        if supervisor is not None:
            supervisor.poll()
        rounds_run += 1
        span = tracer.span(f"recovery:{round_index}", category="recovery")
        span.set("queued", len(pending))
        next_pending: List[DeferredTarget] = []
        for key in sorted({(t.cloud, t.region) for t in pending}):
            if supervisor is not None:
                supervisor.poll()
            cloud, region = key
            queue = [t for t in pending if (t.cloud, t.region) == key]
            breaker = governor.ledger.breaker(cloud, region)
            if breaker.state == BreakerState.OPEN:
                if supervisor is not None and not supervisor.consume_retry():
                    # Retry budget spent: leave this region for a later
                    # round (or the salt-0 fallback) instead of probing.
                    next_pending.extend(queue)
                    continue
                breaker.half_open(trial_budget)
            if breaker.state == BreakerState.HALF_OPEN:
                still: List[DeferredTarget] = []
                for target in queue:
                    if breaker.trials_remaining <= 0:
                        still.append(target)
                        continue
                    trace = engine.trace(
                        cloud, region, target.dst,
                        salt=_salt_for(target, round_index),
                    )
                    trial_probes += 1
                    # The trial verdict is honest region-health evidence;
                    # a quarantine-lost target is *delivered* regardless
                    # (its salt-0 trace is the clean-run content).
                    verdict = classify(trace).healthy
                    breaker.record_trial(verdict)
                    if verdict or target.cause == CAUSE_QUARANTINE:
                        accept(target, deliver(target, trace))
                    else:
                        still.append(target)
                breaker.resolve_trials()
                queue = still
            if breaker.state == BreakerState.CLOSED:
                still = []
                for target in queue:
                    trace = engine.trace(
                        cloud, region, target.dst,
                        salt=_salt_for(target, round_index),
                    )
                    if (
                        classify(trace).healthy
                        or target.cause == CAUSE_QUARANTINE
                    ):
                        accept(target, deliver(target, trace))
                    else:
                        still.append(target)
                queue = still
            next_pending.extend(queue)
        span.set("recovered", recovered)
        span.set("pending_after", len(next_pending))
        span.close()
        pending = next_pending

    # Rounds exhausted.  Breaker-deferred targets are re-paced, never
    # lost: accept their salt-0 trace, which is byte-identical to what
    # the non-adaptive run would have recorded for them.  Quarantined
    # targets behind a breaker that never closed stay lost.
    still_lost = 0
    for target in pending:
        if target.cause == CAUSE_BREAKER:
            trace = engine.trace(target.cloud, target.region, target.dst, salt=0)
            accept(target, trace)
            fallback += 1
        else:
            still_lost += 1

    return RecoveryReport(
        rounds_run=rounds_run,
        deferred=deferred_total,
        quarantine_lost=quarantine_total,
        recovered=recovered,
        fallback_recovered=fallback,
        still_lost=still_lost,
        trial_probes=trial_probes,
        recovered_by_label=tuple(sorted(by_label.items())),
        breakers=governor.ledger.snapshot(),
    )
