"""Deterministic fault injection for the measurement plane.

The paper's campaigns sweep 15.6M /24s from 15 regions over weeks (§3), a
regime where probe loss, ICMP rate-limiting, and worker/VM failures are
the norm.  "Misleading Stars" further shows that unresponsive hops bias
inferred topologies, so faults are a *fidelity* knob as much as a
resilience one.  A :class:`FaultPlan` describes a reproducible chaos
schedule that both the :class:`~repro.measure.executor.ShardedExecutor`
(transport faults) and the
:class:`~repro.measure.traceroute.TracerouteEngine` (observation faults)
consult.

Two fault categories with very different determinism contracts:

* **transport faults** -- shard-level worker crashes, slow shards,
  poisoned shards.  They perturb *execution* (retries, timeouts,
  quarantine) but never the content of a successfully traced shard, so a
  run that eventually completes every shard is bit-identical to a clean
  serial run.
* **observation faults** -- elevated per-region probe loss and ICMP
  rate-limit windows.  They deterministically change what the probes
  *see* (that is the point), as a pure function of
  ``(fault seed, cloud, region, dst, ttl)`` -- so any worker count, retry
  schedule, or checkpoint resume still reproduces the same traces.

Every decision is derived from ``random.Random(repr(key))`` -- stable
across processes and platforms, independent of ``PYTHONHASHSEED``, and
with no mutable RNG state shared between shards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

#: Rate-limit windows open somewhere in TTLs [2, 2 + WINDOW_SPREAD).
_WINDOW_SPREAD = 8


class InjectedWorkerCrash(RuntimeError):
    """Raised inside a worker when the fault plan kills its shard attempt."""


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos schedule for one campaign run.

    All rates are probabilities in ``[0, 1]``; everything is derived from
    ``seed`` alone, so two plans with equal fields inject exactly the
    same faults no matter where or when they run.
    """

    seed: int = 0

    # --- transport faults (execution only; results unaffected) ---------
    #: fraction of shards whose first attempt(s) raise a worker crash.
    crash_rate: float = 0.0
    #: how many consecutive attempts fail for a crashing shard.
    crash_attempts: int = 1
    #: fraction of shards delayed by ``slow_seconds`` per attempt.
    slow_rate: float = 0.0
    slow_seconds: float = 0.0
    #: shard indices that fail on *every* attempt (quarantine fodder).
    poison_shards: Tuple[int, ...] = ()

    # --- observation faults (deterministically change the traces) ------
    #: region -> extra per-hop response loss; key ``"*"`` applies to all.
    region_loss: Mapping[str, float] = field(default_factory=dict)
    #: fraction of (cloud, region, dst) probes hitting a rate limiter.
    rate_limit_rate: float = 0.0
    #: consecutive TTLs silenced once a rate-limit window opens.
    rate_limit_window: int = 3

    def __post_init__(self) -> None:
        for name in ("crash_rate", "slow_rate", "rate_limit_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.crash_attempts < 1:
            raise ValueError(
                f"crash_attempts must be >= 1, got {self.crash_attempts}"
            )
        if self.slow_seconds < 0:
            raise ValueError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )
        if self.rate_limit_window < 1:
            raise ValueError(
                f"rate_limit_window must be >= 1, got {self.rate_limit_window}"
            )
        for region, loss in self.region_loss.items():
            if not 0.0 <= loss <= 1.0:
                raise ValueError(
                    f"region_loss[{region!r}] must be in [0, 1], got {loss}"
                )

    # ------------------------------------------------------------------

    def _u(self, *key: object) -> float:
        """A uniform [0, 1) draw that is a pure function of ``key``."""
        return random.Random(repr(("fault", self.seed) + key)).random()

    # --- transport side ------------------------------------------------

    def crash_failures(self, shard_index: int) -> int:
        """How many initial attempts on this shard must fail."""
        if shard_index in self.poison_shards:
            return -1  # sentinel: fails forever
        if self.crash_rate <= 0.0:
            return 0
        if self._u("crash", shard_index) < self.crash_rate:
            return self.crash_attempts
        return 0

    def should_crash(self, shard_index: int, attempt: int) -> bool:
        failures = self.crash_failures(shard_index)
        return failures < 0 or attempt < failures

    def raise_if_crashed(self, shard_index: int, attempt: int) -> None:
        if self.should_crash(shard_index, attempt):
            raise InjectedWorkerCrash(
                f"injected crash: shard {shard_index}, attempt {attempt}"
            )

    def slow_delay(self, shard_index: int) -> float:
        """Seconds this shard sleeps per attempt (0.0 for most shards)."""
        if self.slow_rate <= 0.0 or self.slow_seconds <= 0.0:
            return 0.0
        if self._u("slow", shard_index) < self.slow_rate:
            return self.slow_seconds
        return 0.0

    # --- observation side ----------------------------------------------

    @property
    def affects_probes(self) -> bool:
        """True when the plan changes trace content (not just execution)."""
        return bool(self.region_loss) or self.rate_limit_rate > 0.0

    @property
    def affects_execution(self) -> bool:
        return (
            self.crash_rate > 0.0
            or bool(self.poison_shards)
            or (self.slow_rate > 0.0 and self.slow_seconds > 0.0)
        )

    def probe_signature(self) -> str:
        """Identity of the observation-fault component.

        Checkpoint fingerprints embed this instead of the full plan:
        transport faults never change trace content, so a checkpoint
        written under a crashy plan is safely resumable under a clean
        one -- but not under different observation faults.
        """
        if not self.affects_probes:
            return "clean"
        return repr(
            (
                self.seed,
                tuple(sorted(self.region_loss.items())),
                self.rate_limit_rate,
                self.rate_limit_window,
            )
        )

    def hop_suppressed(
        self, cloud: str, region: str, dst: int, ttl: int, salt: int = 0
    ) -> bool:
        """Whether the fault plan silences this hop's response.

        A pure function of ``(seed, cloud, region, dst, ttl)`` -- the
        traceroute engine calls it *after* its own noise draws, so the
        main probe RNG stream is untouched and fault-free portions of a
        trace stay identical to the clean run.

        ``salt`` re-keys only the fault draws (never the base noise):
        the adaptive recovery round re-probes a deferred target at
        ``salt = recovery round index`` to draw a fresh loss/rate-limit
        schedule for it.  ``salt=0`` is byte-identical to the unsalted
        draw, so non-adaptive runs and checkpoint journals are
        unaffected.
        """
        extra: Tuple[int, ...] = (salt,) if salt else ()
        loss = self.region_loss.get(region, self.region_loss.get("*", 0.0))
        if loss > 0.0 and self._u("loss", cloud, region, dst, ttl, *extra) < loss:
            return True
        if self.rate_limit_rate > 0.0:
            if self._u("rlimit", cloud, region, dst, *extra) < self.rate_limit_rate:
                start = 2 + int(
                    self._u("rlimit-start", cloud, region, dst, *extra)
                    * _WINDOW_SPREAD
                )
                if start <= ttl < start + self.rate_limit_window:
                    return True
        return False

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "FaultPlan":
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact human-readable summary for reports and provenance."""
        parts = [f"seed={self.seed}"]
        if self.crash_rate:
            parts.append(
                f"crash={self.crash_rate:g}x{self.crash_attempts}"
            )
        if self.poison_shards:
            parts.append(f"poison={list(self.poison_shards)}")
        if self.slow_rate and self.slow_seconds:
            parts.append(f"slow={self.slow_rate:g}@{self.slow_seconds:g}s")
        if self.region_loss:
            loss = ";".join(
                f"{r}:{v:g}" for r, v in sorted(self.region_loss.items())
            )
            parts.append(f"loss={loss}")
        if self.rate_limit_rate:
            parts.append(
                f"rate-limit={self.rate_limit_rate:g}w{self.rate_limit_window}"
            )
        return "FaultPlan(" + ", ".join(parts) + ")"

    def to_spec(self) -> str:
        """The canonical compact spec; ``FaultPlan.parse`` round-trips it.

        Unlike :meth:`describe` (human-oriented), this emits exactly the
        ``key=value`` grammar :meth:`parse` reads, so config files can
        serialize a plan losslessly.
        """
        parts = [f"seed={self.seed}"]
        if self.crash_rate:
            parts.append(f"crash={self.crash_rate:g}")
        if self.crash_attempts != 1:
            parts.append(f"crash-attempts={self.crash_attempts}")
        if self.slow_rate:
            parts.append(f"slow={self.slow_rate:g}")
        if self.slow_seconds:
            parts.append(f"slow-seconds={self.slow_seconds:g}")
        if self.poison_shards:
            parts.append(
                "poison=" + ";".join(str(i) for i in self.poison_shards)
            )
        if self.region_loss:
            parts.append(
                "loss="
                + ";".join(
                    f"{r}:{v:g}" for r, v in sorted(self.region_loss.items())
                )
            )
        if self.rate_limit_rate:
            parts.append(f"rate-limit={self.rate_limit_rate:g}")
        if self.rate_limit_window != 3:
            parts.append(f"window={self.rate_limit_window}")
        return ",".join(parts)

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        ``"crash=0.25,crash-attempts=2,slow=0.1,slow-seconds=0.5,``
        ``loss=use1:0.05;euw1:0.1,rate-limit=0.2,window=3,``
        ``poison=3;7,seed=1"`` -- keys may appear in any order; unknown
        keys raise ``ValueError``.
        """
        kwargs: Dict[str, Any] = {}
        spec = spec.strip()
        if not spec:
            return cls()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"fault-plan item needs key=value: {item!r}")
            key, _, value = item.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "crash":
                kwargs["crash_rate"] = float(value)
            elif key in ("crash-attempts", "crash_attempts"):
                kwargs["crash_attempts"] = int(value)
            elif key == "slow":
                kwargs["slow_rate"] = float(value)
            elif key in ("slow-seconds", "slow_seconds"):
                kwargs["slow_seconds"] = float(value)
            elif key == "poison":
                kwargs["poison_shards"] = tuple(
                    int(x) for x in value.split(";") if x.strip()
                )
            elif key == "loss":
                loss: Dict[str, float] = {}
                for entry in value.split(";"):
                    entry = entry.strip()
                    if not entry:
                        continue
                    if ":" in entry:
                        region, _, rate = entry.rpartition(":")
                        loss[region.strip()] = float(rate)
                    else:
                        loss["*"] = float(entry)
                kwargs["region_loss"] = loss
            elif key in ("rate-limit", "rate_limit"):
                # `0.2w5` carries the window inline (the ``describe()``
                # form); parsing it as a bare float used to blow up, and
                # dropping the suffix would silently run window=3.
                if "w" in value:
                    rate, _, window = value.partition("w")
                    kwargs["rate_limit_rate"] = float(rate)
                    kwargs["rate_limit_window"] = int(window)
                else:
                    kwargs["rate_limit_rate"] = float(value)
            elif key in ("window", "rate-limit-window", "rate_limit_window"):
                kwargs["rate_limit_window"] = int(value)
            else:
                raise ValueError(f"unknown fault-plan key: {key!r}")
        return cls(**kwargs)
