"""Crash-resilient campaign checkpoints.

A weeks-long sweep (§3) must survive the driver being killed.  The
executor appends every completed shard -- in its compact wire format --
to a JSON-lines journal as soon as it merges; a restarted run replays
finished shards from disk and re-probes only the rest.  Because a shard's
traces are a pure function of ``(engine seed, cloud, region, dst)`` plus
the observation-fault plan, the replayed stream is bit-identical to what
a clean uninterrupted run would have produced.

Layout: one ``<label>.jsonl`` file per campaign under the checkpoint
directory.  The first line is a header carrying a *fingerprint* of the
campaign identity (cloud, seed, regions, targets, shard size, and the
observation-fault signature); every following line is one completed
shard.  A journal whose fingerprint does not match the new run -- e.g.
round-2 targets changed because round 1 found different CBIs -- is
discarded rather than trusted.  A torn final line (the process died
mid-write) is silently dropped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.fsutil import fsync_dir, safe_name

_FORMAT_VERSION = 1


class CampaignCheckpoint:
    """The shard journal of one campaign.

    ``get``/``put`` speak the executor's packed wire format (see
    ``executor._pack_result``); the journal never holds live objects.
    Tracing span rows never enter the journal either: the executor
    re-packs the bare 4-element result before calling ``put``, so a
    resumed run can never replay another run's stale wall-clock.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str, resume: bool = True) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._shards: Dict[int, Sequence[Any]] = {}
        self.stale = False  # an existing journal was discarded
        if resume:
            self._load()
        elif self.path.exists():
            self.path.unlink()
        if not self._has_header():
            self._write_header()

    # ------------------------------------------------------------------

    def _has_header(self) -> bool:
        return self.path.exists() and self.path.stat().st_size > 0

    def _write_header(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as fh:
            json.dump(
                {"version": _FORMAT_VERSION, "fingerprint": self.fingerprint},
                fh,
            )
            fh.write("\n")

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except ValueError:
            header = None
        if (
            not isinstance(header, dict)
            or header.get("version") != _FORMAT_VERSION
            or header.get("fingerprint") != self.fingerprint
        ):
            # A different campaign (or format) wrote this journal: the
            # stored shards would not match this run's plan.  Start over.
            self.stale = True
            self.path.unlink()
            return
        for line in lines[1:]:
            try:
                row = json.loads(line)
            except ValueError:
                break  # torn final write; everything before it is good
            if isinstance(row, dict) and "shard" in row and "packed" in row:
                self._shards[int(row["shard"])] = row["packed"]

    # ------------------------------------------------------------------

    @property
    def completed_shards(self) -> int:
        return len(self._shards)

    def has(self, shard_index: int) -> bool:
        return shard_index in self._shards

    def get(self, shard_index: int) -> Optional[Sequence[Any]]:
        return self._shards.get(shard_index)

    def put(self, shard_index: int, packed: Sequence[Any]) -> None:
        """Journal one completed shard (append + flush, torn-write safe)."""
        if shard_index in self._shards:
            return
        with open(self.path, "a") as fh:
            json.dump({"shard": shard_index, "packed": packed}, fh)
            fh.write("\n")
            fh.flush()
        self._shards[shard_index] = packed

    def finalize(self) -> None:
        """Compact the journal into one atomically-replaced, fsynced file.

        The append path above is fast but a hard kill can still tear its
        final line; the reader tolerates that, but once a campaign (or an
        interrupted study) reaches a quiescent point we rewrite the whole
        journal via temp-file + ``os.replace`` + fsync so the on-disk
        state is durable and untorn.  Idempotent; shard order is sorted
        so the finalized bytes are deterministic.
        """
        if not self.path.parent.exists():
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(
                {"version": _FORMAT_VERSION, "fingerprint": self.fingerprint},
                fh,
            )
            fh.write("\n")
            for shard_index in sorted(self._shards):
                json.dump(
                    {"shard": shard_index, "packed": self._shards[shard_index]},
                    fh,
                )
                fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        fsync_dir(self.path.parent)


class CheckpointStore:
    """A directory of per-campaign journals for one study run.

    The store tracks every journal it opened so an interrupt handler can
    :meth:`finalize_all` -- flush and atomically rewrite each journal --
    before the process exits.
    """

    def __init__(self, root: Union[str, Path], resume: bool = False) -> None:
        self.root = Path(root)
        self.resume = resume
        self.root.mkdir(parents=True, exist_ok=True)
        self._open: List[CampaignCheckpoint] = []

    def campaign(self, label: str, fingerprint: str) -> CampaignCheckpoint:
        path = self.root / (safe_name(label, "campaign") + ".jsonl")
        checkpoint = CampaignCheckpoint(path, fingerprint, resume=self.resume)
        self._open.append(checkpoint)
        return checkpoint

    def finalize_all(self) -> None:
        """Finalize every journal opened through this store (idempotent)."""
        for checkpoint in self._open:
            checkpoint.finalize()
