"""Probing-campaign orchestration (§3, §4.2, §7.1).

Round 1 sweeps the ``.1`` of every /24 in the target universe from every
region.  Round 2 ("expansion probing") targets every other address of the
/24s around the CBIs discovered in round 1.  The VPI round re-probes a
target pool from the four other clouds.  All campaigns stream traces into
:class:`~repro.measure.sink.ProbeSink` consumers so memory stays bounded
at any scale, and every run goes through the sharded executor -- serial
when ``workers <= 1``, a ``multiprocessing`` pool otherwise, with
identical output either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.net.ip import IPv4, IPv4IntervalSet, dot1_targets, is_private_or_shared
from repro.measure.checkpoint import CheckpointStore
from repro.measure.executor import RetryPolicy
from repro.measure.faults import FaultPlan
from repro.measure.metrics import CampaignProgress
from repro.measure.sink import SinkLike
from repro.measure.supervise import StudySupervisor
from repro.measure.traceroute import Traceroute, TracerouteEngine
from repro.obs.span import TracerLike
from repro.world.model import World

if TYPE_CHECKING:  # pragma: no cover - annotation only (import cycle)
    from repro.measure.adapt import ProbeGovernor

#: Deprecated alias; campaign APIs now accept any :data:`SinkLike`
#: (a ``ProbeSink`` or a bare callable).  Kept for old call sites.
TraceConsumer = Callable[[Traceroute], None]


@dataclass
class CampaignStats:
    """Yield statistics, mirroring the §3 discussion."""

    probes: int = 0
    completed: int = 0
    left_cloud: int = 0
    gap_limited: int = 0
    #: probes never delivered because their shard was quarantined.
    lost_probes: int = 0
    quarantined_shards: int = 0
    #: probes re-paced behind an open circuit breaker (adaptive runs
    #: only); counted in ``lost_probes`` until recovery heals them.
    deferred_probes: int = 0
    #: probes the recovery round delivered after deferral/quarantine.
    recovered_probes: int = 0
    by_region: Dict[str, int] = field(default_factory=dict)

    def record(self, trace: Traceroute, left_cloud: bool) -> None:
        self.probes += 1
        self.by_region[trace.region] = self.by_region.get(trace.region, 0) + 1
        if trace.completed:
            self.completed += 1
        else:
            self.gap_limited += 1
        if left_cloud:
            self.left_cloud += 1

    @property
    def completeness(self) -> float:
        """Delivered / expected probes; < 1.0 after shard quarantine."""
        expected = self.probes + self.lost_probes
        return self.probes / expected if expected else 1.0

    @property
    def completed_fraction(self) -> float:
        return self.completed / self.probes if self.probes else 0.0

    @property
    def left_cloud_fraction(self) -> float:
        return self.left_cloud / self.probes if self.probes else 0.0


class CloudMembership:
    """Decides whether a trace escaped the probing cloud's address space.

    Stateless after construction and rebuilt cheaply inside executor
    workers from ``(world, cloud)``.
    """

    def __init__(self, world: World, cloud: str) -> None:
        # Flattened to disjoint intervals once: membership is one bisect
        # per hop instead of a scan over every announced/infra block.
        self._own = IPv4IntervalSet(
            list(world.cloud_announced_blocks.get(cloud, []))
            + list(world.cloud_infra_blocks.get(cloud, []))
        )

    def left_cloud(self, trace: Traceroute) -> bool:
        own = self._own
        dst = trace.dst
        for ip in trace.responsive_ips:
            if ip == dst:
                continue
            if ip not in own and not is_private_or_shared(ip):
                return True
        return False


class ProbeCampaign:
    """Drives a :class:`TracerouteEngine` over target lists."""

    def __init__(
        self,
        world: World,
        engine: Optional[TracerouteEngine] = None,
        cloud: str = "amazon",
        regions: Optional[Sequence[str]] = None,
        workers: int = 1,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        supervisor: Optional[StudySupervisor] = None,
        governor: Optional["ProbeGovernor"] = None,
    ) -> None:
        self.world = world
        self.cloud = cloud
        # A campaign built without an engine still honours the fault plan
        # (observation faults live on the engine, transport faults on the
        # executor); an explicit engine keeps its own plan.
        self.engine = engine or TracerouteEngine(world, faults=faults)
        self.regions = list(regions or world.region_names(cloud))
        self.workers = max(1, workers)
        self.faults = faults if faults is not None else self.engine.faults
        self.retry = retry
        self.supervisor = supervisor
        #: merge-time admit/defer hook for adaptive runs (one governor
        #: spans round 1 and round 2, so breaker state carries over).
        self.governor = governor
        self.membership = CloudMembership(world, cloud)

    # ------------------------------------------------------------------

    def _left_cloud(self, trace: Traceroute) -> bool:
        return self.membership.left_cloud(trace)

    def run(
        self,
        targets: Iterable[IPv4],
        sink: SinkLike,
        stats: Optional[CampaignStats] = None,
        regions: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        progress: Optional[CampaignProgress] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_label: str = "campaign",
        tracer: Optional[TracerLike] = None,
        worker_spans: bool = False,
    ) -> CampaignStats:
        """Probe every target from every region, streaming to ``sink``.

        ``targets`` may be any iterable; it is materialized exactly once.
        With ``workers > 1`` shards run on a process pool, but the merged
        trace stream (and therefore everything downstream) is identical
        to the serial run -- including under an injected fault plan with
        retries, and across a checkpoint kill/resume.  ``tracer`` /
        ``worker_spans`` are forwarded to the executor (digest-neutral
        span recording; see :mod:`repro.obs`).
        """
        from repro.measure.executor import ShardedExecutor

        stats = stats or CampaignStats()
        executor = ShardedExecutor(
            self.world,
            self.engine,
            self.membership,
            cloud=self.cloud,
            workers=self.workers if workers is None else workers,
            faults=self.faults,
            retry=self.retry,
            supervisor=self.supervisor,
            governor=self.governor,
        )
        executor.run(
            targets,
            sink,
            stats,
            regions=list(regions or self.regions),
            progress=progress,
            checkpoint_store=checkpoint_store,
            checkpoint_label=checkpoint_label,
            tracer=tracer,
            worker_spans=worker_spans,
        )
        return stats

    # ------------------------------------------------------------------

    def round1_targets(self) -> List[IPv4]:
        """The ``.1`` of every /24 in the sweep universe (§3).

        Materialized in one batched pass (the executor needs the full
        list anyway to plan shards) instead of a generator that converts
        prefixes one call at a time.
        """
        return dot1_targets(self.world.sweep_slash24s)

    def run_round1(
        self,
        sink: SinkLike,
        stats: Optional[CampaignStats] = None,
        workers: Optional[int] = None,
        progress: Optional[CampaignProgress] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        tracer: Optional[TracerLike] = None,
        worker_spans: bool = False,
    ) -> CampaignStats:
        return self.run(
            self.round1_targets(),
            sink,
            stats,
            workers=workers,
            progress=progress,
            checkpoint_store=checkpoint_store,
            checkpoint_label="round1",
            tracer=tracer,
            worker_spans=worker_spans,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def expansion_targets(
        cbi_ips: Iterable[IPv4], stride: int = 1
    ) -> List[IPv4]:
        """All other addresses in the /24 of every discovered CBI (§4.2).

        ``stride`` sub-samples each /24 for cheaper runs; 1 reproduces the
        paper's exhaustive expansion.
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        # Batched /24 conversion: one masking pass collects the distinct
        # nets (keyed by the lowest CBI that claimed each, preserving
        # the historical per-net exclusion), then a precomputed offset
        # row is replayed per net instead of re-deriving it 254/stride
        # times per /24.
        claimed: Dict[int, int] = {}
        for cbi in sorted(set(cbi_ips)):
            net = cbi & 0xFFFFFF00
            if net not in claimed:
                claimed[net] = cbi
        offsets = tuple(range(1, 255, stride))
        targets: List[IPv4] = []
        for net, cbi in sorted(claimed.items()):
            targets.extend(
                addr for addr in (net + o for o in offsets) if addr != cbi
            )
        return targets

    def run_expansion(
        self,
        cbi_ips: Iterable[IPv4],
        sink: SinkLike,
        stats: Optional[CampaignStats] = None,
        stride: int = 1,
        workers: Optional[int] = None,
        progress: Optional[CampaignProgress] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        tracer: Optional[TracerLike] = None,
        worker_spans: bool = False,
    ) -> CampaignStats:
        return self.run(
            self.expansion_targets(cbi_ips, stride),
            sink,
            stats,
            workers=workers,
            progress=progress,
            checkpoint_store=checkpoint_store,
            checkpoint_label="round2",
            tracer=tracer,
            worker_spans=worker_spans,
        )


def vpi_target_pool(
    non_ixp_cbis: Iterable[IPv4], discovery_dsts: Iterable[IPv4]
) -> List[IPv4]:
    """§7.1's probe pool: non-IXP CBIs, their +1 addresses, and the
    destinations of the traceroutes that discovered each CBI."""
    pool: Set[IPv4] = set()
    for cbi in non_ixp_cbis:
        pool.add(cbi)
        pool.add(cbi + 1)
    pool.update(discovery_dsts)
    return sorted(pool)
