"""Deterministic probe-health ledger and per-region circuit breakers.

Yeganeh et al. ran their campaigns against a fabric that silently drops
and rate-limits ICMP at Amazon's border (§3); "Misleading Stars" shows
that exactly these blind spots bias inferred topologies.  This module is
the *sensing* half of the adaptive control plane: it folds every merged
probe outcome into a per-``(cloud, region)`` health ledger and drives a
circuit-breaker state machine (closed -> open -> half-open) from it.
The *acting* half -- deferral and recovery -- lives in
:mod:`repro.measure.adapt`.

The determinism contract (enforced by reprolint REP008 and the adaptive
digest tests):

* every ledger fold and breaker transition is keyed on probe **counts**
  and trace **content**, never wall-clock -- there is deliberately no
  ``time`` import in this module;
* outcomes are folded at merge time, in the executor's serial merge
  order, so any worker count reproduces the serial run's ledger (and
  therefore every deferral decision) bit-for-bit;
* breakers for different regions are independent, so interleaving the
  merge streams of two regions in any order that preserves each
  region's own order yields identical breaker states (the Hypothesis
  order-invariance property).

Fold rules (DESIGN.md §6.6):

* a trace is a **failure** when it carries a loss/rate-limit
  fingerprint: an interior silenced-TTL run of at least
  :data:`SILENCED_RUN_FINGERPRINT` unresponsive hops that resumes
  afterwards.  A naturally gap-limited trace (silent destination) is
  *not* a failure -- incompletion is routine in clean runs, and a
  breaker that opened on it would defer healthy regions; only the
  silenced-run fingerprint separates injected pathology (elevated
  loss, rate-limit windows) from background noise;
* consecutive failures grow a streak; any healthy trace resets it; a
  streak reaching the breaker threshold opens the breaker;
* a quarantined shard folds as one failure per lost probe, so a
  quarantine in a closed region opens its breaker immediately;
* an open breaker admits nothing until a recovery round half-opens it
  with a bounded trial-probe budget; all-healthy trials close it, any
  failed trial re-opens it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.measure.traceroute import Traceroute

#: An interior silenced-TTL run at least this long fingerprints an ICMP
#: rate-limit window (``FaultPlan.rate_limit_window`` defaults to 3);
#: shorter runs are ordinary per-hop loss and do not count extra.
SILENCED_RUN_FINGERPRINT = 3


class BreakerState:
    """Circuit-breaker states (string enum, mirrors the classic pattern)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class ProbeOutcome:
    """Classification of one merged traceroute, as the ledger sees it."""

    region: str
    completed: bool
    #: longest run of unresponsive TTLs that resumed afterwards.
    silenced_run: int

    @property
    def rate_limited(self) -> bool:
        return self.silenced_run >= SILENCED_RUN_FINGERPRINT

    @property
    def healthy(self) -> bool:
        """No loss/rate-limit fingerprint.

        Deliberately ignores ``completed``: a silent destination is
        routine background noise, not region sickness, and folding it
        as a failure would open breakers on perfectly healthy regions.
        """
        return not self.rate_limited


def classify(trace: Traceroute) -> ProbeOutcome:
    """Fold one trace into a :class:`ProbeOutcome`.

    The silenced run counts only *interior* silence -- unresponsive TTLs
    strictly before the last responsive hop -- so a gap-limited tail
    never masquerades as a rate-limit window.
    """
    last_responsive = -1
    for i, hop in enumerate(trace.hops):
        if hop.ip is not None:
            last_responsive = i
    run = 0
    best = 0
    for i in range(max(0, last_responsive)):
        if trace.hops[i].ip is None:
            run += 1
            if run > best:
                best = run
        else:
            run = 0
    return ProbeOutcome(
        region=trace.region,
        completed=trace.completed,
        silenced_run=best,
    )


@dataclass(frozen=True)
class BreakerEvent:
    """One breaker transition, for provenance and the resilience report."""

    cloud: str
    region: str
    #: outcomes folded for this region when the transition fired.
    at_outcome: int
    from_state: str
    to_state: str
    reason: str


@dataclass(frozen=True)
class BreakerSnapshot:
    """Serializable state of one breaker (stage-checkpoint codec type)."""

    cloud: str
    region: str
    state: str
    streak: int
    outcomes: int
    failures: int
    rate_limited: int
    quarantined: int
    #: outcome count at the first CLOSED -> OPEN transition; -1 = never.
    first_open_at: int
    trial_budget: int
    trial_successes: int
    trial_failures: int
    events: Tuple[BreakerEvent, ...] = ()


class CircuitBreaker:
    """One region's breaker: a pure fold over counted probe outcomes."""

    def __init__(self, cloud: str, region: str, threshold: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.cloud = cloud
        self.region = region
        self.threshold = threshold
        self.state = BreakerState.CLOSED
        self.streak = 0
        self.outcomes = 0
        self.failures = 0
        self.rate_limited = 0
        self.quarantined = 0
        self.first_open_at = -1
        self.trial_budget = 0
        self.trial_successes = 0
        self.trial_failures = 0
        self.events: List[BreakerEvent] = []

    # ------------------------------------------------------------------

    def _transition(self, to_state: str, reason: str) -> None:
        self.events.append(
            BreakerEvent(
                cloud=self.cloud,
                region=self.region,
                at_outcome=self.outcomes,
                from_state=self.state,
                to_state=to_state,
                reason=reason,
            )
        )
        if to_state == BreakerState.OPEN and self.first_open_at < 0:
            self.first_open_at = self.outcomes
        self.state = to_state

    # ------------------------------------------------------------------

    def record(self, outcome: ProbeOutcome) -> None:
        """Fold one admitted probe outcome (CLOSED state only).

        The governor never folds outcomes through an open breaker --
        deferred probes are re-paced, not counted -- so ``record`` on an
        open breaker is a programming error.
        """
        if self.state == BreakerState.OPEN:
            raise ValueError(
                f"breaker {self.region!r} is open; defer, don't record"
            )
        self.outcomes += 1
        if outcome.rate_limited:
            self.rate_limited += 1
        if outcome.healthy:
            self.streak = 0
            return
        self.failures += 1
        self.streak += 1
        if self.state == BreakerState.CLOSED and self.streak >= self.threshold:
            self._transition(
                BreakerState.OPEN,
                f"failure streak {self.streak} >= threshold {self.threshold}",
            )

    def record_quarantine(self, probes: int) -> None:
        """Fold a quarantined shard: one failure per probe never delivered."""
        if probes <= 0:
            return
        self.outcomes += probes
        self.failures += probes
        self.quarantined += probes
        self.streak += probes
        if self.state == BreakerState.CLOSED and self.streak >= self.threshold:
            self._transition(
                BreakerState.OPEN,
                f"quarantined shard (+{probes} lost probes)",
            )

    # ------------------------------------------------------------------
    # half-open trial accounting (the recovery round drives this)
    # ------------------------------------------------------------------

    def half_open(self, budget: int) -> None:
        """OPEN -> HALF_OPEN with a bounded trial-probe budget."""
        if self.state != BreakerState.OPEN:
            raise ValueError(
                f"cannot half-open a {self.state} breaker ({self.region!r})"
            )
        if budget < 1:
            raise ValueError(f"trial budget must be >= 1, got {budget}")
        self.trial_budget = budget
        self.trial_successes = 0
        self.trial_failures = 0
        self._transition(
            BreakerState.HALF_OPEN, f"{budget} trial probes granted"
        )

    @property
    def trials_remaining(self) -> int:
        spent = self.trial_successes + self.trial_failures
        return max(0, self.trial_budget - spent)

    def record_trial(self, healthy: bool) -> None:
        if self.state != BreakerState.HALF_OPEN:
            raise ValueError(
                f"trial on a {self.state} breaker ({self.region!r})"
            )
        if self.trials_remaining <= 0:
            raise ValueError(f"trial budget exhausted ({self.region!r})")
        self.outcomes += 1
        if healthy:
            self.trial_successes += 1
        else:
            self.trial_failures += 1
            self.failures += 1

    def resolve_trials(self) -> str:
        """Settle a half-open breaker after its trial probes ran.

        Any failed trial re-opens; otherwise at least one healthy trial
        closes (and resets the streak).  A half-open breaker that ran no
        trials (empty queue) closes too -- there was nothing sick left.
        """
        if self.state != BreakerState.HALF_OPEN:
            return self.state
        if self.trial_failures > 0:
            self._transition(
                BreakerState.OPEN,
                f"{self.trial_failures}/{self.trial_budget} trial probes failed",
            )
        else:
            self.streak = 0
            self._transition(
                BreakerState.CLOSED,
                f"{self.trial_successes} trial probes healthy",
            )
        return self.state

    # ------------------------------------------------------------------

    def snapshot(self) -> BreakerSnapshot:
        return BreakerSnapshot(
            cloud=self.cloud,
            region=self.region,
            state=self.state,
            streak=self.streak,
            outcomes=self.outcomes,
            failures=self.failures,
            rate_limited=self.rate_limited,
            quarantined=self.quarantined,
            first_open_at=self.first_open_at,
            trial_budget=self.trial_budget,
            trial_successes=self.trial_successes,
            trial_failures=self.trial_failures,
            events=tuple(self.events),
        )

    @classmethod
    def from_snapshot(
        cls, snap: BreakerSnapshot, threshold: int
    ) -> "CircuitBreaker":
        breaker = cls(snap.cloud, snap.region, threshold)
        breaker.state = snap.state
        breaker.streak = snap.streak
        breaker.outcomes = snap.outcomes
        breaker.failures = snap.failures
        breaker.rate_limited = snap.rate_limited
        breaker.quarantined = snap.quarantined
        breaker.first_open_at = snap.first_open_at
        breaker.trial_budget = snap.trial_budget
        breaker.trial_successes = snap.trial_successes
        breaker.trial_failures = snap.trial_failures
        breaker.events = list(snap.events)
        return breaker


@dataclass
class LedgerCounts:
    """Aggregate transition counters (study-span observability)."""

    opens: int = 0
    half_opens: int = 0
    closes: int = 0
    reopens: int = 0
    regions_opened: List[str] = field(default_factory=list)


class HealthLedger:
    """Per-``(cloud, region)`` breakers, folded in serial merge order."""

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def breaker(self, cloud: str, region: str) -> CircuitBreaker:
        key = (cloud, region)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(cloud, region, self.threshold)
            self._breakers[key] = breaker
        return breaker

    def observe(self, trace: Traceroute) -> ProbeOutcome:
        """Classify and fold one admitted trace; returns the outcome."""
        outcome = classify(trace)
        self.breaker(trace.cloud, trace.region).record(outcome)
        return outcome

    def note_quarantine(self, cloud: str, region: str, probes: int) -> None:
        self.breaker(cloud, region).record_quarantine(probes)

    # ------------------------------------------------------------------

    def breakers(self) -> List[CircuitBreaker]:
        """Every breaker, in deterministic (cloud, region) order."""
        return [self._breakers[key] for key in sorted(self._breakers)]

    def events(self) -> List[BreakerEvent]:
        out: List[BreakerEvent] = []
        for breaker in self.breakers():
            out.extend(breaker.events)
        return out

    def counts(self) -> LedgerCounts:
        counts = LedgerCounts()
        for breaker in self.breakers():
            for event in breaker.events:
                if event.to_state == BreakerState.OPEN:
                    if event.from_state == BreakerState.HALF_OPEN:
                        counts.reopens += 1
                    else:
                        counts.opens += 1
                        counts.regions_opened.append(event.region)
                elif event.to_state == BreakerState.HALF_OPEN:
                    counts.half_opens += 1
                elif event.to_state == BreakerState.CLOSED:
                    counts.closes += 1
        return counts

    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple[BreakerSnapshot, ...]:
        return tuple(b.snapshot() for b in self.breakers())

    def restore(self, snapshots: Tuple[BreakerSnapshot, ...]) -> None:
        self._breakers = {
            (snap.cloud, snap.region): CircuitBreaker.from_snapshot(
                snap, self.threshold
            )
            for snap in snapshots
        }
