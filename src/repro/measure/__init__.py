"""Measurement plane: traceroute, ping, public reachability, alias resolution.

These tools are the *only* window the inference pipeline has onto the
synthetic Internet -- the same observables the paper's authors had onto the
real one.
"""

from repro.measure.alias import AliasResolver
from repro.measure.campaign import (
    CampaignStats,
    CloudMembership,
    ProbeCampaign,
    vpi_target_pool,
)
from repro.measure.checkpoint import CampaignCheckpoint, CheckpointStore
from repro.measure.executor import (
    RetryPolicy,
    Shard,
    ShardedExecutor,
    partition_targets,
    plan_shards,
)
from repro.measure.faults import FaultPlan, InjectedWorkerCrash
from repro.measure.metrics import (
    CampaignProgress,
    QuarantinedShard,
    ShardFailure,
    ShardTiming,
    StudyMetrics,
)
from repro.measure.ping import Pinger
from repro.measure.reachability import PublicVantagePoint
from repro.measure.sink import (
    CollectorSink,
    EventSink,
    FanoutEvents,
    ProbeSink,
    StatsSink,
    as_event_sink,
)
from repro.measure.traceroute import (
    GAP_LIMIT,
    StopReason,
    TraceHop,
    Traceroute,
    TracerouteEngine,
)

__all__ = [
    "AliasResolver",
    "CampaignCheckpoint",
    "CampaignProgress",
    "CampaignStats",
    "CheckpointStore",
    "CloudMembership",
    "CollectorSink",
    "EventSink",
    "FanoutEvents",
    "FaultPlan",
    "GAP_LIMIT",
    "InjectedWorkerCrash",
    "Pinger",
    "ProbeCampaign",
    "ProbeSink",
    "PublicVantagePoint",
    "QuarantinedShard",
    "RetryPolicy",
    "Shard",
    "ShardFailure",
    "ShardTiming",
    "ShardedExecutor",
    "StatsSink",
    "StopReason",
    "StudyMetrics",
    "TraceHop",
    "Traceroute",
    "TracerouteEngine",
    "as_event_sink",
    "partition_targets",
    "plan_shards",
    "vpi_target_pool",
]
