"""Measurement plane: traceroute, ping, public reachability, alias resolution.

These tools are the *only* window the inference pipeline has onto the
synthetic Internet -- the same observables the paper's authors had onto the
real one.
"""

from repro.measure.alias import AliasResolver
from repro.measure.campaign import (
    CampaignStats,
    ProbeCampaign,
    vpi_target_pool,
)
from repro.measure.ping import Pinger
from repro.measure.reachability import PublicVantagePoint
from repro.measure.traceroute import (
    GAP_LIMIT,
    StopReason,
    TraceHop,
    Traceroute,
    TracerouteEngine,
)

__all__ = [
    "AliasResolver",
    "CampaignStats",
    "GAP_LIMIT",
    "Pinger",
    "ProbeCampaign",
    "PublicVantagePoint",
    "StopReason",
    "TraceHop",
    "Traceroute",
    "TracerouteEngine",
    "vpi_target_pool",
]
