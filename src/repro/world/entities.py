"""Ground-truth entities of the synthetic Internet.

The world is the *hidden* state that the paper's authors could not observe
directly: which router owns which interface, where every router physically
sits, which interconnections are virtual, and which peerings are announced
in BGP.  Inference code never imports this module's internals; it only sees
what the measurement plane (:mod:`repro.measure`) and the public datasets
(:mod:`repro.datasets`) expose.  Ground truth is consulted again only for
*evaluation* (e.g. pinning precision/recall against true metros).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPv4, InterconnectSubnet, Prefix


class RouterRole:
    """What part of the fabric a router belongs to (string enum)."""

    CLOUD_INTERNAL = "cloud_internal"    # inside a cloud's backbone/region
    CLOUD_BORDER = "cloud_border"        # cloud-owned border router
    CLIENT_BORDER = "client_border"      # client-side border router
    CLIENT_INTERNAL = "client_internal"  # inside a client network
    TRANSIT = "transit"                  # transit hop outside both networks


class PeeringType:
    """The three interconnection flavours of Fig. 1 (string enum)."""

    PUBLIC_IXP = "public_ixp"            # over an IXP switching fabric
    PRIVATE_PHYSICAL = "private_physical"  # cross-connect in a colo
    PRIVATE_VIRTUAL = "private_virtual"    # VPI over a cloud exchange


@dataclass
class Interface:
    """One router interface with its ground-truth attributes.

    ``addr_owner_asn`` is who the *address block* belongs to, which is what
    BGP/WHOIS-based annotation can see; ``router_id`` links to the router
    that physically hosts the interface, whose owner may differ (the
    address-sharing ambiguity of Fig. 2).
    """

    ip: IPv4
    router_id: int
    addr_owner_asn: ASN
    dns_name: Optional[str] = None
    responsive: bool = True
    #: True when this interface answers probes arriving over any VLAN of a
    #: shared cloud-exchange port (the behaviour VPI detection relies on).
    shared_port_response: bool = False


@dataclass
class Router:
    """A ground-truth router: owner, physical location, interfaces."""

    router_id: int
    owner_asn: ASN
    role: str
    metro_code: Optional[str] = None      # physical metro; None = unknown/virtual
    facility_id: Optional[int] = None     # colo facility housing it, if any
    interface_ips: List[IPv4] = field(default_factory=list)
    #: Probability that the router answers a TTL-expired probe at all.
    responsiveness: float = 1.0

    def add_interface_ip(self, ip: IPv4) -> None:
        self.interface_ips.append(ip)


@dataclass
class ColoFacility:
    """A colocation facility: tenants, cloud-native presence, exchanges."""

    facility_id: int
    name: str
    metro_code: str
    native_clouds: Set[str] = field(default_factory=set)
    tenant_asns: Set[ASN] = field(default_factory=set)
    has_cloud_exchange: bool = False
    ixp_ids: Set[int] = field(default_factory=set)
    #: Facilities housing an "AWS Direct Connect Partner" (layer-2 reach).
    partner_reach: bool = False


@dataclass
class IXP:
    """An Internet exchange point with its peering-LAN prefix."""

    ixp_id: int
    name: str
    prefix: Prefix
    metro_codes: Tuple[str, ...]          # >1 marks a multi-metro IXP (§6.1)
    member_ips: Dict[ASN, List[IPv4]] = field(default_factory=dict)

    @property
    def multi_metro(self) -> bool:
        return len(self.metro_codes) > 1


@dataclass
class CloudExchange:
    """A cloud-exchange switching fabric inside one facility."""

    exchange_id: int
    facility_id: int
    metro_code: str
    #: Client ports: ASN -> port interface IPs on the fabric.
    ports: Dict[ASN, List[IPv4]] = field(default_factory=dict)


@dataclass
class Interconnection:
    """One ground-truth interconnection (a single ABI--CBI adjacency).

    A *peering* between Amazon and an AS is the set of its interconnections;
    each interconnection is the unit the traceroute campaign can reveal.
    """

    icx_id: int
    cloud: str                       # which cloud provider ("amazon", ...)
    peer_asn: ASN
    ptype: str                       # PeeringType value
    bgp_visible: bool                # does the AS link show up in BGP feeds
    abi_router_id: int               # cloud border router
    abi_ip: IPv4                     # interface the cloud router answers with
    cbi_router_id: int               # client border router
    cbi_ip: IPv4                     # interface the client router answers with
    metro_code: str                  # metro of the cloud-side port
    client_metro_code: str           # true metro of the client router
    subnet: Optional[InterconnectSubnet] = None  # None for IXP peerings
    ixp_id: Optional[int] = None
    exchange_id: Optional[int] = None
    #: Clouds sharing the same client port (multi-cloud VPIs).  Contains at
    #: least ``cloud`` itself for VPIs.
    vpi_clouds: FrozenSet[str] = frozenset()
    uses_private_addresses: bool = False
    #: True when the client reaches the fabric through a layer-2 partner
    #: from another metro (remote peering, AS5 in Fig. 1).
    remote: bool = False
    #: parallel (ECMP) cloud-side interfaces; probes to different
    #: destinations cross different members, so one CBI is observed behind
    #: several ABIs (the Fig. 7b degree tail).  Includes ``abi_ip``.
    abi_ecmp: Tuple[IPv4, ...] = ()
    #: optional aggregation hop: another border interface traversed just
    #: before the ABI (two-tier metro edge).  Interfaces that aggregate
    #: for some interconnections while terminating others are the hybrid
    #: ABIs of Fig. 3.
    agg_abi_ip: Optional[IPv4] = None
    #: metro of the Amazon-side interface when the DX location is layer-2
    #: backhauled to a parent region's routers (None -> ``metro_code``).
    abi_metro_code: Optional[str] = None

    @property
    def is_virtual(self) -> bool:
        return self.ptype == PeeringType.PRIVATE_VIRTUAL

    @property
    def is_public(self) -> bool:
        return self.ptype == PeeringType.PUBLIC_IXP


@dataclass
class ClientAS:
    """Ground truth for one peer AS of the clouds."""

    asn: ASN
    profile: FrozenSet[str]          # set of paper peering-group labels
    home_metro: str
    footprint_metros: Tuple[str, ...]
    cone_slash24: int                # BGP customer-cone size in /24s (metadata)
    announced_prefixes: List[Prefix] = field(default_factory=list)
    #: /24s actually routed (instantiated) for probing, a sample of the cone.
    routed_slash24s: List[Prefix] = field(default_factory=list)
    #: Prefixes announced only in the round-2 BGP snapshot (late announcements).
    late_announced: List[Prefix] = field(default_factory=list)
    border_router_ids: List[int] = field(default_factory=list)
    internal_router_ids: List[int] = field(default_factory=list)
    icx_ids: List[int] = field(default_factory=list)
    multi_cloud: FrozenSet[str] = frozenset()  # other clouds this AS also uses


@dataclass
class RegionTruth:
    """One cloud region: its VM vantage point and internal path."""

    cloud: str
    name: str                        # e.g. "us-east-1"
    metro_code: str
    vm_ip: IPv4
    #: (router_id, responding interface ip) pairs, VM-side first.
    internal_path: List[Tuple[int, IPv4]] = field(default_factory=list)
    border_router_ids: List[int] = field(default_factory=list)
