"""Reverse-DNS name synthesis for client border interfaces.

Operators embed location hints (IATA codes, city names) and interconnect
vocabulary (``vlan``, ``dxvif``, ``dxcon``, ``awsdx``) in router interface
names.  The pinning pipeline (§6.1) parses these with DRoP-style rules, and
§7.3 uses the dx/vlan keywords as evidence that Pr-nB interconnections are
actually VPIs.  This module writes the names; :mod:`repro.core.dnsgeo`
reads them back -- the two share no code, so parser bugs stay observable.

Per the paper, *none* of Amazon's ABIs carry reverse DNS (§6.1 footnote);
only client interfaces get names here.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.geo import Metro
from repro.net.ip import IPv4, format_ip

#: Probability that a given kind of client interface has a reverse DNS name.
DNS_COVERAGE = {
    "tier1": 0.9,
    "tier2": 0.65,
    "access": 0.5,
    "content": 0.4,
    "enterprise": 0.25,
}

#: Of the named interfaces, how many embed a parseable location hint.
GEO_HINT_RATE = {
    "tier1": 0.85,
    "tier2": 0.7,
    "access": 0.55,
    "content": 0.4,
    "enterprise": 0.3,
}

_VPI_KEYWORDS = ("dxvif", "dxcon", "awsdx", "aws-dx")


def _slug(name: str) -> str:
    return "".join(ch for ch in name.lower() if ch.isalnum())[:12] or "net"


def _city_token(metro: Metro, rng: random.Random) -> str:
    """A location token: IATA code or squashed city name, operator-style."""
    if rng.random() < 0.7:
        token = metro.code.lower()
        # Many operators append a state/country hint: atlnga, lhruk, ...
        if rng.random() < 0.5:
            token += metro.country.lower()[:2]
        return token + f"{rng.randrange(1, 20):02d}"
    return metro.city.lower().replace(" ", "") + str(rng.randrange(1, 9))


def transit_interface_name(
    as_name: str, metro: Metro, rng: random.Random, peer_hint: str = "amazon"
) -> str:
    """Backbone-style name: ``ae-4.amazon.atlnga05.us.bb.gin.ntt.net``."""
    slot = rng.randrange(0, 30)
    dom = _slug(as_name)
    return (
        f"ae-{slot}.{peer_hint}.{_city_token(metro, rng)}."
        f"{metro.country.lower()}.bb.{dom}.net"
    )


def enterprise_interface_name(as_name: str, rng: random.Random) -> str:
    """Flat corporate name with no location hint."""
    dom = _slug(as_name)
    host = rng.choice(("edge", "gw", "border", "rtr", "core"))
    return f"{host}{rng.randrange(1, 9)}.{dom}.com"


def vpi_interface_name(
    as_name: str, rng: random.Random, metro: Optional[Metro] = None
) -> str:
    """Name carrying VPI vocabulary: vlan tags and dx keywords (§7.3)."""
    dom = _slug(as_name)
    parts = []
    if rng.random() < 0.75:
        parts.append(f"vlan{rng.randrange(100, 4000)}")
    if rng.random() < 0.7:
        kw = rng.choice(_VPI_KEYWORDS)
        parts.append(f"{kw}-{rng.randrange(0x1000, 0xFFFF):x}")
    if not parts:
        parts.append(f"vif{rng.randrange(10, 500)}")
    if metro is not None and rng.random() < 0.3:
        parts.append(metro.code.lower())
    return ".".join(parts) + f".{dom}.net"


def generic_interface_name(as_name: str, ip: IPv4, rng: random.Random) -> str:
    """Address-literal style name (no usable hints)."""
    dom = _slug(as_name)
    quad = format_ip(ip).replace(".", "-")
    return f"ip-{quad}.{dom}.net"


def synthesize_cbi_name(
    kind: str,
    as_name: str,
    metro: Metro,
    ip: IPv4,
    rng: random.Random,
    is_vpi: bool,
    vpi_keyword_rate: float = 0.035,
    false_hint_rate: float = 0.02,
    catalog=None,
) -> Optional[str]:
    """Produce a reverse-DNS name for a CBI, or ``None`` (no PTR record).

    ``false_hint_rate`` injects names whose location token disagrees with
    the true metro -- the artifact the paper's RTT-constraint check (§6.1)
    exists to catch (it excluded 0.87k CBIs).  ``vpi_keyword_rate`` keeps
    dx/vlan vocabulary rare (the paper found it on 170 of 4.85k Pr-nB
    names) but *only* on true VPIs plus physically-provisioned DX ports.
    """
    if rng.random() >= DNS_COVERAGE.get(kind, 0.3):
        return None
    if is_vpi and rng.random() < vpi_keyword_rate * 20:
        # VPI ports advertise their virtual nature far more often than the
        # base rate, but still on a small minority of interfaces.
        return vpi_interface_name(as_name, rng, metro)
    name_metro = metro
    if catalog is not None and rng.random() < false_hint_rate:
        codes = catalog.codes()
        other = catalog.get(codes[rng.randrange(len(codes))])
        if other.code != metro.code:
            name_metro = other
    if rng.random() < GEO_HINT_RATE.get(kind, 0.3):
        if kind in ("tier1", "tier2", "access"):
            return transit_interface_name(as_name, name_metro, rng)
        # Content/enterprise networks occasionally embed a city too.
        if rng.random() < 0.5:
            return transit_interface_name(as_name, name_metro, rng, peer_hint="aws")
    if kind == "enterprise":
        return enterprise_interface_name(as_name, rng)
    return generic_interface_name(as_name, ip, rng)
