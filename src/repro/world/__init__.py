"""Synthetic ground-truth Internet: entities, builder, forwarding model."""

from repro.world.build import WorldConfig, build_world
from repro.world.entities import (
    ClientAS,
    CloudExchange,
    ColoFacility,
    Interconnection,
    Interface,
    IXP,
    PeeringType,
    RegionTruth,
    Router,
    RouterRole,
)
from repro.world.model import PathPlan, PlanHop, Slash24Route, World
from repro.world.profiles import (
    ALL_GROUPS,
    CENSUS_TOTAL,
    GROUP_STATS,
    HYBRID_CENSUS,
    PB_B,
    PB_NB,
    PR_B_NV,
    PR_B_V,
    PR_NB_NV,
    PR_NB_V,
)

__all__ = [
    "ALL_GROUPS",
    "CENSUS_TOTAL",
    "ClientAS",
    "CloudExchange",
    "ColoFacility",
    "GROUP_STATS",
    "HYBRID_CENSUS",
    "IXP",
    "Interconnection",
    "Interface",
    "PathPlan",
    "PeeringType",
    "PlanHop",
    "PB_B",
    "PB_NB",
    "PR_B_NV",
    "PR_B_V",
    "PR_NB_NV",
    "PR_NB_V",
    "RegionTruth",
    "Router",
    "RouterRole",
    "Slash24Route",
    "World",
    "WorldConfig",
    "build_world",
]
