"""Client-AS topology: address blocks, cones, routed space, egress maps.

Each peer AS gets announced network blocks (what BGP sees), an
infrastructure block (router links -- sometimes never announced: the
WHOIS-only CBIs of Table 1), a sampled set of routed /24s standing in for
its customer cone, internal routers, and optionally downstream stub ASes
when the peer is a transit network.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.net.asn import ASInfo, ASN, ASRegistry
from repro.net.geo import Metro, MetroCatalog, metro_distance_km
from repro.net.ip import Prefix
from repro.net.rng import bounded_lognormal, coin, weighted_choice
from repro.world.addressing import AddressPlan
from repro.world.entities import ClientAS, Router, RouterRole
from repro.world.model import Slash24Route, World
from repro.world.peerings import IdSource
from repro.world.profiles import GROUP_STATS, dominant_kind_weights

#: How many /24s of an AS's cone we instantiate for probing, by AS kind.
ROUTED_SLASH24_RANGE: Dict[str, Tuple[int, int]] = {
    "tier1": (18, 48),
    "tier2": (10, 30),
    "access": (6, 18),
    "content": (3, 10),
    "enterprise": (1, 6),
}

#: Downstream stub ASes to hang off transit peers (their cone, made real).
DOWNSTREAM_STUBS: Dict[str, Tuple[int, int]] = {
    "tier1": (3, 6),
    "tier2": (1, 4),
    "access": (0, 2),
    "content": (0, 0),
    "enterprise": (0, 0),
}


def pick_footprint(
    rng: random.Random,
    catalog: MetroCatalog,
    home: Metro,
    spread: float,
) -> Tuple[str, ...]:
    """Home metro plus nearby metros, count driven by the group's spread."""
    extra = max(0, bounded_lognormal(rng, max(spread, 0.7), 0.7, 0, 25) - 1)
    if extra == 0:
        return (home.code,)
    ranked = sorted(
        (m for m in catalog if m.code != home.code),
        key=lambda m: metro_distance_km(home, m),
    )
    # Prefer close metros but allow occasional far-away presence.
    chosen: List[str] = [home.code]
    pool = ranked[: max(8, extra * 3)]
    rng.shuffle(pool)
    for metro in pool[:extra]:
        chosen.append(metro.code)
    return tuple(chosen)


class ClientASBuilder:
    """Creates one fully-populated :class:`ClientAS` per sampled profile."""

    def __init__(
        self,
        world: World,
        ids: IdSource,
        rng: random.Random,
        plan: AddressPlan,
        registry: ASRegistry,
        config,
    ) -> None:
        self.world = world
        self.ids = ids
        self.rng = rng
        self.plan = plan
        self.registry = registry
        self.config = config
        self._next_asn = 1000
        self._next_stub_asn = 60000
        self._infra_cursor: Dict[Prefix, int] = {}
        #: /24 network -> peer AS that carries it (parent for stubs)
        self._route_parent: Dict[int, ASN] = {}
        #: interconnections that never carry destination traffic (§4.2)
        self._backup_icx: set = set()

    # ------------------------------------------------------------------

    def _take_asn(self) -> ASN:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _take_stub_asn(self) -> ASN:
        asn = self._next_stub_asn
        self._next_stub_asn += 1
        return asn

    @property
    def infra_cursor(self) -> Dict[Prefix, int]:
        """Shared cursor for carving interconnect subnets from infra blocks."""
        return self._infra_cursor

    def _sample_kind(self, profile: FrozenSet[str]) -> str:
        weights = dominant_kind_weights(profile)
        kinds = sorted(weights)
        return weighted_choice(self.rng, kinds, [weights[k] for k in kinds])

    def _sample_cone(self, profile: FrozenSet[str]) -> int:
        stats = max((GROUP_STATS[g] for g in profile), key=lambda s: s.cone_median)
        return bounded_lognormal(
            self.rng, stats.cone_median, stats.cone_sigma, 1, 300_000
        )

    def _internal_router(self, asn: ASN, metro_code: str, infra_block: Prefix) -> int:
        """A client-internal router with one infra-addressed interface."""
        from repro.world.entities import Interface

        router = Router(
            router_id=self.ids.take(),
            owner_asn=asn,
            role=RouterRole.CLIENT_INTERNAL,
            metro_code=metro_code,
            responsiveness=1.0
            if self.rng.random() >= self.config.router_unresponsive_rate
            else 0.0,
        )
        self.world.add_router(router)
        offset = self._infra_cursor.get(infra_block, 0)
        ip = infra_block.network + offset
        self._infra_cursor[infra_block] = offset + 4
        self.world.add_interface(
            Interface(ip=ip, router_id=router.router_id, addr_owner_asn=asn)
        )
        self.world.via_metros[ip] = (metro_code,)
        return router.router_id

    # ------------------------------------------------------------------

    def build_client(self, profile: FrozenSet[str]) -> ClientAS:
        asn = self._take_asn()
        kind = self._sample_kind(profile)
        catalog = self.world.catalog
        codes = catalog.codes()
        home = catalog.get(codes[self.rng.randrange(len(codes))])
        spread = max(GROUP_STATS[g].metro_spread for g in profile)
        footprint = pick_footprint(self.rng, catalog, home, spread)
        name = f"{kind}-net-{asn}"
        self.registry.add(
            ASInfo(asn=asn, name=name, org_id=f"ORG-{asn}", kind=kind, country=home.country)
        )

        # Announced network blocks.
        n_blocks = 1 + (1 if coin(self.rng, 0.35) else 0)
        announced: List[Prefix] = []
        for _ in range(n_blocks):
            length = self.rng.choice((20, 21, 21, 22))
            announced.append(self.plan.client_network(asn, name, length))

        # Infrastructure block (may stay out of BGP -> WHOIS-only CBIs).
        infra = self.plan.client_infra(asn, name, 20)
        cfg = self.config
        infra_r1 = coin(self.rng, cfg.infra_announced_r1_rate)
        late: List[Prefix] = []
        if not infra_r1 and coin(self.rng, cfg.infra_late_announce_rate):
            late.append(infra)

        client = ClientAS(
            asn=asn,
            profile=profile,
            home_metro=home.code,
            footprint_metros=footprint,
            cone_slash24=self._sample_cone(profile),
            announced_prefixes=announced + ([] if infra_r1 else []),
            late_announced=late,
        )
        if infra_r1:
            client.announced_prefixes.append(infra)
        self.world.client_ases[asn] = client

        # One internal router at home; downstream stubs for transit kinds.
        internal_id = self._internal_router(asn, home.code, infra)
        client.internal_router_ids.append(internal_id)

        self._instantiate_routed_space(client, kind, announced, infra, internal_id)
        return client

    # ------------------------------------------------------------------

    def _instantiate_routed_space(
        self,
        client: ClientAS,
        kind: str,
        announced: List[Prefix],
        infra: Prefix,
        internal_router_id: int,
    ) -> None:
        """Create the /24 routes that probes can actually traverse."""
        lo, hi = ROUTED_SLASH24_RANGE[kind]
        n_routed = self.rng.randint(lo, hi)
        own_24s: List[Prefix] = []
        for block in announced:
            own_24s.extend(block.slash24s())
        self.rng.shuffle(own_24s)
        routed = own_24s[:n_routed]

        for p24 in routed:
            self._add_route(p24, client.asn, (internal_router_id,), announced_r1=True)
        client.routed_slash24s.extend(routed)

        # The infra block's /24s are routed toward the AS as well (router
        # links answer traceroute), announced or not.
        for p24 in infra.slash24s():
            self._add_route(
                p24,
                client.asn,
                (),
                announced_r1=infra in client.announced_prefixes,
                dest_response_p=0.02,
            )
            client.routed_slash24s.append(p24)

        # Downstream stub ASes make the transit cone concrete.
        slo, shi = DOWNSTREAM_STUBS[kind]
        for _ in range(self.rng.randint(slo, shi) if shi else 0):
            self._build_stub(client)

    def _build_stub(self, parent: ClientAS) -> None:
        asn = self._take_stub_asn()
        name = f"stub-net-{asn}"
        home = parent.home_metro
        self.registry.add(
            ASInfo(asn=asn, name=name, org_id=f"ORG-{asn}", kind="enterprise")
        )
        block = self.plan.client_network(asn, name, 22)
        stub_router = Router(
            router_id=self.ids.take(),
            owner_asn=asn,
            role=RouterRole.CLIENT_INTERNAL,
            metro_code=home,
            responsiveness=1.0
            if self.rng.random() >= self.config.router_unresponsive_rate
            else 0.0,
        )
        self.world.add_router(stub_router)
        from repro.world.entities import Interface

        ip = block.network + 1
        self.world.add_interface(
            Interface(ip=ip, router_id=stub_router.router_id, addr_owner_asn=asn)
        )
        self.world.via_metros[ip] = (home,)

        all_24s = list(block.slash24s())
        self.rng.shuffle(all_24s)
        chain = tuple(parent.internal_router_ids[:1]) + (stub_router.router_id,)
        for p24 in all_24s[: self.rng.randint(1, 3)]:
            self._add_route(p24, asn, chain, announced_r1=True, via_parent=parent.asn)
            parent.routed_slash24s.append(p24)

    def _add_route(
        self,
        p24: Prefix,
        owner_asn: ASN,
        chain: Tuple[int, ...],
        announced_r1: bool,
        dest_response_p: Optional[float] = None,
        via_parent: Optional[ASN] = None,
    ) -> None:
        if p24.network in self.world.routes:
            return
        self.world.routes[p24.network] = Slash24Route(
            prefix=p24,
            owner_asn=owner_asn,
            serving_icx_ids=(),
            egress_by_region={},
            chain_router_ids=chain,
            dest_response_p=(
                self.config.dest_response_rate
                if dest_response_p is None
                else dest_response_p
            ),
            announced_r1=announced_r1,
            carrier_asn=via_parent or owner_asn,
        )
        self.world.sweep_slash24s.append(p24)
        # Remember which peer AS carries this /24 (for egress assignment).
        self._route_parent[p24.network] = via_parent or owner_asn
        self.world.asn_carrier[owner_asn] = via_parent or owner_asn

    # ------------------------------------------------------------------
    # egress assignment (after interconnections exist)
    # ------------------------------------------------------------------

    def assign_egress(self) -> None:
        """Distribute each AS's routed /24s across its interconnections.

        Backup interconnections serve no destination traffic (they are the
        round-2-only discoveries of §4.2); the rest split the /24s, and
        each (region, /24) picks the lowest-propagation serving icx
        (hot-potato routing).
        """
        world = self.world
        catalog = world.catalog
        region_metro = {
            name: rt.metro_code for name, rt in world.regions["amazon"].items()
        }

        # Group routes per carrying peer AS.
        by_parent: Dict[ASN, List[Slash24Route]] = {}
        for net, route in world.routes.items():
            parent = self._route_parent.get(net, route.owner_asn)
            by_parent.setdefault(parent, []).append(route)

        for asn, routes in by_parent.items():
            client = world.client_ases.get(asn)
            if client is None or not client.icx_ids:
                continue
            active = [
                i
                for i in client.icx_ids
                if not world.interconnections[i].uses_private_addresses
                and i not in self._backup_icx
            ]
            if not active:
                active = [
                    i
                    for i in client.icx_ids
                    if not world.interconnections[i].uses_private_addresses
                ]
            if not active:
                continue
            for rname, rmetro in region_metro.items():
                world.client_default_egress[(asn, rname)] = min(
                    active,
                    key=lambda i: catalog.distance_km(
                        rmetro, world.interconnections[i].metro_code
                    ),
                )
            for route in routes:
                k = max(1, min(len(active), 1 + self.rng.randrange(3)))
                serving = self.rng.sample(active, k)
                route.serving_icx_ids = tuple(serving)
                for rname, rmetro in region_metro.items():
                    best = min(
                        serving,
                        key=lambda i: catalog.distance_km(
                            rmetro, world.interconnections[i].metro_code
                        ),
                    )
                    route.egress_by_region[rname] = best

    def set_backups(self, backup_icx_ids: set) -> None:
        self._backup_icx = set(backup_icx_ids)
