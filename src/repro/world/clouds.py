"""Cloud-provider specifications: regions, ASNs, address superblocks.

Amazon gets the 15 regions the paper could use (§2-§3).  The four other
clouds exist so that §7.1's VPI detection has vantage points to probe from;
their internal structure is deliberately lighter than Amazon's -- the
pipeline only ever runs *border inference* on their traceroutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.net.asn import (
    AMAZON_PRIMARY_ASN,
    GOOGLE_ASN,
    IBM_ASN,
    MICROSOFT_ASN,
    ORACLE_ASN,
)


@dataclass(frozen=True)
class CloudSpec:
    """Static description of one cloud provider."""

    name: str
    primary_asn: int
    #: region name -> metro code hosting its data centers
    region_metros: Tuple[Tuple[str, str], ...]
    superblock: str


AMAZON_REGIONS: Tuple[Tuple[str, str], ...] = (
    ("us-east-1", "IAD"),
    ("us-east-2", "CMH"),
    ("us-west-1", "SJC"),
    ("us-west-2", "PDX"),
    ("ca-central-1", "YUL"),
    ("eu-west-1", "DUB"),
    ("eu-west-2", "LHR"),
    ("eu-west-3", "CDG"),
    ("eu-central-1", "FRA"),
    ("sa-east-1", "GRU"),
    ("ap-southeast-1", "SIN"),
    ("ap-southeast-2", "SYD"),
    ("ap-northeast-1", "NRT"),
    ("ap-northeast-2", "ICN"),
    ("ap-south-1", "BOM"),
)

CLOUD_SPECS: Dict[str, CloudSpec] = {
    "amazon": CloudSpec(
        name="amazon",
        primary_asn=AMAZON_PRIMARY_ASN,
        region_metros=AMAZON_REGIONS,
        superblock="amazon",
    ),
    "microsoft": CloudSpec(
        name="microsoft",
        primary_asn=MICROSOFT_ASN,
        region_metros=(
            ("az-us-east", "IAD"),
            ("az-us-west", "SJC"),
            ("az-us-central", "ORD"),
            ("az-us-south", "DFW"),
            ("az-eu-west", "AMS"),
            ("az-eu-north", "DUB"),
            ("az-asia-east", "HKG"),
            ("az-asia-se", "SIN"),
            ("az-au-east", "SYD"),
            ("az-jp-east", "NRT"),
        ),
        superblock="microsoft",
    ),
    "google": CloudSpec(
        name="google",
        primary_asn=GOOGLE_ASN,
        region_metros=(
            ("gcp-us-east", "IAD"),
            ("gcp-us-central", "ORD"),
            ("gcp-us-west", "PDX"),
            ("gcp-eu-west", "LHR"),
            ("gcp-eu-central", "FRA"),
            ("gcp-asia-se", "SIN"),
            ("gcp-asia-ne", "NRT"),
            ("gcp-sa-east", "GRU"),
        ),
        superblock="google",
    ),
    "ibm": CloudSpec(
        name="ibm",
        primary_asn=IBM_ASN,
        region_metros=(
            ("ibm-us-east", "IAD"),
            ("ibm-us-south", "DFW"),
            ("ibm-eu-gb", "LHR"),
            ("ibm-eu-de", "FRA"),
        ),
        superblock="ibm",
    ),
    "oracle": CloudSpec(
        name="oracle",
        primary_asn=ORACLE_ASN,
        region_metros=(
            ("oci-us-ashburn", "IAD"),
            ("oci-us-phoenix", "PHX"),
            ("oci-eu-frankfurt", "FRA"),
            ("oci-uk-london", "LHR"),
        ),
        superblock="oracle",
    ),
}

OTHER_CLOUDS: Tuple[str, ...] = ("microsoft", "google", "ibm", "oracle")

#: Metros where Amazon extends its fabric via Direct Connect locations
#: beyond the 15 region metros (§2: 74 served metros in the paper's data).
AMAZON_DX_METROS: Tuple[str, ...] = (
    "LAX", "SEA", "ORD", "DFW", "ATL", "MIA", "JFK", "BOS", "DEN", "PHX",
    "SLC", "MSP", "IAH", "LAS", "YYZ", "YVR", "AMS", "MAD", "MXP", "ZRH",
    "VIE", "ARN", "CPH", "WAW", "PRG", "MRS", "HKG", "TPE", "KUL", "BKK",
    "KIX", "MEL", "PER", "AKL", "MAA", "DEL", "DXB", "TLV", "MEX", "SCL",
    "EZE", "BOG", "GIG", "JNB",
)
