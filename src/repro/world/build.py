"""World construction: configuration and the ``build_world`` orchestrator.

``build_world(WorldConfig(...))`` produces a fully wired :class:`World`:
clouds with regions and VMs, colo facilities, IXPs, cloud exchanges, the
client-AS population sampled from the paper's Table 6 census, and every
interconnection with its ground-truth attributes.  The build is fully
deterministic in ``(seed, config)``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.asn import (
    AMAZON_ASNS,
    AMAZON_ORG_ID,
    AMAZON_PRIMARY_ASN,
    ASInfo,
    ASRegistry,
    CLOUD_ORG_IDS,
    FALLBACK_TRANSIT_ASN,
    OTHER_CLOUD_ASNS,
    TRANSIT_ASNS,
)
from repro.net.geo import MetroCatalog
from repro.net.ip import (
    AddressPool,
    InterconnectSubnet,
    IPv4,
    Prefix,
    PrefixAllocator,
)
from repro.net.rng import bounded_lognormal, coin, make_rng, sample_counts, zipf_sample
from repro.world.addressing import AddressPlan
from repro.world.clouds import AMAZON_DX_METROS, CLOUD_SPECS, OTHER_CLOUDS
from repro.world.dns import synthesize_cbi_name
from repro.world.entities import (
    ClientAS,
    CloudExchange,
    ColoFacility,
    Interconnection,
    Interface,
    IXP,
    PeeringType,
    RegionTruth,
    Router,
    RouterRole,
)
from repro.world.model import PlanHop, World
from repro.world.peerings import (
    AmazonBorderPool,
    ClientFabric,
    IdSource,
    register_interconnect_subnet,
)
from repro.world.profiles import (
    CENSUS_TOTAL,
    GROUP_STATS,
    HYBRID_CENSUS,
    PB_B,
    PB_NB,
    PR_B_NV,
    PR_B_V,
    PR_NB_NV,
    PR_NB_V,
    group_is_bgp_visible,
    group_is_public,
    group_is_virtual,
)
from repro.world.topology import ClientASBuilder


@dataclass
class WorldConfig:
    """All knobs of the synthetic Internet.

    ``scale`` is the fraction of the paper's 3,548 peer ASes to generate;
    the default 0.1 produces a study that runs in seconds while preserving
    every population *shape* the benchmarks compare against the paper.
    """

    seed: int = 7
    scale: float = 0.1

    # --- geography / infrastructure -----------------------------------
    ixp_count: int = 60
    multi_metro_ixp_rate: float = 0.10
    dx_metro_count: int = 40
    facilities_per_amazon_metro: int = 2

    # --- interconnection texture ---------------------------------------
    #: chance a fresh ABI interface is created instead of reusing one.
    new_abi_rate: float = 0.16
    #: chance an interconnection sits behind parallel (ECMP) Amazon links.
    ecmp_rate: float = 0.35
    #: chance the path crosses a second border interface (two-tier metro
    #: edge) just before the ABI -- the source of Fig. 3 hybrid evidence.
    aggregation_hop_rate: float = 0.5
    #: chance a VPI reuses the client's existing port (DX-Gateway style
    #: multi-region virtual interfaces on one physical port).
    multi_region_port_rate: float = 0.35
    #: chance a non-region DX location is layer-2 backhauled to the parent
    #: region's border routers.
    dx_backhaul_rate: float = 0.3
    #: chance a private interconnection is provisioned at a distant region
    #: (workload locality: clients connect where their VMs run, §7.4's
    #: intercontinental remote peerings).
    intercontinental_rate: float = 0.06
    #: fraction of ABI addresses drawn from unannounced Amazon space
    #: (Table 1: 61.6% of ABIs are WHOIS-only).
    abi_whois_rate: float = 0.62
    #: chance that Amazon supplies the interconnect /30 (Fig. 2 overshoot).
    amazon_provided_subnet_rate: float = 0.15
    #: chance an interconnection carries no destination traffic and is
    #: therefore only discoverable via round-2 expansion probing (§4.2).
    backup_icx_rate: float = 0.12
    #: fraction of Pr-nB-nV interconnections that are *truly* virtual but
    #: invisible to multi-cloud detection (§7.3's hypothesis).
    hidden_vpi_in_prnbnv_rate: float = 0.30
    #: chance a VPI port answers probes from every cloud with one address.
    shared_port_response_rate: float = 0.97
    #: extra VPIs established on private addresses (never observable).
    private_vpi_rate: float = 0.03

    # --- BGP / WHOIS texture --------------------------------------------
    #: chance a client's infrastructure block is announced at round 1.
    infra_announced_r1_rate: float = 0.62
    #: of the unannounced ones, chance it is announced by round 2
    #: (Table 1's WHOIS% collapse from 24.8% to 2.3%).
    infra_late_announce_rate: float = 0.92

    # --- responsiveness --------------------------------------------------
    dest_response_rate: float = 0.18
    router_unresponsive_rate: float = 0.04
    #: fraction of client border routers answering with their default
    #: interface instead of the incoming one (a per-router property).
    third_party_response_rate: float = 0.06
    cbi_public_reachable_rate: float = 0.70
    abi_public_reachable_rate: float = 0.03
    single_region_visibility_rate: float = 0.045
    #: chance an interface answers ICMP echo at all (pinning input).
    icmp_response_rate: float = 0.85

    # --- measurement noise ------------------------------------------------
    probe_loss_rate: float = 0.01
    loop_rate: float = 0.002
    ping_jitter_ms: float = 0.25
    hop_processing_ms: float = 0.08

    # --- sweep universe ---------------------------------------------------
    amazon_sweep_fraction: float = 0.06
    dead_sweep_fraction: float = 0.18

    # --- DNS -------------------------------------------------------------
    dns_false_hint_rate: float = 0.02

    def peer_as_count(self) -> int:
        return max(10, int(round(CENSUS_TOTAL * self.scale)))


@dataclass
class _Pools:
    """Address pools carved at build time (internal)."""

    announced: Dict[str, AddressPool] = field(default_factory=dict)
    infra: Dict[str, AddressPool] = field(default_factory=dict)
    dx_allocators: Dict[str, PrefixAllocator] = field(default_factory=dict)
    private: Optional[AddressPool] = None
    ixp: Dict[int, AddressPool] = field(default_factory=dict)
    transit: Optional[AddressPool] = None


def _register_cloud_ases(registry: ASRegistry) -> None:
    for asn in sorted(AMAZON_ASNS):
        registry.add(
            ASInfo(
                asn=asn,
                name=f"amazon-as{asn}",
                org_id=AMAZON_ORG_ID,
                kind="cloud",
                siblings=sorted(AMAZON_ASNS - {asn}),
            )
        )
    for name, asn in OTHER_CLOUD_ASNS.items():
        registry.add(
            ASInfo(asn=asn, name=f"{name}-cloud", org_id=CLOUD_ORG_IDS[name], kind="cloud")
        )
    for i, asn in enumerate(TRANSIT_ASNS):
        registry.add(
            ASInfo(
                asn=asn,
                name=f"global-transit-{i + 1}",
                org_id=f"ORG-GTRANSIT{i + 1}",
                kind="tier1",
            )
        )


def _carve_cloud_blocks(world: World, plan: AddressPlan, pools: _Pools) -> None:
    for name, spec in CLOUD_SPECS.items():
        announced = plan.cloud_block(spec.superblock, 12, spec.primary_asn)
        infra = plan.cloud_block(spec.superblock, 12, spec.primary_asn)
        pools.announced[name] = AddressPool(announced)
        pools.infra[name] = AddressPool(infra)
        world.cloud_announced_blocks[name] = [announced]
        world.cloud_infra_blocks[name] = [infra]
        # Provider-supplied interconnect /30s come from *announced* space.
        dx_block = plan.cloud_block(spec.superblock, 14, spec.primary_asn)
        pools.dx_allocators[name] = PrefixAllocator(dx_block)
        world.cloud_announced_blocks[name].append(dx_block)
    pools.private = AddressPool(Prefix.parse("10.0.0.0/8"))
    transit_block = plan.transit_link_block(FALLBACK_TRANSIT_ASN, "global-transit", 16)
    pools.transit = AddressPool(transit_block)


def _build_facilities(
    world: World, ids: IdSource, rng: random.Random, config: WorldConfig
) -> Dict[str, List[int]]:
    """Facilities per metro; Amazon is native at region + DX metros."""
    amazon_metros = {code for _r, code in CLOUD_SPECS["amazon"].region_metros}
    dx = list(AMAZON_DX_METROS[: config.dx_metro_count])
    facs_by_metro: Dict[str, List[int]] = {}
    for metro in world.catalog:
        count = (
            config.facilities_per_amazon_metro
            if metro.code in amazon_metros
            else 1
        )
        for i in range(count):
            fac = ColoFacility(
                facility_id=ids.take(),
                name=f"colo-{metro.code.lower()}-{i + 1}",
                metro_code=metro.code,
                partner_reach=True,
            )
            if metro.code in amazon_metros or metro.code in dx:
                fac.native_clouds.add("amazon")
                if coin(rng, 0.8):
                    fac.has_cloud_exchange = True
            world.facilities[fac.facility_id] = fac
            facs_by_metro.setdefault(metro.code, []).append(fac.facility_id)
    return facs_by_metro


def _build_ixps(
    world: World,
    ids: IdSource,
    rng: random.Random,
    config: WorldConfig,
    plan: AddressPlan,
    pools: _Pools,
    facs_by_metro: Dict[str, List[int]],
) -> None:
    codes = world.catalog.codes()
    for i in range(config.ixp_count):
        primary = codes[rng.randrange(len(codes))]
        metros: Tuple[str, ...] = (primary,)
        if coin(rng, config.multi_metro_ixp_rate):
            second = codes[rng.randrange(len(codes))]
            if second != primary:
                metros = (primary, second)
        prefix = plan.ixp_lan(f"ixp-{i + 1}", 22)
        ixp = IXP(
            ixp_id=ids.take(),
            name=f"IXP-{primary}-{i + 1}",
            prefix=prefix,
            metro_codes=metros,
        )
        world.ixps[ixp.ixp_id] = ixp
        pools.ixp[ixp.ixp_id] = AddressPool(prefix)
        for fac_id in facs_by_metro.get(primary, [])[:1]:
            world.facilities[fac_id].ixp_ids.add(ixp.ixp_id)


def _build_amazon_regions(
    world: World, ids: IdSource, rng: random.Random, config: WorldConfig, pools: _Pools
) -> None:
    spec = CLOUD_SPECS["amazon"]
    world.regions["amazon"] = {}
    for region_name, metro_code in spec.region_metros:
        internal: List[Tuple[int, IPv4]] = []
        # Hop 1: private-addressed aggregation router (maps to AS0, §3).
        r1 = Router(
            router_id=ids.take(),
            owner_asn=AMAZON_PRIMARY_ASN,
            role=RouterRole.CLOUD_INTERNAL,
            metro_code=metro_code,
        )
        world.add_router(r1)
        ip1 = pools.private.allocate()
        world.add_interface(Interface(ip=ip1, router_id=r1.router_id, addr_owner_asn=0))
        world.via_metros[ip1] = (metro_code,)
        internal.append((r1.router_id, ip1))
        # Hops 2-3: Amazon-addressed core routers.
        for pool in (pools.announced["amazon"], pools.infra["amazon"]):
            router = Router(
                router_id=ids.take(),
                owner_asn=AMAZON_PRIMARY_ASN,
                role=RouterRole.CLOUD_INTERNAL,
                metro_code=metro_code,
            )
            world.add_router(router)
            ip = pool.allocate()
            world.add_interface(
                Interface(ip=ip, router_id=router.router_id, addr_owner_asn=AMAZON_PRIMARY_ASN)
            )
            world.via_metros[ip] = (metro_code,)
            internal.append((router.router_id, ip))

        vm_ip = pools.announced["amazon"].allocate()
        world.regions["amazon"][region_name] = RegionTruth(
            cloud="amazon",
            name=region_name,
            metro_code=metro_code,
            vm_ip=vm_ip,
            internal_path=internal,
        )

        # One backbone hop used when egressing through another metro.
        bb = Router(
            router_id=ids.take(),
            owner_asn=AMAZON_PRIMARY_ASN,
            role=RouterRole.CLOUD_INTERNAL,
            metro_code=metro_code,
        )
        world.add_router(bb)
        bb_ip = pools.infra["amazon"].allocate()
        world.add_interface(
            Interface(ip=bb_ip, router_id=bb.router_id, addr_owner_asn=AMAZON_PRIMARY_ASN)
        )
        world.via_metros[bb_ip] = (metro_code,)
        world.backbone_hops[("amazon", region_name)] = PlanHop(
            router_id=bb.router_id, ip=bb_ip, metro_code=metro_code
        )


def _build_other_cloud_regions(
    world: World, ids: IdSource, rng: random.Random, config: WorldConfig, pools: _Pools
) -> None:
    for cloud in OTHER_CLOUDS:
        spec = CLOUD_SPECS[cloud]
        world.regions[cloud] = {}
        world.other_cloud_icx[cloud] = {}
        for region_name, metro_code in spec.region_metros:
            internal: List[Tuple[int, IPv4]] = []
            for pool, owner in (
                (pools.private, 0),
                (pools.announced[cloud], spec.primary_asn),
            ):
                router = Router(
                    router_id=ids.take(),
                    owner_asn=spec.primary_asn,
                    role=RouterRole.CLOUD_INTERNAL,
                    metro_code=metro_code,
                )
                world.add_router(router)
                ip = pool.allocate()
                world.add_interface(
                    Interface(ip=ip, router_id=router.router_id, addr_owner_asn=owner)
                )
                world.via_metros[ip] = (metro_code,)
                internal.append((router.router_id, ip))
            vm_ip = pools.announced[cloud].allocate()
            world.regions[cloud][region_name] = RegionTruth(
                cloud=cloud,
                name=region_name,
                metro_code=metro_code,
                vm_ip=vm_ip,
                internal_path=internal,
            )
            # Border hop toward the Internet, plus a generic transit hop.
            border = Router(
                router_id=ids.take(),
                owner_asn=spec.primary_asn,
                role=RouterRole.CLOUD_BORDER,
                metro_code=metro_code,
            )
            world.add_router(border)
            bip = pools.infra[cloud].allocate()
            world.add_interface(
                Interface(ip=bip, router_id=border.router_id, addr_owner_asn=spec.primary_asn)
            )
            world.via_metros[bip] = (metro_code,)
            world.cloud_border_hops[(cloud, region_name)] = PlanHop(
                router_id=border.router_id, ip=bip, metro_code=metro_code
            )
            transit = Router(
                router_id=ids.take(),
                owner_asn=FALLBACK_TRANSIT_ASN,
                role=RouterRole.TRANSIT,
                metro_code=metro_code,
            )
            world.add_router(transit)
            tip = pools.transit.allocate()
            world.add_interface(
                Interface(ip=tip, router_id=transit.router_id, addr_owner_asn=FALLBACK_TRANSIT_ASN)
            )
            world.via_metros[tip] = (metro_code,)
            world.transit_hops[(cloud, region_name)] = PlanHop(
                router_id=transit.router_id, ip=tip, metro_code=metro_code
            )


class _InterconnectionFactory:
    """Creates Amazon interconnections for one client AS at a time."""

    GROUP_TO_PTYPE = {
        PB_NB: PeeringType.PUBLIC_IXP,
        PB_B: PeeringType.PUBLIC_IXP,
        PR_NB_V: PeeringType.PRIVATE_VIRTUAL,
        PR_B_V: PeeringType.PRIVATE_VIRTUAL,
        PR_NB_NV: PeeringType.PRIVATE_PHYSICAL,
        PR_B_NV: PeeringType.PRIVATE_PHYSICAL,
    }

    def __init__(
        self,
        world: World,
        ids: IdSource,
        rng: random.Random,
        config: WorldConfig,
        plan: AddressPlan,
        pools: _Pools,
        amazon_pool: AmazonBorderPool,
        fabric: ClientFabric,
        infra_cursor: Dict[Prefix, int],
        facs_by_metro: Dict[str, List[int]],
    ) -> None:
        self.world = world
        self.ids = ids
        self.rng = rng
        self.config = config
        self.plan = plan
        self.pools = pools
        self.amazon_pool = amazon_pool
        self.fabric = fabric
        self.infra_cursor = infra_cursor
        self.facs_by_metro = facs_by_metro
        self._amazon_ixps = [
            ixp
            for ixp in world.ixps.values()
            if amazon_pool.has_metro(ixp.metro_codes[0])
        ]
        self._exchange_by_metro: Dict[str, CloudExchange] = {}
        self.backup_icx_ids: Set[int] = set()
        self._site_ixp_cache: Dict[Tuple[str, str], int] = {}
        self._region_metros = {m for _r, m in CLOUD_SPECS["amazon"].region_metros}
        #: client asn -> last created VPI port (subnet, owner, router, shared)
        self._ports_by_client: Dict[int, Tuple[InterconnectSubnet, int, int, bool]] = {}

    # -- helpers ---------------------------------------------------------

    def _nearest_amazon_metro(self, code: str, prefer_region: bool) -> str:
        candidates = self.amazon_pool.metros()
        if prefer_region:
            region_metros = [
                m for _r, m in CLOUD_SPECS["amazon"].region_metros if m in candidates
            ]
            if region_metros:
                candidates = region_metros
        return min(
            candidates, key=lambda m: self.world.catalog.distance_km(code, m)
        )

    def _exchange_at(self, metro_code: str) -> CloudExchange:
        exchange = self._exchange_by_metro.get(metro_code)
        if exchange is not None:
            return exchange
        fac_ids = [
            f
            for f in self.facs_by_metro.get(metro_code, [])
            if self.world.facilities[f].native_clouds
        ] or self.facs_by_metro.get(metro_code, [None])
        fac_id = fac_ids[0]
        exchange = CloudExchange(
            exchange_id=self.ids.take(),
            facility_id=fac_id if fac_id is not None else -1,
            metro_code=metro_code,
        )
        self.world.exchanges[exchange.exchange_id] = exchange
        self._exchange_by_metro[metro_code] = exchange
        return exchange

    def _infra_block_of(self, client: ClientAS) -> Prefix:
        infra = [
            a.prefix
            for a in self.plan.allocations_of("infra")
            if a.owner_asn == client.asn
        ]
        return infra[0]

    def _ensure_loopback(self, client: ClientAS, router_id: int) -> None:
        """First interface of a client border router is its loopback.

        Routers answering with a third-party address use this (their
        "default") interface, so those artifacts surface a client-owned
        address -- never a cloud-side port (§7.1's soundness argument).
        """
        router = self.world.routers[router_id]
        if router.interface_ips:
            return
        block = self._infra_block_of(client)
        offset = self.infra_cursor.get(block, 0)
        ip = block.network + offset
        self.infra_cursor[block] = offset + 4
        self.world.add_interface(
            Interface(ip=ip, router_id=router_id, addr_owner_asn=client.asn)
        )
        self.world.via_metros[ip] = (router.metro_code or client.home_metro,)

    def _draw_vpi_clouds(self) -> FrozenSet[str]:
        chosen = {"amazon"}
        if coin(self.rng, 0.936):
            chosen.add("microsoft")
        if coin(self.rng, 0.157):
            chosen.add("google")
        if coin(self.rng, 0.046):
            chosen.add("ibm")
        if chosen == {"amazon"}:
            chosen.add("microsoft")
        return frozenset(chosen)

    # -- main entry --------------------------------------------------------

    def build_group(self, client: ClientAS, group: str, kind: str) -> None:
        stats = GROUP_STATS[group]
        n_cbi = bounded_lognormal(self.rng, stats.cbis_per_as, 0.9, 1, 200)
        n_sites = min(
            n_cbi, bounded_lognormal(self.rng, max(stats.metro_spread, 1.0), 0.5, 1, 20)
        )
        footprint = list(client.footprint_metros)
        self.rng.shuffle(footprint)
        sites: List[Tuple[str, str, bool]] = []
        for i in range(n_sites):
            client_metro = footprint[i % len(footprint)]
            if group in (PB_NB, PB_B):
                sites.append(self._ixp_site(client_metro))
            elif coin(self.rng, self.config.intercontinental_rate):
                # The client provisions the interconnect next to the AWS
                # region hosting its workloads, which may be far away.
                region_metros = [m for _r, m in CLOUD_SPECS["amazon"].region_metros]
                fabric_metro = region_metros[self.rng.randrange(len(region_metros))]
                sites.append(
                    (fabric_metro, client_metro, fabric_metro != client_metro)
                )
            elif self.amazon_pool.has_metro(client_metro):
                sites.append((client_metro, client_metro, False))
            else:
                fabric_metro = self._nearest_amazon_metro(
                    client_metro, prefer_region=coin(self.rng, 0.35)
                )
                sites.append((fabric_metro, client_metro, True))
        for j in range(n_cbi):
            fabric_metro, client_metro, remote = sites[j % len(sites)]
            if group in (PB_NB, PB_B):
                self._build_public_icx(client, group, kind, fabric_metro, client_metro, remote)
            else:
                self._build_private_icx(client, group, kind, fabric_metro, client_metro, remote)

    def _ixp_site(self, client_metro: str) -> Tuple[str, str, bool]:
        """Pick an IXP for a member at ``client_metro`` (possibly remote)."""
        ranked = sorted(
            self._amazon_ixps,
            key=lambda x: self.world.catalog.distance_km(client_metro, x.metro_codes[0]),
        )
        pool = ranked[:6] if len(ranked) >= 6 else ranked
        pick = pool[zipf_sample(self.rng, len(pool), alpha=1.1) - 1]
        fabric_metro = pick.metro_codes[0]
        remote = fabric_metro != client_metro
        self._site_ixp_cache[(fabric_metro, client_metro)] = pick.ixp_id
        return fabric_metro, client_metro, remote

    def _build_public_icx(
        self,
        client: ClientAS,
        group: str,
        kind: str,
        fabric_metro: str,
        client_metro: str,
        remote: bool,
    ) -> None:
        ixp_id = self._site_ixp_cache.get((fabric_metro, client_metro))
        if ixp_id is None:
            _f, _c, _r = self._ixp_site(client_metro)
            ixp_id = self._site_ixp_cache[(_f, _c)]
            fabric_metro = _f
            remote = _r
        ixp = self.world.ixps[ixp_id]
        abi_router, abi_ip = self.amazon_pool.acquire_abi(fabric_metro, f"ixp-{ixp_id}")
        router_id = self.fabric.border_router(
            client.asn, client_metro, self.config.router_unresponsive_rate
        )
        self._ensure_loopback(client, router_id)
        cbi_ip = self.pools.ixp[ixp_id].allocate()
        via = (fabric_metro,) if not remote else (fabric_metro, client_metro)
        self.fabric.add_cbi_interface(
            router_id, cbi_ip, client.asn, via_metros=via
        )
        ixp.member_ips.setdefault(client.asn, []).append(cbi_ip)
        self._finish_icx(
            client,
            group,
            Interconnection(
                icx_id=self.ids.take(),
                cloud="amazon",
                peer_asn=client.asn,
                ptype=PeeringType.PUBLIC_IXP,
                bgp_visible=group_is_bgp_visible(group),
                abi_router_id=abi_router,
                abi_ip=abi_ip,
                cbi_router_id=router_id,
                cbi_ip=cbi_ip,
                metro_code=fabric_metro,
                client_metro_code=client_metro,
                ixp_id=ixp_id,
                remote=remote,
            ),
        )

    def _build_private_icx(
        self,
        client: ClientAS,
        group: str,
        kind: str,
        fabric_metro: str,
        client_metro: str,
        remote: bool,
    ) -> None:
        cfg = self.config
        virtual = group_is_virtual(group)
        ptype = self.GROUP_TO_PTYPE[group]
        # §7.3: a slice of the "physical" Pr-nB-nV population is secretly
        # virtual -- single-cloud VPIs our detection cannot see.
        hidden_vpi = group == PR_NB_NV and coin(self.rng, cfg.hidden_vpi_in_prnbnv_rate)
        if hidden_vpi:
            ptype = PeeringType.PRIVATE_VIRTUAL

        provided_by = (
            "provider" if coin(self.rng, cfg.amazon_provided_subnet_rate) else "client"
        )
        # Multi-region VPI ports (DX-Gateway style): one cloud-exchange port
        # carries virtual interfaces to several Amazon locations, so the
        # same CBI shows up behind ABIs in different regions -- the main
        # cross-region glue in the ICG (§7.4).
        reuse_port = None
        if (virtual or hidden_vpi) and coin(self.rng, cfg.multi_region_port_rate):
            reuse_port = self._ports_by_client.get(client.asn)

        if reuse_port is not None:
            subnet, addr_owner, router_id, shared = reuse_port
        elif provided_by == "client":
            subnet = self.plan.carve_interconnect(
                "client",
                self._infra_block_of(client),
                None,
                self.infra_cursor,
            )
            addr_owner = client.asn
        else:
            subnet = InterconnectSubnet.carve(
                self.pools.dx_allocators["amazon"], "provider", 30
            )
            addr_owner = AMAZON_PRIMARY_ASN

        # Some DX locations are layer-2 backhauled to the parent region's
        # border routers; the Amazon-side interface then physically sits
        # at the region metro.
        abi_metro = fabric_metro
        abi_metro_code = None
        if fabric_metro not in self._region_metros and coin(
            self.rng, cfg.dx_backhaul_rate
        ):
            abi_metro = self._nearest_amazon_metro(fabric_metro, prefer_region=True)
            abi_metro_code = abi_metro

        abi_router, abi_ip = self.amazon_pool.acquire_abi(abi_metro, "private")
        abi_ecmp: Tuple[IPv4, ...] = ()
        if coin(self.rng, cfg.ecmp_rate):
            extra = {abi_ip}
            for _ in range(self.rng.choice((1, 1, 2, 3))):
                _rid, ip = self.amazon_pool.acquire_abi(abi_metro, "private")
                extra.add(ip)
            abi_ecmp = tuple(sorted(extra))
        agg_abi_ip = None
        if coin(self.rng, cfg.aggregation_hop_rate):
            _rid, agg = self.amazon_pool.acquire_abi(abi_metro, "private")
            if agg != abi_ip and agg not in abi_ecmp:
                agg_abi_ip = agg

        via = (fabric_metro,) if not remote else (fabric_metro, client_metro)
        vpi_clouds: FrozenSet[str] = frozenset()
        if reuse_port is None:
            router_id = self.fabric.border_router(
                client.asn, client_metro, cfg.router_unresponsive_rate
            )
            self._ensure_loopback(client, router_id)
            shared = False
        if virtual:
            vpi_clouds = self._draw_vpi_clouds()
            if reuse_port is None:
                shared = coin(self.rng, cfg.shared_port_response_rate)
        elif hidden_vpi:
            vpi_clouds = frozenset({"amazon"})
        if reuse_port is None:
            self.fabric.add_cbi_interface(
                router_id,
                subnet.client_side,
                addr_owner,
                via_metros=via,
                shared_port_response=shared,
            )
            if virtual or hidden_vpi:
                self._ports_by_client[client.asn] = (
                    subnet,
                    addr_owner,
                    router_id,
                    shared,
                )
        exchange_id = None
        if virtual or hidden_vpi:
            exchange = self._exchange_at(fabric_metro)
            exchange.ports.setdefault(client.asn, []).append(subnet.client_side)
            exchange_id = exchange.exchange_id
        icx = Interconnection(
            icx_id=self.ids.take(),
            cloud="amazon",
            peer_asn=client.asn,
            ptype=ptype,
            bgp_visible=group_is_bgp_visible(group),
            abi_router_id=abi_router,
            abi_ip=abi_ip,
            abi_ecmp=abi_ecmp,
            agg_abi_ip=agg_abi_ip,
            abi_metro_code=abi_metro_code,
            cbi_router_id=router_id,
            cbi_ip=subnet.client_side,
            metro_code=fabric_metro,
            client_metro_code=client_metro,
            subnet=subnet,
            exchange_id=exchange_id,
            vpi_clouds=vpi_clouds,
            remote=remote,
        )
        self._finish_icx(client, group, icx)
        if reuse_port is None:
            register_interconnect_subnet(self.world, subnet, icx.icx_id, "amazon")
        # Also add the provider-side address as an interface of the Amazon
        # border router (never answers traceroute from inside, but it is a
        # real interface that alias resolution may reveal).
        if subnet.provider_side not in self.world.interfaces:
            self.world.add_interface(
                Interface(
                    ip=subnet.provider_side,
                    router_id=abi_router,
                    addr_owner_asn=addr_owner
                    if subnet.provided_by == "client"
                    else AMAZON_PRIMARY_ASN,
                )
            )
            self.world.via_metros[subnet.provider_side] = (fabric_metro,)

    def _finish_icx(self, client: ClientAS, group: str, icx: Interconnection) -> None:
        self.world.interconnections[icx.icx_id] = icx
        client.icx_ids.append(icx.icx_id)
        if coin(self.rng, self.config.backup_icx_rate):
            self.backup_icx_ids.add(icx.icx_id)

    def build_private_address_vpi(self, client: ClientAS) -> None:
        """A VPI on private addresses: exists, but can never be observed."""
        fabric_metro = self._nearest_amazon_metro(client.home_metro, prefer_region=True)
        abi_router, abi_ip = self.amazon_pool.acquire_abi(fabric_metro, "private")
        router_id = self.fabric.border_router(
            client.asn, client.home_metro, self.config.router_unresponsive_rate
        )
        self._ensure_loopback(client, router_id)
        cbi_ip = self.pools.private.allocate()
        self.fabric.add_cbi_interface(router_id, cbi_ip, 0, via_metros=(fabric_metro,))
        icx = Interconnection(
            icx_id=self.ids.take(),
            cloud="amazon",
            peer_asn=client.asn,
            ptype=PeeringType.PRIVATE_VIRTUAL,
            bgp_visible=False,
            abi_router_id=abi_router,
            abi_ip=abi_ip,
            cbi_router_id=router_id,
            cbi_ip=cbi_ip,
            metro_code=fabric_metro,
            client_metro_code=client.home_metro,
            uses_private_addresses=True,
            vpi_clouds=frozenset({"amazon"}),
        )
        self.world.interconnections[icx.icx_id] = icx
        client.icx_ids.append(icx.icx_id)


def _mirror_vpis_on_other_clouds(
    world: World, ids: IdSource, rng: random.Random, config: WorldConfig, pools: _Pools
) -> None:
    """Create the other clouds' side of every multi-cloud VPI port."""
    other_pools: Dict[str, AmazonBorderPool] = {}
    for cloud in OTHER_CLOUDS:
        other_pools[cloud] = AmazonBorderPool(
            world,
            ids,
            rng,
            announced_pool=pools.announced[cloud],
            infra_pool=pools.infra[cloud],
            abi_whois_rate=0.5,
            new_abi_rate=0.3,
            owner_asn=CLOUD_SPECS[cloud].primary_asn,
        )
    for icx in list(world.interconnections.values()):
        others = sorted(set(icx.vpi_clouds) - {"amazon"})
        if not others or icx.uses_private_addresses:
            continue
        for cloud in others:
            pool = other_pools[cloud]
            pool.ensure_metro(icx.metro_code, 1, None)
            abi_router, abi_ip = pool.acquire_abi(icx.metro_code, "private")
            port_iface = world.interfaces.get(icx.cbi_ip)
            if port_iface is not None and port_iface.shared_port_response:
                cbi_ip = icx.cbi_ip
                cbi_router = icx.cbi_router_id
            else:
                # Distinct per-cloud response address: undetectable VPI.
                cbi_ip = pools.infra[cloud].allocate()
                cbi_router = icx.cbi_router_id
                world.add_interface(
                    Interface(
                        ip=cbi_ip,
                        router_id=cbi_router,
                        addr_owner_asn=CLOUD_SPECS[cloud].primary_asn,
                    )
                )
                world.via_metros[cbi_ip] = world.via_metros.get(
                    icx.cbi_ip, (icx.metro_code,)
                )
            mirror = Interconnection(
                icx_id=ids.take(),
                cloud=cloud,
                peer_asn=icx.peer_asn,
                ptype=PeeringType.PRIVATE_VIRTUAL,
                bgp_visible=False,
                abi_router_id=abi_router,
                abi_ip=abi_ip,
                cbi_router_id=cbi_router,
                cbi_ip=cbi_ip,
                metro_code=icx.metro_code,
                client_metro_code=icx.client_metro_code,
                vpi_clouds=icx.vpi_clouds,
                remote=icx.remote,
            )
            world.other_cloud_icx[cloud][mirror.icx_id] = mirror
            world.client_other_egress.setdefault((cloud, icx.peer_asn), []).append(
                mirror.icx_id
            )
            world.mirror_of[(cloud, icx.icx_id)] = mirror.icx_id


def _assign_dns_names(world: World, rng: random.Random, config: WorldConfig) -> None:
    for icx in world.interconnections.values():
        if icx.uses_private_addresses:
            continue
        iface = world.interfaces.get(icx.cbi_ip)
        if iface is None or iface.dns_name is not None:
            continue
        info = world.as_registry.maybe(icx.peer_asn)
        kind = info.kind if info else "enterprise"
        name = info.name if info else f"as{icx.peer_asn}"
        metro = world.catalog.get(icx.client_metro_code)
        iface.dns_name = synthesize_cbi_name(
            kind=kind,
            as_name=name,
            metro=metro,
            ip=icx.cbi_ip,
            rng=rng,
            is_vpi=icx.is_virtual,
            false_hint_rate=config.dns_false_hint_rate,
            catalog=world.catalog,
        )


def _assign_visibility(world: World, rng: random.Random, config: WorldConfig) -> None:
    abis = world.true_abis()
    cbis = world.true_cbis()
    region_metros = [
        (name, rt.metro_code) for name, rt in world.regions["amazon"].items()
    ]
    for ip, iface in world.interfaces.items():
        if ip in abis:
            if coin(rng, config.abi_public_reachable_rate):
                world.publicly_reachable.add(ip)
        elif ip in cbis:
            if coin(rng, config.cbi_public_reachable_rate):
                world.publicly_reachable.add(ip)
        elif coin(rng, 0.4):
            world.publicly_reachable.add(ip)
        if (ip in abis or ip in cbis) and coin(
            rng, config.single_region_visibility_rate
        ):
            legs = world.via_metros.get(ip)
            anchor = legs[0] if legs else region_metros[0][1]
            nearest = min(
                region_metros,
                key=lambda rm: world.catalog.distance_km(anchor, rm[1]),
            )
            world.ping_region_limit[ip] = {nearest[0]}


def _finalize_sweep(world: World, rng: random.Random, config: WorldConfig) -> None:
    seen: Set[int] = set()
    unique: List[Prefix] = []
    for p24 in world.sweep_slash24s:
        if p24.network not in seen:
            seen.add(p24.network)
            unique.append(p24)
    routable = len(unique)
    # Amazon's own space (probes die inside the backbone).
    amazon_block = world.cloud_announced_blocks["amazon"][0]
    n_amazon = int(routable * config.amazon_sweep_fraction)
    amazon_24s = list(itertools.islice(amazon_block.slash24s(), n_amazon))
    # Dead, unallocated space.
    dead_block = Prefix.parse("11.0.0.0/8")
    n_dead = int(routable * config.dead_sweep_fraction)
    dead_24s = list(itertools.islice(dead_block.slash24s(), n_dead))
    unique.extend(amazon_24s)
    unique.extend(dead_24s)
    unique.sort(key=lambda p: p.network)
    world.sweep_slash24s = unique


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Construct the full synthetic Internet for a configuration."""
    config = config or WorldConfig()
    catalog = MetroCatalog()
    registry = ASRegistry()
    plan = AddressPlan()
    world = World(config, catalog, registry, plan)
    ids = IdSource()
    rng = make_rng(config.seed, "world")
    pools = _Pools()

    _register_cloud_ases(registry)
    _carve_cloud_blocks(world, plan, pools)
    facs_by_metro = _build_facilities(world, ids, rng, config)
    _build_ixps(world, ids, rng, config, plan, pools, facs_by_metro)
    _build_amazon_regions(world, ids, rng, config, pools)
    _build_other_cloud_regions(world, ids, rng, config, pools)

    amazon_pool = AmazonBorderPool(
        world,
        ids,
        rng,
        announced_pool=pools.announced["amazon"],
        infra_pool=pools.infra["amazon"],
        abi_whois_rate=config.abi_whois_rate,
        new_abi_rate=config.new_abi_rate,
        owner_asn=AMAZON_PRIMARY_ASN,
    )
    amazon_metros = {m for _r, m in CLOUD_SPECS["amazon"].region_metros}
    for metro in sorted(amazon_metros):
        fac = facs_by_metro.get(metro, [None])[0]
        amazon_pool.ensure_metro(metro, 2, fac)
    for metro in AMAZON_DX_METROS[: config.dx_metro_count]:
        fac = facs_by_metro.get(metro, [None])[0]
        amazon_pool.ensure_metro(metro, 1, fac)

    client_builder = ClientASBuilder(world, ids, rng, plan, registry, config)
    profiles = sample_counts(
        make_rng(config.seed, "profiles"),
        HYBRID_CENSUS,
        config.peer_as_count(),
    )
    clients = [client_builder.build_client(p) for p in profiles]

    fabric = ClientFabric(world, ids, rng)
    factory = _InterconnectionFactory(
        world,
        ids,
        rng,
        config,
        plan,
        pools,
        amazon_pool,
        fabric,
        client_builder.infra_cursor,
        facs_by_metro,
    )
    for client in clients:
        info = registry.get(client.asn)
        for group in sorted(client.profile):
            factory.build_group(client, group, info.kind)
        if coin(rng, config.private_vpi_rate):
            factory.build_private_address_vpi(client)
        # Every client also buys transit; the other clouds' fallback paths
        # enter through this interface.
        border_ids = fabric.routers_of(client.asn)
        client.border_router_ids.extend(border_ids)
        if border_ids:
            tip = pools.transit.allocate()
            world.add_interface(
                Interface(
                    ip=tip,
                    router_id=border_ids[0],
                    addr_owner_asn=FALLBACK_TRANSIT_ASN,
                )
            )
            router = world.routers[border_ids[0]]
            world.via_metros[tip] = (router.metro_code or client.home_metro,)
            world.client_transit_iface[client.asn] = (border_ids[0], tip)

    # Facility tenant lists (feeds the PeeringDB dataset).
    for client in clients:
        for metro in client.footprint_metros:
            for fac_id in facs_by_metro.get(metro, [])[:1]:
                world.facilities[fac_id].tenant_asns.add(client.asn)

    client_builder.set_backups(factory.backup_icx_ids)
    client_builder.assign_egress()
    _mirror_vpis_on_other_clouds(world, ids, rng, config, pools)
    _assign_dns_names(world, make_rng(config.seed, "dns"), config)
    _assign_visibility(world, make_rng(config.seed, "visibility"), config)
    _finalize_sweep(world, rng, config)
    return world
